"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure at a scaled-down
operating point (see DESIGN.md for the scaling rationale) and prints the
rows, then asserts the paper's qualitative claims.  Simulations are
deterministic and expensive, so every benchmark runs exactly one round
via ``benchmark.pedantic``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


def save_rows(name: str, rows) -> None:
    """Persist a benchmark's result rows for EXPERIMENTS.md regeneration."""
    ARTIFACTS.mkdir(exist_ok=True)
    path = ARTIFACTS / f"{name}.json"
    with path.open("w") as fh:
        json.dump(rows, fh, indent=1, default=str)


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


def by_scheme(rows, key):
    """Group sweep rows: scheme -> list of values of *key* (sweep order)."""
    out = {}
    for row in rows:
        out.setdefault(row["scheme"], []).append(row[key])
    return out
