"""Benchmark E-F6 — Figure 6: impact of bottleneck bandwidth.

Paper (1 Mbps - 1 Gbps, scaled here to a log-spaced 2-16 Mbps sweep):
PERT queue <= RED-ECN-like, droptail queue high, proactive schemes near
lossless, PERT fairness ~1.
"""

from repro.experiments.fig6_bandwidth import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.metrics.stats import mean

from .conftest import by_scheme, run_once, save_rows

BENCH_BANDWIDTHS = [2e6, 4e6, 8e6, 16e6]


def test_fig6_bandwidth_sweep(benchmark):
    rows = run_once(benchmark, run, bandwidths=BENCH_BANDWIDTHS,
                    duration=40.0, warmup=15.0, seed=1)
    save_rows("fig6", rows)
    print()
    print(format_table(
        rows,
        ["bandwidth_mbps", "n_fwd", "scheme", "norm_queue", "drop_rate",
         "utilization", "jain"],
        title="Figure 6 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    q = by_scheme(rows, "norm_queue")
    p = by_scheme(rows, "drop_rate")
    u = by_scheme(rows, "utilization")
    j = by_scheme(rows, "jain")

    # who wins: PERT's queue below droptail's at every point
    assert all(a < b for a, b in zip(q["pert"], q["sack-droptail"]))
    # PERT's mean queue comparable to (or better than) adaptive RED's
    assert mean(q["pert"]) <= mean(q["sack-red-ecn"]) * 1.3
    # proactive schemes ~lossless vs droptail's clear loss rate
    assert mean(p["pert"]) < 0.2 * mean(p["sack-droptail"])
    assert mean(p["vegas"]) < 0.5 * mean(p["sack-droptail"])
    # utilization stays high for PERT except possibly the smallest buffer
    assert all(x > 0.85 for x in u["pert"][1:])
    # PERT fairness ~1 and above Vegas on average
    assert all(x > 0.9 for x in j["pert"])
    assert mean(j["pert"]) > mean(j["vegas"])
