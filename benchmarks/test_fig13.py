"""Benchmark E-F13 — Figure 13: fluid-model stability of PERT/RED.

Paper: (a) the minimum stable sampling interval decreases monotonically
with N⁻, reaching ~0.1 s at N⁻ = 40 (C = 10 Mbps, R⁺ = 200 ms); (b-d)
DDE trajectories are stable at R = 100 and 160 ms and unstable at
R = 171 ms (C = 100 pkt/s, N = 5).
"""

import pytest

from repro.experiments.fig13_fluid import (
    PAPER_EXPECTATION,
    run_min_delta,
    run_trajectories,
)
from repro.experiments.report import format_table

from .conftest import run_once, save_rows


def test_fig13_stability(benchmark):
    def job():
        return run_min_delta(), run_trajectories(duration=60.0, dt=2e-3)

    rows_a, rows_bd = run_once(benchmark, job)
    save_rows("fig13a", rows_a)
    save_rows("fig13bd", rows_bd)
    print()
    print(format_table(rows_a, ["n_minus", "min_delta_s"],
                       title="Figure 13(a) reproduction"))
    print(format_table(rows_bd, ["rtt_ms", "stable", "w_star", "w_tail_min",
                                 "w_tail_max"],
                       title="Figure 13(b-d) reproduction"))
    print(f"paper: {PAPER_EXPECTATION}")

    deltas = [r["min_delta_s"] for r in rows_a]
    assert all(a > b for a, b in zip(deltas, deltas[1:]) if b > 0)
    at40 = next(r for r in rows_a if r["n_minus"] == 40)
    assert at40["min_delta_s"] == pytest.approx(0.1, rel=0.25)

    by_rtt = {round(r["rtt_ms"]): r["stable"] for r in rows_bd}
    assert by_rtt[100] is True
    assert by_rtt[160] is True
    assert by_rtt[171] is False


def test_fig13_spectral_cross_check(benchmark):
    """Independent verification: rightmost characteristic roots.

    The linearized model's spectral abscissa must agree with the
    trajectory classification, and the exact linear boundary must sit
    near the paper's observed ~171 ms (the paper notes its Theorem 1
    boundary is conservative, and that the W(t-R) ~ W(t) approximation
    pushes instability out to ~175 ms — both effects checked here).
    """
    from repro.experiments.fig13_fluid import FIG13BD_PARAMS
    from repro.fluid.spectrum import (
        pert_red_rightmost_root,
        pert_red_spectral_boundary,
    )
    from repro.fluid import make_fluid_model

    def job():
        roots = {
            rtt: pert_red_rightmost_root(
                make_fluid_model("pert_red", rtt=rtt, **FIG13BD_PARAMS)).real
            for rtt in (0.100, 0.160, 0.171)
        }
        full = pert_red_spectral_boundary(0.1, 0.2, **FIG13BD_PARAMS)
        approx = pert_red_spectral_boundary(
            0.1, 0.25, approximate_self_delay=True, **FIG13BD_PARAMS)
        return roots, full, approx

    roots, full, approx = run_once(benchmark, job)
    save_rows("fig13_spectral", [
        {"rtt_ms": r * 1e3, "rightmost_re": v} for r, v in roots.items()
    ] + [{"rtt_ms": "boundary", "rightmost_re": full},
         {"rtt_ms": "boundary(W(t)~W(t-R))", "rightmost_re": approx}])
    print()
    print(f"rightmost roots: {roots}")
    print(f"linear stability boundary: {full*1e3:.1f} ms "
          f"(paper observes ~171 ms)")
    print(f"with the W(t-R)~W(t) approximation: {approx*1e3:.1f} ms "
          f"(paper: ~175 ms)")
    assert roots[0.100] < 0 and roots[0.160] < 0
    assert roots[0.171] > 0
    assert 0.155 <= full <= 0.175
    assert approx > full
