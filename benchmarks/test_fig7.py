"""Benchmark E-F7 — Figure 7: impact of end-to-end RTT.

Paper (10 ms - 1 s, scaled here to 20-240 ms): PERT's queue and drop
rate track SACK/RED-ECN across the sweep; fairness stays high.
"""

from repro.experiments.fig7_rtt import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.metrics.stats import mean

from .conftest import by_scheme, run_once, save_rows

# 40 ms lower end: below that, at bench bandwidth (16 Mbps) the buffer
# (one BDP) is smaller than PERT's fixed 2*T_max = 20 ms response region,
# a degenerate scaled regime the paper's 150 Mbps setting never enters.
BENCH_RTTS = [0.04, 0.08, 0.160, 0.240]


def test_fig7_rtt_sweep(benchmark):
    rows = run_once(benchmark, run, rtts=BENCH_RTTS, bandwidth=16e6,
                    n_fwd=12, seed=1)
    save_rows("fig7", rows)
    print()
    print(format_table(
        rows, ["rtt_ms", "scheme", "norm_queue", "drop_rate",
               "utilization", "jain"],
        title="Figure 7 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    q = by_scheme(rows, "norm_queue")
    p = by_scheme(rows, "drop_rate")
    j = by_scheme(rows, "jain")

    # PERT's queue and drops below droptail at every RTT
    assert all(a < b for a, b in zip(q["pert"], q["sack-droptail"]))
    assert mean(p["pert"]) <= mean(p["sack-droptail"])
    # drop rate comparable to router RED-ECN (both near zero)
    assert mean(p["pert"]) < 0.01 and mean(p["sack-red-ecn"]) < 0.01
    # fairness high across all RTTs
    assert all(x > 0.85 for x in j["pert"])
