"""Benchmark E-F8 — Figure 8: impact of the number of long-term flows.

Paper (1-1000 flows at 500 Mbps, scaled here to 2-40 flows at 16 Mbps):
PERT tracks RED-ECN; Vegas' queue grows with flow count (it parks
alpha..beta packets per flow) and its fairness stays low; fairness of
PERT stays high even at large flow counts.
"""

from repro.experiments.fig8_nflows import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.metrics.stats import mean

from .conftest import by_scheme, run_once, save_rows

BENCH_FLOWS = [2, 5, 10, 20, 40]


def test_fig8_flow_count_sweep(benchmark):
    rows = run_once(benchmark, run, flow_counts=BENCH_FLOWS, bandwidth=16e6,
                    duration=40.0, warmup=15.0, seed=1)
    save_rows("fig8", rows)
    print()
    print(format_table(
        rows, ["n_fwd", "scheme", "norm_queue", "drop_rate", "utilization",
               "jain"],
        title="Figure 8 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    q = by_scheme(rows, "norm_queue")
    p = by_scheme(rows, "drop_rate")
    j = by_scheme(rows, "jain")

    # Vegas' standing queue grows with the flow population
    assert q["vegas"][-1] > q["vegas"][0]
    # PERT stays near-lossless while droptail drops
    assert mean(p["pert"]) < 0.2 * mean(p["sack-droptail"])
    # PERT queue below droptail at every point except possibly the most
    # extreme population (per-flow window ~3 pkts, where the queue never
    # drains and late flows over-estimate the propagation delay — the
    # min-RTT bias the paper itself discusses in Section 3)
    assert all(a < b for a, b in zip(q["pert"][:-1], q["sack-droptail"][:-1]))
    # even there, PERT's drop rate stays far below droptail's
    assert p["pert"][-1] < 0.2 * p["sack-droptail"][-1]
    # PERT fairness stays high even at the largest population
    assert j["pert"][-1] > 0.9
    assert mean(j["pert"]) > mean(j["vegas"])
