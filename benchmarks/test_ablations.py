"""Ablation benchmarks for PERT's design choices (DESIGN.md section 5).

These are not paper figures; they probe the knobs the paper argues for:

* the srtt history weight α (0.99 vs 7/8 vs none) — Section 2.4,
* the 35 % early decrease (vs gentler/harsher) — Section 3 / eq. (1),
* the once-per-RTT response limit (vs responding on every ACK).
"""

import pytest

from repro.core.config import PertConfig
from repro.core.pert import PertSender
from repro.experiments.common import run_dumbbell
from repro.experiments.report import format_table
from repro.experiments.scenarios import SCHEMES, Scheme

from .conftest import run_once, save_rows

BASE = dict(bandwidth=10e6, rtt=0.06, n_fwd=8, duration=40.0, warmup=15.0,
            seed=1, web_sessions=3)


def run_pert_variant(config: PertConfig, name: str):
    """Temporarily register a PERT scheme variant and run one point."""
    scheme = Scheme(name, PertSender, SCHEMES["pert"].make_qdisc,
                    sender_kwargs={"config": config})
    SCHEMES[name] = scheme
    try:
        return run_dumbbell(name, **BASE)
    finally:
        del SCHEMES[name]


def test_ablation_srtt_weight(benchmark):
    """The smoothing weight's role is prediction accuracy, not raw rate.

    With the once-per-RTT cap in place, PERT's end-to-end metrics are
    robust across smoothing weights (the response *rate* saturates under
    genuine congestion either way); what α = 0.99 buys is noise immunity
    of the prediction signal — quantified in the Figure 3 benchmark,
    where the raw signal's false-positive rate exceeds srtt_0.99's.
    This ablation pins the robustness half of that story.
    """

    def job():
        out = {}
        for alpha in (0.0, 7.0 / 8.0, 0.99):
            cfg = PertConfig(srtt_weight=alpha)
            out[alpha] = run_pert_variant(cfg, f"pert-a{alpha:g}")
        return out

    results = run_once(benchmark, job)
    rows = [
        {"alpha": a, "norm_queue": r.norm_queue, "drop_rate": r.drop_rate,
         "utilization": r.utilization, "early_responses": r.early_responses,
         "jain": r.jain}
        for a, r in results.items()
    ]
    save_rows("ablation_alpha", rows)
    print()
    print(format_table(rows, ["alpha", "norm_queue", "drop_rate",
                              "utilization", "early_responses", "jain"],
                       title="Ablation — srtt history weight"))
    for r in results.values():
        assert r.utilization > 0.9
        assert r.drop_rate < 5e-3
        assert r.jain > 0.9
    # heavier smoothing never responds dramatically more than the raw
    # signal (it can only filter, not invent, congestion indications)
    assert results[0.99].early_responses < results[0.0].early_responses * 1.2


def test_ablation_early_decrease(benchmark):
    """35 % balances the utilization-vs-queue trade-off of Section 3."""

    def job():
        out = {}
        for beta in (0.15, 0.35, 0.6):
            cfg = PertConfig(early_decrease=beta)
            out[beta] = run_pert_variant(cfg, f"pert-b{beta:g}")
        return out

    results = run_once(benchmark, job)
    rows = [
        {"decrease": b, "norm_queue": r.norm_queue, "drop_rate": r.drop_rate,
         "utilization": r.utilization, "jain": r.jain}
        for b, r in results.items()
    ]
    save_rows("ablation_beta", rows)
    print()
    print(format_table(rows, ["decrease", "norm_queue", "drop_rate",
                              "utilization", "jain"],
                       title="Ablation — early-decrease factor"))
    # larger decreases empty the queue further...
    assert results[0.6].norm_queue <= results[0.15].norm_queue + 0.05
    # ...but 35 % keeps utilization high (the paper's trade-off)
    assert results[0.35].utilization > 0.9
    assert results[0.35].drop_rate < 1e-3


def test_ablation_response_rate_limit(benchmark):
    """Once-per-RTT limiting prevents over-response to a single event."""

    def job():
        limited = run_pert_variant(
            PertConfig(min_response_interval_rtts=1.0), "pert-lim1")
        unlimited = run_pert_variant(
            PertConfig(min_response_interval_rtts=0.0), "pert-lim0")
        return limited, unlimited

    limited, unlimited = run_once(benchmark, job)
    rows = [
        {"limit": "once/RTT", "norm_queue": limited.norm_queue,
         "utilization": limited.utilization,
         "early_responses": limited.early_responses},
        {"limit": "per-ACK", "norm_queue": unlimited.norm_queue,
         "utilization": unlimited.utilization,
         "early_responses": unlimited.early_responses},
    ]
    save_rows("ablation_response_limit", rows)
    print()
    print(format_table(rows, ["limit", "norm_queue", "utilization",
                              "early_responses"],
                       title="Ablation — response rate limiting"))
    # per-ACK response fires more often and costs utilization
    assert unlimited.early_responses > limited.early_responses
    assert limited.utilization >= unlimited.utilization - 0.02
