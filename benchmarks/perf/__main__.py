"""CLI: regenerate BENCH_sim.json (and append to BENCH_history.jsonl).

    PYTHONPATH=src python -m benchmarks.perf [--quick] [--repeat N] [--out PATH]
                                             [--no-history] [--history PATH]
"""

from __future__ import annotations

import argparse

from . import DEFAULT_HISTORY, DEFAULT_OUT, append_history, run_suite, write_results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="Run the hot-path microbenchmarks and write BENCH_sim.json",
    )
    ap.add_argument("--quick", action="store_true",
                    help="small CI-sized workloads (same JSON schema)")
    ap.add_argument("--repeat", type=int, default=3,
                    help="best-of-N repetitions per benchmark (default 3)")
    ap.add_argument("--out", default=str(DEFAULT_OUT),
                    help=f"output path (default {DEFAULT_OUT})")
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help=f"history JSONL to append (default {DEFAULT_HISTORY})")
    ap.add_argument("--no-history", action="store_true",
                    help="skip appending this run to the history trajectory")
    args = ap.parse_args(argv)

    results = run_suite(quick=args.quick, repeat=args.repeat)
    for name in sorted(results["benchmarks"]):
        entry = results["benchmarks"][name]
        rate = (entry.get("events_per_sec") or entry.get("steps_per_sec"))
        unit = "ev/s" if "events_per_sec" in entry else "steps/s"
        line = f"{name:24s} {rate:12,.0f} {unit}"
        if "packets_per_sec" in entry:
            line += f"  ({entry['packets_per_sec']:,.0f} pkt/s)"
        if "fanout_speedup" in entry:
            line += (f"  ({entry['fanout_speedup']:.2f}x fan-out, "
                     f"{entry['snapshot_bytes']:,} B snapshot)")
        if "batch_speedup" in entry:
            line += f"  ({entry['batch_speedup']:.2f}x vs scalar loop)"
        print(line)
    path = write_results(results, args.out)
    print(f"wrote {path}")
    if not args.no_history:
        hist = append_history(results, args.history)
        print(f"appended {hist}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
