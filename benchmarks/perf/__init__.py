"""Hot-path microbenchmark suite — tracks the simulator's raw speed.

Three benchmarks cover the three performance-critical layers:

* ``engine.churn`` — pure event-list throughput: self-rescheduling null
  callbacks, measuring heap push/pop + dispatch with no protocol work.
* ``dumbbell.<scheme>`` — end-to-end packet-level throughput of the
  paper's dumbbell workload per scheme (events/s and bottleneck
  packets/s), the number that multiplies every figure sweep.
* ``fluid.dde`` — RK4 step rate of the Section 5 PERT/RED fluid model.
* ``fluid.dde_batch`` — the vectorized sweep integrator: a whole RTT
  grid of PERT/RED models advanced in lockstep via
  :func:`repro.fluid.pert_red.simulate_batch`, reported as aggregate
  member-steps/s plus the speedup over the equivalent scalar loop.
* ``dumbbell.warmstart`` — warm-started sweep fan-out: one warm-up
  snapshot measured at four durations vs four cold runs, plus the raw
  capture/restore throughput of the checkpoint body (``repro.snapshot``).
* ``hybrid.dumbbell`` — the fluid-packet coupling at 10^5 represented
  flows (``repro.hybrid``): events/s and the flows-per-event leverage of
  replacing all but a few foreground flows with a fluid ensemble.

The payload records which event-engine backend ran the suite (the
``engine`` key, resolved from ``REPRO_ENGINE``) and, since
``repro-bench/3``, which compiled tier served it (the ``compiled`` key:
``"cext"`` / ``"mypyc"`` / ``"cython"``, or ``null`` for pure Python —
see :mod:`repro.compiled`); numbers from different backends or tiers
are not comparable, and the perf guard skips rather than compare them.

Run ``PYTHONPATH=src python -m benchmarks.perf`` from the repo root to
regenerate ``BENCH_sim.json`` (the committed perf trajectory, diffed
PR-over-PR); ``--quick`` shrinks every workload for CI smoke runs while
keeping the JSON schema identical.

All workloads are fixed-seed: the event/step counts they report are
deterministic, so any drift in those counts flags a behavioural (not
just performance) change.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

#: bump when the JSON layout changes (CI diffs the schema)
SCHEMA = "repro-bench/3"

#: bump when the history-line layout changes incompatibly
HISTORY_SCHEMA = "repro-bench-history/1"

#: repo root (benchmarks/perf/__init__.py -> two parents up)
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUT = REPO_ROOT / "BENCH_sim.json"
#: append-only perf trajectory, one JSON line per suite run
HISTORY_FILENAME = "BENCH_history.jsonl"
DEFAULT_HISTORY = REPO_ROOT / HISTORY_FILENAME

#: schemes whose dumbbell throughput is tracked: the PERT hot path, the
#: cheapest baseline, and the router-AQM path (RED admit per packet)
DUMBBELL_SCHEMES: Tuple[str, ...] = ("pert", "sack-droptail", "sack-red-ecn")

DUMBBELL_KWARGS = dict(
    bandwidth=8e6, rtt=0.05, n_fwd=8, duration=6.0, warmup=2.0, seed=2,
)
DUMBBELL_KWARGS_QUICK = dict(
    bandwidth=4e6, rtt=0.05, n_fwd=4, duration=3.0, warmup=1.0, seed=2,
)


def _ensure_src_on_path() -> None:
    """Allow running from a repo-root checkout without PYTHONPATH=src."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))


def bench_engine(n_events: int = 200_000, chains: int = 200,
                 repeat: int = 3) -> Dict:
    """Event-list churn: *chains* self-rescheduling null callback chains.

    Measures heap push/pop plus dispatch with no protocol logic — the
    ceiling every packet-level workload sits under.
    """
    _ensure_src_on_path()
    from repro.sim.engine import Simulator

    depth = n_events // chains

    def _once() -> Tuple[float, int]:
        sim = Simulator(seed=0)

        def tick(remaining: int) -> None:
            if remaining:
                sim.schedule_fire(0.001, tick, remaining - 1)

        for i in range(chains):
            sim.schedule_fire(i * 1e-6, tick, depth - 1)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim.events_processed

    best, events = min(_once() for _ in range(repeat))
    return {
        "params": {"n_events": n_events, "chains": chains, "repeat": repeat},
        "events": events,
        "best_seconds": best,
        "events_per_sec": events / best,
    }


def bench_dumbbell(schemes: Sequence[str] = DUMBBELL_SCHEMES,
                   repeat: int = 3, **kwargs) -> Dict[str, Dict]:
    """Per-scheme dumbbell throughput (events/s, bottleneck packets/s).

    *kwargs* override :data:`DUMBBELL_KWARGS`; the same kwargs are
    recorded in each entry so regression guards can re-run the exact
    workload.
    """
    _ensure_src_on_path()
    from repro.experiments.common import run_dumbbell

    params = dict(DUMBBELL_KWARGS)
    params.update(kwargs)
    out: Dict[str, Dict] = {}
    for scheme in schemes:
        best = float("inf")
        events = packets = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = run_dumbbell(scheme, collector=False, keep_refs=True,
                                  **params)
            elapsed = time.perf_counter() - t0
            db = result.extras["dumbbell"]
            run_events = result.events_processed
            run_packets = db.fwd.packets_transmitted + db.rev.packets_transmitted
            if events is None:
                events, packets = run_events, run_packets
            elif (events, packets) != (run_events, run_packets):
                raise AssertionError(
                    f"{scheme}: fixed-seed run not deterministic "
                    f"({events},{packets}) vs ({run_events},{run_packets})"
                )
            best = min(best, elapsed)
        out[scheme] = {
            "params": dict(params),
            "events": events,
            "packets": packets,
            "best_seconds": best,
            "events_per_sec": events / best,
            "packets_per_sec": packets / best,
        }
    return out


#: durations fanned out from one warm checkpoint (full / quick grids)
WARMSTART_DURATIONS: Tuple[float, ...] = (4.0, 5.0, 6.0, 7.0)
WARMSTART_DURATIONS_QUICK: Tuple[float, ...] = (2.0, 2.5, 3.0, 3.5)


def bench_warmstart(durations: Sequence[float] = WARMSTART_DURATIONS,
                    repeat: int = 3, **kwargs) -> Dict:
    """Warm-started sweep fan-out vs cold runs, plus checkpoint I/O rate.

    Warms one ``pert`` dumbbell to its measurement window, then measures
    every *duration* from clones of that snapshot; the cold side runs
    each duration from scratch.  Reports the end-to-end fan-out speedup
    (the headline warm-start win), the snapshot size, and the raw
    capture/restore throughput of the checkpoint body.  The warm and
    cold runs must agree event-for-event — any drift is a correctness
    bug, not a perf delta, and fails the benchmark.
    """
    _ensure_src_on_path()
    from repro.experiments.common import (
        run_dumbbell,
        run_dumbbell_warm,
        warm_dumbbell_bytes,
    )
    from repro.snapshot import restore_bytes

    params = dict(DUMBBELL_KWARGS)
    params.update(kwargs)
    params.pop("duration", None)
    durations = tuple(durations)

    cold_best = float("inf")
    cold_events = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        events = [
            run_dumbbell("pert", duration=d, collector=False, **params)
            .events_processed
            for d in durations
        ]
        cold_best = min(cold_best, time.perf_counter() - t0)
        if cold_events is None:
            cold_events = events
        elif events != cold_events:
            raise AssertionError("cold runs not deterministic")

    warm_best = float("inf")
    body = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        body = warm_dumbbell_bytes("pert", **params)
        warm_events = [
            run_dumbbell_warm(body, d).events_processed for d in durations
        ]
        warm_best = min(warm_best, time.perf_counter() - t0)
        if warm_events != cold_events:
            raise AssertionError(
                f"warm-started runs diverged from cold runs: "
                f"{warm_events} vs {cold_events}"
            )

    # raw checkpoint body I/O (in-memory: disk speed is not the subject)
    capture_best = restore_best = float("inf")
    for _ in range(repeat):
        sim, state = restore_bytes(body)
        t0 = time.perf_counter()
        from repro.snapshot import capture_bytes
        capture_bytes(sim, state)
        capture_best = min(capture_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        restore_bytes(body)
        restore_best = min(restore_best, time.perf_counter() - t0)

    total_events = sum(cold_events)
    return {
        "params": dict(params, durations=list(durations), repeat=repeat),
        "events": total_events,
        "best_seconds": warm_best,
        "events_per_sec": total_events / warm_best,
        "cold_seconds": cold_best,
        "fanout_speedup": cold_best / warm_best,
        "snapshot_bytes": len(body),
        "capture_mb_per_sec": len(body) / 1e6 / capture_best,
        "restore_mb_per_sec": len(body) / 1e6 / restore_best,
    }


#: hybrid workload: fluid flows represented / foreground packet flows
HYBRID_KWARGS = dict(
    n_flows=100_000, n_fg=8, duration=6.0, warmup=2.0, seed=2,
    aggregate=4000,
)
HYBRID_KWARGS_QUICK = dict(
    n_flows=10_000, n_fg=4, duration=3.0, warmup=1.0, seed=2,
    aggregate=400,
)


def bench_hybrid(repeat: int = 3, **kwargs) -> Dict:
    """Hybrid fluid-packet dumbbell throughput at extreme flow counts.

    Runs the :mod:`repro.hybrid` coupling — a fast-forwarded PERT/RED
    fluid ensemble standing in for all but a few foreground flows — and
    reports events/s plus the scale leverage: how many represented flows
    each processed event buys.  The pure packet engine's cost grows with
    the flow count; this entry tracks that the hybrid engine's does not.
    """
    _ensure_src_on_path()
    from repro.experiments.common import run_dumbbell

    params = dict(HYBRID_KWARGS)
    params.update(kwargs)
    n_flows, n_fg = params.pop("n_flows"), params.pop("n_fg")
    aggregate = params.pop("aggregate")
    per_flow_bw = 0.8e6
    background = {
        "model": "pert_red",
        "share": (n_flows - n_fg) / n_flows,
        "n_flows": n_flows - n_fg,
        "aggregate": aggregate,
        "arrival": "paced",
    }
    best = float("inf")
    events = bg_pkts = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = run_dumbbell(
            "pert", n_flows * per_flow_bw, background=background,
            rtt=0.05, n_fwd=n_fg, start_window=0.1, collector=False,
            **params,
        )
        elapsed = time.perf_counter() - t0
        run_events = result.events_processed
        run_bg = result.background_pkts
        if events is None:
            events, bg_pkts = run_events, run_bg
        elif (events, bg_pkts) != (run_events, run_bg):
            raise AssertionError(
                f"hybrid: fixed-seed run not deterministic "
                f"({events},{bg_pkts}) vs ({run_events},{run_bg})"
            )
        best = min(best, elapsed)
    return {
        "params": dict(params, n_flows=n_flows, n_fg=n_fg,
                       aggregate=aggregate),
        "events": events,
        "background_pkts": bg_pkts,
        "represented_flows": n_flows,
        "best_seconds": best,
        "events_per_sec": events / best,
        "flows_per_event": n_flows / events,
    }


def bench_fluid(duration: float = 40.0, dt: float = 1e-3,
                repeat: int = 3) -> Dict:
    """RK4 step rate of the PERT/RED fluid DDE (Section 5 model)."""
    _ensure_src_on_path()
    from repro.fluid import make_fluid_model

    model = make_fluid_model("pert_red")
    n_steps = int(round(duration / dt))

    def _once() -> float:
        t0 = time.perf_counter()
        model.simulate(duration, dt=dt)
        return time.perf_counter() - t0

    best = min(_once() for _ in range(repeat))
    return {
        "params": {"duration": duration, "dt": dt, "repeat": repeat},
        "steps": n_steps,
        "best_seconds": best,
        "steps_per_sec": n_steps / best,
    }


def bench_fluid_batch(batch: int = 16, duration: float = 20.0,
                      dt: float = 1e-3, repeat: int = 3) -> Dict:
    """Vectorized RTT-sweep rate of the PERT/RED fluid model.

    Integrates *batch* models (an RTT grid spanning the Figure 13
    stability boundary) in lockstep and reports aggregate member-steps
    per second, plus the measured speedup over running the same sweep
    through the scalar integrator one model at a time (the speedup is
    timed once — it is a ratio of two long runs, not a noise-sensitive
    single number).
    """
    _ensure_src_on_path()
    from repro.fluid import make_fluid_model
    from repro.fluid.pert_red import simulate_batch

    models = [
        make_fluid_model("pert_red", rtt=0.08 + 0.006 * i) for i in range(batch)
    ]
    n_steps = int(round(duration / dt))

    def _once() -> float:
        t0 = time.perf_counter()
        simulate_batch(models, duration, dt=dt)
        return time.perf_counter() - t0

    best = min(_once() for _ in range(repeat))
    t0 = time.perf_counter()
    for m in models:
        m.simulate(duration, dt=dt)
    scalar_seconds = time.perf_counter() - t0
    return {
        "params": {"batch": batch, "duration": duration, "dt": dt,
                   "repeat": repeat},
        "steps": n_steps * batch,
        "best_seconds": best,
        "steps_per_sec": n_steps * batch / best,
        "scalar_seconds": scalar_seconds,
        "batch_speedup": scalar_seconds / best,
    }


def run_suite(quick: bool = False, repeat: int = 3) -> Dict:
    """Run every benchmark; returns the ``BENCH_sim.json`` payload."""
    _ensure_src_on_path()
    from repro.compiled import active_tier
    from repro.sim.engine import get_engine_class

    if quick:
        engine = bench_engine(n_events=50_000, chains=100, repeat=repeat)
        dumbbell = bench_dumbbell(repeat=repeat, **DUMBBELL_KWARGS_QUICK)
        warmstart = bench_warmstart(
            durations=WARMSTART_DURATIONS_QUICK, repeat=repeat,
            **DUMBBELL_KWARGS_QUICK,
        )
        fluid = bench_fluid(duration=10.0, repeat=repeat)
        fluid_batch = bench_fluid_batch(batch=8, duration=5.0, repeat=repeat)
        hybrid = bench_hybrid(repeat=repeat, **HYBRID_KWARGS_QUICK)
    else:
        engine = bench_engine(repeat=repeat)
        dumbbell = bench_dumbbell(repeat=repeat)
        warmstart = bench_warmstart(repeat=repeat)
        fluid = bench_fluid(repeat=repeat)
        fluid_batch = bench_fluid_batch(repeat=repeat)
        hybrid = bench_hybrid(repeat=repeat)
    benchmarks = {
        "engine.churn": engine,
        "fluid.dde": fluid,
        "fluid.dde_batch": fluid_batch,
        "dumbbell.warmstart": warmstart,
        "hybrid.dumbbell": hybrid,
    }
    for scheme, entry in dumbbell.items():
        benchmarks[f"dumbbell.{scheme}"] = entry
    engine_cls = get_engine_class()
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "engine": engine_cls.__name__,
        # which compiled tier (cext/mypyc/cython) served the run, or None
        # for pure Python — only meaningful when the engine is compiled
        "compiled": active_tier() if engine_cls.__name__ == "CompiledSimulator" else None,
        "benchmarks": benchmarks,
    }


def write_results(results: Dict, out: Optional[Path] = None) -> Path:
    path = Path(out) if out is not None else DEFAULT_OUT
    with path.open("w") as fh:
        json.dump(results, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def _git_sha() -> Optional[str]:
    """Short git sha of HEAD, or None outside a repo / without git."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(REPO_ROOT), capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def history_record(results: Dict) -> Dict:
    """Condense one :func:`run_suite` payload into a history line.

    Keeps only what trajectory analysis needs: when, which code
    (``git_sha``), which backend (``engine``), which compiled tier
    (``compiled``), which tier (``quick``), and the headline rate per
    benchmark (events/s, or steps/s for the fluid benchmarks).  Full
    per-benchmark detail stays in ``BENCH_sim.json``; the history is
    for run-over-run deltas.
    """
    rates = {}
    for name, entry in results.get("benchmarks", {}).items():
        rate = entry.get("events_per_sec") or entry.get("steps_per_sec")
        if rate is not None:
            rates[name] = rate
    return {
        "schema": HISTORY_SCHEMA,
        "ts": time.time(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "engine": results.get("engine"),
        "compiled": results.get("compiled"),
        "python": results.get("python"),
        "quick": bool(results.get("quick")),
        "rates": rates,
    }


def append_history(results: Dict, path: Optional[Path] = None) -> Path:
    """Append one suite run to the ``BENCH_history.jsonl`` trajectory.

    One JSON line per run, append-only — successive benchmark runs build
    the perf-over-time record that ``python -m repro.obs report
    --history``, ``repro.serve``'s ``/api/history``, and the perf
    guard's failure diagnostics read.
    """
    path = Path(path) if path is not None else DEFAULT_HISTORY
    line = json.dumps(history_record(results), sort_keys=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return path


def read_history(path: Optional[Path] = None) -> list:
    """Parse the history trajectory; unparseable lines are skipped."""
    path = Path(path) if path is not None else DEFAULT_HISTORY
    entries = []
    try:
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if isinstance(rec, dict) and isinstance(rec.get("rates"), dict):
                    entries.append(rec)
    except OSError:
        pass
    return entries
