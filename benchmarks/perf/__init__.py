"""Hot-path microbenchmark suite — tracks the simulator's raw speed.

Three benchmarks cover the three performance-critical layers:

* ``engine.churn`` — pure event-list throughput: self-rescheduling null
  callbacks, measuring heap push/pop + dispatch with no protocol work.
* ``dumbbell.<scheme>`` — end-to-end packet-level throughput of the
  paper's dumbbell workload per scheme (events/s and bottleneck
  packets/s), the number that multiplies every figure sweep.
* ``fluid.dde`` — RK4 step rate of the Section 5 PERT/RED fluid model.

Run ``PYTHONPATH=src python -m benchmarks.perf`` from the repo root to
regenerate ``BENCH_sim.json`` (the committed perf trajectory, diffed
PR-over-PR); ``--quick`` shrinks every workload for CI smoke runs while
keeping the JSON schema identical.

All workloads are fixed-seed: the event/step counts they report are
deterministic, so any drift in those counts flags a behavioural (not
just performance) change.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

#: bump when the JSON layout changes (CI diffs the schema)
SCHEMA = "repro-bench/1"

#: repo root (benchmarks/perf/__init__.py -> two parents up)
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUT = REPO_ROOT / "BENCH_sim.json"

#: schemes whose dumbbell throughput is tracked: the PERT hot path, the
#: cheapest baseline, and the router-AQM path (RED admit per packet)
DUMBBELL_SCHEMES: Tuple[str, ...] = ("pert", "sack-droptail", "sack-red-ecn")

DUMBBELL_KWARGS = dict(
    bandwidth=8e6, rtt=0.05, n_fwd=8, duration=6.0, warmup=2.0, seed=2,
)
DUMBBELL_KWARGS_QUICK = dict(
    bandwidth=4e6, rtt=0.05, n_fwd=4, duration=3.0, warmup=1.0, seed=2,
)


def _ensure_src_on_path() -> None:
    """Allow running from a repo-root checkout without PYTHONPATH=src."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))


def bench_engine(n_events: int = 200_000, chains: int = 200,
                 repeat: int = 3) -> Dict:
    """Event-list churn: *chains* self-rescheduling null callback chains.

    Measures heap push/pop plus dispatch with no protocol logic — the
    ceiling every packet-level workload sits under.
    """
    _ensure_src_on_path()
    from repro.sim.engine import Simulator

    depth = n_events // chains

    def _once() -> Tuple[float, int]:
        sim = Simulator(seed=0)

        def tick(remaining: int) -> None:
            if remaining:
                sim.schedule_fire(0.001, tick, remaining - 1)

        for i in range(chains):
            sim.schedule_fire(i * 1e-6, tick, depth - 1)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim.events_processed

    best, events = min(_once() for _ in range(repeat))
    return {
        "params": {"n_events": n_events, "chains": chains, "repeat": repeat},
        "events": events,
        "best_seconds": best,
        "events_per_sec": events / best,
    }


def bench_dumbbell(schemes: Sequence[str] = DUMBBELL_SCHEMES,
                   repeat: int = 3, **kwargs) -> Dict[str, Dict]:
    """Per-scheme dumbbell throughput (events/s, bottleneck packets/s).

    *kwargs* override :data:`DUMBBELL_KWARGS`; the same kwargs are
    recorded in each entry so regression guards can re-run the exact
    workload.
    """
    _ensure_src_on_path()
    from repro.experiments.common import run_dumbbell

    params = dict(DUMBBELL_KWARGS)
    params.update(kwargs)
    out: Dict[str, Dict] = {}
    for scheme in schemes:
        best = float("inf")
        events = packets = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = run_dumbbell(scheme, collector=False, keep_refs=True,
                                  **params)
            elapsed = time.perf_counter() - t0
            db = result.extras["dumbbell"]
            run_events = result.events_processed
            run_packets = db.fwd.packets_transmitted + db.rev.packets_transmitted
            if events is None:
                events, packets = run_events, run_packets
            elif (events, packets) != (run_events, run_packets):
                raise AssertionError(
                    f"{scheme}: fixed-seed run not deterministic "
                    f"({events},{packets}) vs ({run_events},{run_packets})"
                )
            best = min(best, elapsed)
        out[scheme] = {
            "params": dict(params),
            "events": events,
            "packets": packets,
            "best_seconds": best,
            "events_per_sec": events / best,
            "packets_per_sec": packets / best,
        }
    return out


def bench_fluid(duration: float = 40.0, dt: float = 1e-3,
                repeat: int = 3) -> Dict:
    """RK4 step rate of the PERT/RED fluid DDE (Section 5 model)."""
    _ensure_src_on_path()
    from repro.fluid.pert_red import PertRedFluidModel

    model = PertRedFluidModel()
    n_steps = int(round(duration / dt))

    def _once() -> float:
        t0 = time.perf_counter()
        model.simulate(duration, dt=dt)
        return time.perf_counter() - t0

    best = min(_once() for _ in range(repeat))
    return {
        "params": {"duration": duration, "dt": dt, "repeat": repeat},
        "steps": n_steps,
        "best_seconds": best,
        "steps_per_sec": n_steps / best,
    }


def run_suite(quick: bool = False, repeat: int = 3) -> Dict:
    """Run every benchmark; returns the ``BENCH_sim.json`` payload."""
    if quick:
        engine = bench_engine(n_events=50_000, chains=100, repeat=repeat)
        dumbbell = bench_dumbbell(repeat=repeat, **DUMBBELL_KWARGS_QUICK)
        fluid = bench_fluid(duration=10.0, repeat=repeat)
    else:
        engine = bench_engine(repeat=repeat)
        dumbbell = bench_dumbbell(repeat=repeat)
        fluid = bench_fluid(repeat=repeat)
    benchmarks = {"engine.churn": engine, "fluid.dde": fluid}
    for scheme, entry in dumbbell.items():
        benchmarks[f"dumbbell.{scheme}"] = entry
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "benchmarks": benchmarks,
    }


def write_results(results: Dict, out: Optional[Path] = None) -> Path:
    path = Path(out) if out is not None else DEFAULT_OUT
    with path.open("w") as fh:
        json.dump(results, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
