"""Benchmark E-F9 — Figure 9: impact of web (bursty) traffic.

Paper (10-1000 sessions at 150 Mbps, scaled here to 2-16 sessions at
10 Mbps): PERT keeps the queue low and ~zero drops at every web load,
like RED-ECN; long-flow fairness stays high.
"""

from repro.experiments.fig9_web import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.metrics.stats import mean

from .conftest import by_scheme, run_once, save_rows

BENCH_SESSIONS = [2, 4, 8, 16]


def test_fig9_web_sweep(benchmark):
    rows = run_once(benchmark, run, session_counts=BENCH_SESSIONS,
                    bandwidth=10e6, n_fwd=8, duration=40.0, warmup=15.0,
                    seed=1)
    save_rows("fig9", rows)
    print()
    print(format_table(
        rows, ["web_sessions", "scheme", "norm_queue", "drop_rate",
               "utilization", "jain"],
        title="Figure 9 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    q = by_scheme(rows, "norm_queue")
    p = by_scheme(rows, "drop_rate")
    j = by_scheme(rows, "jain")

    assert all(a < b for a, b in zip(q["pert"], q["sack-droptail"]))
    assert mean(p["pert"]) < 1e-3
    assert mean(p["pert"]) < 0.2 * mean(p["sack-droptail"])
    assert all(x > 0.9 for x in j["pert"])
