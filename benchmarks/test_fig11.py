"""Benchmark E-F11 — Figure 11: multiple bottlenecks (parking lot).

Paper: PERT maintains low queues and zero drops on every router-router
hop, with utilization like SACK/RED-ECN and fairness preserved.
"""

from repro.experiments.fig11_multibottleneck import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.metrics.stats import mean

from .conftest import run_once, save_rows


def test_fig11_parking_lot(benchmark):
    rows = run_once(benchmark, run, n_routers=5, cloud_size=4,
                    link_bw=16e6, duration=45.0, warmup=18.0, seed=1)
    save_rows("fig11", rows)
    print()
    print(format_table(
        rows, ["hop", "scheme", "norm_queue", "drop_rate", "utilization",
               "jain"],
        title="Figure 11 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")
    by = {}
    for row in rows:
        by.setdefault(row["scheme"], []).append(row)

    pert = by["pert"]
    droptail = by["sack-droptail"]
    # PERT low queue and ~zero drops on every hop
    assert all(r["norm_queue"] < 0.5 for r in pert)
    assert all(r["drop_rate"] < 1e-3 for r in pert)
    # droptail queue above PERT on every hop
    for p_row, d_row in zip(pert, droptail):
        assert p_row["norm_queue"] < d_row["norm_queue"]
    # PERT utilization comparable to the RED-ECN router baseline
    assert mean(r["utilization"] for r in pert) > \
        mean(r["utilization"] for r in by["sack-red-ecn"]) - 0.15
    # fairness preserved relative to droptail on every hop (the absolute
    # Jain index mixes 1-hop and end-to-end flows, which no scheme
    # equalizes perfectly on a parking lot)
    for p_row, d_row in zip(pert, droptail):
        assert p_row["jain"] > d_row["jain"]
    assert all(r["jain"] > 0.55 for r in pert)
