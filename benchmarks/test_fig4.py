"""Benchmark E-F4 — Figure 4: queue occupancy at srtt_0.99 false positives.

Paper: prediction uncertainty concentrates at low queue occupancy —
most false-positive mass sits below half the buffer, which motivates the
RED-shaped (occupancy-proportional) response curve.
"""

from repro.experiments.fig4_false_positive_pdf import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.experiments.section2 import TrafficCase

from .conftest import run_once, save_rows

BENCH_CASES = [
    TrafficCase("case-light", n_fwd=12, n_rev=4, web_sessions=4),
    TrafficCase("case-heavy", n_fwd=16, n_rev=6, web_sessions=10),
]


def test_fig4_false_positive_pdf(benchmark):
    rows, levels = run_once(benchmark, run, cases=BENCH_CASES,
                            bandwidth=16e6, duration=60.0, seed=2)
    save_rows("fig4", rows)
    print()
    print(format_table(rows, ["norm_queue_bin", "pdf"],
                       title="Figure 4 (scaled reproduction)"))
    below_half = (sum(1 for x in levels if x < 0.5) / len(levels)
                  if levels else 0.0)
    print(f"false positives: {len(levels)}; fraction below half "
          f"occupancy: {below_half:.2f}")
    print(f"paper: {PAPER_EXPECTATION}")
    assert len(levels) > 50, "too few false positives to form a PDF"
    assert below_half > 0.5
