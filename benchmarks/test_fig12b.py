"""Benchmark — Section 4.7's non-responsive-traffic dynamics.

Paper: "dynamic changes in traffic were caused by non-responsive
traffic.  The results are similar" — responsive schemes concede and
reclaim bandwidth promptly; PERT does so without filling the buffer.
"""

from repro.experiments.fig12b_cbr_dynamics import (
    PAPER_EXPECTATION,
    phase_settling_times,
    run_cbr_dynamics,
)
from repro.experiments.report import format_table

from .conftest import run_once, save_rows

PARAMS = dict(bandwidth=10e6, n_flows=6, cbr_fraction=0.5,
              t_on=20.0, t_off=40.0, duration=60.0, seed=1)


def test_fig12b_cbr_dynamics(benchmark):
    def job():
        return {s: run_cbr_dynamics(s, **PARAMS)
                for s in ("pert", "sack-droptail")}

    results = run_once(benchmark, job)
    rows = []
    for scheme, res in results.items():
        st = phase_settling_times(res)
        rows.append({
            "scheme": scheme,
            "concede_s": st["concede_s"],
            "reclaim_s": st["reclaim_s"],
            "drops_squeeze": res["drops_during_squeeze"],
        })
    save_rows("fig12b", rows)
    print()
    print(format_table(rows, ["scheme", "concede_s", "reclaim_s",
                              "drops_squeeze"],
                       title="Section 4.7 CBR dynamics (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    pert = next(r for r in rows if r["scheme"] == "pert")
    sack = next(r for r in rows if r["scheme"] == "sack-droptail")
    # both respond within a few seconds...
    assert pert["concede_s"] is not None and pert["concede_s"] < 5.0
    assert pert["reclaim_s"] is not None and pert["reclaim_s"] < 5.0
    # ...but PERT absorbs the squeeze without the loss storm
    assert pert["drops_squeeze"] < 0.1 * max(sack["drops_squeeze"], 10)
