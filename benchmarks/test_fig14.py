"""Benchmark E-F14 — Figure 14: emulating PI at end hosts.

Paper: PERT-PI's utilization and average queue track router PI/ECN; the
end-host emulation is very effective at avoiding drops; fairness is
comparable across the RTT sweep.
"""

from repro.experiments.fig14_pert_pi import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.metrics.stats import mean

from .conftest import by_scheme, run_once, save_rows

BENCH_RTTS = [0.02, 0.06, 0.120]


def test_fig14_pert_pi(benchmark):
    rows = run_once(benchmark, run, rtts=BENCH_RTTS, bandwidth=16e6,
                    n_fwd=12, seed=1)
    save_rows("fig14", rows)
    print()
    print(format_table(
        rows, ["rtt_ms", "scheme", "norm_queue", "drop_rate",
               "utilization", "jain"],
        title="Figure 14 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    p = by_scheme(rows, "drop_rate")
    u = by_scheme(rows, "utilization")
    j = by_scheme(rows, "jain")

    # end-host PI avoids drops effectively
    assert mean(p["pert-pi"]) < 0.01
    # utilization comparable to the router PI/ECN baseline
    assert mean(u["pert-pi"]) > mean(u["sack-pi-ecn"]) - 0.1
    # fairness comparable across the sweep
    assert mean(j["pert-pi"]) > 0.8
