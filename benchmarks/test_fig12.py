"""Benchmark E-F12 — Figure 12: response to sudden traffic changes.

Paper: cohorts of PERT flows joining every epoch (then leaving) re-share
the bottleneck quickly and evenly; Vegas shows persistent unfairness
between cohorts that started at different times.
"""

from repro.experiments.fig12_dynamics import (
    PAPER_EXPECTATION,
    cohort_share_error,
    run_dynamics,
)
from repro.experiments.report import format_table

from .conftest import run_once, save_rows

PARAMS = dict(n_cohorts=3, cohort_size=4, epoch=15.0, bandwidth=10e6, seed=1)


def test_fig12_dynamics(benchmark):
    def job():
        return {s: run_dynamics(s, **PARAMS) for s in ("pert", "vegas")}

    results = run_once(benchmark, job)
    rows = []
    for scheme, res in results.items():
        for e in range(res["n_cohorts"]):
            rows.append({
                "scheme": scheme,
                "epoch": e,
                "active_cohorts": e + 1,
                "share_error": cohort_share_error(res, e),
            })
    save_rows("fig12", rows)
    print()
    print(format_table(rows, ["scheme", "epoch", "active_cohorts",
                              "share_error"],
                       title="Figure 12 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")

    pert = results["pert"]
    vegas = results["vegas"]
    full = PARAMS["n_cohorts"] - 1
    # PERT re-converges to near-equal cohort shares at full load
    pert_err = cohort_share_error(pert, full)
    vegas_err = cohort_share_error(vegas, full)
    assert pert_err < 0.35
    # Vegas' startup-order unfairness: worse cohort sharing than PERT
    assert vegas_err > pert_err
    # PERT keeps the pipe full through the transitions
    times = pert["times"]
    idx = [i for i, t in enumerate(times)
           if full * PARAMS["epoch"] + 7.5 < t <= (full + 1) * PARAMS["epoch"]]
    agg = sum(sum(pert["cohort_rates_bps"][k][i]
                  for k in range(PARAMS["n_cohorts"])) for i in idx) / len(idx)
    assert agg > 0.8 * PARAMS["bandwidth"]
