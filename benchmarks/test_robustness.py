"""Benchmark — seed-sweep robustness of the headline comparison.

Not a paper artifact: re-runs the core PERT-vs-baselines comparison over
three seeds and asserts the paper's orderings hold for *every* seed,
guarding the rest of the suite against single-seed luck.
"""

from repro.experiments.report import format_table
from repro.experiments.robustness import seed_sweep, summarize_sweep

from .conftest import run_once, save_rows

PARAMS = dict(bandwidth=10e6, rtt=0.06, n_fwd=8, web_sessions=3,
              duration=40.0, warmup=15.0)
SEEDS = (1, 2, 3)


def test_headline_orderings_hold_for_every_seed(benchmark):
    sweep = run_once(
        benchmark, seed_sweep,
        ("pert", "sack-droptail", "sack-red-ecn", "vegas"),
        seeds=SEEDS, **PARAMS,
    )
    rows = summarize_sweep(sweep)
    save_rows("robustness", rows)
    print()
    print(format_table(
        rows,
        ["scheme", "seeds", "norm_queue_mean", "norm_queue_std",
         "drop_rate_mean", "utilization_mean", "jain_mean"],
        title="Seed-sweep robustness (3 seeds)"))

    for i, seed in enumerate(SEEDS):
        pert = sweep["pert"][i]
        droptail = sweep["sack-droptail"][i]
        red = sweep["sack-red-ecn"][i]
        vegas = sweep["vegas"][i]
        # every seed: PERT queue far below droptail, near-zero drops,
        # high utilization and fairness, fairer than Vegas
        assert pert["norm_queue"] < 0.6 * droptail["norm_queue"], seed
        assert pert["drop_rate"] < 1e-3, seed
        assert pert["drop_rate"] <= red["drop_rate"] + 1e-3, seed
        assert pert["utilization"] > 0.9, seed
        assert pert["jain"] > 0.95, seed
        assert pert["jain"] > vegas["jain"], seed
    # and the variance across seeds is small (the comparison is stable)
    by = {r["scheme"]: r for r in rows}
    assert by["pert"]["norm_queue_std"] < 0.1
    assert by["pert"]["utilization_std"] < 0.05