"""Benchmark E-T1 — Table 1: flows with heterogeneous RTTs.

Paper numbers (150 Mbps, RTTs 12..120 ms, 100 web sessions):

    scheme          Q      p          U      F
    PERT            0.28   3.98e-06   93.81  0.86
    SACK/DropTail   0.42   7.18e-04   93.77  0.44
    SACK/RED-ECN    0.41   4.95e-04   93.90  0.51
    Vegas           0.07   0          99.99  0.98

Shape to reproduce: PERT and Vegas fairness well above the SACK stacks;
PERT queue and drops below both SACK variants at similar utilization.
"""

from repro.experiments.report import format_table
from repro.experiments.table1_rtts import PAPER_EXPECTATION, run

from .conftest import run_once, save_rows


def test_table1_heterogeneous_rtts(benchmark):
    rows = run_once(benchmark, run, bandwidth=16e6, n_fwd=10,
                    web_sessions=6, duration=60.0, warmup=20.0, seed=1)
    save_rows("table1", rows)
    print()
    print(format_table(
        rows, ["scheme", "norm_queue", "paper_Q", "drop_rate",
               "utilization", "jain", "paper_F"],
        title="Table 1 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")
    by = {r["scheme"]: r for r in rows}

    # RTT-unfairness claims.  Vegas' near-perfect fairness (paper: 0.98)
    # reproduces directly.  PERT's fluid equilibrium equalizes *windows*
    # across RTTs, so its rate fairness lands near DropTail's at this
    # scaled point rather than clearly above it (see EXPERIMENTS.md);
    # we assert it is at least not worse.
    assert by["vegas"]["jain"] > by["sack-droptail"]["jain"] + 0.1
    assert by["vegas"]["jain"] > 0.9
    assert by["pert"]["jain"] >= by["sack-droptail"]["jain"] - 0.12
    # PERT queue and drops below DropTail's; drops in the near-zero
    # regime of router RED-ECN (both are 1e-4-scale, noise-dominated)
    assert by["pert"]["norm_queue"] < by["sack-droptail"]["norm_queue"]
    assert by["pert"]["drop_rate"] <= by["sack-droptail"]["drop_rate"]
    assert by["pert"]["drop_rate"] < 1e-3
    # comparable utilization (paper: all ~94%)
    assert by["pert"]["utilization"] > 0.85
