#!/usr/bin/env python3
"""Render benchmark artifacts as markdown tables for EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only``; reads the JSON row
dumps each benchmark saved under ``benchmarks/artifacts/`` and prints
one markdown table per experiment.
"""

from __future__ import annotations

import json
from pathlib import Path

ARTIFACTS = Path(__file__).parent / "artifacts"

COLUMNS = {
    "fig2": ["case", "long_flows", "web", "flow_level", "queue_level",
             "flow_loss_events", "queue_drop_events"],
    "fig3": ["predictor", "efficiency", "false_pos", "false_neg"],
    "fig4": ["norm_queue_bin", "pdf"],
    "fig5": ["queuing_delay_ms", "probability"],
    "fig6": ["bandwidth_mbps", "n_fwd", "scheme", "norm_queue", "drop_rate",
             "utilization", "jain"],
    "fig7": ["rtt_ms", "scheme", "norm_queue", "drop_rate", "utilization",
             "jain"],
    "fig8": ["n_fwd", "scheme", "norm_queue", "drop_rate", "utilization",
             "jain"],
    "fig9": ["web_sessions", "scheme", "norm_queue", "drop_rate",
             "utilization", "jain"],
    "table1": ["scheme", "norm_queue", "paper_Q", "drop_rate", "utilization",
               "jain", "paper_F"],
    "fig11": ["hop", "scheme", "norm_queue", "drop_rate", "utilization",
              "jain"],
    "fig12": ["scheme", "epoch", "active_cohorts", "share_error"],
    "fig12b": ["scheme", "concede_s", "reclaim_s", "drops_squeeze"],
    "robustness": ["scheme", "seeds", "norm_queue_mean", "norm_queue_std",
                   "drop_rate_mean", "utilization_mean", "jain_mean"],
    "fig13a": ["n_minus", "min_delta_s"],
    "fig13bd": ["rtt_ms", "stable", "w_star", "w_tail_min", "w_tail_max"],
    "fig13_spectral": ["rtt_ms", "rightmost_re"],
    "fig14": ["rtt_ms", "scheme", "norm_queue", "drop_rate", "utilization",
              "jain"],
    "ablation_alpha": ["alpha", "norm_queue", "drop_rate", "utilization",
                       "early_responses", "jain"],
    "ablation_beta": ["decrease", "norm_queue", "drop_rate", "utilization",
                      "jain"],
    "ablation_response_limit": ["limit", "norm_queue", "utilization",
                                "early_responses"],
}


def fmt(v) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) < 1e-3:
            return f"{v:.2e}"
        return f"{v:.3f}"
    return str(v)


def render(name: str, rows, columns) -> str:
    lines = [f"### {name}", ""]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join(["---"] * len(columns)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in columns)
                     + " |")
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    if not ARTIFACTS.exists():
        raise SystemExit("no artifacts; run the benchmark suite first")
    for name, columns in COLUMNS.items():
        path = ARTIFACTS / f"{name}.json"
        if not path.exists():
            print(f"### {name}\n\n(missing — benchmark not yet run)\n")
            continue
        rows = json.loads(path.read_text())
        print(render(name, rows, columns))


if __name__ == "__main__":
    main()
