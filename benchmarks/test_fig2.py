"""Benchmark E-F2 — Figure 2: flow-level vs queue-level loss correlation.

Paper: the high-RTT -> loss transition fraction is substantially higher
when losses are observed at the bottleneck queue than within the single
observed flow, across all six traffic cases.
"""

from repro.experiments.fig2_loss_correlation import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.experiments.section2 import TrafficCase

from .conftest import run_once, save_rows

# two representative cases (one light, one heavy) at bench scale; the
# heavier case carries the contrast (more flows -> the tagged flow
# participates in fewer of the bottleneck's loss epochs)
BENCH_CASES = [
    TrafficCase("case-light", n_fwd=12, n_rev=4, web_sessions=4),
    TrafficCase("case-heavy", n_fwd=24, n_rev=8, web_sessions=10),
]


def test_fig2_loss_correlation(benchmark):
    rows = run_once(benchmark, run, cases=BENCH_CASES, bandwidth=24e6,
                    duration=60.0, seed=2)
    save_rows("fig2", rows)
    print()
    print(format_table(rows, ["case", "long_flows", "web", "flow_level",
                              "queue_level", "flow_loss_events",
                              "queue_drop_events"],
                       title="Figure 2 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")
    assert rows, "no traffic case produced a trace"
    for row in rows:
        # queue-level correlation must dominate the flow-level view...
        assert row["queue_level"] >= row["flow_level"]
        # ...and the raw loss processes differ by an order of magnitude:
        # the single flow observes only a small slice of the congestion
        # the bottleneck actually experiences (the paper's core point)
        assert row["queue_drop_events"] > 5 * row["flow_loss_events"]
    assert any(row["queue_level"] > row["flow_level"] for row in rows)
    # queue-level correlation is strong in absolute terms
    assert all(row["queue_level"] > 0.5 for row in rows)
