"""Benchmark E-F5 — Figure 5: PERT's probabilistic response curve."""

import pytest

from repro.core.response import GentleRedCurve
from repro.experiments.fig5_response_curve import PAPER_EXPECTATION, run
from repro.experiments.report import format_table

from .conftest import run_once, save_rows


def test_fig5_response_curve(benchmark):
    rows = run_once(benchmark, run, n_points=26)
    save_rows("fig5", rows)
    print()
    print(format_table(rows, ["queuing_delay_ms", "probability"],
                       title="Figure 5 (exact reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")
    curve = GentleRedCurve()
    # the paper's anchor points
    assert curve(0.005) == 0.0
    assert curve(0.010 - 1e-12) == pytest.approx(0.05, abs=1e-6)
    assert curve(0.020) == 1.0
    probs = [r["probability"] for r in rows]
    assert all(b >= a for a, b in zip(probs, probs[1:]))
