"""Benchmark E-F3 — Figure 3: congestion-predictor comparison.

Paper: Vegas is the best classic predictor; the per-ACK smoothed signals
(moving average, srtt_0.99) achieve high efficiency with low false
positives; the instantaneous signal is aggressive but noisier.
"""

from repro.experiments.fig3_predictors import PAPER_EXPECTATION, run
from repro.experiments.report import format_table
from repro.experiments.section2 import TrafficCase

from .conftest import run_once, save_rows

BENCH_CASES = [
    TrafficCase("case-light", n_fwd=12, n_rev=4, web_sessions=4),
    TrafficCase("case-heavy", n_fwd=16, n_rev=6, web_sessions=10),
]


def test_fig3_predictor_comparison(benchmark):
    rows = run_once(benchmark, run, cases=BENCH_CASES, bandwidth=16e6,
                    duration=60.0, seed=2)
    save_rows("fig3", rows)
    print()
    print(format_table(rows, ["predictor", "efficiency", "false_pos",
                              "false_neg"],
                       title="Figure 3 (scaled reproduction)"))
    print(f"paper: {PAPER_EXPECTATION}")
    by_name = {r["predictor"]: r for r in rows}

    classics = ["card", "tri-s", "dual", "cim"]
    vegas = by_name["vegas"]["efficiency"]
    # Vegas at least matches every other classic predictor
    assert vegas >= max(by_name[c]["efficiency"] for c in classics) - 0.05

    srtt99 = by_name["srtt_0.99"]
    # the paper's signal: high efficiency, low false positives
    assert srtt99["efficiency"] >= 0.7
    assert srtt99["false_pos"] <= 0.3
    # and it does not trail the classics
    assert srtt99["efficiency"] >= vegas - 0.05
    # smoothing suppresses the raw signal's noise (Section 2.4)
    assert srtt99["false_pos"] <= by_name["instant-rtt"]["false_pos"] + 0.05
