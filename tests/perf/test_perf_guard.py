"""Perf-regression guard: the dumbbell benchmark must stay near baseline.

Compares a fresh run of the ``dumbbell.pert`` microbenchmark (exact
recorded workload) against the events/s committed in ``BENCH_sim.json``.
A drop past 30% fails the build — that margin absorbs timer noise and
scheduler jitter on an otherwise-idle machine while still catching real
hot-path regressions (which historically cost 2x, not 1.3x).

Escape hatches:

* the test skips when ``BENCH_sim.json`` is absent (fresh clones,
  pre-benchmark checkouts);
* ``REPRO_PERF_GUARD=0`` skips it explicitly — shared CI runners are too
  noisy for wall-clock assertions, so CI sets this and tracks perf via
  the ``bench-smoke`` job instead.
"""

import json
import os
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
BENCH_FILE = ROOT / "BENCH_sim.json"

_MIN_RATIO = 0.7
_ATTEMPTS = 3


def _load_baseline():
    if not BENCH_FILE.exists():
        pytest.skip("BENCH_sim.json not present; run benchmarks/perf first")
    data = json.loads(BENCH_FILE.read_text())
    entry = data["benchmarks"].get("dumbbell.pert")
    if entry is None:
        pytest.skip("no dumbbell.pert entry in BENCH_sim.json")
    return entry


def test_dumbbell_events_per_sec_within_30pct_of_baseline():
    if os.environ.get("REPRO_PERF_GUARD", "1") in ("0", "off", "false"):
        pytest.skip("disabled via REPRO_PERF_GUARD")
    entry = _load_baseline()
    baseline = entry["events_per_sec"]
    floor = _MIN_RATIO * baseline

    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))
    from benchmarks.perf import bench_dumbbell

    best = 0.0
    for _ in range(_ATTEMPTS):
        result = bench_dumbbell(schemes=("pert",), repeat=1, **entry["params"])
        best = max(best, result["pert"]["events_per_sec"])
        if best >= floor:  # early exit once we are clearly fast enough
            break
    assert best >= floor, (
        f"dumbbell.pert regressed: {best:,.0f} ev/s vs baseline "
        f"{baseline:,.0f} ev/s (floor {floor:,.0f}); if intentional, "
        f"regenerate BENCH_sim.json via `python -m benchmarks.perf`"
    )

    # the workload itself must be unchanged: same fixed-seed event count
    assert result["pert"]["events"] == entry["events"], (
        "benchmark event count drifted — behavioural change, not merely "
        "a perf delta; investigate before regenerating the baseline"
    )
