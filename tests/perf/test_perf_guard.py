"""Perf-regression guard: every tracked benchmark must stay near baseline.

Each benchmark recorded in ``BENCH_sim.json`` is re-run (exact recorded
workload) and compared against its committed rate with a **per-benchmark
noise floor**: workloads differ wildly in timer sensitivity — the pure
dispatch loop of ``engine.churn`` jitters far more than a 20-second
numpy integration — so a flat band either flakes on the noisy ones or
goes blind on the stable ones.  The floors below encode each workload's
observed spread on an otherwise-idle machine; real hot-path regressions
historically cost 2x, not 1.3x, so every floor still catches them.

Escape hatches:

* the guard skips when ``BENCH_sim.json`` is absent (fresh clones,
  pre-benchmark checkouts) or lacks the benchmark's entry;
* ``REPRO_PERF_GUARD=0`` skips explicitly — shared CI runners are too
  noisy for wall-clock assertions, so CI sets this and tracks perf via
  the ``bench-smoke`` job instead;
* a baseline written by a different engine backend (the ``engine`` key)
  or a different compiled tier (the ``compiled`` key — cext vs mypyc vs
  pure Python) skips rather than comparing apples to oranges.
"""

import json
import os
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
BENCH_FILE = ROOT / "BENCH_sim.json"

_ATTEMPTS = 3

#: benchmark -> (fraction of baseline rate a fresh best-of run must
#: reach, rate field).  Floors reflect each workload's measured noise:
#: pure-Python dispatch loops and snapshot-heavy composites jitter, and
#: absolute rates on the reference machine drift ±20% between sessions
#: even on engine-independent workloads (the fluid benchmarks never
#: touch the event engine yet have been seen 40% apart across two runs
#: minutes apart — see docs/PERFORMANCE.md on A/B methodology), so
#: every floor leaves session-to-session headroom.
NOISE_FLOORS = {
    "dumbbell.pert": (0.70, "events_per_sec"),
    "dumbbell.sack-droptail": (0.70, "events_per_sec"),
    "dumbbell.sack-red-ecn": (0.70, "events_per_sec"),
    "engine.churn": (0.60, "events_per_sec"),
    "dumbbell.warmstart": (0.55, "events_per_sec"),
    "fluid.dde": (0.55, "steps_per_sec"),
    "fluid.dde_batch": (0.55, "steps_per_sec"),
    "hybrid.dumbbell": (0.60, "events_per_sec"),
}


def _load_entry(name):
    if os.environ.get("REPRO_PERF_GUARD", "1") in ("0", "off", "false"):
        pytest.skip("disabled via REPRO_PERF_GUARD")
    if not BENCH_FILE.exists():
        pytest.skip("BENCH_sim.json not present; run benchmarks/perf first")
    data = json.loads(BENCH_FILE.read_text())
    entry = data["benchmarks"].get(name)
    if entry is None:
        pytest.skip(f"no {name} entry in BENCH_sim.json")
    baseline_engine = data.get("engine")
    if baseline_engine is not None:
        if str(ROOT / "src") not in sys.path:
            sys.path.insert(0, str(ROOT / "src"))
        from repro.sim.engine import get_engine_class

        if get_engine_class().__name__ != baseline_engine:
            pytest.skip(
                f"baseline recorded under {baseline_engine}, current "
                f"engine differs — rates are not comparable"
            )
        if "compiled" in data:
            from repro.compiled import active_tier

            current_tier = (active_tier()
                            if get_engine_class().__name__ == "CompiledSimulator"
                            else None)
            if current_tier != data["compiled"]:
                pytest.skip(
                    f"baseline recorded under compiled tier "
                    f"{data['compiled']!r}, current is {current_tier!r} — "
                    f"rates are not comparable"
                )
    return entry


def _bench_module():
    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))
    import benchmarks.perf as perf

    return perf


def _rerun(name, entry):
    """Re-run benchmark *name* once with its recorded parameters."""
    perf = _bench_module()
    params = dict(entry["params"])
    params["repeat"] = 1
    if name.startswith("dumbbell.") and name != "dumbbell.warmstart":
        scheme = name.split(".", 1)[1]
        params.pop("repeat")
        result = perf.bench_dumbbell(schemes=(scheme,), repeat=1, **params)
        return result[scheme]
    if name == "dumbbell.warmstart":
        return perf.bench_warmstart(**params)
    if name == "engine.churn":
        return perf.bench_engine(**params)
    if name == "fluid.dde":
        return perf.bench_fluid(**params)
    if name == "fluid.dde_batch":
        return perf.bench_fluid_batch(**params)
    if name == "hybrid.dumbbell":
        return perf.bench_hybrid(**params)
    raise AssertionError(f"no runner wired for benchmark {name}")


def _trajectory_note(name):
    """Recent BENCH_history.jsonl rates for *name*, for failure triage.

    A guard trip on a noisy runner looks identical to a real regression;
    the recorded trajectory (same-machine runs over time, engine and git
    sha stamped) tells them apart at a glance.  Empty string when no
    history exists.
    """
    perf = _bench_module()
    entries = [e for e in perf.read_history() if name in e.get("rates", {})]
    if not entries:
        return ""
    tail = entries[-5:]
    lines = [
        f"  {e.get('date', '?')} {e.get('git_sha') or '?'} "
        f"({e.get('engine') or '?'}{', quick' if e.get('quick') else ''}): "
        f"{e['rates'][name]:,.0f}"
        for e in tail
    ]
    first, last = tail[0]["rates"][name], tail[-1]["rates"][name]
    delta = f"{100.0 * (last - first) / first:+.1f}%" if first else "n/a"
    return (
        f"\nrecent trajectory for {name} (delta over window: {delta}):\n"
        + "\n".join(lines)
    )


@pytest.mark.parametrize("name", sorted(NOISE_FLOORS))
def test_benchmark_within_noise_floor(name):
    entry = _load_entry(name)
    min_ratio, rate_field = NOISE_FLOORS[name]
    baseline = entry[rate_field]
    floor = min_ratio * baseline

    best = 0.0
    result = None
    for _ in range(_ATTEMPTS):
        result = _rerun(name, entry)
        best = max(best, result[rate_field])
        if best >= floor:  # early exit once we are clearly fast enough
            break
    assert best >= floor, (
        f"{name} regressed: {best:,.0f} vs baseline {baseline:,.0f} "
        f"{rate_field} (floor {floor:,.0f} = {min_ratio:.0%}); if "
        f"intentional, regenerate BENCH_sim.json via "
        f"`python -m benchmarks.perf`{_trajectory_note(name)}"
    )

    # the workload itself must be unchanged: same fixed-seed work count
    for count_key in ("events", "steps"):
        if count_key in entry:
            assert result[count_key] == entry[count_key], (
                f"{name}: {count_key} drifted — behavioural change, not "
                f"merely a perf delta; investigate before regenerating "
                f"the baseline"
            )
