"""Unit tests for the DDE integrator."""

import math

import numpy as np
import pytest

from repro.fluid.dde import integrate_dde


def test_exponential_decay_matches_closed_form():
    sol = integrate_dde(lambda t, x, h: -x, [1.0], (0.0, 2.0), dt=1e-3)
    assert sol.y[-1, 0] == pytest.approx(math.exp(-2.0), rel=1e-5)


def test_harmonic_oscillator_energy_conserved():
    def rhs(t, x, h):
        return np.array([x[1], -x[0]])

    sol = integrate_dde(rhs, [1.0, 0.0], (0.0, 10.0), dt=1e-3)
    energy = sol.y[:, 0] ** 2 + sol.y[:, 1] ** 2
    assert np.allclose(energy, 1.0, atol=1e-4)


def test_constant_delay_equation_hayes():
    """x'(t) = -x(t-1) with x0=1: classic DDE with known early segments.

    On [0,1] the history is the constant 1, so x(t) = 1 - t.
    On [1,2], x'(t) = -(1-(t-1)) giving x(t) = 1 - t + (t-1)^2/2.
    """
    sol = integrate_dde(lambda t, x, h: -h(t - 1.0), [1.0], (0.0, 2.0), dt=1e-3)
    assert sol(0.5)[0] == pytest.approx(0.5, abs=1e-3)
    t = 1.5
    assert sol(t)[0] == pytest.approx(1 - t + (t - 1) ** 2 / 2, abs=1e-3)


def test_pre_history_is_constant_initial_state():
    seen = []

    def rhs(t, x, h):
        seen.append(h(t - 5.0)[0])
        return np.array([0.0])

    integrate_dde(rhs, [3.0], (0.0, 0.1), dt=0.01)
    assert all(v == 3.0 for v in seen)


def test_euler_vs_rk4_consistency():
    rhs = lambda t, x, h: -x
    fine = integrate_dde(rhs, [1.0], (0.0, 1.0), dt=1e-4, method="euler")
    rk = integrate_dde(rhs, [1.0], (0.0, 1.0), dt=1e-2, method="rk4")
    assert fine.y[-1, 0] == pytest.approx(rk.y[-1, 0], rel=1e-3)


def test_solution_interpolation_and_clamping():
    sol = integrate_dde(lambda t, x, h: np.array([1.0]), [0.0], (0.0, 1.0), dt=0.1)
    assert sol(0.55)[0] == pytest.approx(0.55, abs=1e-9)
    assert sol(-1.0)[0] == 0.0  # clamped to start
    assert sol(99.0)[0] == pytest.approx(1.0)  # clamped to end


def test_component_accessor():
    sol = integrate_dde(lambda t, x, h: np.array([1.0, 2.0]), [0.0, 0.0],
                        (0.0, 1.0), dt=0.1)
    assert sol.component(1)[-1] == pytest.approx(2.0)


def test_validation():
    rhs = lambda t, x, h: -x
    with pytest.raises(ValueError):
        integrate_dde(rhs, [1.0], (0.0, 1.0), dt=0.0)
    with pytest.raises(ValueError):
        integrate_dde(rhs, [1.0], (1.0, 0.0), dt=0.1)
    with pytest.raises(ValueError):
        integrate_dde(rhs, [1.0], (0.0, 1.0), dt=0.1, method="heun")
