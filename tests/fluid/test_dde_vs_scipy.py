"""Cross-validation of the DDE integrator against scipy references."""

import numpy as np
import pytest

scipy = pytest.importorskip("scipy")
from scipy.integrate import solve_ivp  # noqa: E402
from scipy.linalg import expm  # noqa: E402

from repro.fluid.dde import integrate_dde  # noqa: E402


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_linear_ode_matches_matrix_exponential(seed):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(3, 3))
    A -= 2.0 * np.eye(3)  # shift to keep trajectories bounded
    x0 = rng.normal(size=3)
    sol = integrate_dde(lambda t, x, h: A @ x, x0, (0.0, 2.0), dt=1e-3)
    exact = expm(A * 2.0) @ x0
    assert np.allclose(sol.y[-1], exact, rtol=1e-5, atol=1e-8)


def test_nonlinear_ode_matches_solve_ivp():
    def rhs(t, x):
        return np.array([x[1], -np.sin(x[0])])  # pendulum

    ours = integrate_dde(lambda t, x, h: rhs(t, x), [1.0, 0.0], (0.0, 10.0),
                         dt=1e-3)
    ref = solve_ivp(rhs, (0.0, 10.0), [1.0, 0.0], rtol=1e-10, atol=1e-12)
    assert np.allclose(ours.y[-1], ref.y[:, -1], atol=1e-5)


def test_dde_vs_method_of_steps_reference():
    """x'(t) = -x(t-1), x0=1: integrate segment-by-segment with scipy.

    On [k, k+1] the delayed term is the (known) previous segment, so the
    DDE reduces to a chain of ODE solves — an independent reference.
    """
    sol = integrate_dde(lambda t, x, h: -h(t - 1.0), [1.0], (0.0, 4.0),
                        dt=5e-4)

    # method of steps with dense scipy segments
    from scipy.interpolate import interp1d

    hist_t = np.array([0.0])
    hist_x = np.array([1.0])
    prev = lambda t: 1.0  # constant pre-history
    x_start = 1.0
    for k in range(4):
        seg = solve_ivp(
            lambda t, x, prev=prev: [-prev(t - 1.0)],
            (k, k + 1.0), [x_start], rtol=1e-10, atol=1e-12,
            dense_output=True,
        )
        ts = np.linspace(k, k + 1.0, 200)
        xs = seg.sol(ts)[0]
        hist_t = np.hstack([hist_t, ts[1:]])
        hist_x = np.hstack([hist_x, xs[1:]])
        interp = interp1d(hist_t, hist_x, fill_value=(1.0, xs[-1]),
                          bounds_error=False)
        prev = lambda t, interp=interp: float(interp(t))
        x_start = xs[-1]

    for t_check in (0.5, 1.5, 2.5, 3.9):
        assert sol(t_check)[0] == pytest.approx(float(interp(t_check)),
                                                abs=2e-4)
