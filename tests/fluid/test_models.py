"""Unit tests for the PERT/RED, TCP/RED and PERT/PI fluid models."""

import math

import pytest

from repro.fluid.pert_pi import PertPiFluidModel
from repro.fluid.pert_red import PertRedFluidModel
from repro.fluid.tcp_red import TcpRedFluidModel

FIG13 = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05, t_max=0.1,
             alpha=0.99, delta=1e-4)


class TestPertRed:
    def test_equilibrium_formula(self):
        m = PertRedFluidModel(rtt=0.1, **FIG13)
        w, p, tq = m.equilibrium()
        assert w == pytest.approx(0.1 * 100.0 / 5)  # RC/N
        assert p == pytest.approx(2 * 25 / (0.01 * 10000))  # 2N^2/(RC)^2
        assert tq == pytest.approx(m.t_min + p / m.l_pert)

    def test_l_pert_and_k(self):
        m = PertRedFluidModel(rtt=0.1, **FIG13)
        assert m.l_pert == pytest.approx(0.1 / 0.05)
        assert m.k_lpf == pytest.approx(math.log(0.99) / 1e-4)
        assert m.k_lpf < 0

    def test_stable_trajectory_converges_to_equilibrium(self):
        m = PertRedFluidModel(rtt=0.1, **FIG13)
        sol = m.simulate(duration=40.0, dt=2e-3)
        w_star, _, tq_star = m.equilibrium()
        assert sol.y[-1, 0] == pytest.approx(w_star, rel=0.02)
        assert sol.y[-1, 2] == pytest.approx(tq_star, rel=0.05)

    def test_unstable_at_paper_boundary(self):
        from repro.fluid.stability import trajectory_is_stable

        stable = PertRedFluidModel(rtt=0.16, **FIG13).simulate(60.0, dt=2e-3)
        unstable = PertRedFluidModel(rtt=0.171, **FIG13).simulate(60.0, dt=2e-3)
        assert trajectory_is_stable(stable)
        assert not trajectory_is_stable(unstable)

    def test_validation(self):
        with pytest.raises(ValueError):
            PertRedFluidModel(capacity=0.0)
        with pytest.raises(ValueError):
            PertRedFluidModel(alpha=1.5)
        with pytest.raises(ValueError):
            PertRedFluidModel(t_min=0.2, t_max=0.1)

    def test_clamped_variant_keeps_probability_physical(self):
        m = PertRedFluidModel(rtt=0.19, clamp=True, **FIG13)
        sol = m.simulate(duration=30.0, dt=2e-3)
        assert (sol.y[:, 0] >= 0).all()  # window never negative


class TestTcpRed:
    def test_equilibrium(self):
        m = TcpRedFluidModel(capacity=100.0, n_flows=5, rtt=0.1,
                             p_max=0.1, min_th=5.0, max_th=10.0)
        w, p, q = m.equilibrium()
        assert w == pytest.approx(2.0)
        assert q == pytest.approx(5.0 + p / m.l_red)

    def test_default_delta_is_per_packet(self):
        m = TcpRedFluidModel(capacity=200.0)
        assert m.delta == pytest.approx(1.0 / 200.0)

    def test_converges_when_stable(self):
        m = TcpRedFluidModel(capacity=100.0, n_flows=5, rtt=0.05,
                             p_max=0.1, min_th=5.0, max_th=10.0, alpha=0.9,
                             delta=0.01)
        sol = m.simulate(duration=30.0, dt=1e-3)
        w_star, _, _ = m.equilibrium()
        assert sol.y[-1, 0] == pytest.approx(w_star, rel=0.05)

    def test_pert_red_stability_edge_matches_scaled_tcp_red(self):
        """Paper Sec. 5.4: with L_PERT = L_RED * C the conditions coincide.

        Build a TCP/RED model whose curve slope equals the PERT model's
        slope divided by C; their linearized dynamics are then the same
        up to the queue/delay change of variables, so the stable case
        must be stable for both.
        """
        from repro.fluid.stability import trajectory_is_stable

        pert = PertRedFluidModel(rtt=0.1, **FIG13)
        red = TcpRedFluidModel(
            capacity=100.0, n_flows=5, rtt=0.1, p_max=0.1,
            min_th=0.05 * 100.0, max_th=0.1 * 100.0, alpha=0.99, delta=1e-4,
        )
        assert red.l_red == pytest.approx(pert.l_pert / 100.0)
        s1 = pert.simulate(40.0, dt=2e-3)
        s2 = red.simulate(40.0, dt=2e-3)
        assert trajectory_is_stable(s1) and trajectory_is_stable(s2)


class TestPertPi:
    def test_equilibrium_hits_target_delay(self):
        m = PertPiFluidModel(capacity=100.0, n_flows=5, rtt=0.1,
                             k=0.05, m=0.5, tq_ref=0.03)
        w, p, tq = m.equilibrium()
        assert tq == pytest.approx(0.03)
        assert w == pytest.approx(2.0)

    def test_integrator_drives_delay_to_reference(self):
        from repro.fluid.stability import pert_pi_gains

        k, mm = pert_pi_gains(capacity=100.0, n_minus=5, r_plus=0.12)
        m = PertPiFluidModel(capacity=100.0, n_flows=5, rtt=0.1,
                             k=k, m=mm, tq_ref=0.05)
        sol = m.simulate(duration=120.0, dt=2e-3, x0=(1.0, 0.0, 0.0))
        assert sol.y[-1, 1] == pytest.approx(0.05, abs=0.01)

    def test_probability_stays_clamped(self):
        # the derivative is gated at the [0, 1] boundaries; a fixed-step
        # integrator may undershoot by O(dt * |dp|) between samples
        m = PertPiFluidModel(capacity=100.0, n_flows=5, rtt=0.1,
                             k=50.0, m=0.01, tq_ref=0.01, clamp=True)
        sol = m.simulate(duration=20.0, dt=1e-3)
        assert (sol.y[:, 2] >= -0.05).all()
        assert (sol.y[:, 2] <= 1.05).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            PertPiFluidModel(k=0.0)
        with pytest.raises(ValueError):
            PertPiFluidModel(n_flows=0)
