"""Unit tests for the Theorem 1/2 stability conditions."""

import math

import pytest

from repro.fluid.pert_red import PertRedFluidModel
from repro.fluid.stability import (
    equilibrium,
    find_stability_boundary,
    k_lpf,
    l_pert,
    min_delta,
    omega_g,
    pert_pi_gains,
    scale_invariant_holds,
    theorem1_holds,
    trajectory_is_stable,
)

FIG13A = dict(capacity=1000.0, r_plus=0.2, p_max=0.1, t_min=0.05,
              t_max=0.1, alpha=0.99)


def test_l_pert_matches_curve_slope():
    assert l_pert(0.05, 0.005, 0.010) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        l_pert(0.05, 0.01, 0.01)


def test_k_lpf_negative_and_scales_with_delta():
    assert k_lpf(0.99, 1e-3) < 0
    assert k_lpf(0.99, 1e-3) == pytest.approx(10 * k_lpf(0.99, 1e-2))
    with pytest.raises(ValueError):
        k_lpf(1.0, 1e-3)


def test_omega_g_takes_minimum():
    # 2N/(R^2 C) = 2*1/(0.04*1000)=0.05 < 1/R=5
    assert omega_g(1, 0.2, 1000.0) == pytest.approx(0.1 * 0.05)
    # large N: 1/R binds
    assert omega_g(1000, 0.2, 1000.0) == pytest.approx(0.1 * 5.0)


def test_equilibrium_eq9():
    w, p = equilibrium(capacity=100.0, n_flows=5, rtt=0.1)
    assert w == pytest.approx(2.0)
    assert p == pytest.approx(2 * 25 / (0.01 * 10000))


def test_min_delta_monotone_decreasing_in_n():
    deltas = [min_delta(n_minus=n, **FIG13A) for n in (1, 5, 10, 20, 40)]
    assert all(a > b for a, b in zip(deltas, deltas[1:]))


def test_min_delta_reaches_point1s_at_n40():
    """Paper Figure 13(a): delta_min ~ 0.1 s as N- goes to 40."""
    d = min_delta(n_minus=40, **FIG13A)
    assert d == pytest.approx(0.1, rel=0.2)


def test_min_delta_zero_when_margin_sufficient():
    # tiny capacity: sqrt argument negative -> any delta is stable
    assert min_delta(capacity=1.0, n_minus=10, r_plus=0.1) == 0.0


def test_theorem1_consistent_with_min_delta():
    params = dict(capacity=1000.0, n_minus=10, r_plus=0.2, p_max=0.1,
                  t_min=0.05, t_max=0.1, alpha=0.99)
    d_min = min_delta(capacity=1000.0, n_minus=10, r_plus=0.2,
                      p_max=0.1, t_min=0.05, t_max=0.1, alpha=0.99)
    assert d_min > 0
    assert theorem1_holds(delta=d_min * 1.01, **params)
    assert not theorem1_holds(delta=d_min * 0.5, **params)


def test_theorem1_easier_with_more_flows():
    base = dict(capacity=1000.0, r_plus=0.2, p_max=0.1, t_min=0.05,
                t_max=0.1, alpha=0.99, delta=0.05)
    assert not theorem1_holds(n_minus=2, **base)
    assert theorem1_holds(n_minus=100, **base)


def test_scale_invariant_condition_independent_of_c():
    # only sigma = C/N and R+ matter; small sigma is stable
    assert scale_invariant_holds(sigma=2.0, r_plus=0.2, p_max=0.1,
                                 t_min=0.05, t_max=0.1, delta=0.01)
    assert not scale_invariant_holds(sigma=500.0, r_plus=0.5, p_max=0.1,
                                     t_min=0.05, t_max=0.1, delta=0.01)


def test_pert_pi_gains_formulas():
    k, m = pert_pi_gains(capacity=100.0, n_minus=5, r_plus=0.2, r_star=0.15)
    assert m == pytest.approx(2 * 5 / (0.04 * 100.0))
    denom = 0.2**3 * 100.0**2 / (2 * 5) ** 2
    assert k == pytest.approx(m * math.hypot(0.15 * m, 1.0) / denom)
    # r_star defaults to r_plus
    k2, _ = pert_pi_gains(capacity=100.0, n_minus=5, r_plus=0.2)
    assert k2 == pytest.approx(m * math.hypot(0.2 * m, 1.0) / denom)


def test_pert_pi_gains_validation():
    with pytest.raises(ValueError):
        pert_pi_gains(capacity=0.0, n_minus=1, r_plus=0.1)


def test_trajectory_classifier_on_known_cases():
    params = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05,
                  t_max=0.1, alpha=0.99, delta=1e-4)
    stable = PertRedFluidModel(rtt=0.10, **params).simulate(60.0, dt=2e-3)
    unstable = PertRedFluidModel(rtt=0.19, **params).simulate(60.0, dt=2e-3)
    assert trajectory_is_stable(stable)
    assert not trajectory_is_stable(unstable)


def test_find_stability_boundary_near_paper_value():
    """The empirical boundary sits near the paper's 171 ms observation."""
    params = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05,
                  t_max=0.1, alpha=0.99, delta=1e-4)

    def make(r):
        return PertRedFluidModel(rtt=r, **params).simulate(60.0, dt=4e-3)

    boundary = find_stability_boundary(make, lo=0.15, hi=0.18, tol=2e-3)
    assert 0.16 <= boundary <= 0.175


def test_find_stability_boundary_validates_bracket():
    params = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05,
                  t_max=0.1, alpha=0.99, delta=1e-4)

    def make(r):
        return PertRedFluidModel(rtt=r, **params).simulate(40.0, dt=4e-3)

    with pytest.raises(ValueError):
        find_stability_boundary(make, lo=0.19, hi=0.2, tol=1e-2)
