"""Tests for the generalized decrease factor β (paper Sec. 5.1 remark)."""

import pytest

from repro.fluid.pert_red import PertRedFluidModel
from repro.fluid.spectrum import pert_red_spectral_boundary

FIG13 = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05, t_max=0.1,
             alpha=0.99, delta=1e-4)


def test_equilibrium_recovers_eq9_at_half():
    m = PertRedFluidModel(rtt=0.1, beta_decrease=0.5, **FIG13)
    w, p, _ = m.equilibrium()
    assert p == pytest.approx(2.0 * 25 / (0.01 * 10000))  # 2N^2/(RC)^2


def test_equilibrium_probability_scales_inversely_with_beta():
    p_05 = PertRedFluidModel(rtt=0.1, beta_decrease=0.5, **FIG13).equilibrium()[1]
    p_035 = PertRedFluidModel(rtt=0.1, beta_decrease=0.35, **FIG13).equilibrium()[1]
    assert p_035 == pytest.approx(p_05 * 0.5 / 0.35)


def test_trajectory_converges_to_beta_equilibrium():
    m = PertRedFluidModel(rtt=0.1, beta_decrease=0.35, **FIG13)
    sol = m.simulate(duration=40.0, dt=2e-3)
    w_star, _, tq_star = m.equilibrium()
    assert sol.y[-1, 0] == pytest.approx(w_star, rel=0.02)
    assert sol.y[-1, 2] == pytest.approx(tq_star, rel=0.05)


def test_gentler_decrease_widens_stability_region():
    """PERT's 35 % decrease is *more* stable than halving — the paper's
    design choice (Sec. 3) also helps the control loop."""
    b_half = pert_red_spectral_boundary(0.1, 0.25, beta_decrease=0.5, **FIG13)
    b_pert = pert_red_spectral_boundary(0.1, 0.3, beta_decrease=0.35, **FIG13)
    assert b_pert > b_half


def test_beta_validation():
    with pytest.raises(ValueError):
        PertRedFluidModel(beta_decrease=0.0)
    with pytest.raises(ValueError):
        PertRedFluidModel(beta_decrease=1.0)
