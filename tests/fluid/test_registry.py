"""Fluid-model registry: factory round-trips and legacy-shim warnings."""

import warnings

import pytest

from repro.fluid import (
    FLUID_MODELS,
    FluidModel,
    fluid_model_params,
    make_fluid_model,
    reset_legacy_warnings,
)
from repro.fluid.pert_pi import PertPiFluidModel
from repro.fluid.pert_red import PertRedFluidModel
from repro.fluid.tcp_red import TcpRedFluidModel


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_legacy_warnings()
    yield
    reset_legacy_warnings()


@pytest.mark.parametrize("name", sorted(FLUID_MODELS))
def test_factory_roundtrip(name):
    model = make_fluid_model(name, capacity=250.0, n_flows=5, rtt=0.08)
    assert isinstance(model, FLUID_MODELS[name])
    assert isinstance(model, FluidModel)
    assert model.capacity == 250.0
    assert model.n_flows == 5
    assert model.rtt == 0.08
    # the registered surface is actually usable
    w_star = model.equilibrium()[0]
    assert w_star == pytest.approx(0.08 * 250.0 / 5)
    state = model.equilibrium_state()
    assert state[0] == pytest.approx(w_star)


def test_factory_rejects_unknown_model():
    with pytest.raises(ValueError, match="pert_red"):
        make_fluid_model("no_such_model")


def test_factory_rejects_unknown_param():
    with pytest.raises(ValueError, match="capacitee"):
        make_fluid_model("pert_red", capacitee=100.0)


def test_fluid_model_params_lists_constructor_fields():
    params = fluid_model_params("pert_red")
    assert {"capacity", "n_flows", "rtt", "t_min", "t_max"} <= set(params)


@pytest.mark.parametrize("cls", [PertRedFluidModel, TcpRedFluidModel,
                                 PertPiFluidModel])
def test_direct_construction_warns_once_per_class(cls):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cls()
        cls()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "make_fluid_model" in str(deprecations[0].message)


def test_factory_construction_does_not_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        make_fluid_model("pert_red")
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_reset_rearms_the_warning():
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        PertRedFluidModel()
    reset_legacy_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        PertRedFluidModel()
    assert [w for w in caught if issubclass(w.category, DeprecationWarning)]
