"""Unit tests for the spectral (Chebyshev) DDE stability analysis."""

import math

import numpy as np
import pytest

from repro.fluid.pert_red import PertRedFluidModel
from repro.fluid.spectrum import (
    cheb,
    pert_red_linearization,
    pert_red_rightmost_root,
    pert_red_spectral_boundary,
    rightmost_root,
)

FIG13 = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05, t_max=0.1,
             alpha=0.99, delta=1e-4)


class TestCheb:
    def test_nodes_span_and_order(self):
        D, x = cheb(8)
        assert x[0] == pytest.approx(1.0)
        assert x[-1] == pytest.approx(-1.0)
        assert all(a > b for a, b in zip(x, x[1:]))

    def test_differentiates_polynomial_exactly(self):
        D, x = cheb(10)
        f = x**3
        assert np.allclose(D @ f, 3 * x**2, atol=1e-10)

    def test_degenerate_order_zero(self):
        D, x = cheb(0)
        assert D.shape == (1, 1)


class TestRightmostRoot:
    def test_ode_case_matches_eigenvalues(self):
        A = np.array([[-2.0, 1.0], [0.0, -3.0]])
        r = rightmost_root(A, np.zeros((2, 2)), tau=0.5)
        assert r.real == pytest.approx(-2.0, abs=1e-8)

    def test_zero_delay_reduces_to_a_plus_b(self):
        A = np.array([[-1.0]])
        B = np.array([[0.5]])
        r = rightmost_root(A, B, tau=0.0)
        assert r.real == pytest.approx(-0.5)

    def test_hayes_scalar_boundary_at_pi_over_two(self):
        """x' = -k x(t-1) is stable iff k < pi/2."""
        for k, stable in ((1.0, True), (1.5, True), (1.65, False), (3.0, False)):
            r = rightmost_root(np.array([[0.0]]), np.array([[-k]]), tau=1.0)
            assert (r.real < 0) == stable, (k, r)

    def test_known_exact_root(self):
        """x' = -x(t-1): rightmost roots satisfy s = -e^{-s}.

        The dominant pair is s ~ -0.3181 +/- 1.3372j.
        """
        r = rightmost_root(np.array([[0.0]]), np.array([[-1.0]]), tau=1.0)
        assert r.real == pytest.approx(-0.3181, abs=1e-3)
        assert abs(r.imag) == pytest.approx(1.3372, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            rightmost_root(np.zeros((2, 2)), np.zeros((1, 1)), tau=1.0)
        with pytest.raises(ValueError):
            rightmost_root(np.zeros((1, 1)), np.zeros((1, 1)), tau=-1.0)


class TestPertRedSpectrum:
    def test_linearization_shapes_and_structure(self):
        model = PertRedFluidModel(rtt=0.1, **FIG13)
        A, B = pert_red_linearization(model)
        assert A.shape == (3, 3) and B.shape == (3, 3)
        # queue eq couples only to the instantaneous window
        assert A[1, 0] == pytest.approx(model.n_flows /
                                        (model.rtt * model.capacity))
        # the delayed curve term drives the window
        assert B[0, 2] < 0

    def test_agrees_with_trajectory_classification(self):
        from repro.fluid.stability import trajectory_is_stable

        for rtt in (0.10, 0.16, 0.18):
            model = PertRedFluidModel(rtt=rtt, **FIG13)
            root = pert_red_rightmost_root(model)
            traj = trajectory_is_stable(model.simulate(60.0, dt=2e-3))
            assert (root.real < 0) == traj, rtt

    def test_boundary_near_paper_observation(self):
        """Linear boundary ~166 ms; the paper observes instability at 171 ms
        (and notes Theorem 1's boundary is not exact)."""
        b = pert_red_spectral_boundary(0.1, 0.2, **FIG13)
        assert 0.155 <= b <= 0.175

    def test_self_delay_approximation_extends_boundary(self):
        """Paper Sec. 5.3: with W(t-R) ~ W(t) instability moves to ~175 ms."""
        b_full = pert_red_spectral_boundary(0.1, 0.2, **FIG13)
        b_approx = pert_red_spectral_boundary(
            0.1, 0.25, approximate_self_delay=True, **FIG13)
        assert b_approx > b_full
        assert 0.165 <= b_approx <= 0.18

    def test_boundary_bracket_validation(self):
        with pytest.raises(ValueError):
            pert_red_spectral_boundary(0.19, 0.25, **FIG13)
        with pytest.raises(ValueError):
            pert_red_spectral_boundary(0.05, 0.08, **FIG13)


def test_fluid_n_of_t_step_shifts_equilibrium():
    """Doubling N(t) at runtime halves the equilibrium window (eq. 9)."""
    model = PertRedFluidModel(rtt=0.1, n_of_t=lambda t: 5.0 if t < 60 else 10.0,
                              **{k: v for k, v in FIG13.items()
                                 if k != "n_flows"}, n_flows=5)
    sol = model.simulate(duration=120.0, dt=2e-3)
    w_before = sol(55.0)[0]
    w_after = sol(118.0)[0]
    assert w_before == pytest.approx(2.0, rel=0.05)  # RC/N = 2
    assert w_after == pytest.approx(1.0, rel=0.1)  # N doubled
