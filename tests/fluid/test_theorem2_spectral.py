"""Spectral validation of Theorem 2's PI gain schedule."""

import pytest

from repro.fluid.pert_pi import PertPiFluidModel
from repro.fluid.spectrum import pert_pi_linearization, pert_pi_rightmost_root
from repro.fluid.stability import pert_pi_gains

C, N_MINUS, R_PLUS = 100.0, 5, 0.2


def gains():
    return pert_pi_gains(capacity=C, n_minus=N_MINUS, r_plus=R_PLUS)


def test_linearization_structure():
    k, m = gains()
    model = PertPiFluidModel(capacity=C, n_flows=N_MINUS, rtt=0.1, k=k, m=m,
                             tq_ref=0.05)
    A, B = pert_pi_linearization(model)
    assert A.shape == (3, 3) and B.shape == (3, 3)
    # only the window equation carries the delay
    assert (B[1:] == 0).all()
    # PI integrator path: p responds to Tq
    assert A[2, 1] == pytest.approx(k / m)


@pytest.mark.parametrize("n_flows", [5, 10, 20])
@pytest.mark.parametrize("rtt", [0.05, 0.1, 0.2])
def test_theorem2_gains_stable_over_guaranteed_region(n_flows, rtt):
    """Theorem 2: (k, m) from eq. (21) stabilise all N >= N-, R* <= R+."""
    k, m = gains()
    model = PertPiFluidModel(capacity=C, n_flows=n_flows, rtt=rtt,
                             k=k, m=m, tq_ref=0.05)
    root = pert_pi_rightmost_root(model)
    assert root.real < 0


def test_overdriven_gain_destabilises():
    """Sanity: the schedule matters — a 10x larger K loses stability."""
    k, m = gains()
    model = PertPiFluidModel(capacity=C, n_flows=N_MINUS, rtt=R_PLUS,
                             k=k * 10.0, m=m, tq_ref=0.05)
    root = pert_pi_rightmost_root(model, m=40)
    assert root.real > 0


def test_spectral_agrees_with_trajectory():
    from repro.fluid.stability import trajectory_is_stable

    k, m = gains()
    model = PertPiFluidModel(capacity=C, n_flows=N_MINUS, rtt=0.1,
                             k=k, m=m, tq_ref=0.05, clamp=True)
    sol = model.simulate(duration=120.0, dt=2e-3)
    assert trajectory_is_stable(sol, settle_fraction=0.6)
    assert pert_pi_rightmost_root(model).real < 0
