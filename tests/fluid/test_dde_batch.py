"""Batched DDE integration: bit-identical to per-member scalar runs."""

import numpy as np
import pytest

from repro.fluid.dde import integrate_dde, integrate_dde_batch
from repro.fluid.pert_red import PertRedFluidModel, simulate_batch
from repro.fluid.stability import classify_trajectories, trajectory_is_stable


def _linear_decay_batch(rates):
    rates = np.asarray(rates, dtype=float)

    def rhs(t, x, history):
        return -rates[:, None] * x

    return rhs


def test_batch_matches_scalar_ode():
    """x' = -k x per member: batch rows equal scalar integrations exactly."""
    rates = [0.5, 1.0, 2.0]
    x0 = np.ones((3, 1))
    batch = integrate_dde_batch(
        _linear_decay_batch(rates), x0, (0.0, 2.0), dt=1e-2
    )
    for b, k in enumerate(rates):
        scalar = integrate_dde(
            lambda t, x, h, k=k: -k * x, [1.0], (0.0, 2.0), dt=1e-2
        )
        assert np.array_equal(batch.t, scalar.t)
        assert np.array_equal(batch.y[:, b, :], scalar.y)


def test_batch_delayed_term_matches_scalar():
    """x' = -x(t - tau) with per-member delays, including history lookups."""
    taus = np.array([0.3, 0.7, 1.0])

    def rhs(t, x, history):
        return -history(t - taus)

    batch = integrate_dde_batch(rhs, np.ones((3, 1)), (0.0, 4.0), dt=1e-2)
    for b, tau in enumerate(taus):
        scalar = integrate_dde(
            lambda t, x, h, tau=tau: -h(t - tau), [1.0], (0.0, 4.0), dt=1e-2
        )
        assert np.array_equal(batch.y[:, b, :], scalar.y)


def test_batch_euler_matches_scalar():
    def rhs(t, x, history):
        return -history(t - 0.5)

    batch = integrate_dde_batch(
        rhs, np.ones((2, 1)), (0.0, 2.0), dt=1e-2, method="euler"
    )
    scalar = integrate_dde(
        lambda t, x, h: -h(t - 0.5), [1.0], (0.0, 2.0), dt=1e-2, method="euler"
    )
    for b in range(2):
        assert np.array_equal(batch.y[:, b, :], scalar.y)


@pytest.mark.parametrize("clamp", [False, True])
def test_pert_red_simulate_batch_bit_identical(clamp):
    """A mixed-parameter PERT/RED sweep equals per-model simulate() runs."""
    models = [
        PertRedFluidModel(rtt=rtt, n_flows=n, clamp=clamp)
        for rtt, n in [(0.08, 5), (0.1, 5), (0.12, 8), (0.17, 5)]
    ]
    batch = simulate_batch(models, duration=5.0, dt=1e-3)
    assert batch.batch_size == len(models)
    for b, model in enumerate(models):
        scalar = model.simulate(5.0, dt=1e-3)
        assert np.array_equal(batch.t, scalar.t)
        assert np.array_equal(batch.y[:, b, :], scalar.y)


def test_batch_solution_indexing_and_components():
    models = [PertRedFluidModel(rtt=r) for r in (0.1, 0.15)]
    batch = simulate_batch(models, duration=2.0, dt=1e-3)
    assert len(batch) == 2
    sol0 = batch[0]
    assert np.array_equal(sol0.component(0), batch.component(0)[:, 0])
    # dense-output interpolation works on the sliced member
    mid = float(sol0(1.0)[0])
    assert np.isfinite(mid)


def test_classify_trajectories_matches_scalar_classifier():
    """Vectorised sweep verdicts equal trajectory_is_stable per member."""
    # straddle the Figure 13 stability boundary (~171 ms) so the batch
    # contains both stable and unstable members
    rtts = [0.10, 0.14, 0.18, 0.22]
    models = [PertRedFluidModel(rtt=r, clamp=True) for r in rtts]
    batch = simulate_batch(models, duration=40.0, dt=1e-3)
    verdicts = classify_trajectories(batch)
    assert verdicts.shape == (len(models),)
    expected = [trajectory_is_stable(batch[b]) for b in range(len(models))]
    assert list(verdicts) == expected
    assert verdicts[0] and not verdicts[-1]


def test_simulate_batch_input_validation():
    with pytest.raises(ValueError):
        simulate_batch([], duration=1.0)
    mixed = [PertRedFluidModel(clamp=True), PertRedFluidModel(clamp=False)]
    with pytest.raises(ValueError):
        simulate_batch(mixed, duration=1.0)
    with_n = PertRedFluidModel(n_of_t=lambda t: 5.0)
    with pytest.raises(ValueError):
        simulate_batch([with_n], duration=1.0)
    with pytest.raises(ValueError):
        simulate_batch(
            [PertRedFluidModel()], duration=1.0, x0=np.ones((3, 3))
        )
    with pytest.raises(ValueError):
        integrate_dde_batch(
            lambda t, x, h: x, np.ones(3), (0.0, 1.0), dt=0.1
        )
