"""Shared test fixtures: small topologies and flow helpers."""

from __future__ import annotations

import os

import pytest

from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Dumbbell
from repro.tcp.base import TcpSender, connect_flow


@pytest.fixture(autouse=True, scope="session")
def _isolated_runner_env(tmp_path_factory):
    """Keep runner state hermetic: tmp cache dir, no ambient env knobs."""
    saved = {
        k: os.environ.pop(k, None)
        for k in ("REPRO_CACHE_DIR", "REPRO_CACHE", "REPRO_WORKERS",
                  "REPRO_PROGRESS", "REPRO_MP_START",
                  "REPRO_OBS", "REPRO_TRACE", "REPRO_PROFILE",
                  "REPRO_OBS_INTERVAL", "REPRO_CHECKPOINT", "REPRO_FLEET")
    }
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    for k, v in saved.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v


@pytest.fixture
def sim():
    return Simulator(seed=42)


def make_dumbbell(
    sim: Simulator,
    n: int = 2,
    bw: float = 8e6,
    delay: float = 0.01,
    buffer_pkts: int = 50,
    qdisc_factory=None,
):
    """Small dumbbell used across TCP/integration tests."""
    factory = qdisc_factory or (lambda: DropTailQueue(capacity_pkts=buffer_pkts))
    return Dumbbell(
        sim,
        n_left=n,
        n_right=n,
        bottleneck_bw=bw,
        bottleneck_delay=delay,
        qdisc_fwd=factory,
        qdisc_rev=factory,
    )


def make_flow(sim, db, idx=0, sender_cls=TcpSender, **kwargs):
    """One flow across the dumbbell; returns (sender, sink)."""
    return connect_flow(
        sim, db.left[idx], db.right[idx], flow_id=1000 + idx,
        sender_cls=sender_cls, **kwargs,
    )


@pytest.fixture
def dumbbell(sim):
    return make_dumbbell(sim)
