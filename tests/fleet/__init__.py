"""Tests for the repro.fleet crash-safe sweep fabric."""
