"""Kill -9 tolerance: converge after worker death with zero recomputation.

The headline guarantee of :mod:`repro.fleet`: submit a sweep, SIGKILL
workers mid-run, resume — every point finished before the kill is a
content-addressed store hit, never simulated again, and half-finished
points resume from their :mod:`repro.snapshot` checkpoints.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time

import pytest

from repro.fleet import Fleet
from repro.runner.spec import JobSpec

ECHO_LOG = "tests.fleet.jobs:touch_and_echo"
SLOW_ONCE = "tests.fleet.jobs:slow_once"
CRASHY = "tests.snapshot.jobs:crashy_dumbbell"

#: generous wall-clock bound for "a worker finishes the quick jobs"
DEADLINE = 60.0


def _wait_until(predicate, deadline=DEADLINE, poll=0.05):
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached before deadline")


def _store_hashes(fleet, keys):
    """SHA-256 of each done key's store file (None when absent)."""
    out = {}
    for key in keys:
        job = fleet.queue.jobs[key]
        path = fleet.store.path_for(JobSpec(job.kind, job.params))
        out[key] = (hashlib.sha256(path.read_bytes()).hexdigest()
                    if path.exists() else None)
    return out


def _fresh_done_counts(fleet):
    """Per-key count of journaled ``done(store="fresh")`` records."""
    counts = {}
    for rec in fleet.queue.journal.read_all():
        if rec["op"] == "done" and rec["store"] == "fresh":
            counts[rec["key"]] = counts.get(rec["key"], 0) + 1
    return counts


def test_sigkill_mid_run_converges_with_zero_recompute(tmp_path):
    fleet = Fleet(tmp_path / "fleet", ttl=1.0)
    log = tmp_path / "computed.log"
    marker = tmp_path / "slow.marker"
    quick = [(ECHO_LOG, {"value": i, "log": str(log)}) for i in range(6)]
    # the hang sorts last (lowest priority): the lone worker finishes all
    # quick points first, then gets killed while stuck on this one
    receipt = fleet.submit(quick, sweep="quick", priority=1)
    fleet.submit([(SLOW_ONCE, {"value": 99, "marker": str(marker)})],
                 sweep="slow", priority=0)

    transport = fleet.transport()
    (worker_id,) = transport.start(1)
    try:
        _wait_until(lambda: (fleet.queue.sync() or True)
                    and fleet.queue.counts()["done"] == 6
                    and marker.exists())
        pid = transport.pid_of(worker_id)
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        _wait_until(lambda: not transport.alive())
        assert transport.reap() == [worker_id]
    finally:
        transport.stop()

    fleet.queue.sync()
    assert fleet.queue.counts() == {"pending": 0, "leased": 1,
                                    "done": 6, "failed": 0}
    hashes_before = _store_hashes(fleet, receipt.keys)
    assert None not in hashes_before.values()

    # resume: expired lease requeues, retry returns instantly (marker set)
    counts = fleet.resume(workers=0)
    assert counts == {"pending": 0, "leased": 0, "done": 7, "failed": 0}

    # zero recomputation, three independent witnesses:
    # 1. the journal: every key computed fresh exactly once
    assert set(_fresh_done_counts(fleet).values()) == {1}
    # 2. the store: finished points' bytes are untouched by the resume
    assert _store_hashes(fleet, receipt.keys) == hashes_before
    # 3. the jobs themselves: one log line per quick point, ever
    lines = sorted(log.read_text().split())
    assert lines == [str(i) for i in range(6)]


def test_killed_submitter_resumes_idempotently(tmp_path):
    """Re-running an interrupted submit+drain recomputes nothing."""
    fleet = Fleet(tmp_path / "fleet")
    log = tmp_path / "computed.log"
    jobs = [(ECHO_LOG, {"value": i, "log": str(log)}) for i in range(4)]
    fleet.submit(jobs, sweep="s")
    fleet.drain(workers=0)
    # "crashed after draining, re-ran the script from the top"
    fleet2 = Fleet(tmp_path / "fleet")
    receipt = fleet2.submit(jobs, sweep="s")
    assert receipt.known == 4  # journal already has every key
    fleet2.drain(workers=0)
    assert len(log.read_text().split()) == 4
    assert [e["payload"]["value"] for e in fleet2.results(receipt)] == [0, 1, 2, 3]


def test_crashed_attempt_resumes_from_checkpoint(tmp_path):
    """A mid-simulation death resumes from the periodic checkpoint and
    produces exactly the straight-through result (snapshot guarantee)."""
    params = dict(
        scheme="pert", bandwidth=4e6, duration=6.0, warmup=1.0, n_fwd=2,
        marker=str(tmp_path / "died.marker"), die_after=1,
    )
    golden = Fleet(tmp_path / "golden", checkpoint=None)
    golden_receipt = golden.submit(
        [(CRASHY, dict(params, marker=str(tmp_path / "g.marker")))])
    assert golden.drain(workers=0)["done"] == 1

    fleet = Fleet(tmp_path / "fleet", checkpoint=0.5)
    receipt = fleet.submit([(CRASHY, params)])
    counts = fleet.drain(workers=0)
    assert counts["done"] == 1
    (entry,) = fleet.results(receipt)
    assert entry["payload"]["resumed"] is True  # attempt 2 used the checkpoint
    fleet.queue.sync()
    assert fleet.queue.jobs[receipt.keys[0]].attempts == 2

    (golden_entry,) = golden.results(golden_receipt)
    for metric in ("events_processed", "mean_queue_pkts", "utilization", "jain"):
        assert entry["payload"][metric] == golden_entry["payload"][metric], metric
