"""``python -m repro.fleet`` CLI: submit/status/drain/resume round trips."""

from __future__ import annotations

import json

import pytest

from repro.fleet.__main__ import main

ECHO = "tests.runner.jobs:echo"
BOOM = "tests.runner.jobs:boom"


def _write_jobs(path, jobs):
    path.write_text(json.dumps(jobs))
    return str(path)


def test_submit_drain_status_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "fleet")
    jobs = _write_jobs(tmp_path / "jobs.json",
                       [{"kind": ECHO, "params": {"value": i}}
                        for i in range(3)])
    assert main(["submit", root, "--jobs", jobs, "--sweep", "s",
                 "--json"]) == 0
    receipt = json.loads(capsys.readouterr().out)
    assert receipt == {"sweep": "s", "jobs": 3, "submitted": 3,
                       "deduped": 0, "known": 0}

    assert main(["drain", root, "--json"]) == 0
    counts = json.loads(capsys.readouterr().out)
    assert counts == {"pending": 0, "leased": 0, "done": 3, "failed": 0}

    assert main(["status", root, "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["drained"] is True
    assert status["computed"] == {"fresh": 3, "hit": 0}
    assert status["sweeps"]["s"]["done"] == 3


def test_resume_converges_and_is_idempotent(tmp_path, capsys):
    root = str(tmp_path / "fleet")
    jobs = _write_jobs(tmp_path / "jobs.json",
                       [{"kind": ECHO, "params": {"value": 1}}])
    main(["submit", root, "--jobs", jobs])
    capsys.readouterr()
    assert main(["resume", root, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["done"] == 1
    assert main(["resume", root, "--json"]) == 0  # nothing left: still fine
    assert json.loads(capsys.readouterr().out)["done"] == 1


def test_drain_exit_code_reflects_failures(tmp_path, capsys):
    root = str(tmp_path / "fleet")
    jobs = _write_jobs(tmp_path / "jobs.json", [{"kind": BOOM, "params": {}}])
    main(["submit", root, "--jobs", jobs])
    capsys.readouterr()
    assert main(["drain", root, "--max-attempts", "2", "--json"]) == 1
    counts = json.loads(capsys.readouterr().out)
    assert counts["failed"] == 1


def test_submit_from_stdin(tmp_path, capsys, monkeypatch):
    import io
    monkeypatch.setattr("sys.stdin",
                        io.StringIO(json.dumps(
                            [{"kind": ECHO, "params": {"value": 5}}])))
    assert main(["submit", str(tmp_path / "fleet"), "--jobs", "-",
                 "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["submitted"] == 1


def test_submit_rejects_malformed_jobs(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"kind": ECHO}))  # not an array
    with pytest.raises(SystemExit, match="JSON array"):
        main(["submit", str(tmp_path / "fleet"), "--jobs", str(bad)])
    bad.write_text(json.dumps([{"params": {}}]))  # entry without a kind
    with pytest.raises(SystemExit, match="entry 0"):
        main(["submit", str(tmp_path / "fleet"), "--jobs", str(bad)])


def test_status_human_readable(tmp_path, capsys):
    root = str(tmp_path / "fleet")
    jobs = _write_jobs(tmp_path / "jobs.json",
                       [{"kind": ECHO, "params": {"value": 1}}])
    main(["submit", root, "--jobs", jobs, "--sweep", "demo"])
    main(["drain", root])
    capsys.readouterr()
    assert main(["status", root]) == 0
    out = capsys.readouterr().out
    assert "drained: True" in out
    assert "sweep demo" in out
