"""Queue state-machine invariants: leasing, expiry, replay equivalence."""

from __future__ import annotations

from repro.fleet.queue import JobQueue


def test_submit_is_idempotent_by_key(tmp_path):
    q = JobQueue(tmp_path)
    assert q.submit("k1", "kind", {"x": 1}) is True
    assert q.submit("k1", "kind", {"x": 1}) is False
    assert q.counts()["pending"] == 1


def test_lease_orders_by_priority_then_fifo(tmp_path):
    q = JobQueue(tmp_path)
    q.submit("low1", "k", {}, priority=0)
    q.submit("hi", "k", {}, priority=5)
    q.submit("low2", "k", {}, priority=0)
    order = [q.lease("w").key for _ in range(3)]
    assert order == ["hi", "low1", "low2"]


def test_no_double_lease_across_instances(tmp_path):
    """Two queue handles (two processes) can never both claim one key."""
    q1 = JobQueue(tmp_path)
    q2 = JobQueue(tmp_path)
    q1.submit("k1", "kind", {})
    job1 = q1.lease("workerA")
    assert job1 is not None and job1.worker == "workerA"
    # q2 has a stale view (pending) until its lease() syncs under the lock
    assert q2.lease("workerB") is None


def test_lease_expiry_requeues_and_releases(tmp_path):
    q = JobQueue(tmp_path)
    q.submit("k1", "kind", {})
    job = q.lease("dead-worker", ttl=10.0, now=100.0)
    assert job.attempts == 1
    assert q.requeue_expired(now=105.0) == []  # still within TTL
    assert q.requeue_expired(now=111.0) == ["k1"]
    j2 = q.lease("live-worker", now=112.0)
    assert j2 is not None and j2.worker == "live-worker" and j2.attempts == 2


def test_renew_extends_only_the_holder(tmp_path):
    q = JobQueue(tmp_path)
    q.submit("k1", "kind", {})
    q.lease("w1", ttl=10.0, now=0.0)
    assert q.renew("k1", "w1", ttl=10.0, now=8.0) is True
    assert q.jobs["k1"].expires == 18.0
    assert q.renew("k1", "intruder", ttl=10.0, now=8.0) is False
    # after expiry + re-lease, the original holder's renewals are refused
    q.requeue_expired(now=30.0)
    q.lease("w2", ttl=10.0, now=30.0)
    assert q.renew("k1", "w1", now=31.0) is False


def test_attempts_count_once_per_lease(tmp_path):
    q = JobQueue(tmp_path, max_attempts=5)
    q.submit("k1", "kind", {})
    states = []
    for _ in range(5):
        job = q.lease("w")
        assert job is not None
        states.append((job.attempts, q.fail("k1", "w", "boom")))
    assert states == [(1, "pending"), (2, "pending"), (3, "pending"),
                      (4, "pending"), (5, "failed")]
    assert q.lease("w") is None
    assert "boom" in q.jobs["k1"].error


def test_expiry_burnout_marks_failed(tmp_path):
    q = JobQueue(tmp_path, max_attempts=2)
    q.submit("k1", "kind", {})
    q.lease("w", ttl=1.0, now=0.0)
    q.requeue_expired(now=2.0)
    q.lease("w", ttl=1.0, now=2.0)
    q.requeue_expired(now=4.0)  # attempts == max_attempts: terminal
    assert q.jobs["k1"].state == "failed"
    assert "lease expired" in q.jobs["k1"].error
    assert q.drained()


def test_done_always_wins_even_from_zombies(tmp_path):
    """An expired worker's late result is accepted (deterministic jobs)."""
    q = JobQueue(tmp_path)
    q.submit("k1", "kind", {})
    q.lease("zombie", ttl=1.0, now=0.0)
    q.requeue_expired(now=5.0)
    q.lease("live", ttl=30.0, now=5.0)
    q.done("k1", "zombie", store="fresh")
    assert q.jobs["k1"].state == "done"
    # the live worker's own done is an idempotent no-op
    q.done("k1", "live", store="fresh")
    assert q.jobs["k1"].state == "done"
    assert len([r for r in q.journal.read_all() if r["op"] == "done"]) == 1


def test_replay_matches_live_state(tmp_path):
    """A fresh process reconstructs exactly the live instance's state."""
    q = JobQueue(tmp_path)
    for i in range(4):
        q.submit(f"k{i}", "kind", {"i": i}, sweep="s", priority=i % 2)
    q.lease("w1", ttl=30.0, now=0.0)
    q.lease("w2", ttl=1.0, now=0.0)
    q.requeue_expired(now=10.0)
    leased = next(k for k, j in q.jobs.items() if j.state == "leased")
    q.done(leased, "w1")
    fresh = JobQueue(tmp_path)
    assert fresh.counts() == q.counts()
    for key, job in q.jobs.items():
        other = fresh.jobs[key]
        assert (job.state, job.worker, job.attempts, job.store) == \
            (other.state, other.worker, other.attempts, other.store)
    assert fresh.sweep_keys("s") == q.sweep_keys("s")


def test_sweep_keys_preserve_submission_order(tmp_path):
    q = JobQueue(tmp_path)
    for i in range(5):
        q.submit(f"k{i}", "kind", {}, sweep="mine", priority=5 - i)
    q.submit("other", "kind", {}, sweep="theirs")
    assert q.sweep_keys("mine") == [f"k{i}" for i in range(5)]
    assert q.sweep_keys("nope") == []


def test_drained_requires_all_terminal(tmp_path):
    q = JobQueue(tmp_path)
    assert q.drained()  # empty queue is drained
    q.submit("k1", "kind", {})
    assert not q.drained()
    q.lease("w")
    assert not q.drained()
    q.done("k1", "w")
    assert q.drained()
