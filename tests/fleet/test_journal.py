"""Journal crash-safety: torn tails, replay, incremental reads."""

from __future__ import annotations

import json

import pytest

from repro.fleet.journal import JOURNAL_SCHEMA, Journal


def _submit(journal, key, **extra):
    fields = dict(key=key, kind="k", params={}, sweep="s", priority=0)
    fields.update(extra)
    with journal.locked():
        return journal.append("submit", **fields)


def test_append_requires_lock(tmp_path):
    journal = Journal(tmp_path)
    with pytest.raises(RuntimeError, match="journal lock"):
        journal.append("submit", key="a", kind="k", params={}, sweep="s",
                       priority=0)


def test_append_validates_ops_and_fields(tmp_path):
    journal = Journal(tmp_path)
    with journal.locked():
        with pytest.raises(ValueError, match="unknown journal op"):
            journal.append("explode", key="a")
        with pytest.raises(ValueError, match="missing fields"):
            journal.append("lease", key="a")


def test_roundtrip_and_incremental_read(tmp_path):
    journal = Journal(tmp_path)
    _submit(journal, "a")
    _submit(journal, "b")
    recs = journal.read_new()
    assert [r["key"] for r in recs] == ["a", "b"]
    assert all(r["v"] == JOURNAL_SCHEMA for r in recs)
    # incremental: nothing new, then exactly the one new record
    assert journal.read_new() == []
    _submit(journal, "c")
    assert [r["key"] for r in journal.read_new()] == ["c"]


def test_replay_skips_truncated_last_line(tmp_path):
    journal = Journal(tmp_path)
    _submit(journal, "a")
    _submit(journal, "b")
    # simulate a writer killed mid-append: drop the tail newline + bytes
    raw = journal.path.read_bytes()
    journal.path.write_bytes(raw[:-10])
    fresh = Journal(tmp_path)
    assert [r["key"] for r in fresh.read_new()] == ["a"]


def test_next_append_repairs_torn_tail(tmp_path):
    journal = Journal(tmp_path)
    _submit(journal, "a")
    raw = journal.path.read_bytes()
    journal.path.write_bytes(raw + b'{"v": 1, "op": "lease", "key": "a"')
    _submit(journal, "b")  # must first terminate the torn line
    fresh = Journal(tmp_path)
    keys = [r["key"] for r in fresh.read_new()]
    assert keys == ["a", "b"]  # fragment skipped, b intact on its own line
    # the file stays line-parseable end to end
    lines = journal.path.read_bytes().decode().splitlines()
    assert len(lines) == 3


def test_buffered_partial_tail_completes_later(tmp_path):
    journal = Journal(tmp_path)
    _submit(journal, "a")
    rec = json.dumps({"v": JOURNAL_SCHEMA, "op": "requeue", "key": "a",
                      "reason": "r", "ts": 0.0})
    half = len(rec) // 2
    reader = Journal(tmp_path)
    assert len(reader.read_new()) == 1
    with open(journal.path, "ab") as fh:
        fh.write(rec[:half].encode())
    assert reader.read_new() == []  # partial line buffered, not dropped
    with open(journal.path, "ab") as fh:
        fh.write((rec[half:] + "\n").encode())
    assert [r["op"] for r in reader.read_new()] == ["requeue"]


def test_rewind_and_read_all(tmp_path):
    journal = Journal(tmp_path)
    _submit(journal, "a")
    _submit(journal, "b")
    assert len(journal.read_new()) == 2
    journal.rewind()
    assert len(journal.read_new()) == 2
    assert len(journal.read_all()) == 2
    # read_all leaves the incremental position alone
    assert journal.read_new() == []


def test_unknown_schema_records_are_skipped(tmp_path):
    journal = Journal(tmp_path)
    _submit(journal, "a")
    with open(journal.path, "ab") as fh:
        fh.write(b'{"v": 999, "op": "submit", "key": "z"}\n')
    _submit(journal, "b")
    keys = [r["key"] for r in Journal(tmp_path).read_new()]
    assert keys == ["a", "b"]
