"""Fleet facade: submit dedupe, drain, results, env resolution."""

from __future__ import annotations

import json

import pytest

from repro.fleet import Fleet, resolve_fleet
from repro.fleet.worker import FleetWorker
from repro.runner.spec import JobSpec

ECHO = "tests.runner.jobs:echo"
BOOM = "tests.runner.jobs:boom"


def test_submit_drain_results_roundtrip(tmp_path):
    fleet = Fleet(tmp_path / "fleet")
    receipt = fleet.submit([(ECHO, {"value": i}) for i in range(4)],
                           sweep="s")
    assert receipt.summary() == {"sweep": "s", "jobs": 4, "submitted": 4,
                                 "deduped": 0, "known": 0}
    counts = fleet.drain(workers=0)
    assert counts == {"pending": 0, "leased": 0, "done": 4, "failed": 0}
    payloads = [e["payload"] for e in fleet.results("s")]
    assert payloads == [{"value": i} for i in range(4)]


def test_submit_dedupes_across_sweeps_via_store(tmp_path):
    fleet = Fleet(tmp_path / "fleet")
    fleet.submit([(ECHO, {"value": 1})], sweep="first")
    fleet.drain(workers=0)
    # an overlapping second sweep: the shared point never reaches a worker
    receipt = fleet.submit([(ECHO, {"value": 1}), (ECHO, {"value": 2})],
                           sweep="second")
    assert receipt.deduped == 0 and receipt.known == 1 and receipt.submitted == 1
    fleet.drain(workers=0)
    rows = fleet.results(receipt)  # receipt keys span both sweeps
    assert [r["payload"] for r in rows] == [{"value": 1}, {"value": 2}]
    status = fleet.status()
    assert status["computed"] == {"fresh": 2, "hit": 0}


def test_submit_dedupes_against_prewarmed_store(tmp_path):
    """Points already in the store are acknowledged without any worker."""
    fleet = Fleet(tmp_path / "fleet")
    fleet.store.put(JobSpec(ECHO, {"value": 7}), {"value": 7})
    receipt = fleet.submit([(ECHO, {"value": 7}), (ECHO, {"value": 8})])
    assert receipt.deduped == 1 and receipt.submitted == 1
    fleet.drain(workers=0)
    assert fleet.status()["computed"] == {"fresh": 1, "hit": 1}


def test_failed_jobs_surface_in_results(tmp_path):
    fleet = Fleet(tmp_path / "fleet", max_attempts=2)
    receipt = fleet.submit([(BOOM, {}), (ECHO, {"value": 1})], sweep="s")
    counts = fleet.drain(workers=0)
    assert counts["done"] == 1 and counts["failed"] == 1
    by_state = {e["state"]: e for e in fleet.results(receipt)}
    assert "injected failure" in by_state["failed"]["error"]
    assert by_state["done"]["payload"] == {"value": 1}


def test_worker_acks_store_hit_without_running(tmp_path):
    """A pending job whose result landed meanwhile becomes a store hit."""
    fleet = Fleet(tmp_path / "fleet")
    receipt = fleet.submit([(ECHO, {"value": 5})])
    fleet.store.put(JobSpec(ECHO, {"value": 5}), {"value": 5})
    worker = FleetWorker(fleet.root, store=fleet.store, bus=False)
    worker.run()
    fleet.queue.sync()
    assert fleet.queue.jobs[receipt.keys[0]].store == "hit"
    assert fleet.store.stats.puts == 1  # only our seeding put


def test_drain_with_local_transport(tmp_path):
    fleet = Fleet(tmp_path / "fleet", ttl=10.0)
    fleet.submit([(ECHO, {"value": i}) for i in range(8)], sweep="mp")
    counts = fleet.drain(workers=2)
    assert counts["done"] == 8 and counts["failed"] == 0
    assert fleet.status()["computed"]["fresh"] == 8


def test_bus_events_flow(tmp_path):
    fleet = Fleet(tmp_path / "fleet")
    fleet.submit([(ECHO, {"value": 1})], sweep="s")
    fleet.drain(workers=0)
    lines = (fleet.root / "events.jsonl").read_text().splitlines()
    types = [json.loads(line)["type"] for line in lines]
    for expected in ("fleet_submitted", "fleet_queue", "fleet_worker",
                     "fleet_leased", "fleet_done"):
        assert expected in types, f"missing {expected} in {types}"


def test_bus_can_be_disabled(tmp_path):
    fleet = Fleet(tmp_path / "fleet", bus=False)
    fleet.submit([(ECHO, {"value": 1})])
    fleet.drain(workers=0)
    assert not (fleet.root / "events.jsonl").exists()


def test_resolve_fleet(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_FLEET", raising=False)
    assert resolve_fleet(None) is None
    assert resolve_fleet(False) is None
    fleet = Fleet(tmp_path / "a")
    assert resolve_fleet(fleet) is fleet
    opened = resolve_fleet(str(tmp_path / "b"))
    assert isinstance(opened, Fleet)
    monkeypatch.setenv("REPRO_FLEET", str(tmp_path / "c"))
    from_env = resolve_fleet(None)
    assert isinstance(from_env, Fleet)
    assert from_env.root == tmp_path / "c"
    assert resolve_fleet(False) is None  # explicit off beats the env


def test_sweep_dumbbell_fleet_path_matches_runner(tmp_path):
    """Fleeted sweeps yield the same rows as the plain runner path."""
    from repro.experiments.sweep import sweep_dumbbell
    kwargs = dict(
        schemes=("pert",), bandwidth=4e6, duration=3.0, warmup=1.0, n_fwd=2,
    )
    points = [{"duration": 3.0}, {"duration": 4.0}]
    plain = sweep_dumbbell(points, workers=0, cache=False, fleet=False,
                           **kwargs)
    fleeted = sweep_dumbbell(points, workers=0,
                             fleet=str(tmp_path / "fleet"), **kwargs)
    assert fleeted == plain
    # a second fleeted run recomputes nothing
    fleet = Fleet(tmp_path / "fleet")
    before = fleet.status()["computed"]
    again = sweep_dumbbell(points, workers=0, fleet=fleet, **kwargs)
    assert again == plain
    assert fleet.status()["computed"] == before


def test_warm_start_and_fleet_are_exclusive(tmp_path):
    from repro.experiments.sweep import sweep_dumbbell
    with pytest.raises(ValueError, match="warm_start"):
        sweep_dumbbell([{"duration": 3.0}], schemes=("pert",),
                       warm_start=True, fleet=str(tmp_path / "fleet"),
                       bandwidth=4e6)
