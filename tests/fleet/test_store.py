"""Result store: content-addressed dedupe shared with the runner cache."""

from __future__ import annotations

from repro.fleet.store import ResultStore
from repro.runner.cache import ResultCache
from repro.runner.spec import JobSpec, content_key


def test_counters_track_traffic(tmp_path):
    store = ResultStore(tmp_path)
    spec = JobSpec("kind", {"x": 1})
    assert store.get(spec) is None
    store.put(spec, {"y": 2})
    assert store.get(spec)["payload"] == {"y": 2}
    assert store.stats.snapshot() == {"hits": 1, "misses": 1, "puts": 1}


def test_contains_probe_is_uncounted(tmp_path):
    store = ResultStore(tmp_path)
    spec = JobSpec("kind", {"x": 1})
    assert not store.contains(spec)
    store.put(spec, {})
    assert store.contains(spec)
    assert store.stats.snapshot() == {"hits": 0, "misses": 0, "puts": 1}


def test_store_interoperates_with_runner_cache(tmp_path):
    """A point cached by the runner is a store hit, and vice versa."""
    cache = ResultCache(tmp_path)
    spec = JobSpec("dumbbell", {"scheme": "pert", "duration": 5.0})
    cache.put(spec, {"utilization": 0.9})
    store = ResultStore(tmp_path)  # same directory, same keys
    assert store.contains(spec)
    assert store.get(spec)["payload"] == {"utilization": 0.9}
    spec2 = JobSpec("dumbbell", {"scheme": "vegas", "duration": 5.0})
    store.put(spec2, {"utilization": 1.0})
    assert cache.get(spec2)["payload"] == {"utilization": 1.0}


def test_keys_are_canonical_content_hashes(tmp_path):
    """Param-dict ordering must not change where a result lands."""
    a = JobSpec("kind", {"x": 1, "y": 2})
    b = JobSpec("kind", {"y": 2, "x": 1})
    assert a.cache_key == b.cache_key == content_key("kind", {"x": 1, "y": 2})
    store = ResultStore(tmp_path)
    store.put(a, {"v": 1})
    assert store.get(b)["payload"] == {"v": 1}
