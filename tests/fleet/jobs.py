"""Job functions for fleet kill-tolerance tests.

Referenced by dotted-path kind (``"tests.fleet.jobs:slow_once"``) so
worker processes spawned by :class:`repro.fleet.transport.LocalTransport`
resolve the same code as the test process.
"""

from __future__ import annotations

import os
import time


def slow_once(params: dict) -> dict:
    """Hang forever on the first attempt, succeed instantly afterwards.

    The first process to run this creates ``marker`` and sleeps well past
    the test timeout — the test SIGKILLs it mid-sleep.  The re-leased
    attempt (marker exists) returns immediately, so a resumed fleet
    converges deterministically.
    """
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(600.0)
    return {"value": params.get("value", 0), "slow": True}


def touch_and_echo(params: dict) -> dict:
    """Record which run computed this point, then echo the input.

    Appends one line to ``log`` per *computation* — the zero-recompute
    assertions count these lines against the journal's ``fresh`` records.
    """
    with open(params["log"], "a") as fh:
        fh.write(f"{params['value']}\n")
    return {"value": params["value"]}
