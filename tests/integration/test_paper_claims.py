"""Integration tests: the paper's headline claims, end to end.

Each test runs the real experiment harness at a reduced scale and checks
the *qualitative* claim the corresponding paper section makes.  These
are the same code paths the benchmarks drive at larger scale.
"""

import pytest

from repro.experiments.common import run_dumbbell
from repro.experiments.fig12_dynamics import cohort_share_error, run_dynamics
from repro.experiments.fig11_multibottleneck import run_parking_lot

RUN = dict(bandwidth=10e6, rtt=0.06, n_fwd=8, duration=30.0, warmup=12.0,
           seed=3, web_sessions=3)


@pytest.fixture(scope="module")
def results():
    return {
        s: run_dumbbell(s, **RUN)
        for s in ("pert", "sack-droptail", "sack-red-ecn", "vegas")
    }


def test_pert_queue_below_droptail(results):
    assert results["pert"].norm_queue < 0.5 * results["sack-droptail"].norm_queue


def test_pert_queue_comparable_to_red(results):
    """Paper: PERT's queue similar to (or better than) SACK/RED-ECN."""
    assert results["pert"].norm_queue <= results["sack-red-ecn"].norm_queue * 1.5


def test_pert_nearly_lossless(results):
    assert results["pert"].drop_rate <= 1e-3
    assert results["sack-droptail"].drop_rate > 5 * max(results["pert"].drop_rate,
                                                        1e-6)


def test_pert_utilization_high(results):
    assert results["pert"].utilization > 0.9


def test_pert_fairness_high(results):
    assert results["pert"].jain > 0.95


def test_vegas_unfair(results):
    """Paper: Vegas trades fairness for utilization."""
    assert results["vegas"].jain < results["pert"].jain


def test_pert_uses_no_router_support(results):
    """PERT runs over plain DropTail: no marks can have occurred."""
    assert results["pert"].mark_rate == 0.0
    assert results["sack-red-ecn"].mark_rate > 0.0


def test_pert_responds_early(results):
    assert results["pert"].early_responses > 50


def test_rtt_unfairness_reduced():
    """Table 1 claims under heterogeneous RTTs.

    Vegas' delay-based fairness reproduces strongly; PERT lands near
    DropTail on rate fairness at this scaled point (its equilibrium
    equalizes windows, not rates — see EXPERIMENTS.md) while keeping
    the queue short and losses at zero.
    """
    rtts = [0.024 * (i + 1) for i in range(5)]
    kw = dict(bandwidth=10e6, n_fwd=5, rtts=rtts, duration=40.0,
              warmup=15.0, seed=3)
    pert = run_dumbbell("pert", **kw)
    sack = run_dumbbell("sack-droptail", **kw)
    vegas = run_dumbbell("vegas", **kw)
    assert vegas.jain > sack.jain
    assert pert.jain >= sack.jain - 0.08
    assert pert.drop_rate <= sack.drop_rate
    assert pert.norm_queue < sack.norm_queue


def test_multibottleneck_pert_low_queue_every_hop():
    rows = run_parking_lot("pert", n_routers=4, cloud_size=3, link_bw=8e6,
                           duration=30.0, warmup=12.0, seed=3)
    assert len(rows) == 3
    for row in rows:
        assert row["norm_queue"] < 0.5
        assert row["drop_rate"] <= 2e-3
        assert row["utilization"] > 0.5


def test_dynamics_pert_reconverges():
    res = run_dynamics("pert", n_cohorts=3, cohort_size=3, epoch=12.0,
                       bandwidth=8e6, seed=3)
    # once all cohorts are active, shares must be near-equal
    err_full = cohort_share_error(res, epoch_index=res["n_cohorts"] - 1)
    assert err_full < 0.35
    # aggregate throughput in the full-load epoch ~ link capacity
    times = res["times"]
    full_lo = (res["n_cohorts"] - 1) * res["epoch"] + res["epoch"] / 2
    full_hi = res["n_cohorts"] * res["epoch"]
    idx = [i for i, t in enumerate(times) if full_lo < t <= full_hi]
    agg = sum(sum(res["cohort_rates_bps"][k][i] for k in range(3))
              for i in idx) / len(idx)
    assert agg > 0.8 * res["bandwidth"]


def test_pert_pi_emulation_controls_queue():
    r = run_dumbbell("pert-pi", bandwidth=10e6, rtt=0.06, n_fwd=8,
                     duration=30.0, warmup=12.0, seed=3)
    assert r.drop_rate < 0.01
    assert r.utilization > 0.85
    assert r.early_responses > 0


def test_router_pi_baseline_marks_packets():
    r = run_dumbbell("sack-pi-ecn", bandwidth=10e6, rtt=0.06, n_fwd=8,
                     duration=30.0, warmup=12.0, seed=3)
    assert r.mark_rate > 0.0
    assert r.utilization > 0.5
