"""API-surface tests: imports, __all__ integrity, version, docstrings."""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.core",
    "repro.core.config",
    "repro.core.pert",
    "repro.core.pert_owd",
    "repro.core.pert_pi",
    "repro.core.response",
    "repro.core.srtt",
    "repro.sim",
    "repro.sim.engine",
    "repro.sim.link",
    "repro.sim.monitors",
    "repro.sim.node",
    "repro.sim.packet",
    "repro.sim.queues",
    "repro.sim.topology",
    "repro.tcp",
    "repro.tcp.base",
    "repro.tcp.reno",
    "repro.tcp.sack",
    "repro.tcp.vegas",
    "repro.traffic",
    "repro.predictors",
    "repro.predictors.analysis",
    "repro.fluid",
    "repro.fluid.dde",
    "repro.fluid.stability",
    "repro.metrics",
    "repro.experiments",
    "repro.runner",
    "repro.runner.spec",
    "repro.runner.cache",
    "repro.runner.registry",
    "repro.runner.executor",
    "repro.runner.telemetry",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for sym in getattr(mod, "__all__", []):
        assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym!r}"


def test_every_subpackage_is_importable():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(info.name)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_classes_documented():
    from repro import (
        Dumbbell,
        PertPiSender,
        PertSender,
        PiQueue,
        RedQueue,
        Simulator,
        VegasSender,
    )

    for cls in (PertSender, PertPiSender, Simulator, Dumbbell, RedQueue,
                PiQueue, VegasSender):
        assert cls.__doc__
