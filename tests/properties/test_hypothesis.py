"""Property-based tests (hypothesis) on core data structures/invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.response import GentleRedCurve, PiResponse, RedCurve
from repro.core.srtt import EwmaRtt, MovingAverageRtt
from repro.metrics.fairness import jain_index
from repro.metrics.stats import histogram_pdf, percentile
from repro.predictors.analysis import TransitionCounts, coalesce_events
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, RedQueue

rtts = st.floats(min_value=1e-4, max_value=10.0, allow_nan=False)


# ----------------------------------------------------------------------
# response curves
# ----------------------------------------------------------------------
@given(
    t_min=st.floats(min_value=0.0, max_value=0.05),
    span=st.floats(min_value=1e-4, max_value=0.1),
    p_max=st.floats(min_value=1e-3, max_value=1.0),
    qs=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=40),
)
def test_gentle_curve_bounded_and_monotone(t_min, span, p_max, qs):
    curve = GentleRedCurve(t_min=t_min, t_max=t_min + span, p_max=p_max)
    values = [curve(q) for q in sorted(qs)]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


@given(
    t_min=st.floats(min_value=0.0, max_value=0.05),
    span=st.floats(min_value=1e-4, max_value=0.1),
    p_max=st.floats(min_value=1e-3, max_value=1.0),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_gentle_at_least_as_gentle_as_red(t_min, span, p_max, q):
    gentle = GentleRedCurve(t_min=t_min, t_max=t_min + span, p_max=p_max)
    red = RedCurve(t_min=t_min, t_max=t_min + span, p_max=p_max)
    assert gentle(q) <= red(q) + 1e-12


@given(qs=st.lists(st.floats(min_value=-0.1, max_value=0.1), min_size=1,
                   max_size=200))
def test_pi_response_always_clamped(qs):
    pi = PiResponse(k=5.0, m=0.1, target_delay=0.01, delta=0.01)
    for q in qs:
        p = pi.update(q)
        assert 0.0 <= p <= 1.0


# ----------------------------------------------------------------------
# smoothed signals
# ----------------------------------------------------------------------
@given(samples=st.lists(rtts, min_size=1, max_size=200),
       weight=st.floats(min_value=0.0, max_value=0.999))
def test_ewma_stays_within_sample_range(samples, weight):
    e = EwmaRtt(weight=weight)
    for s in samples:
        e.update(s)
    assert min(samples) - 1e-12 <= e.value <= max(samples) + 1e-12
    assert e.min_rtt == min(samples)
    assert e.queuing_delay >= 0.0


@given(samples=st.lists(rtts, min_size=1, max_size=100),
       window=st.integers(min_value=1, max_value=20))
def test_moving_average_matches_naive(samples, window):
    m = MovingAverageRtt(window=window)
    for s in samples:
        m.update(s)
    naive = sum(samples[-window:]) / len(samples[-window:])
    assert math.isclose(m.value, naive, rel_tol=1e-9)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
@given(xs=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                   max_size=50))
def test_jain_bounds(xs):
    j = jain_index(xs)
    if sum(xs) == 0:
        assert j == 0.0
    else:
        assert 1.0 / len(xs) - 1e-12 <= j <= 1.0 + 1e-12


@given(xs=st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                   max_size=100),
       q=st.floats(min_value=0, max_value=100))
def test_percentile_within_range(xs, q):
    p = percentile(xs, q)
    assert min(xs) - 1e-9 <= p <= max(xs) + 1e-9


@given(xs=st.lists(st.floats(min_value=-2, max_value=3), min_size=1,
                   max_size=200),
       bins=st.integers(min_value=1, max_value=30))
def test_histogram_total_mass_one(xs, bins):
    pdf = histogram_pdf(xs, bins=bins, lo=0.0, hi=1.0)
    assert math.isclose(sum(p for _, p in pdf), 1.0, rel_tol=1e-9)


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
@given(times=st.lists(st.floats(min_value=0, max_value=100), max_size=50),
       window=st.floats(min_value=0, max_value=5))
def test_coalesce_spacing_invariant(times, window):
    out = coalesce_events(times, window)
    assert all(b - a > window for a, b in zip(out, out[1:]))
    assert len(out) <= len(times)
    if times:
        assert out[0] == min(times)


# ----------------------------------------------------------------------
# queues
# ----------------------------------------------------------------------
@given(
    capacity=st.integers(min_value=1, max_value=20),
    arrivals=st.lists(st.booleans(), min_size=1, max_size=200),
)
def test_droptail_conservation_property(capacity, arrivals):
    """Random interleavings of enqueue/dequeue preserve accounting."""
    q = DropTailQueue(capacity)
    t = 0.0
    seq = 0
    for do_enqueue in arrivals:
        t += 0.001
        if do_enqueue:
            q.enqueue(Packet(1, 0, 1, seq=seq), t)
            seq += 1
        else:
            q.dequeue(t)
        assert 0 <= len(q) <= capacity
    assert q.stats.arrivals == q.stats.enqueues + q.stats.drops
    assert q.stats.enqueues == q.stats.departures + len(q)


@given(
    avgs=st.lists(st.floats(min_value=0, max_value=50), min_size=1,
                  max_size=50),
)
def test_red_probability_bounded_for_any_average(avgs):
    q = RedQueue(100, min_th=5, max_th=15, max_p=0.1, w_q=0.1,
                 rng=random.Random(0))
    for a in avgs:
        q.avg = a
        assert 0.0 <= q.mark_probability() <= 1.0


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                       max_size=100))
@settings(max_examples=50)
def test_engine_processes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.data())
@settings(max_examples=30)
def test_transition_counts_metrics_consistent(data):
    n2 = data.draw(st.integers(min_value=0, max_value=100))
    n4 = data.draw(st.integers(min_value=0, max_value=100))
    n5 = data.draw(st.integers(min_value=0, max_value=100))
    c = TransitionCounts(n2=n2, n4=n4, n5=n5)
    if n2 + n5:
        assert math.isclose(c.efficiency + c.false_positive_rate, 1.0)
    if n2 + n4:
        assert 0.0 <= c.false_negative_rate <= 1.0
