"""Hypothesis profiles for the property suites.

CI runs with ``HYPOTHESIS_PROFILE=ci``: the deadline is pinned off so
slow shared runners never turn a healthy property into a flaky timeout,
and the example budget is fixed so run time is predictable.  Local runs
keep hypothesis defaults (profile ``default``).
"""

import os

from hypothesis import settings

settings.register_profile("ci", deadline=None, max_examples=60,
                          print_blob=True)
settings.register_profile("nightly", deadline=None, max_examples=400)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
