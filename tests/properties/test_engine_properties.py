"""Hypothesis properties of the event-engine contract, on all backends.

Each property is parametrized over :class:`LegacySimulator`,
:class:`ArraySimulator` and — when the optional extension is built (see
:mod:`repro.compiled`) — :class:`CompiledSimulator` (constructed
directly, so the suite is independent of ``REPRO_ENGINE``), and one
cross-engine property runs the same randomized schedule through both
pure backends and demands identical dispatch sequences — the randomized
counterpart of the scenario-level suite in ``tests/differential``.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiled import status as _compiled_status
from repro.sim.engine import ArraySimulator, LegacySimulator

ENGINES = [LegacySimulator, ArraySimulator]
if _compiled_status().available:
    from repro.compiled.engine import CompiledSimulator

    ENGINES.append(CompiledSimulator)

#: event times including exact duplicates (ties are the interesting case)
delay_lists = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
              allow_infinity=False).map(lambda d: round(d, 3)),
    min_size=1, max_size=60,
)


class Recorder:
    """Picklable fire log: bound methods of instances survive snapshots."""

    def __init__(self):
        self.hits = []

    def hit(self, tag):
        self.hits.append(tag)


@pytest.mark.parametrize("engine", ENGINES)
@given(delays=delay_lists)
@settings(max_examples=50)
def test_same_timestamp_fifo_order(engine, delays):
    """Ties dispatch in schedule order; overall order is (time, seq)."""
    sim = engine(seed=0)
    rec = Recorder()
    for i, d in enumerate(delays):
        sim.schedule_fire(d, rec.hit, (d, i))
    sim.run()
    assert rec.hits == sorted(rec.hits)  # time asc, then insertion order
    assert len(rec.hits) == len(delays)
    assert sim.events_processed == len(delays)


@pytest.mark.parametrize("engine", ENGINES)
@given(delays=delay_lists, data=st.data())
@settings(max_examples=50)
def test_cancel_idempotent_including_unpopped(engine, delays, data):
    """Repeated cancels (before and after firing) never corrupt counts."""
    sim = engine(seed=0)
    rec = Recorder()
    events = [sim.schedule(d, rec.hit, (d, i)) for i, d in enumerate(delays)]
    doomed = data.draw(st.sets(st.integers(0, len(events) - 1)))
    for i in doomed:
        events[i].cancel()
        events[i].cancel()  # idempotent while still on the heap
    assert sim.pending() == len(events) - len(doomed)
    sim.run()
    fired = {tag[1] for tag in rec.hits}
    assert fired == set(range(len(events))) - doomed
    assert sim.events_processed == len(events) - len(doomed)
    for ev in events:
        ev.cancel()  # idempotent after run: fired or already cancelled
    assert sim.pending() == 0


@pytest.mark.parametrize("engine", ENGINES)
@given(delays=delay_lists, extra=delay_lists)
@settings(max_examples=50)
def test_schedule_during_fire_is_safe(engine, delays, extra):
    """Callbacks scheduling new events mid-run keep global time order."""
    sim = engine(seed=0)
    fired = []

    class Spawner:
        def __init__(self):
            self.budget = list(extra)

        def fire(self, tag):
            fired.append((sim.now, tag))
            if self.budget:
                d = self.budget.pop()
                sim.schedule_fire(d, self.fire, ("spawned", d))

    sp = Spawner()
    for i, d in enumerate(delays):
        sim.schedule_fire(d, sp.fire, ("root", i))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays) + (len(extra) - len(sp.budget))
    assert sim.events_processed == len(fired)


@pytest.mark.parametrize("engine", ENGINES)
@given(delays=delay_lists, split=st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=40)
def test_snapshot_roundtrip_under_random_schedule(engine, delays, split):
    """capture → restore mid-run continues exactly like the original."""
    def build():
        sim = engine(seed=7)
        rec = Recorder()
        for i, d in enumerate(delays):
            sim.schedule_fire(d, rec.hit, (d, i))
        return sim, rec

    # references: straight through, and chunked at the split point but
    # never snapshotted (run(until=...) legitimately parks the clock at
    # the horizon, so the final `now` is compared against the chunked run)
    sim_a, rec_a = build()
    sim_a.run()
    sim_r, rec_r = build()
    sim_r.run(until=split)
    sim_r.run()
    assert rec_r.hits == rec_a.hits

    # candidate: run to the split point, snapshot, restore, finish
    sim_b, rec_b = build()
    sim_b.run(until=split)
    body = pickle.dumps({"sim": sim_b, "rec": rec_b})
    root = pickle.loads(body)
    sim_c, rec_c = root["sim"], root["rec"]
    assert type(sim_c) is engine
    assert sim_c.pending() == sim_b.pending()
    sim_c.run()
    assert rec_c.hits == rec_a.hits
    assert sim_c.events_processed == sim_r.events_processed
    assert sim_c.now == sim_r.now
    assert sim_c._seq == sim_r._seq


@given(delays=delay_lists, data=st.data())
@settings(max_examples=50)
def test_engines_dispatch_identically(delays, data):
    """Same randomized schedule + cancels → identical dispatch on both."""
    doomed = data.draw(st.sets(st.integers(0, len(delays) - 1)))

    def run(engine):
        sim = engine(seed=0)
        rec = Recorder()
        events = [
            sim.schedule(d, rec.hit, (d, i)) for i, d in enumerate(delays)
        ]
        for i in doomed:
            events[i].cancel()
        sim.run()
        return rec.hits, sim.events_processed, sim.now, sim._seq

    assert run(LegacySimulator) == run(ArraySimulator)
