"""Property-based tests of the TCP substrate's end-to-end guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.tcp.base import TcpSender, connect_flow

from ..conftest import make_dumbbell


class ScriptedLossQueue(DropTailQueue):
    """Drops an arbitrary (finite) set of (seq, occurrence) pairs.

    ``drop_plan[seq] = k`` drops the first k transmissions of that data
    sequence number — covering lost originals *and* lost retransmissions.
    """

    def __init__(self, capacity_pkts, drop_plan):
        super().__init__(capacity_pkts)
        self.remaining = dict(drop_plan)

    def admit(self, pkt, now):
        if not pkt.is_ack and self.remaining.get(pkt.seq, 0) > 0:
            self.remaining[pkt.seq] -= 1
            return "drop"
        return super().admit(pkt, now)


@settings(max_examples=25, deadline=None)
@given(
    drops=st.dictionaries(
        keys=st.integers(min_value=0, max_value=39),
        values=st.integers(min_value=1, max_value=3),
        max_size=12,
    ),
    seed=st.integers(min_value=0, max_value=10),
)
def test_transfer_completes_under_any_finite_loss_pattern(drops, seed):
    """Reliability: every finite drop pattern is eventually recovered."""
    sim = Simulator(seed=seed)
    db = make_dumbbell(sim, qdisc_factory=lambda: ScriptedLossQueue(200, drops))
    sender, sink = connect_flow(sim, db.left[0], db.right[0], flow_id=1,
                                sender_cls=TcpSender)
    sender.start(npackets=40)
    sim.run(until=300.0)
    assert sender.done, f"stalled with drops={drops}"
    assert sink.rcv_next == 40
    assert sink.out_of_order == set()


@settings(max_examples=15, deadline=None)
@given(
    ack_drops=st.sets(st.integers(min_value=1, max_value=39), max_size=10),
)
def test_transfer_survives_ack_losses(ack_drops):
    """Cumulative ACKs make the transfer robust to lost ACKs."""

    class AckLossQueue(DropTailQueue):
        def __init__(self):
            super().__init__(200)
            self.todo = set(ack_drops)

        def admit(self, pkt, now):
            if pkt.is_ack and pkt.ack_seq in self.todo:
                self.todo.discard(pkt.ack_seq)
                return "drop"
            return super().admit(pkt, now)

    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=AckLossQueue)
    sender, sink = connect_flow(sim, db.left[0], db.right[0], flow_id=1)
    sender.start(npackets=40)
    sim.run(until=300.0)
    assert sender.done
    assert sink.rcv_next == 40


@settings(max_examples=10, deadline=None)
@given(npackets=st.integers(min_value=1, max_value=120),
       seed=st.integers(min_value=0, max_value=5))
def test_lossless_transfer_has_no_retransmits(npackets, seed):
    sim = Simulator(seed=seed)
    db = make_dumbbell(sim, buffer_pkts=500)
    sender, sink = connect_flow(sim, db.left[0], db.right[0], flow_id=1)
    sender.start(npackets=npackets)
    sim.run(until=120.0)
    assert sender.done
    assert sender.retransmits == 0
    assert sender.timeouts == 0
    assert sink.rcv_next == npackets
    # exactly npackets data packets crossed the link
    assert sender.pkts_sent == npackets
