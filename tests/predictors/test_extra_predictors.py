"""Tests for the Sync-TCP and TCP-BFA predictors."""

import pytest

from repro.predictors.extra import SyncTcpPredictor, TcpBfaPredictor


def feed(pred, rtts, dt=0.05, cwnd=10.0):
    state = False
    for i, r in enumerate(rtts):
        state = pred.update(i * dt, r, cwnd)
    return state


class TestSyncTcp:
    def test_rising_trend_detected(self):
        pred = SyncTcpPredictor(window=5, margin=0.001)
        rtts = [0.05 + 0.002 * i for i in range(20)]
        assert feed(pred, rtts)

    def test_flat_low_delay_not_flagged(self):
        pred = SyncTcpPredictor(window=5)
        assert not feed(pred, [0.05] * 30)

    def test_falling_trend_clears(self):
        pred = SyncTcpPredictor(window=5)
        rtts = [0.05 + 0.002 * i for i in range(15)]
        rtts += [rtts[-1] - 0.003 * i for i in range(1, 15)]
        assert not feed(pred, rtts)

    def test_noise_near_floor_ignored(self):
        pred = SyncTcpPredictor(window=5, margin=0.005)
        rtts = [0.05 + (0.0005 if i % 2 else 0.0) for i in range(40)]
        assert not feed(pred, rtts)

    def test_reset(self):
        pred = SyncTcpPredictor()
        feed(pred, [0.05 + 0.01 * i for i in range(10)])
        pred.reset()
        assert not pred._samples and pred._ewma is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SyncTcpPredictor(window=2)
        with pytest.raises(ValueError):
            SyncTcpPredictor(trend_fraction=0.0)


class TestTcpBfa:
    def test_variance_spike_detected(self):
        pred = TcpBfaPredictor(window=8, ratio=4.0)
        quiet = [0.05 + 0.0001 * (i % 2) for i in range(20)]
        noisy = [0.05, 0.12, 0.05, 0.13, 0.06, 0.12, 0.05, 0.14] * 3
        assert feed(pred, quiet + noisy)

    def test_quiet_path_not_flagged(self):
        pred = TcpBfaPredictor(window=8)
        assert not feed(pred, [0.05 + 0.0001 * (i % 3) for i in range(50)])

    def test_insufficient_history(self):
        pred = TcpBfaPredictor(window=10)
        assert not pred.update(0.0, 0.5, 10)

    def test_reset(self):
        pred = TcpBfaPredictor()
        feed(pred, [0.05] * 20)
        pred.reset()
        assert not pred._samples
        assert pred._min_var == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpBfaPredictor(window=2)
        with pytest.raises(ValueError):
            TcpBfaPredictor(ratio=1.0)


def test_extra_predictors_in_fig3_suite():
    from repro.experiments.fig3_predictors import predictor_suite

    names = {p.name for p in predictor_suite(threshold=0.065)}
    assert {"sync-tcp", "tcp-bfa"} <= names
