"""Unit tests for the congestion predictors."""

import pytest

from repro.predictors import (
    CardPredictor,
    CimPredictor,
    DualPredictor,
    EwmaRttPredictor,
    InstantRttPredictor,
    MovingAverageRttPredictor,
    TriSPredictor,
    VegasPredictor,
    run_predictor,
)


def trace(rtts, dt=0.01, cwnd=10.0):
    """Build a per-ACK trace from an RTT sequence."""
    return [(i * dt, r, cwnd) for i, r in enumerate(rtts)]


class TestInstant:
    def test_threshold_crossing(self):
        p = InstantRttPredictor(0.1)
        assert not p.update(0.0, 0.09, 10)
        assert p.update(0.01, 0.11, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstantRttPredictor(0.0)


class TestEwma:
    def test_smoothing_suppresses_spikes(self):
        p = EwmaRttPredictor(threshold=0.11, weight=0.99)
        states = [p.update(t, r, 10) for t, r, _ in
                  trace([0.1] * 50 + [0.3] + [0.1] * 50)]
        assert not any(states)  # one spike cannot move srtt_0.99

    def test_sustained_rise_detected(self):
        p = EwmaRttPredictor(threshold=0.15, weight=0.9)
        states = [p.update(t, r, 10) for t, r, _ in
                  trace([0.1] * 20 + [0.3] * 100)]
        assert states[-1]

    def test_name_reflects_weight(self):
        assert EwmaRttPredictor(0.1, weight=0.99).name == "srtt_0.99"


class TestMovingAverage:
    def test_window_mean_thresholding(self):
        p = MovingAverageRttPredictor(threshold=0.2, window=4)
        for t, r, w in trace([0.1, 0.1, 0.3, 0.3]):
            state = p.update(t, r, w)
        assert not state  # mean 0.2 not strictly above
        assert p.update(1.0, 0.35, 10)


class TestCard:
    def test_rising_delay_predicts(self):
        p = CardPredictor()
        states = [p.update(t, r, 10) for t, r, _ in
                  trace([0.1, 0.12, 0.14, 0.16], dt=0.5)]
        assert states[-1]

    def test_falling_delay_clears(self):
        p = CardPredictor()
        for t, r, _ in trace([0.1, 0.2, 0.15, 0.12, 0.1], dt=0.5):
            state = p.update(t, r, 10)
        assert not state

    def test_reset(self):
        p = CardPredictor()
        p.update(0.0, 0.1, 10)
        p.reset()
        assert p._prev_rtt is None


class TestTriS:
    def test_throughput_stall_predicts(self):
        # cwnd grows but throughput falls -> congestion
        p = TriSPredictor()
        samples = [(0.0, 0.1, 10), (0.5, 0.16, 12), (1.0, 0.2, 14)]
        state = False
        for t, r, w in samples:
            state = p.update(t, r, w)
        assert state

    def test_throughput_growth_is_fine(self):
        p = TriSPredictor()
        samples = [(0.0, 0.1, 10), (0.5, 0.1, 12), (1.0, 0.1, 14)]
        state = True
        for t, r, w in samples:
            state = p.update(t, r, w)
        assert not state


class TestDual:
    def test_above_midpoint_predicts(self):
        p = DualPredictor()
        p.update(0.0, 0.1, 10)   # min
        p.update(0.5, 0.3, 10)   # max
        assert p.update(1.0, 0.25, 10)       # above (0.1+0.3)/2
        assert not p.update(2.0, 0.15, 10)   # below midpoint


class TestVegasPredictor:
    def test_backlog_above_beta_predicts(self):
        p = VegasPredictor(beta=3.0)
        p.update(0.0, 0.1, 10)  # establishes base
        # backlog = 20 * (0.2-0.1)/0.2 = 10 > 3
        assert p.update(0.5, 0.2, 20)

    def test_no_queueing_no_prediction(self):
        p = VegasPredictor(beta=3.0)
        p.update(0.0, 0.1, 10)
        assert not p.update(0.5, 0.101, 20)


class TestCim:
    def test_short_above_long_predicts(self):
        p = CimPredictor(short=2, long=6)
        rtts = [0.1] * 6 + [0.3, 0.3]
        state = False
        for t, r, _ in trace(rtts):
            state = p.update(t, r, 10)
        assert state

    def test_insufficient_history_is_low(self):
        p = CimPredictor(short=2, long=10)
        assert not p.update(0.0, 0.5, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            CimPredictor(short=5, long=5)


def test_run_predictor_returns_series():
    out = run_predictor(InstantRttPredictor(0.1), trace([0.05, 0.2, 0.05]))
    assert [s for _, s in out] == [False, True, False]


def test_per_rtt_sampling_gates_updates():
    # DUAL samples once per RTT: rapid-fire samples within one RTT
    # cannot flip the state back and forth.
    p = DualPredictor()
    p.update(0.0, 0.1, 10)
    p.update(0.0001, 0.3, 10)  # within the same RTT window
    state_fast = p._state
    p.update(0.5, 0.3, 10)  # next RTT window
    assert p._state or not state_fast
