"""Unit tests for the Figure 1 state-machine scoring."""

import pytest

from repro.predictors.analysis import (
    TransitionCounts,
    coalesce_events,
    false_positive_samples,
    false_positive_times,
    high_to_loss_fraction,
    score_predictor,
)
from repro.predictors.threshold import InstantRttPredictor


def trace_from_states(pattern, dt=0.1, low=0.05, high=0.5):
    """Build a trace whose predictor state (threshold 0.1) is *pattern*."""
    return [(i * dt, high if s else low, 10.0) for i, s in enumerate(pattern)]


PRED = lambda: InstantRttPredictor(0.1)


class TestCoalesce:
    def test_merges_close_events(self):
        assert coalesce_events([1.0, 1.05, 1.4, 3.0], window=0.1) == [1.0, 1.4, 3.0]

    def test_unsorted_input(self):
        assert coalesce_events([3.0, 1.0], window=0.1) == [1.0, 3.0]

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            coalesce_events([1.0], window=-1.0)

    def test_empty(self):
        assert coalesce_events([], 0.1) == []


class TestScorePredictor:
    def test_high_period_with_loss_is_transition_2(self):
        # low low HIGH HIGH low ; loss during the high period
        tr = trace_from_states([0, 0, 1, 1, 0])
        counts = score_predictor(PRED(), tr, loss_times=[0.25], coalesce=0.0)
        assert (counts.n2, counts.n4, counts.n5) == (1, 0, 0)
        assert counts.efficiency == 1.0

    def test_high_period_without_loss_is_false_positive(self):
        tr = trace_from_states([0, 1, 1, 0])
        counts = score_predictor(PRED(), tr, loss_times=[], coalesce=0.0)
        assert (counts.n2, counts.n4, counts.n5) == (0, 0, 1)
        assert counts.false_positive_rate == 1.0

    def test_loss_in_low_state_is_false_negative(self):
        tr = trace_from_states([0, 0, 0, 0])
        counts = score_predictor(PRED(), tr, loss_times=[0.15], coalesce=0.0)
        assert (counts.n2, counts.n4, counts.n5) == (0, 1, 0)
        assert counts.false_negative_rate == 1.0

    def test_mixed_periods(self):
        #  A A B B A B B A, losses at 0.25 (first B period) only
        tr = trace_from_states([0, 0, 1, 1, 0, 1, 1, 0])
        counts = score_predictor(PRED(), tr, loss_times=[0.25], coalesce=0.0)
        assert (counts.n2, counts.n4, counts.n5) == (1, 0, 1)
        assert counts.efficiency == pytest.approx(0.5)

    def test_trailing_high_period_counted(self):
        tr = trace_from_states([0, 1, 1])
        counts = score_predictor(PRED(), tr, loss_times=[], coalesce=0.0)
        assert counts.n5 == 1

    def test_trailing_loss_after_samples(self):
        tr = trace_from_states([0, 1])
        counts = score_predictor(PRED(), tr, loss_times=[5.0], coalesce=0.0)
        assert counts.n2 == 1

    def test_multiple_separated_losses_in_one_period_each_count(self):
        # per-event granularity: one long high period with two separated
        # loss events — the Fig. 1 machine visits C twice
        tr = trace_from_states([0, 1, 1, 1, 1, 1, 0])
        counts = score_predictor(PRED(), tr, loss_times=[0.2, 0.45],
                                 coalesce=0.1, per_event=True)
        assert counts.n2 == 2
        assert counts.n5 == 0
        # period granularity (default): the same period scores once
        counts = score_predictor(PRED(), tr, loss_times=[0.2, 0.45],
                                 coalesce=0.1)
        assert counts.n2 == 1

    def test_coalescing_merges_loss_bursts(self):
        tr = trace_from_states([0, 1, 1, 0])
        counts = score_predictor(PRED(), tr, loss_times=[0.2, 0.21, 0.22],
                                 coalesce=0.05)
        assert counts.n2 == 1  # one coalesced event, one transition

    def test_empty_trace(self):
        counts = score_predictor(PRED(), [], loss_times=[1.0])
        assert counts.n4 == 1

    def test_metrics_on_zero_counts(self):
        c = TransitionCounts()
        assert c.efficiency == 0.0
        assert c.false_positive_rate == 0.0
        assert c.false_negative_rate == 0.0


def test_high_to_loss_fraction_equiv_to_efficiency():
    tr = trace_from_states([0, 1, 1, 0, 1, 0])
    f = high_to_loss_fraction(PRED(), tr, [0.15], coalesce=0.0)
    c = score_predictor(PRED(), tr, [0.15], coalesce=0.0)
    assert f == c.efficiency


def test_false_positive_times_returns_period_ends():
    tr = trace_from_states([0, 1, 1, 0, 1, 1, 0])
    # loss only in the second high period
    fps = false_positive_times(PRED(), tr, [0.45], coalesce=0.0)
    assert fps == [pytest.approx(0.3)]


def test_false_positive_samples_excludes_near_losses():
    tr = trace_from_states([1, 1, 1, 1])
    fps = false_positive_samples(PRED(), tr, loss_times=[0.15], horizon=0.06)
    # samples at 0.1 and 0.2 fall within the horizon of the loss at 0.15
    assert pytest.approx(0.0) in fps
    assert pytest.approx(0.3) in fps
    assert len(fps) == 2
