"""Doc-coverage lint: public APIs of the tooling packages stay documented.

Walks every module under ``repro.runner``, ``repro.snapshot``,
``repro.obs``, ``repro.serve``, ``repro.validate``, ``repro.hybrid``,
``repro.fleet`` and ``repro.compiled`` and fails when a public symbol —
module, module-level function/class named by ``__all__`` (or all
non-underscore names defined in the module), or a public method/property
defined on such a class — has no docstring.  This backs the
documentation contract in README.md: the subsystem docs can link to the
API surface and trust that every entry point explains itself.

Two document-drift guards ride along: the README documentation index
must link every hand-written file under ``docs/``, and every
``REPRO_*`` environment knob read anywhere under ``src/`` must have a
row in ``docs/ENVIRONMENT.md`` (the authoritative knob table).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

PACKAGES = ["repro.runner", "repro.snapshot", "repro.obs", "repro.serve",
            "repro.validate", "repro.hybrid", "repro.fleet",
            "repro.compiled"]

ROOT = Path(__file__).resolve().parents[1]


def _iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=f"{pkg_name}."):
            yield importlib.import_module(info.name)


def _public_symbols(module):
    """(name, object) pairs for the module's own public callables/classes."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        yield name, obj


def _class_members(cls):
    """Public methods/properties defined (not inherited) on *cls*."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            yield name, member.__func__
        elif inspect.isfunction(member):
            yield name, member


def _missing_docstrings():
    missing = []
    for module in _iter_modules():
        if not (module.__doc__ or "").strip():
            missing.append(module.__name__)
        for name, obj in _public_symbols(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for mname, fn in _class_members(obj):
                    if not (getattr(fn, "__doc__", None) or "").strip():
                        missing.append(f"{module.__name__}.{name}.{mname}")
    return missing


def test_public_api_has_docstrings():
    missing = _missing_docstrings()
    assert not missing, (
        f"{len(missing)} public symbols lack docstrings:\n  "
        + "\n  ".join(sorted(missing))
    )


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_packages_importable(pkg_name):
    """The audited packages import cleanly on their own."""
    assert importlib.import_module(pkg_name) is not None


#: hand-written docs that must stay linked from the README index
#: (generated files — RESULTS.md — are linked but not required here)
_INDEXED_DOCS = ("ARCHITECTURE.md", "PERFORMANCE.md", "ENVIRONMENT.md",
                 "OBSERVABILITY.md", "VALIDATION.md")


def test_readme_indexes_docs():
    """Every hand-written docs/ file has a link in the README index."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    missing = [name for name in _INDEXED_DOCS
               if f"docs/{name}" not in readme]
    assert not missing, (
        f"docs not linked from the README documentation index: {missing}"
    )
    for name in _INDEXED_DOCS:
        assert (ROOT / "docs" / name).is_file(), f"docs/{name} is missing"


#: knobs that gate pytest tiers only — documented with their suites and
#: in ENVIRONMENT.md's closing note, but not read under src/
_TEST_ONLY_KNOBS = {"REPRO_PERF_GUARD", "REPRO_DIFF_FULL", "REPRO_QUICK"}


def test_environment_doc_covers_every_knob():
    """docs/ENVIRONMENT.md has a row for every REPRO_* knob in src/.

    The grep is deliberately broad (any ``REPRO_<NAME>`` token in the
    sources, docstrings included) so a newly introduced knob cannot
    ship undocumented — the failure names it.
    """
    pattern = re.compile(r"REPRO_[A-Z][A-Z0-9_]*")
    knobs = set()
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        knobs.update(pattern.findall(path.read_text(encoding="utf-8")))
    knobs.update(_TEST_ONLY_KNOBS)
    doc = (ROOT / "docs" / "ENVIRONMENT.md").read_text(encoding="utf-8")
    documented = set(pattern.findall(doc))
    missing = sorted(k for k in knobs if k not in documented)
    assert not missing, (
        f"knobs read in src/ but absent from docs/ENVIRONMENT.md: {missing}"
    )


def test_performance_doc_matches_bench_schema():
    """docs/PERFORMANCE.md names the current BENCH schema strings.

    A schema bump in benchmarks/perf without a matching doc update is
    exactly the drift this lint exists to catch.
    """
    import sys

    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))
    import benchmarks.perf as perf

    doc = (ROOT / "docs" / "PERFORMANCE.md").read_text(encoding="utf-8")
    assert perf.SCHEMA in doc, (
        f"docs/PERFORMANCE.md does not mention the current BENCH schema "
        f"{perf.SCHEMA!r}; update its schema reference section"
    )
    assert perf.HISTORY_SCHEMA in doc, (
        f"docs/PERFORMANCE.md does not mention the current history schema "
        f"{perf.HISTORY_SCHEMA!r}; update its schema reference section"
    )
