"""Doc-coverage lint: public APIs of the tooling packages stay documented.

Walks every module under ``repro.runner``, ``repro.snapshot``,
``repro.obs``, ``repro.serve``, ``repro.validate``, ``repro.hybrid``
and ``repro.fleet`` and fails when a public symbol —
module, module-level function/class named by ``__all__`` (or all
non-underscore names defined in the module), or a public method/property
defined on such a class — has no docstring.  This backs the
documentation contract in README.md: the subsystem docs can link to the
API surface and trust that every entry point explains itself.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

PACKAGES = ["repro.runner", "repro.snapshot", "repro.obs", "repro.serve",
            "repro.validate", "repro.hybrid", "repro.fleet"]


def _iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=f"{pkg_name}."):
            yield importlib.import_module(info.name)


def _public_symbols(module):
    """(name, object) pairs for the module's own public callables/classes."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        yield name, obj


def _class_members(cls):
    """Public methods/properties defined (not inherited) on *cls*."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            yield name, member.__func__
        elif inspect.isfunction(member):
            yield name, member


def _missing_docstrings():
    missing = []
    for module in _iter_modules():
        if not (module.__doc__ or "").strip():
            missing.append(module.__name__)
        for name, obj in _public_symbols(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for mname, fn in _class_members(obj):
                    if not (getattr(fn, "__doc__", None) or "").strip():
                        missing.append(f"{module.__name__}.{name}.{mname}")
    return missing


def test_public_api_has_docstrings():
    missing = _missing_docstrings()
    assert not missing, (
        f"{len(missing)} public symbols lack docstrings:\n  "
        + "\n  ".join(sorted(missing))
    )


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_packages_importable(pkg_name):
    """The audited packages import cleanly on their own."""
    assert importlib.import_module(pkg_name) is not None
