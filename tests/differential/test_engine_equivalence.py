"""Differential testing: all engine backends must agree bit for bit.

Every sender scheme in the registry — together spanning all four queue
disciplines (droptail, RED, PI, REM) — runs through the legacy
reference engine, the pure-Python array engine, and (when the optional
extension is built — see :mod:`repro.compiled`) the compiled engine.
The comparison covers three layers:

* the packet-event stream (every enqueue/drop/mark/sample trace record,
  with timestamps, flow ids, sequence numbers and queue lengths),
* the steady-state figure metrics (goodputs, drop/mark rates,
  utilization, Jain index, mean queue),
* snapshot round-trips across engines (capture under one backend,
  restore under the other, continue, same result).

Tier selection mirrors the validate suite: the quick tier (default, CI)
runs one scheme per queue discipline on a small workload; set
``REPRO_DIFF_FULL=1`` for the nightly full tier covering every scheme
at the benchmark workload size.
"""

import os

import pytest

from repro.compiled import status as compiled_status
from repro.experiments.common import (
    _dumbbell_result,
    _DumbbellState,
    _measure_dumbbell,
    run_dumbbell,
    warm_dumbbell_bytes,
)
from repro.obs import Collector
from repro.sim.engine import ArraySimulator, LegacySimulator, get_engine_class
from repro.snapshot import restore_bytes

FULL = os.environ.get("REPRO_DIFF_FULL", "") not in ("", "0")

#: is a compiled-engine artifact importable in this checkout?
COMPILED_AVAILABLE = compiled_status().available

#: the engines under differential comparison; "array" is pinned to pure
#: Python via REPRO_COMPILED=0 so the compiled engine never hides it
FAST_ENGINES = ("array", "compiled") if COMPILED_AVAILABLE else ("array",)

#: scheme -> bottleneck queue discipline it exercises
SCHEME_DISCIPLINE = {
    "sack-droptail": "droptail",
    "newreno-droptail": "droptail",
    "vegas": "droptail",
    "pert": "droptail",
    "pert-pi": "droptail",
    "pert-owd": "droptail",
    "sack-red-ecn": "red",
    "sack-pi-ecn": "pi",
    "pert-rem": "rem",
}

#: quick tier: one representative scheme per discipline, plus the
#: paper's headline scheme (PERT) — the full tier runs everything
QUICK_SCHEMES = ("pert", "sack-droptail", "sack-red-ecn", "sack-pi-ecn",
                 "pert-rem")
SCHEMES = tuple(SCHEME_DISCIPLINE) if FULL else QUICK_SCHEMES

QUICK_KW = dict(bandwidth=3e6, rtt=0.04, n_fwd=3, duration=2.5, warmup=1.0,
                seed=3)
FULL_KW = dict(bandwidth=8e6, rtt=0.05, n_fwd=8, duration=6.0, warmup=2.0,
               seed=2)
KW = FULL_KW if FULL else QUICK_KW


def _set_engine_env(monkeypatch, engine):
    """Pin both engine knobs so *engine* means exactly one backend."""
    if engine == "array":
        # pure array: the compiled engine must not transparently serve it
        monkeypatch.setenv("REPRO_ENGINE", "array")
        monkeypatch.setenv("REPRO_COMPILED", "0")
    else:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        monkeypatch.delenv("REPRO_COMPILED", raising=False)


def _run_with_engine(engine, scheme, monkeypatch, trace=True, **overrides):
    """One dumbbell run under *engine* with a full packet-event trace."""
    _set_engine_env(monkeypatch, engine)
    collector = Collector(trace=trace) if trace else False
    kw = dict(KW)
    kw.update(overrides)
    result = run_dumbbell(scheme, collector=collector, keep_refs=True, **kw)
    sim = result.extras["sim"]
    assert type(sim) is get_engine_class(engine)
    return result, (collector.records if trace else None)


def _metric_tuple(result):
    return (
        result.events_processed,
        result.mean_queue_pkts,
        result.drop_rate,
        result.mark_rate,
        result.utilization,
        result.jain,
        tuple(result.flow_goodputs_bps),
        result.early_responses,
        result.timeouts,
    )


def _queue_stat_tuple(result):
    stats = result.extras["dumbbell"].bottleneck_queue.stats
    return (stats.arrivals, stats.enqueues, stats.drops, stats.forced_drops,
            stats.early_drops, stats.marks, stats.departures, stats.bytes_in,
            stats.bytes_out)


@pytest.mark.parametrize("engine", FAST_ENGINES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_engines_agree(scheme, engine, monkeypatch):
    """Event stream, queue stats and figure metrics match across engines."""
    legacy, legacy_records = _run_with_engine("legacy", scheme, monkeypatch)
    fast, fast_records = _run_with_engine(engine, scheme, monkeypatch)

    assert _metric_tuple(legacy) == _metric_tuple(fast)
    assert _queue_stat_tuple(legacy) == _queue_stat_tuple(fast)

    # full packet-event stream: enqueues, drops, marks and periodic
    # samples, in order, with identical timestamps and queue lengths
    assert len(legacy_records) == len(fast_records)
    for i, (a, b) in enumerate(zip(legacy_records, fast_records)):
        assert a == b, f"{scheme}: trace record {i} diverged: {a} vs {b}"

    # drop/mark subsequences called out explicitly (the signals AQM
    # correctness hangs off) — redundant with the full diff above, but
    # a much sharper failure message when something drifts
    for kind in ("drop", "mark"):
        seq_a = [r for r in legacy_records if r["type"] == kind]
        seq_b = [r for r in fast_records if r["type"] == kind]
        assert seq_a == seq_b


@pytest.mark.parametrize("scheme", ("pert", "sack-red-ecn"))
def test_tracing_does_not_perturb(scheme, monkeypatch):
    """A trace collector is passive: metrics match a collector-less run."""
    traced, _ = _run_with_engine("array", scheme, monkeypatch, trace=True)
    bare, _ = _run_with_engine("array", scheme, monkeypatch, trace=False)
    assert _metric_tuple(traced) == _metric_tuple(bare)


_SNAPSHOT_PAIRS = [("legacy", "array"), ("array", "legacy")]
if COMPILED_AVAILABLE:
    _SNAPSHOT_PAIRS += [
        ("compiled", "legacy"),
        ("legacy", "compiled"),
        ("compiled", "array"),
        ("array", "compiled"),
    ]


@pytest.mark.parametrize("capture_engine,restore_engine", _SNAPSHOT_PAIRS)
def test_cross_engine_snapshot_roundtrip(capture_engine, restore_engine,
                                         monkeypatch):
    """Warm under one engine, restore under the other, finish identically."""
    kw = dict(KW)
    duration = kw.pop("duration")

    _set_engine_env(monkeypatch, capture_engine)
    body = warm_dumbbell_bytes("pert", **kw)

    # continue the run under the *other* engine
    _set_engine_env(monkeypatch, restore_engine)
    sim, state = restore_bytes(body, engine=restore_engine)
    assert type(sim) is get_engine_class(restore_engine)
    assert isinstance(state, _DumbbellState)
    state.params = dict(state.params, duration=duration)
    crossed = _dumbbell_result_after_measure(state)

    # reference: the same workload cold, natively under restore_engine
    native, _ = _run_with_engine(restore_engine, "pert", monkeypatch,
                                 trace=False)
    assert _metric_tuple(crossed) == _metric_tuple(native)


def _dumbbell_result_after_measure(state):
    _measure_dumbbell(state)
    return _dumbbell_result(state)


def test_engine_selection_knob(monkeypatch):
    """REPRO_ENGINE aliases resolve as documented; unknowns fail loudly."""
    from repro.sim.engine import SimulationError, Simulator

    # REPRO_COMPILED=0 pins pure Python, so the alias table is exact
    # regardless of whether an extension is built in this checkout
    monkeypatch.setenv("REPRO_COMPILED", "0")
    for name, cls in [("legacy", LegacySimulator), ("v1", LegacySimulator),
                      ("array", ArraySimulator), ("v2", ArraySimulator),
                      ("", ArraySimulator)]:
        monkeypatch.setenv("REPRO_ENGINE", name)
        assert get_engine_class() is cls
        assert type(Simulator(seed=0)) is cls
    # requiring the compiled engine while REPRO_COMPILED=0 disables it
    # must fail loudly, not silently hand back pure Python
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    with pytest.raises(SimulationError):
        get_engine_class()
    monkeypatch.setenv("REPRO_ENGINE", "simd")
    with pytest.raises(SimulationError):
        get_engine_class()


@pytest.mark.skipif(not COMPILED_AVAILABLE, reason="compiled engine not built")
def test_engine_selection_knob_compiled(monkeypatch):
    """With an extension built, the array family is served compiled."""
    from repro.compiled import engine_class
    from repro.sim.engine import Simulator

    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    compiled_cls = engine_class()
    assert compiled_cls is not None
    assert issubclass(compiled_cls, ArraySimulator)
    for name in ("", "array", "v2", "compiled", "cext"):
        monkeypatch.setenv("REPRO_ENGINE", name)
        assert get_engine_class() is compiled_cls
    monkeypatch.setenv("REPRO_ENGINE", "")
    assert type(Simulator(seed=0)) is compiled_cls
    # legacy stays pure no matter what
    monkeypatch.setenv("REPRO_ENGINE", "legacy")
    assert get_engine_class() is LegacySimulator
