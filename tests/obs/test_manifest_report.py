"""End-to-end: runner sweep -> manifests/traces on disk -> report CLI."""

import json
import os

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifests,
    load_manifests_with_warnings,
    write_manifest,
)
from repro.obs.report import generate_report, scheme_summary
from repro.obs.trace import read_trace
from repro.runner import run_jobs
from repro.runner.cache import ResultCache
from repro.runner.spec import dumbbell_spec

_SPEC_KW = dict(bandwidth=4e6, duration=5.0, warmup=2.0, n_fwd=3)


def _sweep(tmp_path, env, schemes=("pert",), workers=0):
    cache = ResultCache(tmp_path)
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update(env)
    try:
        specs = [dumbbell_spec(scheme=s, seed=1, **_SPEC_KW) for s in schemes]
        results = run_jobs(specs, workers=workers, cache=cache)
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    return cache, specs, results


def test_manifest_written_next_to_cache_entry(tmp_path):
    cache, specs, results = _sweep(tmp_path, {"REPRO_OBS": "1"})
    assert results[0].ok
    mpath = cache.manifest_path_for(specs[0])
    assert mpath.exists()
    assert mpath.parent == cache.path_for(specs[0]).parent
    manifest = json.loads(mpath.read_text())
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["key"] == specs[0].cache_key
    assert manifest["kind"] == "dumbbell"
    assert manifest["scheme"] == "pert" and manifest["seed"] == 1
    assert manifest["events"] == results[0].value["events_processed"]
    assert manifest["wall_time"] > 0
    assert manifest["attempts"] == 1
    assert set(manifest["phases"]) == {"setup", "warmup", "measure"}
    assert manifest["peak_rss_kb"] > 0
    assert manifest["result"]["drop_rate"] == results[0].value["drop_rate"]
    # --obs populated the metrics snapshot
    assert "queue.bottleneck.fwd.drops" in manifest["metrics"]


def test_manifest_written_even_without_obs_flags(tmp_path):
    cache, specs, results = _sweep(tmp_path, {})
    manifest = json.loads(cache.manifest_path_for(specs[0]).read_text())
    assert "metrics" not in manifest  # phases/RSS only
    assert set(manifest["phases"]) == {"setup", "warmup", "measure"}


def test_trace_file_roundtrips_and_is_linked(tmp_path):
    cache, specs, results = _sweep(tmp_path, {"REPRO_TRACE": "1"})
    manifest = json.loads(cache.manifest_path_for(specs[0]).read_text())
    tpath = cache.trace_path_for(specs[0])
    assert manifest["trace_file"] == tpath.name
    records = read_trace(tpath)  # validates every record
    assert records
    assert {"enqueue", "queue_sample"} <= {r["type"] for r in records}
    assert records == sorted(records, key=lambda r: r["t"])


def test_obs_and_plain_runs_share_cache_entries(tmp_path):
    cache, specs, first = _sweep(tmp_path, {"REPRO_OBS": "1"})
    cache2, _, second = _sweep(tmp_path, {})
    assert not first[0].cached and second[0].cached
    assert second[0].value == first[0].value


def test_parallel_workers_also_write_manifests(tmp_path):
    cache, specs, results = _sweep(
        tmp_path, {"REPRO_TRACE": "1"}, schemes=("pert", "sack-droptail"),
        workers=2,
    )
    assert all(r.ok for r in results)
    for spec in specs:
        assert cache.manifest_path_for(spec).exists()
        assert cache.trace_path_for(spec).exists()


def test_generate_report_on_real_sweep(tmp_path):
    _sweep(tmp_path, {"REPRO_TRACE": "1", "REPRO_PROFILE": "1"},
           schemes=("pert", "sack-droptail"))
    report = generate_report(tmp_path)
    assert "jobs          : 2" in report
    assert "== events/s by scheme ==" in report
    assert "pert" in report and "sack-droptail" in report
    assert "== wall time by phase ==" in report
    assert "measure" in report
    assert "== hottest callbacks" in report
    assert "== queue delay / drop summary" in report
    assert "== traces ==" in report
    assert "queue delay: mean=" in report


def test_report_cli_main(tmp_path, capsys):
    _sweep(tmp_path, {"REPRO_OBS": "1"})
    assert obs_main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "== events/s by scheme ==" in out


def test_report_on_empty_dir(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path)]) == 0
    assert "no manifests found" in capsys.readouterr().out


def test_load_manifests_skips_corrupt_files(tmp_path):
    good = build_manifest(
        key="k1", kind="dumbbell", params={"seed": 2}, wall_time=0.1,
        events=10, attempts=1,
    )
    write_manifest(tmp_path / "aa" / "k1.manifest.json", good)
    (tmp_path / "aa" / "k2.manifest.json").write_text("{torn")
    loaded = load_manifests(tmp_path)
    assert len(loaded) == 1
    assert loaded[0]["key"] == "k1"
    assert loaded[0]["_path"].endswith("k1.manifest.json")


def test_load_manifests_with_warnings_reports_truncated_file(tmp_path):
    good = build_manifest(
        key="k1", kind="dumbbell", params={"seed": 2}, wall_time=0.1,
        events=10, attempts=1,
    )
    write_manifest(tmp_path / "k1.manifest.json", good)
    # a torn write from a killed run: valid JSON prefix, cut mid-object
    full = json.dumps(good)
    (tmp_path / "k2.manifest.json").write_text(full[: len(full) // 2])
    # wrong top-level shape entirely
    (tmp_path / "k3.manifest.json").write_text("[1, 2, 3]")

    manifests, warnings = load_manifests_with_warnings(tmp_path)
    assert [m["key"] for m in manifests] == ["k1"]
    assert len(warnings) == 2
    by_path = {w["path"].rsplit("/", 1)[-1]: w["error"] for w in warnings}
    assert "JSONDecodeError" in by_path["k2.manifest.json"]
    assert "not an object" in by_path["k3.manifest.json"]
    # the report must still render, and must surface the skips
    report = generate_report(tmp_path, include_trace=False)
    assert "skipped manifests (2 unreadable)" in report


def test_scheme_summary_empty_set():
    assert scheme_summary([]) == {}
    report_rows = generate_report.__doc__  # sanity: API intact
    assert report_rows is not None


def test_scheme_summary_heterogeneous_manifests():
    # one job with full metrics, one with no phases/rss/result, one with
    # a NaN metric and no scheme at all (falls back to kind)
    manifests = [
        {
            "kind": "dumbbell", "scheme": "pert", "wall_time": 2.0,
            "events": 1000,
            "result": {"drop_rate": 0.02, "norm_queue": 0.5, "utilization": 0.9},
            "metrics": {"queue.bottleneck.delay": {"count": 4, "sum": 0.2}},
        },
        {"kind": "dumbbell", "scheme": "pert", "wall_time": 0.0, "events": 0},
        {
            "kind": "dumbbell", "scheme": None, "wall_time": 1.0, "events": 500,
            "result": {"drop_rate": float("nan")},
        },
    ]
    summary = scheme_summary(manifests)
    assert set(summary) == {"pert", "dumbbell"}
    pert = summary["pert"]
    assert pert["jobs"] == 2
    assert pert["events"] == 1000
    # missing metrics average over the jobs that reported them only
    assert pert["drop_rate"] == pytest.approx(0.02)
    assert pert["queue_delay"] == pytest.approx(0.05)
    # NaN never leaks into means; scheme-less jobs group under kind
    assert summary["dumbbell"]["drop_rate"] is None
    assert summary["dumbbell"]["queue_delay"] is None


def test_report_on_manifests_without_phases_or_rss(tmp_path):
    m = build_manifest(
        key="k9", kind="dumbbell", params={"seed": 1, "scheme": "red"},
        wall_time=1.5, events=300, attempts=1,
    )
    assert "phases" not in m and "peak_rss_kb" not in m
    write_manifest(tmp_path / "k9.manifest.json", m)
    report = generate_report(tmp_path, include_trace=False)
    assert "red" in report
    assert "1 jobs" not in report  # header says "jobs          : 1"
    assert "jobs          : 1" in report


def test_runner_stats_aggregate_wall_and_rss(tmp_path):
    snapshots = []
    cache = ResultCache(tmp_path)
    specs = [dumbbell_spec(scheme="pert", seed=1, **_SPEC_KW)]
    results = run_jobs(
        specs, workers=0, cache=cache, progress=lambda s: snapshots.append(s.snapshot()),
    )
    assert results[0].ok
    last = snapshots[-1]
    assert last["wall_time"] > 0
    assert last["peak_rss_kb"] > 0
