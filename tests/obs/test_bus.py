"""Event bus: schema, transport, scopes, executor wiring, determinism."""

import json
import os
import time

import pytest

from repro.obs.bus import (
    BUS_FILENAME,
    BUS_SCHEMA,
    EVENT_TYPES,
    EventBus,
    active_bus,
    bus_scope,
    emit,
    heartbeat_loop,
    iter_events,
    read_events,
    resolve_bus_path,
    resolve_heartbeat_interval,
    validate_event,
)
from repro.obs.runtime import note_simulator, observe_job, phase
from repro.runner import JobSpec, run_jobs
from repro.runner.cache import ResultCache


def _types(path):
    return [e["type"] for e in read_events(path)]


# ---------------------------------------------------------------------------
# schema + emit


def test_validate_event_accepts_every_documented_type():
    for etype, fields in EVENT_TYPES.items():
        rec = {"v": BUS_SCHEMA, "type": etype, "ts": 1.0, "pid": 1}
        rec.update({f: None for f in fields})
        validate_event(rec)  # must not raise


def test_validate_event_rejects_unknown_type_and_missing_fields():
    with pytest.raises(ValueError):
        validate_event({"v": BUS_SCHEMA, "type": "nope", "ts": 1.0, "pid": 1})
    with pytest.raises(ValueError):
        validate_event({"v": BUS_SCHEMA, "type": "job_started", "ts": 1.0,
                        "pid": 1})  # no key/kind/attempt


def test_emit_writes_single_schema_stamped_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus(path, job="k1")
    bus.emit("job_started", kind="dumbbell", attempt=1)
    bus.emit("job_finished", wall_time=0.5, events=100, attempts=1)
    bus.close()
    events = read_events(path)
    assert [e["type"] for e in events] == ["job_started", "job_finished"]
    for e in events:
        assert e["v"] == BUS_SCHEMA
        assert e["key"] == "k1"  # auto-stamped from the scope's job
        assert isinstance(e["ts"], float) and isinstance(e["pid"], int)


def test_emit_refuses_oversized_records(tmp_path):
    bus = EventBus(tmp_path / "e.jsonl", job="k")
    with pytest.raises(ValueError):
        bus.emit("job_failed", error="x" * 10_000, attempts=1)
    bus.close()


def test_emit_is_best_effort_after_close(tmp_path):
    bus = EventBus(tmp_path / "e.jsonl", job="k")
    bus.close()
    bus.emit("job_cached")  # must not raise
    bus.close()  # idempotent


# ---------------------------------------------------------------------------
# scopes + module-level emit


def test_bus_scope_sets_and_clears_active_bus(tmp_path):
    path = tmp_path / "e.jsonl"
    assert active_bus() is None
    with bus_scope(path, job="k7") as bus:
        assert active_bus() is bus
        emit("job_cached")
    assert active_bus() is None
    emit("job_cached")  # no active bus: silently dropped
    assert _types(path) == ["job_cached"]


def test_bus_scope_none_is_noop():
    with bus_scope(None) as bus:
        assert bus is None
        assert active_bus() is None


def test_phase_events_flow_through_active_bus(tmp_path):
    path = tmp_path / "e.jsonl"
    with bus_scope(path, job="kp"), observe_job():
        with phase("warmup"):
            pass
    events = read_events(path)
    assert [e["type"] for e in events] == ["phase_started", "phase_finished"]
    assert events[1]["phase"] == "warmup"
    assert events[1]["seconds"] >= 0.0


# ---------------------------------------------------------------------------
# path + interval resolution


def test_resolve_bus_path_precedence(tmp_path, monkeypatch):
    store = ResultCache(tmp_path)
    monkeypatch.delenv("REPRO_BUS", raising=False)
    assert resolve_bus_path(store) is None  # default off
    assert resolve_bus_path(store, bus=False) is None
    explicit = tmp_path / "custom.jsonl"
    assert resolve_bus_path(store, bus=explicit) == explicit
    monkeypatch.setenv("REPRO_BUS", "0")
    assert resolve_bus_path(store) is None
    monkeypatch.setenv("REPRO_BUS", "1")
    assert resolve_bus_path(store) == tmp_path / BUS_FILENAME
    monkeypatch.setenv("REPRO_BUS", str(explicit))
    assert resolve_bus_path(store) == explicit
    # arg beats env; truthy env without a store has nowhere to default
    monkeypatch.setenv("REPRO_BUS", "1")
    assert resolve_bus_path(store, bus=False) is None
    assert resolve_bus_path(None) is None


def test_resolve_heartbeat_interval(monkeypatch):
    monkeypatch.delenv("REPRO_BUS_INTERVAL", raising=False)
    assert resolve_heartbeat_interval() == 1.0
    monkeypatch.setenv("REPRO_BUS_INTERVAL", "0.25")
    assert resolve_heartbeat_interval() == 0.25
    monkeypatch.setenv("REPRO_BUS_INTERVAL", "0.0001")
    assert resolve_heartbeat_interval() == 0.05  # clamped
    monkeypatch.setenv("REPRO_BUS_INTERVAL", "junk")
    assert resolve_heartbeat_interval() == 1.0


# ---------------------------------------------------------------------------
# torn-tail tolerance


def test_iter_events_skips_bad_lines_and_torn_tail(tmp_path):
    path = tmp_path / "e.jsonl"
    good = json.dumps({"v": 1, "type": "job_cached", "ts": 1.0, "pid": 1,
                       "key": "k"})
    path.write_text(good + "\n" + "{garbage\n" + good + "\n" + good[:20])
    events = list(iter_events(path))
    assert len(events) == 2  # bad line skipped, torn tail not yielded
    assert read_events(tmp_path / "missing.jsonl") == []


# ---------------------------------------------------------------------------
# heartbeats


class _FakeSim:
    now = 12.5
    events_processed = 400
    _seq = 777


def test_heartbeat_loop_emits_final_beat_with_simulator_sample(tmp_path):
    path = tmp_path / "e.jsonl"
    with bus_scope(path, job="kh") as bus, observe_job():
        note_simulator(_FakeSim())
        with heartbeat_loop(bus, interval=30.0):
            pass  # interval never elapses; the final beat still fires
    beats = [e for e in read_events(path) if e["type"] == "heartbeat"]
    assert len(beats) == 1
    assert beats[0]["sim_now"] == 12.5
    assert beats[0]["events"] == 400
    assert beats[0]["sched"] == 777


def test_heartbeat_loop_noop_without_bus():
    with heartbeat_loop(None):
        pass  # must not raise or spawn anything observable


# ---------------------------------------------------------------------------
# executor wiring (serial + parallel + retry/failure lifecycles)


@pytest.mark.parametrize("workers", [0, 2])
def test_run_jobs_emits_lifecycle_events(tmp_path, workers):
    path = tmp_path / "events.jsonl"
    specs = [
        JobSpec(kind="tests.runner.jobs:events",
                params={"value": i, "events": 10, "seed": i, "scheme": "pert"})
        for i in range(3)
    ]
    results = run_jobs(specs, workers=workers, cache=ResultCache(tmp_path),
                       bus=path)
    assert all(r.ok for r in results)
    types = _types(path)
    assert types[0] == "run_started"
    assert types[-1] == "run_finished"
    assert types.count("job_started") == 3
    assert types.count("job_finished") == 3
    finished = [e for e in read_events(path) if e["type"] == "job_finished"]
    assert {e["events"] for e in finished} == {10}
    run_finished = read_events(path)[-1]
    assert run_finished["stats"]["done"] == 3

    # second pass: everything cached, still announced on the bus
    run_jobs(specs, workers=workers, cache=ResultCache(tmp_path), bus=path)
    assert _types(path).count("job_cached") == 3


def test_run_jobs_emits_retry_and_failure_events(tmp_path):
    path = tmp_path / "events.jsonl"
    flaky = JobSpec(kind="tests.runner.jobs:flaky",
                    params={"marker": str(tmp_path / "marker")})
    doomed = JobSpec(kind="tests.runner.jobs:boom", params={})
    results = run_jobs([flaky, doomed], workers=0, cache=None, retries=1,
                       bus=path)
    assert results[0].ok and not results[1].ok
    types = _types(path)
    assert "job_retried" in types  # flaky's first attempt
    assert "job_failed" in types  # boom exhausted its retries
    failed = [e for e in read_events(path) if e["type"] == "job_failed"]
    assert "injected failure" in failed[0]["error"]


def test_results_identical_with_bus_on_and_off(tmp_path):
    specs = [
        JobSpec(kind="tests.runner.jobs:events",
                params={"value": i, "events": 5}) for i in range(3)
    ]
    off = run_jobs(specs, workers=0, cache=None, bus=False)
    on = run_jobs(specs, workers=0, cache=None,
                  bus=tmp_path / "events.jsonl")
    assert [r.value for r in off] == [r.value for r in on]


def test_cache_entries_unchanged_by_bus(tmp_path):
    spec = JobSpec(kind="tests.runner.jobs:events",
                   params={"value": 1, "events": 5})
    run_jobs([spec], workers=0, cache=ResultCache(tmp_path / "off"),
             bus=False)
    run_jobs([spec], workers=0, cache=ResultCache(tmp_path / "on"),
             bus=tmp_path / "on" / "events.jsonl")
    entry = spec.cache_key + ".json"
    off_entry = json.loads(next((tmp_path / "off").rglob(entry)).read_text())
    on_entry = json.loads(next((tmp_path / "on").rglob(entry)).read_text())
    # entries carry wall-clock facts (wall_time, peak RSS) that differ
    # run to run regardless of the bus; every deterministic field —
    # including the golden-checked result payload — must be identical
    for rec in (off_entry, on_entry):
        for wall_field in ("wall_time", "peak_rss_kb"):
            rec.pop(wall_field, None)
            rec.get("meta", {}).pop(wall_field, None)
    assert off_entry == on_entry
    # the only extra file the bus leaves behind is the bus file itself
    off_files = {str(p.relative_to(tmp_path / "off"))
                 for p in (tmp_path / "off").rglob("*") if p.is_file()}
    on_files = {str(p.relative_to(tmp_path / "on"))
                for p in (tmp_path / "on").rglob("*") if p.is_file()}
    assert on_files - off_files == {BUS_FILENAME}
