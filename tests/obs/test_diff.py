"""Cross-run diff: scheme/metric deltas, thresholds, CLI exit codes."""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.diff import (
    DEFAULT_DIFF_METRICS,
    diff_runs,
    flagged_deltas,
    format_diff,
)


def _write_manifest(path, scheme, events=10_000, wall=2.0, drop=0.01,
                    kind="dumbbell"):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "schema": 1, "key": path.stem, "kind": kind, "params": {},
        "scheme": scheme, "seed": 1, "wall_time": wall, "events": events,
        "result": {"drop_rate": drop, "norm_queue": 0.4, "utilization": 0.9},
    }))


@pytest.fixture
def run_pair(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    _write_manifest(a / "k1.manifest.json", "pert")
    _write_manifest(a / "k2.manifest.json", "red")
    _write_manifest(a / "k3.manifest.json", "gone")  # only in A
    _write_manifest(b / "k1.manifest.json", "pert", events=12_000, drop=0.02)
    _write_manifest(b / "k2.manifest.json", "red")
    _write_manifest(b / "k4.manifest.json", "new")  # only in B
    return a, b


def test_diff_runs_structure_and_deltas(run_pair):
    a, b = run_pair
    diff = diff_runs(a, b)
    assert diff["jobs"] == [3, 3]
    assert diff["only_a"] == ["gone"]
    assert diff["only_b"] == ["new"]
    assert set(diff["schemes"]) == {"pert", "red"}
    pert = diff["schemes"]["pert"]
    assert set(pert) == set(DEFAULT_DIFF_METRICS)
    assert pert["events_per_sec"]["delta_pct"] == pytest.approx(20.0)
    assert pert["drop_rate"]["delta_pct"] == pytest.approx(100.0)
    assert pert["wall_time"]["delta_pct"] == pytest.approx(0.0)
    # no queue metrics recorded -> null, never a fake zero
    assert pert["queue_delay"]["delta_pct"] is None
    assert diff["schemes"]["red"]["drop_rate"]["delta_pct"] == pytest.approx(0.0)


def test_flagged_deltas_sorted_worst_first(run_pair):
    a, b = run_pair
    over = flagged_deltas(diff_runs(a, b), threshold_pct=10.0)
    assert [(s, m) for s, m, _ in over] == [
        ("pert", "drop_rate"), ("pert", "events_per_sec")]
    assert flagged_deltas(diff_runs(a, b), threshold_pct=500.0) == []


def test_format_diff_marks_threshold_crossings(run_pair):
    a, b = run_pair
    text = format_diff(diff_runs(a, b), threshold_pct=10.0)
    assert "+100.00%!" in text
    assert "schemes only in A: gone" in text
    assert "schemes only in B: new" in text
    assert "2 deltas over the +/-10% threshold" in text
    quiet = format_diff(diff_runs(a, a), threshold_pct=10.0)
    assert "all deltas within" in quiet


def test_diff_excludes_validation_and_counts_corrupt_manifests(run_pair):
    a, b = run_pair
    (a / "v.manifest.json").write_text(json.dumps(
        {"schema": 1, "kind": "validation", "wall_time": 1.0,
         "validation": {"figure": "fig6"}}))
    (b / "torn.manifest.json").write_text("{torn")
    diff = diff_runs(a, b)
    assert diff["jobs"] == [3, 3]  # validation manifest not a job
    assert diff["warnings"] == [0, 1]
    assert "skipped unreadable manifests: A=0 B=1" in format_diff(diff)


def test_cli_diff_exit_codes(run_pair, capsys):
    a, b = run_pair
    assert obs_main(["diff", str(a), str(b)]) == 0
    assert obs_main(["diff", str(a), str(b), "--strict"]) == 1
    assert obs_main(["diff", str(a), str(b), "--strict",
                     "--threshold", "500"]) == 0
    out = capsys.readouterr().out
    assert "scheme.metric" in out


def test_delta_pct_zero_baseline():
    # a == 0, b == 0 -> flat; a == 0, b != 0 -> undefined, not infinity
    base = {"schema": 1, "kind": "dumbbell", "scheme": "s", "params": {},
            "wall_time": 1.0, "events": 0, "result": {"drop_rate": 0.0}}
    import tempfile
    from pathlib import Path
    tmp = Path(tempfile.mkdtemp())
    for run, drop in (("a", 0.0), ("b", 0.5)):
        d = tmp / run
        d.mkdir()
        rec = dict(base, result={"drop_rate": drop})
        (d / "k.manifest.json").write_text(json.dumps(rec))
    diff = diff_runs(tmp / "a", tmp / "b")
    assert diff["schemes"]["s"]["events_per_sec"]["delta_pct"] == 0.0
    assert diff["schemes"]["s"]["drop_rate"]["delta_pct"] is None
