"""Unit tests for the deterministic metrics primitives."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert c.snapshot() == 4


def test_gauge_keeps_last_value():
    g = Gauge("x")
    g.set(2.5)
    g.set(1.0)
    assert g.value == 1.0
    assert g.snapshot() == 1.0


def test_histogram_bucket_placement():
    h = Histogram("h", edges=[1.0, 2.0, 4.0])
    for v in (0.5, 1.0, 1.5, 3.0, 10.0):
        h.observe(v)
    snap = h.snapshot()
    # buckets: <=1, <=2, <=4, overflow
    assert snap["counts"] == [2, 1, 1, 1]
    assert snap["count"] == 5
    assert snap["min"] == 0.5 and snap["max"] == 10.0
    assert h.mean == pytest.approx(16.0 / 5)


def test_histogram_quantile_is_monotone():
    h = Histogram("h", edges=[1, 2, 4, 8, 16])
    for v in range(1, 17):
        h.observe(v)
    qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 1.0)]
    assert qs == sorted(qs)
    assert h.quantile(1.0) <= 16


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        Histogram("h", edges=[2.0, 1.0])


def test_empty_histogram_snapshot():
    h = Histogram("h", edges=[1.0])
    snap = h.snapshot()
    assert snap["count"] == 0
    assert h.mean == 0.0


def test_registry_creates_on_first_use_and_reuses():
    reg = MetricsRegistry()
    c1 = reg.counter("a")
    c2 = reg.counter("a")
    assert c1 is c2
    reg.gauge("g").set(1)
    reg.histogram("h", edges=[1, 2])
    assert sorted(reg.snapshot()) == ["a", "g", "h"]


def test_registry_rejects_type_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_is_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        h = reg.histogram("h", edges=[1.0, 4.0])
        for v in (0.5, 2.0, 9.0):
            h.observe(v)
        reg.gauge("g").set(7)
        return reg.snapshot()

    assert build() == build()
