"""Guard: disabled instrumentation must cost <5% on the hot path.

The baseline monkeypatches the per-packet hook-bearing methods
(``QueueDiscipline.enqueue``/``dequeue``, ``Link._tx_done``) with copies
stripped of their ``obs`` hook sites, then times the same fixed-seed
dumbbell both ways.  The two runs must also produce *identical* results —
if the stripped copies ever drift from the real methods, the equality
assertion fails before the timing comparison can mislead anyone.
"""

import time

import pytest

from repro.experiments.common import run_dumbbell
from repro.sim.link import Link
from repro.sim.queues.base import QueueDiscipline

_KWARGS = dict(
    bandwidth=8e6, duration=4.0, warmup=1.5, n_fwd=4, seed=5,
)
_MAX_RATIO = 1.05
_REPEATS = 3
_ATTEMPTS = 3


# ---- stripped copies of the hook-bearing hot-path methods ------------
def _plain_enqueue(self, pkt, now):
    stats = self.stats
    if now > stats._last_change:
        stats._q_integral += len(self._buf) * (now - stats._last_change)
        stats._last_change = now
    stats.arrivals += 1
    verdict = self.admit(pkt, now)
    if verdict == "enqueue":
        pass
    elif verdict == "mark":
        pkt.ce = True
        stats.marks += 1
    elif verdict == "drop":
        stats.drops += 1
        if self.is_full_for(pkt):
            stats.forced_drops += 1
        else:
            stats.early_drops += 1
        for fn in self.drop_listeners:
            fn(pkt, now)
        return False
    else:
        raise ValueError(f"bad admit() verdict {verdict!r}")
    pkt.enqueue_time = now
    self._buf.append(pkt)
    self._bytes += pkt.size
    stats.enqueues += 1
    stats.bytes_in += pkt.size
    return True


def _plain_dequeue(self, now):
    buf = self._buf
    if not buf:
        return None
    stats = self.stats
    if now > stats._last_change:
        stats._q_integral += len(buf) * (now - stats._last_change)
        stats._last_change = now
    pkt = buf.popleft()
    self._bytes -= pkt.size
    stats.departures += 1
    stats.bytes_out += pkt.size
    return pkt


def _plain_tx_done(self, pkt):
    self.bytes_transmitted += pkt.size
    self.packets_transmitted += 1
    self.sim.schedule_fire(self.delay, self.dst.receive, pkt)
    self._start_next()


_PATCHES = [
    (QueueDiscipline, "enqueue", _plain_enqueue),
    (QueueDiscipline, "dequeue", _plain_dequeue),
    (Link, "_tx_done", _plain_tx_done),
]


def _timed_run(stripped: bool):
    """Best-of-N wall time (and the result) for one configuration."""
    saved = [(cls, name, getattr(cls, name)) for cls, name, _ in _PATCHES]
    if stripped:
        for cls, name, fn in _PATCHES:
            setattr(cls, name, fn)
    try:
        best, result = float("inf"), None
        for _ in range(_REPEATS):
            t0 = time.perf_counter()
            result = run_dumbbell("pert", collector=False, **_KWARGS)
            best = min(best, time.perf_counter() - t0)
        return best, result
    finally:
        for cls, name, fn in saved:
            setattr(cls, name, fn)


def test_disabled_instrumentation_overhead_under_5_percent():
    ratio = None
    for _ in range(_ATTEMPTS):
        base_t, base_r = _timed_run(stripped=True)
        inst_t, inst_r = _timed_run(stripped=False)
        # Self-check: the stripped copies must be behaviourally identical
        # to the real methods, or the timing comparison is meaningless.
        assert inst_r == base_r, (
            "stripped baseline methods drifted from the instrumented ones"
        )
        ratio = inst_t / base_t
        if ratio <= _MAX_RATIO:
            return
    pytest.fail(
        f"disabled instrumentation costs {ratio:.3f}x the stripped "
        f"baseline (limit {_MAX_RATIO}x)"
    )
