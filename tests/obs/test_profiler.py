"""Sampling profiler: dispatch transparency and attribution."""

import pytest

from repro.obs.profiler import SamplingProfiler
from repro.sim.engine import Simulator


def test_profiler_samples_every_period_th_event():
    prof = SamplingProfiler(period=4)

    def work():
        pass

    for _ in range(16):
        prof.dispatch(work, ())
    assert prof.events == 16
    assert prof.samples["test_profiler_samples_every_period_th_event.<locals>.work"][0] == 4


def test_profiler_period_validated():
    with pytest.raises(ValueError):
        SamplingProfiler(period=0)


def test_top_sorts_by_estimated_time():
    prof = SamplingProfiler(period=1)
    prof.samples = {"slow": [2, 0.5], "fast": [10, 0.01]}
    rows = prof.top(2)
    assert [r["callback"] for r in rows] == ["slow", "fast"]
    assert rows[0]["est_time"] == pytest.approx(0.5)


def test_profiled_simulation_result_is_unchanged():
    def run(profiler):
        sim = Simulator(seed=3)
        sim.profiler = profiler
        hits = []

        def tick(i):
            hits.append((sim.now, i))
            if i < 20:
                sim.schedule(0.1, tick, i + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        return hits, sim.events_processed

    plain = run(None)
    prof = SamplingProfiler(period=3)
    profiled = run(prof)
    assert profiled == plain
    assert prof.events == plain[1]
    assert prof.snapshot()["period"] == 3
