"""Collector semantics: hooks, sampling, and the obs on/off golden pin."""

import pytest

from repro.experiments.common import run_dumbbell
from repro.obs.collect import Collector
from repro.obs.records import RECORD_TYPES
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


def test_queue_hooks_count_enqueues_and_forced_drops():
    col = Collector(trace=True)
    q = DropTailQueue(2)
    col.attach_queue(q, "q")
    assert q.obs is col and q.obs_label == "q"
    q.enqueue(Packet(1, 0, 1, seq=0), 0.0)
    q.enqueue(Packet(1, 0, 1, seq=1), 0.1)
    q.enqueue(Packet(1, 0, 1, seq=2), 0.2)  # tail drop (forced)
    snap = col.snapshot()
    assert snap["queue.q.enqueues"] == 2
    assert snap["queue.q.drops"] == 1
    assert snap["queue.q.forced_drops"] == 1
    types = [r["type"] for r in col.records]
    assert types.count("enqueue") == 2
    assert types.count("drop") == 1


def test_sampling_is_rate_limited_by_sim_time():
    col = Collector(trace=True, sample_interval=1.0)
    q = DropTailQueue(100)
    col.attach_queue(q, "q")
    for i in range(50):  # 50 events within 0.5s of simulated time
        q.enqueue(Packet(1, 0, 1, seq=i), i * 0.01)
    samples = [r for r in col.records if r["type"] == "queue_sample"]
    assert len(samples) == 1  # first event sampled, the rest gated


def test_trace_records_validate_against_schema():
    col = Collector(trace=True, sample_interval=0.05)
    result = run_dumbbell(
        "pert", 4e6, duration=6.0, warmup=2.0, n_fwd=3, seed=3, collector=col,
    )
    assert result.events_processed > 0
    assert col.records, "instrumented run should produce trace records"
    from repro.obs.records import validate_record
    for rec in col.records:
        validate_record(rec)
    assert {r["type"] for r in col.records} <= set(RECORD_TYPES)


def test_finalize_records_engine_gauges():
    col = Collector()
    sim = Simulator(seed=1)
    sim.schedule(0.5, lambda: None)
    sim.run()
    col.finalize(sim)
    snap = col.snapshot()
    assert snap["sim.events_processed"] == 1
    assert snap["sim.time"] == pytest.approx(0.5)


def test_collector_rejects_bad_interval():
    with pytest.raises(ValueError):
        Collector(sample_interval=0.0)


# ----------------------------------------------------------------------
# The golden pin: observability must never perturb a simulation.
# ----------------------------------------------------------------------
def test_obs_on_off_results_identical():
    kwargs = dict(
        bandwidth=5e6, duration=8.0, warmup=3.0, n_fwd=4, n_rev=1,
        web_sessions=2, seed=7,
    )
    plain = run_dumbbell("pert", collector=False, **kwargs)
    instrumented = run_dumbbell(
        "pert",
        collector=Collector(trace=True, sample_interval=0.05),
        **kwargs,
    )
    # Full-result equality, including the event count: attaching a
    # collector must not schedule events, draw RNG, or change any metric.
    assert instrumented == plain
    assert instrumented.events_processed == plain.events_processed


def test_obs_on_off_identical_for_aqm_scheme():
    kwargs = dict(bandwidth=5e6, duration=6.0, warmup=2.0, n_fwd=3, seed=11)
    plain = run_dumbbell("sack-red-ecn", collector=False, **kwargs)
    instrumented = run_dumbbell(
        "sack-red-ecn", collector=Collector(trace=True), **kwargs
    )
    assert instrumented == plain
