"""Guard: an enabled telemetry bus must cost <5% on the dumbbell path.

Counterpart of ``test_overhead.py`` (which bounds the cost of *disabled*
instrumentation): here the bus is fully ON — job scope, lifecycle
events, and the heartbeat thread sampling the live simulator — and the
same fixed-seed dumbbell must stay within 5% of the silent run.  The
two runs must also produce identical results: the bus is observational
by contract, so any result drift is a correctness bug that fails before
the timing comparison.
"""

import time

import pytest

from repro.experiments.common import run_dumbbell
from repro.obs import bus as obs_bus
from repro.obs.runtime import observe_job

_KWARGS = dict(
    bandwidth=8e6, duration=4.0, warmup=1.5, n_fwd=4, seed=5,
)
_MAX_RATIO = 1.05
_REPEATS = 3
_ATTEMPTS = 3


def _timed_run(bus_path):
    """Best-of-N wall time (and the result) with/without the bus."""
    best, result = float("inf"), None
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        if bus_path is None:
            result = run_dumbbell("pert", collector=False, **_KWARGS)
        else:
            with obs_bus.bus_scope(bus_path, job="overhead") as bus, \
                    observe_job(), \
                    obs_bus.heartbeat_loop(bus, interval=0.1):
                obs_bus.emit("job_started", kind="dumbbell", scheme="pert",
                             seed=5, attempt=1)
                result = run_dumbbell("pert", collector=False, **_KWARGS)
                obs_bus.emit("job_finished", wall_time=0.0,
                             events=result.events_processed, attempts=1)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_enabled_bus_overhead_under_5_percent(tmp_path):
    ratio = None
    for attempt in range(_ATTEMPTS):
        bus_path = tmp_path / f"events-{attempt}.jsonl"
        base_t, base_r = _timed_run(None)
        bus_t, bus_r = _timed_run(bus_path)
        # Correctness before timing: the bus must be purely observational.
        assert bus_r.events_processed == base_r.events_processed, (
            "bus-on run diverged from the silent run — the bus mutated "
            "simulation state"
        )
        # The aggressive 0.1s interval must actually have produced beats.
        beats = [e for e in obs_bus.read_events(bus_path)
                 if e["type"] == "heartbeat"]
        assert beats, "heartbeat thread emitted nothing"
        assert beats[-1]["sim_now"] is not None
        ratio = bus_t / base_t
        if ratio <= _MAX_RATIO:
            return
    pytest.fail(
        f"enabled bus costs {ratio:.3f}x the silent baseline "
        f"(limit {_MAX_RATIO}x)"
    )
