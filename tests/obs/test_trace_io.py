"""Schema validation and JSONL round-trip tests for the trace sink."""

import pytest

from repro.obs.records import RECORD_TYPES, TRACE_SCHEMA, record, validate_record
from repro.obs.trace import iter_trace, read_trace, write_trace


def _sample_records():
    return [
        record("enqueue", 0.5, queue="q", flow=1, seq=0, qlen=1),
        record("drop", 1.0, queue="q", flow=1, seq=3, qlen=10, forced=True),
        record("mark", 1.2, queue="q", flow=2, seq=4, qlen=9),
        record("early_response", 1.5, flow=1, cwnd=12.5),
        record("timeout", 2.0, flow=2, cwnd=2.0),
        record("queue_sample", 2.5, queue="q", qlen=4, bytes=4000, delay=0.0032),
        record("cwnd_sample", 3.0, flow=1, cwnd=8.0, ssthresh=6.0, srtt=0.051),
        record("link_sample", 3.5, link="l", bytes=123456, pkts=123),
    ]


def test_every_record_type_constructible():
    recs = _sample_records()
    assert {r["type"] for r in recs} == set(RECORD_TYPES)
    for r in recs:
        assert r["v"] == TRACE_SCHEMA
        validate_record(r)  # does not raise


def test_record_rejects_missing_fields():
    with pytest.raises(ValueError, match="missing fields"):
        record("drop", 1.0, queue="q", flow=1)


def test_record_rejects_unknown_type():
    with pytest.raises(ValueError, match="unknown record type"):
        record("teleport", 1.0)


def test_validate_rejects_wrong_schema_version():
    rec = record("timeout", 1.0, flow=1, cwnd=2.0)
    rec["v"] = TRACE_SCHEMA + 1
    with pytest.raises(ValueError, match="schema version"):
        validate_record(rec)


def test_jsonl_roundtrip(tmp_path):
    recs = _sample_records()
    path = write_trace(tmp_path / "trace.jsonl", recs)
    assert read_trace(path) == recs


def test_iter_trace_reports_line_numbers(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"v": 1, "type": "timeout", "t": 1.0, "flow": 1, "cwnd": 2}\nnot json\n')
    it = iter_trace(path)
    next(it)
    with pytest.raises(ValueError, match=":2: bad JSON"):
        next(it)


def test_write_trace_validates_before_commit(tmp_path):
    path = tmp_path / "trace.jsonl"
    with pytest.raises(ValueError):
        write_trace(path, [{"v": 1, "type": "nope", "t": 0.0}])
    assert not path.exists()  # atomic: nothing half-written
