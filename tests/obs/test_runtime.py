"""Job-scoped observation context: flags, phases, activation."""

import pytest

from repro.obs import runtime
from repro.obs.runtime import (
    JobObservation,
    ObsFlags,
    observe_job,
    resolve_obs_flags,
)


def test_flags_default_off():
    flags = resolve_obs_flags(env={})
    assert flags == ObsFlags()
    assert not flags.collect and not flags.trace and not flags.profile


def test_flags_from_env():
    flags = resolve_obs_flags(env={
        "REPRO_OBS": "1", "REPRO_PROFILE": "yes", "REPRO_OBS_INTERVAL": "0.25",
    })
    assert flags.collect and flags.profile and not flags.trace
    assert flags.sample_interval == 0.25


def test_trace_implies_collect():
    flags = resolve_obs_flags(env={"REPRO_TRACE": "on"})
    assert flags.trace and flags.collect


def test_idle_accessors_return_none():
    assert runtime.active() is None
    assert runtime.active_collector() is None
    assert runtime.active_profiler() is None
    with runtime.phase("noop"):  # no active observation: plain no-op
        pass


def test_observe_job_activates_and_restores():
    with observe_job(ObsFlags(collect=True)) as obs:
        assert runtime.active() is obs
        assert runtime.active_collector() is obs.collector
        assert obs.collector is not None
        assert obs.profiler is None
        with runtime.phase("setup"):
            pass
    assert runtime.active() is None
    assert "setup" in obs.phases


def test_observation_without_flags_is_phases_only():
    obs = JobObservation(ObsFlags())
    assert obs.collector is None and obs.profiler is None
    obs.add_phase("measure", 0.5)
    obs.add_phase("measure", 0.25)
    meta = obs.finish()
    assert meta["phases"]["measure"] == pytest.approx(0.75)
    assert meta["wall_time"] >= 0.0
    assert "metrics" not in meta and "profile" not in meta


def test_finish_includes_metrics_and_trace_when_enabled():
    with observe_job(ObsFlags(collect=True, trace=True)) as obs:
        obs.collector.registry.counter("x").inc()
    meta = obs.finish()
    assert meta["metrics"]["x"] == 1
    assert meta["trace_records"] == []
    assert isinstance(meta.get("peak_rss_kb"), int)


def test_observe_job_nests():
    with observe_job(ObsFlags()) as outer:
        with observe_job(ObsFlags()) as inner:
            assert runtime.active() is inner
        assert runtime.active() is outer
    assert runtime.active() is None
