"""Unit tests for the TCP sender: transfer, windows, growth, RTT."""

import pytest

from repro.sim.engine import Simulator
from repro.tcp.base import TcpSender

from ..conftest import make_dumbbell, make_flow


def run_transfer(npackets=50, bw=8e6, buffer_pkts=100, **kwargs):
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, bw=bw, buffer_pkts=buffer_pkts)
    sender, sink = make_flow(sim, db, **kwargs)
    done = []
    sender.on_complete = lambda s: done.append(sim.now)
    sender.start(npackets=npackets)
    sim.run(until=60.0)
    return sim, sender, sink, done


def test_finite_transfer_completes():
    sim, sender, sink, done = run_transfer(npackets=50)
    assert sender.done
    assert len(done) == 1
    assert sink.rcv_next == 50


def test_all_data_delivered_in_order():
    sim, sender, sink, done = run_transfer(npackets=200)
    assert sink.rcv_next == 200
    assert sink.out_of_order == set()


def test_infinite_flow_keeps_sending():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, sink = make_flow(sim, db)
    sender.start()
    sim.run(until=2.0)
    assert not sender.done
    assert sink.rcv_next > 100


def test_slow_start_doubles_window():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, bw=80e6, buffer_pkts=4000)
    sender, _ = make_flow(sim, db, initial_cwnd=2.0)
    sender.start()
    # After k RTTs of slow start cwnd ~ 2^(k+1); with RTT ~22 ms
    sim.run(until=0.30)
    assert sender.cwnd > 100  # exponential growth clearly happened
    assert sender.timeouts == 0


def test_congestion_avoidance_linear_growth():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, bw=80e6, buffer_pkts=4000)
    sender, _ = make_flow(sim, db, initial_cwnd=10.0)
    sender.ssthresh = 10.0  # start directly in congestion avoidance
    sender.start()
    sim.run(until=1.0)
    rtt = sender.srtt
    # ~1 packet per RTT: after 1 s expect roughly 10 + 1/rtt, not doubling
    expected = 10.0 + 1.0 / rtt
    assert sender.cwnd == pytest.approx(expected, rel=0.3)


def test_rtt_estimation_close_to_path_rtt():
    sim, sender, sink, _ = run_transfer(npackets=100)
    # path: 2*(1 ms access + 10 ms bottleneck + 1 ms access) = 24 ms min
    assert sender.min_rtt == pytest.approx(0.024, rel=0.2)
    assert sender.srtt is not None and sender.srtt >= sender.min_rtt * 0.99


def test_rtt_trace_recorded_only_when_asked():
    sim, sender, _, _ = run_transfer(npackets=30, record_rtt=True)
    assert len(sender.rtt_trace) > 0
    t, rtt, cwnd = sender.rtt_trace[0]
    assert rtt > 0 and cwnd >= 1
    sim2, sender2, _, _ = run_transfer(npackets=30)
    assert sender2.rtt_trace == []


def test_max_cwnd_respected():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, bw=80e6, buffer_pkts=1000)
    sender, _ = make_flow(sim, db, max_cwnd=8.0)
    sender.start()
    sim.run(until=2.0)
    assert sender.cwnd <= 8.0
    assert sender.pipe <= 8


def test_stop_ceases_new_data():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, sink = make_flow(sim, db)
    sender.start()
    sim.run(until=1.0)
    sender.stop()
    sent_at_stop = sender.next_seq
    sim.run(until=2.0)
    assert sender.next_seq == sent_at_stop


def test_delayed_start():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, sink = make_flow(sim, db)
    sender.start(at=1.0, npackets=10)
    sim.run(until=0.9)
    assert sender.pkts_sent == 0
    sim.run(until=5.0)
    assert sender.done


def test_pipe_never_negative():
    # Note pipe may transiently exceed cwnd right after a reduction (the
    # old flight is still draining); it must never go negative, and the
    # scoreboard sets must stay inside the window.
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, buffer_pkts=20)
    sender, _ = make_flow(sim, db)
    sender.start()
    checks = []

    def probe():
        ok = sender.pipe >= 0
        ok &= all(sender.cum_ack <= s < sender.high_water for s in sender.sacked)
        ok &= all(sender.cum_ack <= s < sender.high_water for s in sender.lost)
        checks.append(ok)
        sim.schedule(0.05, probe)

    sim.schedule(0.1, probe)
    sim.run(until=5.0)
    assert checks and all(checks)
