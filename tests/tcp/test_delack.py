"""Tests for the delayed-ACK receiver option."""

import pytest

from repro.sim.engine import Simulator
from repro.tcp.base import TcpSender, TcpSink, connect_flow

from ..conftest import make_dumbbell


def run_transfer(delack, npackets=200):
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, sink = connect_flow(
        sim, db.left[0], db.right[0], flow_id=1, sender_cls=TcpSender,
        sink_kwargs={"delack": delack},
    )
    sender.start(npackets=npackets)
    sim.run(until=60.0)
    return sender, sink


def test_delack_halves_ack_volume():
    _, sink_immediate = run_transfer(delack=False)
    _, sink_delayed = run_transfer(delack=True)
    assert sink_immediate.acks_sent == pytest.approx(200, abs=5)
    assert sink_delayed.acks_sent < 0.65 * sink_immediate.acks_sent


def test_delack_transfer_still_completes():
    sender, sink = run_transfer(delack=True)
    assert sender.done
    assert sink.rcv_next == 200


def test_delack_timer_flushes_odd_segment():
    """A lone segment must still be acknowledged within the timeout."""
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, sink = connect_flow(
        sim, db.left[0], db.right[0], flow_id=1,
        sink_kwargs={"delack": True, "delack_timeout": 0.05},
    )
    sender.start(npackets=1)
    sim.run(until=2.0)
    assert sender.done
    assert sink.acks_sent == 1


def test_delack_out_of_order_acks_immediately():
    """Loss recovery must not wait on the delayed-ACK timer."""
    from ..tcp.test_loss_recovery import LossyQueue
    from ..conftest import make_flow

    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=lambda: LossyQueue(200, {10}))
    sender, sink = connect_flow(
        sim, db.left[0], db.right[0], flow_id=1,
        sink_kwargs={"delack": True},
    )
    sender.start(npackets=60)
    sim.run(until=30.0)
    assert sink.rcv_next == 60
    assert sender.timeouts == 0  # fast retransmit worked despite delack
