"""RTT estimation and RTO behaviour (RFC 6298 details)."""

import pytest

from repro.sim.engine import Simulator
from repro.tcp.base import MAX_RTO, MIN_RTO, TcpSender

from ..conftest import make_dumbbell, make_flow


def make_sender():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    return sim, sender


class TestRttEstimator:
    def test_first_sample_initialises_srtt_and_var(self):
        _, s = make_sender()
        s._rtt_update(0.1)
        assert s.srtt == pytest.approx(0.1)
        assert s.rttvar == pytest.approx(0.05)

    def test_ewma_update_formulas(self):
        _, s = make_sender()
        s._rtt_update(0.1)
        s._rtt_update(0.2)
        assert s.rttvar == pytest.approx(0.75 * 0.05 + 0.25 * 0.1)
        assert s.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_rto_floor(self):
        _, s = make_sender()
        for _ in range(20):
            s._rtt_update(0.001)  # tiny stable RTT
        assert s.rto == MIN_RTO

    def test_rto_ceiling(self):
        _, s = make_sender()
        s._rtt_update(100.0)
        assert s.rto == MAX_RTO

    def test_min_rtt_tracks_smallest(self):
        _, s = make_sender()
        for v in (0.3, 0.1, 0.2):
            s._rtt_update(v)
        assert s.min_rtt == pytest.approx(0.1)


class TestBackoff:
    def test_backoff_doubles_on_timeouts(self):
        sim, s = make_sender()
        s.started = True
        s.next_seq = s.high_water = 5  # pretend data is outstanding
        assert s._backoff == 1
        s._on_timeout()
        assert s._backoff == 2
        s._on_timeout()
        assert s._backoff == 4

    def test_backoff_capped(self):
        sim, s = make_sender()
        s.started = True
        s.next_seq = s.high_water = 5
        for _ in range(20):
            s._on_timeout()
        assert s._backoff == 64

    def test_timer_delay_capped_at_max_rto(self):
        sim, s = make_sender()
        s.started = True
        s.next_seq = s.high_water = 5
        s.rto = 50.0
        s._backoff = 64
        s._arm_rtx_timer()
        # the scheduled event must fire within MAX_RTO, not rto*backoff
        assert s._rtx_timer.time - sim.now <= MAX_RTO + 1e-9

    def test_backoff_resets_on_progress(self):
        sim = Simulator(seed=1)
        db = make_dumbbell(sim)
        sender, sink = make_flow(sim, db)
        sender.start(npackets=10)
        sim.run(until=10.0)
        assert sender.done
        assert sender._backoff == 1


class TestKarnGuards:
    def test_no_sample_for_packets_sent_before_retransmit(self):
        sim, s = make_sender()
        s._sent_time[7] = 1.0
        s._last_rtx_time = 2.0  # a retransmission happened after seq 7 left
        s.cum_ack = 7

        class Ack:
            ack_seq = 8
            sack_blocks = []
            ece = False
            is_ack = True

        before = s.srtt
        s._process_ack_seq(Ack())
        assert s.srtt == before  # no (gated) sample taken

    def test_sample_taken_for_fresh_packets(self):
        sim, s = make_sender()
        s._sent_time[7] = 3.0
        s._last_rtx_time = 2.0
        s.cum_ack = 7
        sim.schedule(3.05, lambda: None)
        sim.run()

        class Ack:
            ack_seq = 8
            sack_blocks = []
            ece = False
            is_ack = True

        s._process_ack_seq(Ack())
        assert s.srtt == pytest.approx(0.05)
