"""Unit tests for TCP Vegas."""

import pytest

from repro.sim.engine import Simulator
from repro.tcp.vegas import VegasSender

from ..conftest import make_dumbbell, make_flow


def test_parameter_validation():
    sim = Simulator()
    db = make_dumbbell(sim)
    with pytest.raises(ValueError):
        make_flow(sim, db, sender_cls=VegasSender, alpha=5.0, beta=3.0)


def test_vegas_keeps_small_backlog():
    """A single Vegas flow parks only alpha..beta packets in the queue."""
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, bw=8e6, buffer_pkts=100)
    sender, sink = make_flow(sim, db, sender_cls=VegasSender)
    sender.start()
    qlen_samples = []

    def sample():
        qlen_samples.append(len(db.bottleneck_queue))
        sim.schedule(0.1, sample)

    sim.schedule(5.0, sample)
    sim.run(until=15.0)
    mean_q = sum(qlen_samples) / len(qlen_samples)
    # steady backlog close to the alpha..beta band (plus ACK jitter)
    assert 0.2 <= mean_q <= 8.0
    assert db.bottleneck_queue.stats.drops == 0


def test_vegas_avoids_losses_where_sack_drops():
    from repro.tcp.sack import SackSender

    def run(cls):
        sim = Simulator(seed=1)
        db = make_dumbbell(sim, bw=8e6, buffer_pkts=30)
        sender, _ = make_flow(sim, db, sender_cls=cls)
        sender.start()
        sim.run(until=15.0)
        return db.bottleneck_queue.stats.drops

    assert run(SackSender) > 0
    assert run(VegasSender) == 0


def test_vegas_diff_estimate():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=VegasSender)
    sender.min_rtt = 0.1
    sender.cwnd = 10.0
    # rtt equal to base -> zero backlog
    assert sender._diff_packets(0.1) == pytest.approx(0.0)
    # rtt = 2*base -> half the window queued
    assert sender._diff_packets(0.2) == pytest.approx(5.0)


def test_vegas_decreases_when_backlog_exceeds_beta():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=VegasSender, beta=3.0)
    sender.ssthresh = 1.0  # force congestion-avoidance mode
    sender.cwnd = 20.0
    sender.min_rtt = 0.05

    class FakeAck:
        pass

    sender._epoch_end = 0.0
    sender.on_ack(FakeAck(), rtt_sample=0.1)  # backlog = 10 > beta
    assert sender.cwnd == pytest.approx(19.0)


def test_vegas_increases_when_backlog_below_alpha():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=VegasSender, alpha=1.0)
    sender.ssthresh = 1.0
    sender.cwnd = 20.0
    sender.min_rtt = 0.1

    class FakeAck:
        pass

    sender._epoch_end = 0.0
    sender.on_ack(FakeAck(), rtt_sample=0.1001)  # backlog ~ 0 < alpha
    assert sender.cwnd == pytest.approx(21.0)


def test_vegas_holds_within_band():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=VegasSender, alpha=1.0, beta=3.0)
    sender.ssthresh = 1.0
    sender.cwnd = 20.0
    sender.min_rtt = 0.1

    class FakeAck:
        pass

    sender._epoch_end = 0.0
    # backlog = 20 * (0.111-0.1)/0.111 ~ 2 packets: inside [1, 3]
    sender.on_ack(FakeAck(), rtt_sample=0.1111)
    assert sender.cwnd == pytest.approx(20.0)


def test_vegas_adjusts_once_per_rtt():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=VegasSender)
    sender.ssthresh = 1.0
    sender.cwnd = 20.0
    sender.min_rtt = 0.1

    class FakeAck:
        pass

    sender._epoch_end = 0.0
    sender.on_ack(FakeAck(), rtt_sample=0.2)
    w1 = sender.cwnd
    sender.on_ack(FakeAck(), rtt_sample=0.2)  # same epoch: no change
    assert sender.cwnd == w1


def test_vegas_slow_start_exits_on_queueing():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, bw=4e6, buffer_pkts=200)
    sender, _ = make_flow(sim, db, sender_cls=VegasSender)
    sender.start()
    sim.run(until=10.0)
    # Vegas must have left slow start without a loss
    assert sender.ssthresh < 1e8
    assert sender.fast_recoveries == 0 and sender.timeouts == 0
