"""TCP and PERT behaviour under packet reordering (jitter links)."""

import pytest

from repro.core.pert import PertSender
from repro.sim.engine import Simulator
from repro.sim.jitter import JitterLink
from repro.sim.node import Node
from repro.sim.queues import DropTailQueue
from repro.tcp.base import TcpSender, connect_flow


def jitter_path(sim, jitter, bw=8e6, delay=0.01):
    """Two hosts joined by jittery forward / clean reverse links."""
    a = Node(sim, 0, "a")
    b = Node(sim, 1, "b")
    fwd = JitterLink(sim, a, b, bw, delay, DropTailQueue(500), jitter=jitter,
                     rng=sim.stream("fwd-jitter"))
    rev = JitterLink(sim, b, a, bw, delay, DropTailQueue(500), jitter=0.0)
    a.add_route(1, fwd)
    b.add_route(0, rev)
    return a, b, fwd


def test_jitter_link_reorders():
    sim = Simulator(seed=2)
    a, b, fwd = jitter_path(sim, jitter=0.02)
    sender, sink = connect_flow(sim, a, b, flow_id=1, sender_cls=TcpSender)
    sender.start(npackets=300)
    sim.run(until=60.0)
    assert fwd.reorder_opportunities > 0
    assert sink.out_of_order == set()
    assert sink.rcv_next == 300  # reliability despite reordering


def test_mild_reordering_handled_without_timeouts():
    sim = Simulator(seed=2)
    a, b, fwd = jitter_path(sim, jitter=0.002)  # << RTT: 1-2 pkt swaps
    sender, sink = connect_flow(sim, a, b, flow_id=1, sender_cls=TcpSender)
    sender.start(npackets=500)
    sim.run(until=60.0)
    assert sender.done
    assert sender.timeouts == 0
    # dupack threshold 3 absorbs adjacent swaps: few spurious retransmits
    assert sender.retransmits <= 5


def test_heavy_reordering_costs_spurious_retransmits():
    """With jitter >> packet spacing, SACK misreads reordering as loss —
    the known dupthresh-3 failure mode, reproduced for contrast."""
    sim = Simulator(seed=2)
    a, b, fwd = jitter_path(sim, jitter=0.05)
    sender, sink = connect_flow(sim, a, b, flow_id=1, sender_cls=TcpSender)
    sender.start(npackets=500)
    sim.run(until=120.0)
    assert sender.done
    assert sender.retransmits > 5


def test_pert_signal_survives_jitter():
    """Jitter noise must not drive PERT's smoothed signal into constant
    early response on an uncongested path."""
    sim = Simulator(seed=2)
    a, b, fwd = jitter_path(sim, jitter=0.004)
    sender, sink = connect_flow(sim, a, b, flow_id=1, sender_cls=PertSender,
                                max_cwnd=15.0)  # below path BDP: no queue
    sender.start()
    sim.run(until=30.0)
    acks = sender.cum_ack
    assert acks > 1000
    # a handful of responses from jitter tails is acceptable; constant
    # response (once per RTT ~ 40/s for 30 s) is not
    assert sender.early_responses < 100


def test_jitter_validation():
    sim = Simulator(seed=1)
    a, b = Node(sim, 0), Node(sim, 1)
    with pytest.raises(ValueError):
        JitterLink(sim, a, b, 1e6, 0.01, DropTailQueue(10), jitter=-1.0)
