"""Unit tests for the receiver (cumulative ACK, SACK blocks) and ECN."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.queues import RedQueue
from repro.tcp.base import TcpSink

from ..conftest import make_dumbbell, make_flow
from repro.tcp.sack import SackEcnSender


class AckCatcher:
    def __init__(self):
        self.acks = []

    def receive(self, pkt):
        self.acks.append(pkt)


def make_sink(sim):
    recv_node = Node(sim, 0, "recv")
    send_node = Node(sim, 1, "send")
    catcher = AckCatcher()
    send_node.register_endpoint(7, catcher)
    # loopback: sink's acks are routed directly to the catcher's node
    class DirectLink:
        def __init__(self, dst):
            self.dst = dst

        def send(self, pkt):
            self.dst.receive(pkt)

    recv_node.add_route(1, DirectLink(send_node))
    sink = TcpSink(sim, recv_node, flow_id=7, src=1)
    return sink, catcher


def data(seq, ce=False, cwr=False):
    p = Packet(flow_id=7, src=1, dst=0, seq=seq)
    p.ce = ce
    p.cwr = cwr
    return p


def test_in_order_cumulative_acks():
    sim = Simulator()
    sink, catcher = make_sink(sim)
    for i in range(3):
        sink.receive(data(i))
    assert [a.ack_seq for a in catcher.acks] == [1, 2, 3]
    assert all(not a.sack_blocks for a in catcher.acks)


def test_gap_generates_dupacks_with_sack():
    sim = Simulator()
    sink, catcher = make_sink(sim)
    sink.receive(data(0))
    sink.receive(data(2))  # hole at 1
    sink.receive(data(3))
    acks = catcher.acks
    assert [a.ack_seq for a in acks] == [1, 1, 1]
    assert acks[1].sack_blocks == [(2, 3)]
    assert acks[2].sack_blocks == [(2, 4)]


def test_hole_fill_advances_past_buffered():
    sim = Simulator()
    sink, catcher = make_sink(sim)
    for seq in (0, 2, 3, 1):
        sink.receive(data(seq))
    assert catcher.acks[-1].ack_seq == 4
    assert sink.out_of_order == set()


def test_multiple_sack_blocks_capped_at_three():
    sim = Simulator()
    sink, catcher = make_sink(sim)
    sink.receive(data(0))
    for seq in (2, 4, 6, 8, 10):  # five separate blocks
        sink.receive(data(seq))
    blocks = catcher.acks[-1].sack_blocks
    assert len(blocks) == 3
    # the highest blocks are kept
    assert blocks[-1] == (10, 11)


def test_duplicate_data_counted():
    sim = Simulator()
    sink, catcher = make_sink(sim)
    sink.receive(data(0))
    sink.receive(data(0))
    assert sink.dup_pkts == 1


def test_ecn_echo_until_cwr():
    sim = Simulator()
    sink, catcher = make_sink(sim)
    sink.receive(data(0, ce=True))
    sink.receive(data(1))
    assert catcher.acks[0].ece and catcher.acks[1].ece
    sink.receive(data(2, cwr=True))
    assert not catcher.acks[2].ece
    sink.receive(data(3))
    assert not catcher.acks[3].ece


def test_ecn_sender_reduces_once_per_rtt():
    """End-to-end: ECN marks cause window reduction without loss."""
    sim = Simulator(seed=1)

    def red():
        return RedQueue(capacity_pkts=100, min_th=4, max_th=12, max_p=0.5,
                        w_q=0.2, ecn=True, rng=sim.stream("red", unique=True))

    db = make_dumbbell(sim, bw=4e6, qdisc_factory=red)
    sender, sink = make_flow(sim, db, sender_cls=SackEcnSender)
    sender.start()
    sim.run(until=10.0)
    assert sender.ecn_responses > 0
    assert db.fwd.qdisc.stats.marks > 0
    # ECN kept the transfer loss-free at the bottleneck for ECT data
    assert sender.timeouts <= 1
    assert sink.rcv_next > 1000


def test_ect_set_only_when_negotiated():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s_ecn, _ = make_flow(sim, db, idx=0, sender_cls=SackEcnSender)
    s_plain, _ = make_flow(sim, db, idx=1)
    s_ecn.start(npackets=5)
    s_plain.start(npackets=5)
    seen = {"ecn": [], "plain": []}
    orig = db.fwd.qdisc.enqueue

    def spy(pkt, now):
        if not pkt.is_ack:
            seen["ecn" if pkt.flow_id == 1000 else "plain"].append(pkt.ect)
        return orig(pkt, now)

    db.fwd.qdisc.enqueue = spy
    sim.run(until=5.0)
    assert all(seen["ecn"]) and seen["ecn"]
    assert not any(seen["plain"]) and seen["plain"]
