"""Unit tests for loss detection and recovery (SACK, dupacks, RTO)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.tcp.base import TcpSender, TcpSink
from repro.tcp.reno import NewRenoSender

from ..conftest import make_dumbbell, make_flow


class LossyQueue(DropTailQueue):
    """DropTail that deterministically drops selected data seqs once."""

    def __init__(self, capacity_pkts, drop_seqs):
        super().__init__(capacity_pkts)
        self.drop_seqs = set(drop_seqs)

    def admit(self, pkt, now):
        if not pkt.is_ack and pkt.seq in self.drop_seqs and not pkt.is_retransmit:
            self.drop_seqs.discard(pkt.seq)
            return "drop"
        return super().admit(pkt, now)


def run_lossy(drop_seqs, npackets=60, sender_cls=TcpSender):
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=lambda: LossyQueue(200, drop_seqs))
    sender, sink = make_flow(sim, db, sender_cls=sender_cls)
    sender.start(npackets=npackets)
    sim.run(until=60.0)
    return sender, sink


def test_single_loss_recovered_by_fast_retransmit():
    sender, sink = run_lossy({10})
    assert sink.rcv_next == 60
    assert sender.fast_recoveries == 1
    assert sender.timeouts == 0
    assert sender.retransmits == 1


def test_loss_halves_window():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=lambda: LossyQueue(200, {30}))
    sender, sink = make_flow(sim, db)
    sender.start(npackets=100)
    cwnd_at_loss = []
    orig = sender._enter_recovery

    def spy():
        cwnd_at_loss.append(sender.cwnd)
        orig()

    sender._enter_recovery = spy
    sim.run(until=30.0)
    assert sink.rcv_next == 100
    # after recovery entry, cwnd = ssthresh = old cwnd * 0.5
    assert sender.ssthresh <= cwnd_at_loss[0] * 0.5 + 1e-9


def test_burst_loss_recovered_without_timeout():
    sender, sink = run_lossy({20, 21, 22, 23})
    assert sink.rcv_next == 60
    assert sender.timeouts == 0
    assert sender.retransmits == 4


def test_scattered_losses_recovered():
    sender, sink = run_lossy({5, 17, 33, 48})
    assert sink.rcv_next == 60
    assert sender.timeouts == 0


def test_lost_retransmission_triggers_timeout():
    class DoubleDropQueue(DropTailQueue):
        def __init__(self):
            super().__init__(200)
            self.drops_left = 2

        def admit(self, pkt, now):
            if not pkt.is_ack and pkt.seq == 10 and self.drops_left:
                self.drops_left -= 1
                return "drop"
            return super().admit(pkt, now)

    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=DoubleDropQueue)
    sender, sink = make_flow(sim, db)
    sender.start(npackets=40)
    sim.run(until=60.0)
    assert sink.rcv_next == 40
    assert sender.timeouts >= 1


def test_timeout_resets_to_slow_start():
    class BlackholeQueue(DropTailQueue):
        """Drops everything in a time window (simulates outage)."""

        def __init__(self, sim):
            super().__init__(200)
            self.sim = sim

        def admit(self, pkt, now):
            if 0.5 < now < 1.5:
                return "drop"
            return super().admit(pkt, now)

    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=lambda: BlackholeQueue(sim))
    sender, sink = make_flow(sim, db)
    sender.start()
    sim.run(until=10.0)
    assert sender.timeouts >= 1
    assert sink.rcv_next > 0
    # flow recovered after the outage
    delivered_at_2 = sink.rcv_next
    sim.run(until=12.0)
    assert sink.rcv_next > delivered_at_2


def test_loss_events_recorded():
    sender, sink = run_lossy({10, 30})
    assert len(sender.loss_events) == 2


def test_newreno_recovers_single_loss():
    sender, sink = run_lossy({10}, sender_cls=NewRenoSender)
    assert sink.rcv_next == 60
    assert sender.fast_recoveries >= 1


def test_newreno_recovers_multiple_losses():
    sender, sink = run_lossy({10, 11, 25}, sender_cls=NewRenoSender)
    assert sink.rcv_next == 60


def test_karn_no_rtt_sample_from_retransmit():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, qdisc_factory=lambda: LossyQueue(200, {5}))
    sender, sink = make_flow(sim, db, record_rtt=True)
    sender.start(npackets=30)
    sim.run(until=30.0)
    # all recorded samples must be plausible path RTTs (no rtx ambiguity:
    # a sample measured from the original send of a retransmitted packet
    # would be far larger than the true RTT)
    rtts = [r for _, r, _ in sender.rtt_trace]
    assert max(rtts) < 0.2
