"""Dashboard server: RunView aggregation, JSON APIs, SSE stream."""

import json
import threading
import time
import urllib.request

import pytest

from repro.obs.bus import EventBus
from repro.runner import JobSpec, run_jobs
from repro.runner.cache import ResultCache
from repro.serve import RunView, make_server, serve_in_background


def _emit_lifecycle(path, key="k1", fail=False):
    bus = EventBus(path)
    bus.emit("run_started", total=1)
    bus.emit("job_started", key=key, kind="dumbbell", scheme="pert", seed=3,
             attempt=1)
    bus.emit("phase_started", key=key, phase="warmup")
    bus.emit("phase_finished", key=key, phase="warmup", seconds=0.5)
    bus.emit("heartbeat", key=key, sim_now=10.0, events=100, sched=150,
             peak_rss_kb=9000)
    bus.emit("heartbeat", key=key, sim_now=20.0, events=200, sched=350,
             peak_rss_kb=9100)
    if fail:
        bus.emit("job_failed", key=key, error="boom", attempts=2)
    else:
        bus.emit("job_finished", key=key, wall_time=1.5, events=200,
                 attempts=1)
    bus.emit("run_finished", stats={"done": 0 if fail else 1, "total": 1})
    bus.close()


# ---------------------------------------------------------------------------
# RunView


def test_runview_builds_job_states_from_bus(tmp_path):
    _emit_lifecycle(tmp_path / "events.jsonl")
    view = RunView(tmp_path)
    assert view.refresh() == 8
    assert view.refresh() == 0  # incremental: nothing new to apply
    jobs = view.jobs()
    assert len(jobs) == 1
    job = jobs[0]
    assert job["state"] == "done"
    assert job["scheme"] == "pert"
    assert job["sim_now"] == 20.0
    assert job["wall_time"] == 1.5
    assert job["phase"] is None  # warmup closed cleanly
    runs = view.runs()
    assert runs["job_counts"]["done"] == 1
    assert runs["runs"][0]["stats"]["done"] == 1
    assert runs["runs"][0]["finished_ts"] is not None


def test_runview_derives_live_rate_from_heartbeats(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus(path)
    bus.emit("job_started", key="k", kind="d", scheme=None, seed=None,
             attempt=1)
    bus.emit("heartbeat", key="k", sim_now=1.0, events=0, sched=100,
             peak_rss_kb=1)
    bus.close()
    # forge a second beat 2 wall-seconds and 500 sched-events later
    first = json.loads(path.read_text().splitlines()[-1])
    second = dict(first, ts=first["ts"] + 2.0, sched=600, sim_now=3.0)
    with path.open("a") as fh:
        fh.write(json.dumps(second) + "\n")
    view = RunView(tmp_path)
    view.refresh()
    job = view.jobs()[0]
    assert job["state"] == "running"
    assert job["rate"] == pytest.approx(250.0)


def test_runview_failed_job_and_torn_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    _emit_lifecycle(path, fail=True)
    with path.open("a") as fh:
        fh.write('{"v": 1, "type": "job_started", "ke')  # torn write
    view = RunView(tmp_path)
    view.refresh()
    job = view.jobs()[0]
    assert job["state"] == "failed"
    assert job["error"] == "boom"
    assert view.runs()["job_counts"]["failed"] == 1
    # the torn tail completes later: the event must then apply
    with path.open("a") as fh:
        fh.write('y": "k2", "kind": "d", "scheme": null, "seed": null, '
                 '"attempt": 1, "ts": 5.0, "pid": 1}\n')
    view.refresh()
    assert view.runs()["jobs_seen"] == 2


def test_runview_aggregates_fleet_events(tmp_path):
    bus = EventBus(tmp_path / "events.jsonl")
    bus.emit("fleet_submitted", sweep="s", jobs=3, deduped=1)
    bus.emit("fleet_queue", pending=2, leased=0, done=1, failed=0)
    bus.emit("fleet_worker", worker="w1", state="started")
    bus.emit("fleet_worker", worker="w2", state="started")
    bus.emit("fleet_leased", key="a" * 64, worker="w1", expires=99.0,
             attempt=1)
    bus.emit("fleet_done", key="a" * 64, worker="w1", store="fresh")
    bus.emit("fleet_done", key="b" * 64, worker="w2", store="hit")
    bus.emit("fleet_requeued", key="c" * 64, reason="lease_expired")
    bus.emit("fleet_failed", key="c" * 64, worker="w2", error="boom")
    bus.emit("fleet_worker", worker="w2", state="exited")
    bus.emit("fleet_queue", pending=0, leased=0, done=2, failed=1)
    bus.close()
    view = RunView(tmp_path)
    view.refresh()
    fleet = view.fleet()
    assert fleet["queue"] == {"pending": 0, "leased": 0, "done": 2,
                              "failed": 1}
    assert fleet["workers_alive"] == 1 and fleet["workers_seen"] == 2
    assert fleet["sweeps"][0]["sweep"] == "s"
    assert fleet["done_fresh"] == 1 and fleet["done_hit"] == 1
    assert fleet["failed"] == 1 and fleet["requeued"] == 1
    # fleet events aggregate; they must not pollute the per-job table
    assert view.jobs() == []
    assert view.runs()["fleet"]["queue"]["done"] == 2


def test_runview_fleet_is_none_without_fleet_events(tmp_path):
    _emit_lifecycle(tmp_path / "events.jsonl")
    view = RunView(tmp_path)
    view.refresh()
    assert view.fleet() is None
    assert view.runs()["fleet"] is None


def test_runview_metrics_and_history(tmp_path):
    (tmp_path / "k.manifest.json").write_text(json.dumps({
        "schema": 1, "key": "k", "kind": "dumbbell", "params": {},
        "scheme": "pert", "seed": 1, "wall_time": 2.0, "events": 5000,
        "result": {"drop_rate": 0.01},
    }))
    hist = tmp_path / "BENCH_history.jsonl"
    hist.write_text(json.dumps({"schema": "repro-bench-history/1",
                                "rates": {"engine.churn": 1e6}}) + "\n"
                    + "{garbage\n")
    view = RunView(tmp_path, history=hist)
    metrics = view.metrics()
    assert metrics["jobs"] == 1
    assert metrics["schemes"]["pert"]["events_per_sec"] == pytest.approx(2500)
    history = view.history()
    assert len(history["entries"]) == 1  # garbage line skipped
    assert RunView(tmp_path).history()["entries"] == []  # no history wired


# ---------------------------------------------------------------------------
# HTTP layer


@pytest.fixture
def live_server(tmp_path):
    specs = [
        JobSpec(kind="tests.runner.jobs:events",
                params={"value": i, "events": 20, "scheme": "pert", "seed": i})
        for i in range(2)
    ]
    run_jobs(specs, workers=0, cache=ResultCache(tmp_path),
             bus=tmp_path / "events.jsonl")
    server, url = serve_in_background(tmp_path)
    yield server, url
    server.shutdown()
    server.server_close()


def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        assert resp.headers["Content-Type"] == "application/json"
        return json.load(resp)


def test_api_endpoints_serve_run_state(live_server):
    server, url = live_server
    runs = _get_json(url + "api/runs")
    assert runs["bus_exists"] is True
    assert runs["job_counts"]["done"] == 2
    jobs = _get_json(url + "api/jobs")["jobs"]
    assert len(jobs) == 2
    assert all(j["state"] == "done" for j in jobs)
    metrics = _get_json(url + "api/metrics")
    assert metrics["jobs"] == 2
    assert "pert" in metrics["schemes"]
    history = _get_json(url + "api/history")
    assert history["entries"] == []


def test_dashboard_page_and_404(live_server):
    server, url = live_server
    with urllib.request.urlopen(url, timeout=10) as resp:
        html = resp.read().decode()
    assert "repro.serve" in html
    assert "/events?replay=1" in html
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(url + "api/nope", timeout=10)
    assert err.value.code == 404


def test_sse_stream_replays_bus_events(live_server):
    server, url = live_server
    req = urllib.request.Request(url + "events?replay=1")
    with urllib.request.urlopen(req, timeout=10) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        datas = []
        while len(datas) < 3:
            line = resp.readline().decode().rstrip("\n")
            if line.startswith("data: "):
                datas.append(json.loads(line[len("data: "):]))
    assert datas[0]["type"] == "run_started"
    assert datas[1]["type"] == "job_started"


def test_sse_stream_sees_events_appended_after_connect(live_server, tmp_path):
    server, url = live_server
    bus_path = server.view.bus_path
    datas = []
    done = threading.Event()

    def reader():
        req = urllib.request.Request(url + "events")
        with urllib.request.urlopen(req, timeout=10) as resp:
            while not datas:
                line = resp.readline().decode().rstrip("\n")
                if line.startswith("data: "):
                    datas.append(json.loads(line[len("data: "):]))
        done.set()

    t = threading.Thread(target=reader, daemon=True)
    t.start()
    time.sleep(0.3)  # let the stream attach at end-of-file
    bus = EventBus(bus_path)
    bus.emit("job_cached", key="late")
    bus.close()
    assert done.wait(10.0), "SSE reader never saw the appended event"
    assert datas[0]["type"] == "job_cached"
    assert datas[0]["key"] == "late"


def test_sse_keepalive_reaches_slow_consumer(tmp_path):
    """An idle stream still carries bytes: comment keepalives hold the
    connection open for consumers (or proxies) that read slowly."""
    server = make_server(tmp_path, port=0, keepalive_every=0.2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        req = urllib.request.Request(f"http://{host}:{port}/events")
        with urllib.request.urlopen(req, timeout=10) as resp:
            keepalives = 0
            deadline = time.monotonic() + 10.0
            while keepalives < 2 and time.monotonic() < deadline:
                line = resp.readline().decode().rstrip("\n")
                if line.startswith(":"):
                    keepalives += 1
                    time.sleep(0.3)  # a consumer slower than the interval
        assert keepalives == 2
    finally:
        server.shutdown()
        server.server_close()


def test_tail_events_keepalive_interval_is_configurable(tmp_path):
    view = RunView(tmp_path)
    stop = threading.Event()
    stream = view.tail_events(poll=0.05, stop=stop, keepalive_every=0.1)
    kind, text = next(stream)
    assert (kind, text) == ("keepalive", "")
    stop.set()


def test_make_server_binds_ephemeral_port(tmp_path):
    server = make_server(tmp_path, port=0)
    try:
        assert server.server_address[1] != 0
        assert server.view.run_dir == tmp_path
    finally:
        server.server_close()
