"""Tests for the time-series metrics."""

import pytest

from repro.metrics.timeseries import (
    moving_average,
    relative_error_series,
    settling_time,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        xs = [1.0, 5.0, 2.0]
        assert moving_average(xs, 1) == xs

    def test_partial_prefix(self):
        out = moving_average([2.0, 4.0, 6.0, 8.0], 3)
        assert out[0] == 2.0
        assert out[1] == 3.0
        assert out[2] == 4.0
        assert out[3] == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestRelativeError:
    def test_values(self):
        assert relative_error_series([8.0, 12.0], 10.0) == [
            pytest.approx(0.2), pytest.approx(0.2)]

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            relative_error_series([1.0], 0.0)


class TestSettlingTime:
    def test_immediate_settle(self):
        times = [0, 1, 2, 3, 4]
        series = [10, 10, 10, 10, 10]
        assert settling_time(times, series, 10.0, hold=3) == 0

    def test_settles_after_transient(self):
        times = list(range(8))
        series = [1, 2, 30, 10, 10, 10, 10, 10]
        assert settling_time(times, series, 10.0, tolerance=0.2, hold=3) == 3

    def test_never_settles(self):
        times = list(range(5))
        series = [1, 100, 1, 100, 1]
        assert settling_time(times, series, 10.0) is None

    def test_relapse_moves_settling_later(self):
        # settles, relapses, settles again: the final entry counts
        times = list(range(10))
        series = [10, 10, 10, 10, 50, 50, 10, 10, 10, 10]
        assert settling_time(times, series, 10.0, hold=3) == 6

    def test_hold_requirement(self):
        times = list(range(4))
        series = [10, 10, 1, 1]
        assert settling_time(times, series, 10.0, hold=3) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            settling_time([0], [1, 2], 1.0)
        with pytest.raises(ValueError):
            settling_time([0], [1], 1.0, tolerance=1.5)
