"""Unit tests for fairness and statistics helpers."""

import pytest

from repro.metrics.fairness import jain_index
from repro.metrics.stats import histogram_pdf, mean, percentile, stdev


class TestJain:
    def test_equal_allocation_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_user_takes_all(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        xs = [1.0, 7.0, 2.0, 9.0]
        j = jain_index(xs)
        assert 1.0 / len(xs) <= j <= 1.0

    def test_scale_invariant(self):
        xs = [1.0, 2.0, 3.0]
        assert jain_index(xs) == pytest.approx(jain_index([10 * x for x in xs]))

    def test_empty_and_zero(self):
        assert jain_index([]) == 0.0
        assert jain_index([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([2, 2, 2]) == 0.0
        assert stdev([1]) == 0.0
        assert stdev([0, 2]) == pytest.approx(1.0)

    def test_percentile(self):
        xs = [1, 2, 3, 4, 5]
        assert percentile(xs, 0) == 1
        assert percentile(xs, 50) == 3
        assert percentile(xs, 100) == 5
        assert percentile(xs, 25) == pytest.approx(2.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_empty_and_single(self):
        assert percentile([], 50) == 0.0
        assert percentile([7], 99) == 7


class TestHistogram:
    def test_masses_sum_to_one(self):
        pdf = histogram_pdf([0.1, 0.2, 0.7, 0.9], bins=4)
        assert sum(p for _, p in pdf) == pytest.approx(1.0)

    def test_bin_centers(self):
        pdf = histogram_pdf([0.1], bins=2, lo=0.0, hi=1.0)
        assert [c for c, _ in pdf] == [0.25, 0.75]

    def test_out_of_range_clamped_to_edges(self):
        pdf = histogram_pdf([-5.0, 5.0], bins=2)
        assert pdf[0][1] == pytest.approx(0.5)
        assert pdf[1][1] == pytest.approx(0.5)

    def test_empty_input_all_zero(self):
        pdf = histogram_pdf([], bins=3)
        assert all(p == 0.0 for _, p in pdf)

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_pdf([1.0], bins=0)
        with pytest.raises(ValueError):
            histogram_pdf([1.0], bins=2, lo=1.0, hi=0.0)
