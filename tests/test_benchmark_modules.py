"""Import-time sanity for the benchmark suite (no benchmarks executed)."""

import importlib
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
MODULES = sorted(p.stem for p in BENCH_DIR.glob("test_*.py"))


@pytest.mark.parametrize("name", MODULES)
def test_benchmark_module_imports(name):
    mod = importlib.import_module(f"benchmarks.{name}")
    assert mod.__doc__, f"benchmarks/{name}.py lacks a docstring"


def test_every_paper_artifact_has_a_benchmark():
    present = set(MODULES)
    for required in ("test_fig2", "test_fig3", "test_fig4", "test_fig5",
                     "test_fig6", "test_fig7", "test_fig8", "test_fig9",
                     "test_table1", "test_fig11", "test_fig12", "test_fig13",
                     "test_fig14", "test_ablations"):
        assert required in present, f"missing benchmarks/{required}.py"


def test_render_scripts_importable():
    import importlib.util
    for script in ("render_experiments", "write_experiments_md"):
        spec = importlib.util.spec_from_file_location(
            script, BENCH_DIR / f"{script}.py")
        mod = importlib.util.module_from_spec(spec)
        import sys
        sys.path.insert(0, str(BENCH_DIR))
        try:
            spec.loader.exec_module(mod)
        finally:
            sys.path.remove(str(BENCH_DIR))
        assert hasattr(mod, "main")
