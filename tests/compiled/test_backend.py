"""Selection, fallback and cross-process guarantees of ``repro.compiled``.

The differential suite proves the compiled engine is bit-identical when
it runs; this suite proves the machinery *around* it behaves:

* a broken extension (present but unimportable) degrades to pure Python
  with exactly one ``RuntimeWarning``;
* a merely missing extension is silent unless ``REPRO_COMPILED``
  explicitly requested one (then: one warning, still a clean fallback);
* ``REPRO_COMPILED=0`` pins the pure engine even when an extension is
  built;
* snapshots cross process boundaries in both directions — captured
  under the compiled engine and restored in a process where the
  extension is pinned off, and vice versa — landing on bit-identical
  results.

The cross-process tests skip when no extension is built, so a fresh
pure-Python checkout stays green with zero build steps.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro.compiled as compiled
from repro.compiled import engine_class, reset, status
from repro.sim.engine import ArraySimulator, Simulator, get_engine_class

COMPILED_AVAILABLE = status().available

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")

#: quick differential workload (matches tests/differential quick tier)
KW = dict(bandwidth=3e6, rtt=0.04, n_fwd=3, duration=2.5, warmup=1.0, seed=3)


@pytest.fixture(autouse=True)
def _fresh_probe(monkeypatch):
    """Isolate each test's probe cache and warning latches."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    reset()
    yield
    reset()


def _force_import_failure(monkeypatch, exc):
    """Make every tier's import raise *exc* (the broken/missing seam)."""

    def _fail(modname):
        raise exc

    monkeypatch.setattr(compiled, "_import_tier", _fail)


def test_broken_extension_single_warning_then_pure(monkeypatch):
    """A present-but-unimportable artifact warns once and falls back."""
    _force_import_failure(monkeypatch, ImportError("simulated ABI mismatch"))
    with pytest.warns(RuntimeWarning, match="falling back to the pure"):
        assert engine_class() is None
    st = status()
    assert not st.available
    assert "simulated ABI mismatch" in (st.error or "")
    # the warning is latched: repeated probes stay silent
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert engine_class() is None
        assert get_engine_class() is ArraySimulator
        assert type(Simulator(seed=0)) is ArraySimulator


def test_missing_extension_is_silent(monkeypatch):
    """No artifact built + no explicit request = no noise, pure engine."""
    _force_import_failure(monkeypatch, ModuleNotFoundError("not built"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert engine_class() is None
        assert status().error is None
        assert get_engine_class() is ArraySimulator


def test_missing_extension_warns_when_requested(monkeypatch):
    """REPRO_COMPILED=1 with nothing built warns once, still falls back."""
    _force_import_failure(monkeypatch, ModuleNotFoundError("not built"))
    monkeypatch.setenv("REPRO_COMPILED", "1")
    with pytest.warns(RuntimeWarning, match="none is built"):
        assert engine_class() is None
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert engine_class() is None
        assert type(Simulator(seed=0)) is ArraySimulator


@pytest.mark.skipif(not COMPILED_AVAILABLE, reason="compiled engine not built")
def test_disabled_knob_pins_pure(monkeypatch):
    """REPRO_COMPILED=0 serves exactly ArraySimulator despite the build."""
    monkeypatch.setenv("REPRO_COMPILED", "0")
    assert engine_class() is None
    assert compiled.active_tier() is None
    cls = get_engine_class()
    assert cls is ArraySimulator
    sim = Simulator(seed=0)
    assert type(sim) is ArraySimulator
    # flipping the knob back re-enables the extension in-process
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    assert engine_class() is not None
    assert issubclass(get_engine_class(), ArraySimulator)
    assert get_engine_class() is not ArraySimulator


def _metric_list(result):
    """JSON-portable projection of the figure metrics (exact values)."""
    return [
        result.events_processed,
        result.mean_queue_pkts,
        result.drop_rate,
        result.mark_rate,
        result.utilization,
        result.jain,
        list(result.flow_goodputs_bps),
        result.early_responses,
        result.timeouts,
    ]


#: runs in a subprocess with REPRO_COMPILED pinned by the parent; mode
#: "restore" finishes a snapshot, "capture" warms one, "native" runs the
#: whole workload cold — all print/accept JSON on stdout/argv
_CHILD = """\
import json, sys
mode, path = sys.argv[1], sys.argv[2]
kw = json.loads(sys.argv[3])
from repro.compiled import active_tier
from repro.experiments.common import (
    _dumbbell_result, _measure_dumbbell, run_dumbbell, warm_dumbbell_bytes,
)
from repro.sim.engine import ArraySimulator
from repro.snapshot import restore_bytes
if mode == "capture":
    body = warm_dumbbell_bytes("pert", **{k: v for k, v in kw.items()
                                          if k != "duration"})
    open(path, "wb").write(body)
    print(json.dumps({"tier": active_tier()}))
elif mode == "restore":
    sim, state = restore_bytes(open(path, "rb").read(), engine="array")
    assert type(sim) is ArraySimulator, type(sim).__name__
    state.params = dict(state.params, duration=kw["duration"])
    _measure_dumbbell(state)
    result = _dumbbell_result(state)
    print(json.dumps([
        result.events_processed, result.mean_queue_pkts, result.drop_rate,
        result.mark_rate, result.utilization, result.jain,
        list(result.flow_goodputs_bps), result.early_responses,
        result.timeouts,
    ]))
else:
    raise SystemExit(f"unknown mode {mode}")
"""


def _child(mode, path, env_overrides):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_ENGINE", None)
    env.pop("REPRO_COMPILED", None)
    env.update(env_overrides)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(path), json.dumps(KW)],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.skipif(not COMPILED_AVAILABLE, reason="compiled engine not built")
def test_compiled_snapshot_restores_in_pure_process(monkeypatch, tmp_path):
    """A compiled-engine snapshot finishes identically where it's pinned off."""
    from repro.experiments.common import run_dumbbell, warm_dumbbell_bytes

    assert engine_class() is not None  # capture really is compiled
    body = warm_dumbbell_bytes(
        "pert", **{k: v for k, v in KW.items() if k != "duration"})
    path = tmp_path / "compiled.snap"
    path.write_bytes(body)

    crossed = _child("restore", path, {"REPRO_COMPILED": "0"})

    # reference: the same workload cold, natively under pure Python
    monkeypatch.setenv("REPRO_COMPILED", "0")
    native = run_dumbbell("pert", **KW)
    assert crossed == _metric_list(native)


@pytest.mark.skipif(not COMPILED_AVAILABLE, reason="compiled engine not built")
def test_pure_snapshot_restores_under_compiled(tmp_path):
    """A pure-process snapshot finishes identically under the extension."""
    from repro.experiments.common import (
        _dumbbell_result, _measure_dumbbell, run_dumbbell)
    from repro.snapshot import restore_bytes

    path = tmp_path / "pure.snap"
    meta = _child("capture", path, {"REPRO_COMPILED": "0"})
    assert meta["tier"] is None  # the child really ran pure

    sim, state = restore_bytes(path.read_bytes(), engine="compiled")
    assert type(sim).__name__ == "CompiledSimulator"
    state.params = dict(state.params, duration=KW["duration"])
    _measure_dumbbell(state)
    crossed = _dumbbell_result(state)

    native = run_dumbbell("pert", **KW)
    assert _metric_list(crossed) == _metric_list(native)
