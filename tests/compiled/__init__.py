"""Tests for the optional compiled engine backend (:mod:`repro.compiled`)."""
