"""Unit tests: job specs, cache keys, and the on-disk result cache."""

import json

import pytest

from repro.runner import (
    JobSpec,
    ResultCache,
    canonical_json,
    dumbbell_spec,
    resolve_cache,
    resolve_workers,
)


# ----------------------------------------------------------------------
# spec / cache-key determinism
# ----------------------------------------------------------------------
def test_cache_key_independent_of_param_order():
    a = JobSpec("dumbbell", {"bandwidth": 4e6, "seed": 1, "scheme": "pert"})
    b = JobSpec("dumbbell", {"scheme": "pert", "bandwidth": 4e6, "seed": 1})
    assert a.cache_key == b.cache_key


def test_cache_key_covers_every_param_and_kind():
    base = dumbbell_spec("pert", bandwidth=4e6)
    assert dumbbell_spec("pert", bandwidth=8e6).cache_key != base.cache_key
    assert dumbbell_spec("vegas", bandwidth=4e6).cache_key != base.cache_key
    assert dumbbell_spec("pert", bandwidth=4e6, seed=2).cache_key != base.cache_key
    other_kind = JobSpec("parking_lot", dict(base.params))
    assert other_kind.cache_key != base.cache_key


def test_dumbbell_spec_makes_default_seed_explicit():
    spec = dumbbell_spec("pert", bandwidth=4e6)
    assert spec.params["seed"] == 1
    # explicit seed=1 and implicit default must hash identically
    assert spec.cache_key == dumbbell_spec("pert", bandwidth=4e6, seed=1).cache_key


def test_spec_rejects_non_json_params():
    with pytest.raises(TypeError):
        JobSpec("dumbbell", {"callback": lambda: None})


def test_canonical_json_is_stable():
    assert canonical_json({"b": 1, "a": [1.5, 2]}) == '{"a":[1.5,2],"b":1}'


# ----------------------------------------------------------------------
# on-disk cache behaviour
# ----------------------------------------------------------------------
def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    spec = dumbbell_spec("pert", bandwidth=4e6)
    assert cache.get(spec) is None
    cache.put(spec, {"norm_queue": 0.25}, meta={"events": 10})
    entry = cache.get(spec)
    assert entry["payload"] == {"norm_queue": 0.25}
    assert entry["meta"]["events"] == 10
    assert entry["kind"] == "dumbbell"


def test_cache_corrupt_file_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path)
    spec = dumbbell_spec("pert", bandwidth=4e6)
    cache.put(spec, {"v": 1})
    path = cache.path_for(spec)
    path.write_text("{ not json !!!")
    assert cache.get(spec) is None
    assert not path.exists()  # corrupt entry discarded for rebuild


def test_cache_key_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = dumbbell_spec("pert", bandwidth=4e6)
    cache.put(spec, {"v": 1})
    path = cache.path_for(spec)
    entry = json.loads(path.read_text())
    entry["key"] = "0" * 64
    path.write_text(json.dumps(entry))
    assert cache.get(spec) is None


def test_resolve_cache_modes(tmp_path, monkeypatch):
    assert resolve_cache(False) is None
    assert resolve_cache(tmp_path).root == tmp_path
    cache = ResultCache(tmp_path)
    assert resolve_cache(cache) is cache
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert resolve_cache(None) is None
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert resolve_cache(None).root == tmp_path / "env"


def test_resolve_workers(monkeypatch):
    assert resolve_workers(3) == 3
    assert resolve_workers(0) == 0
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 0
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert resolve_workers(None) == 5
    with pytest.raises(ValueError):
        resolve_workers(-1)
