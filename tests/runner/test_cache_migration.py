"""Schema-1 → schema-2 cache migration: rehash in place, one shot."""

from __future__ import annotations

import hashlib
import json

from repro.obs.manifest import MANIFEST_SUFFIX
from repro.runner.cache import (
    CHECKPOINT_SUFFIX,
    SCHEMA_MARKER,
    ResultCache,
    migrate_cache,
)
from repro.runner.spec import CACHE_SCHEMA, JobSpec, canonical_json, content_key


def _old_key(kind: str, params: dict, version: str = "0.9.0") -> str:
    """A schema-1 key: salted with the package version of the writer."""
    material = f"1|{version}|{kind}|{canonical_json(params)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _write_legacy_entry(root, kind, params, payload, version="0.9.0"):
    """Plant a cache entry exactly as a schema-1 runner laid it out."""
    key = _old_key(kind, params, version)
    path = root / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "key": key, "kind": kind, "params": params,
        "payload": payload, "meta": {},
    }))
    return key, path


def test_content_key_is_version_free():
    """Schema 2's whole point: the same content, the same key, forever."""
    key = content_key("dumbbell", {"scheme": "pert", "x": 1})
    assert key == JobSpec("dumbbell", {"x": 1, "scheme": "pert"}).cache_key
    material = f"{CACHE_SCHEMA}|dumbbell|" + canonical_json(
        {"scheme": "pert", "x": 1})
    assert key == hashlib.sha256(material.encode()).hexdigest()


def test_migrate_rehashes_legacy_entries(tmp_path):
    params = {"scheme": "pert", "duration": 5.0}
    _write_legacy_entry(tmp_path, "dumbbell", params, {"utilization": 0.9})
    moved = migrate_cache(tmp_path)
    assert moved == 1
    cache = ResultCache(tmp_path)
    entry = cache.get(JobSpec("dumbbell", params))
    assert entry is not None
    assert entry["payload"] == {"utilization": 0.9}
    assert entry["key"] == content_key("dumbbell", params)


def test_opening_a_legacy_dir_migrates_automatically(tmp_path):
    params = {"x": 1}
    old_key, old_path = _write_legacy_entry(tmp_path, "kind", params, {"v": 2})
    cache = ResultCache(tmp_path)  # constructor runs the one-shot migration
    assert cache.get(JobSpec("kind", params))["payload"] == {"v": 2}
    assert not old_path.exists()
    marker = json.loads((tmp_path / SCHEMA_MARKER).read_text())
    assert marker == {"cache_schema": CACHE_SCHEMA}


def test_migration_is_one_shot_and_idempotent(tmp_path):
    params = {"x": 1}
    _write_legacy_entry(tmp_path, "kind", params, {"v": 1})
    assert migrate_cache(tmp_path) == 1
    assert migrate_cache(tmp_path) == 0  # everything already content-keyed
    # the marker short-circuits the scan on later opens: plant a fresh
    # legacy entry and confirm ResultCache leaves it alone
    _write_legacy_entry(tmp_path, "kind", {"y": 2}, {"v": 2})
    ResultCache(tmp_path)
    assert migrate_cache(tmp_path) == 1  # an explicit call still migrates


def test_migration_moves_sibling_files(tmp_path):
    params = {"x": 3}
    old_key, old_path = _write_legacy_entry(tmp_path, "kind", params, {})
    manifest = old_path.parent / f"{old_key}{MANIFEST_SUFFIX}"
    manifest.write_text(json.dumps({"key": old_key, "kind": "kind"}))
    ckpt = old_path.parent / f"{old_key}{CHECKPOINT_SUFFIX}"
    ckpt.write_bytes(b"checkpoint-bytes")
    migrate_cache(tmp_path)
    cache = ResultCache(tmp_path)
    spec = JobSpec("kind", params)
    new_manifest = cache.manifest_path_for(spec)
    assert json.loads(new_manifest.read_text())["key"] == spec.cache_key
    assert cache.checkpoint_path_for(spec).read_bytes() == b"checkpoint-bytes"
    assert not manifest.exists() and not ckpt.exists()


def test_migration_skips_corrupt_and_foreign_files(tmp_path):
    (tmp_path / "ab").mkdir(parents=True)
    corrupt = tmp_path / "ab" / ("a" * 64 + ".json")
    corrupt.write_text("{not json")
    foreign = tmp_path / "ab" / "notes.json"
    foreign.write_text(json.dumps({"hello": 1}))
    assert migrate_cache(tmp_path) == 0
    assert corrupt.exists() and foreign.exists()


def test_current_entries_survive_migration_untouched(tmp_path):
    cache = ResultCache(tmp_path)
    spec = JobSpec("kind", {"x": 1})
    path = cache.put(spec, {"v": 1})
    before = path.read_bytes()
    assert migrate_cache(tmp_path) == 0
    assert path.read_bytes() == before
