"""Progress printer: formatting, EWMA/ETA, and the non-TTY guard."""

import io

from repro.runner.telemetry import (
    RunnerStats,
    _EwmaRate,
    format_eta,
    progress_line,
    progress_printer,
)


class _Tty(io.StringIO):
    def isatty(self):
        return True


def test_format_eta():
    assert format_eta(None) == "-"
    assert format_eta(-3) == "-"
    assert format_eta(0) == "0:00"
    assert format_eta(42) == "0:42"
    assert format_eta(185) == "3:05"
    assert format_eta(3729) == "1:02:09"


def test_progress_line_without_rate_matches_summary():
    stats = RunnerStats(total=4)
    stats.done = 2
    assert progress_line(stats) == f"[repro.runner] {stats.summary()}"


def test_progress_line_includes_rate_and_eta():
    stats = RunnerStats(total=10)
    stats.done = 4
    line = progress_line(stats, rate=2.0)
    assert "2.00 jobs/s" in line
    assert "eta 0:03" in line  # 6 remaining / 2 per second


def test_ewma_smooths_rate():
    ewma = _EwmaRate(alpha=0.5)
    assert ewma.update(0, 0.0) is None  # first observation: no rate yet
    assert ewma.update(1, 1.0) == 1.0  # 1 job/s seeds the average
    # a 3 jobs/s burst only pulls the smoothed rate halfway (alpha=0.5)
    assert ewma.update(4, 2.0) == 2.0
    # repeated hook calls with no new settles must not distort the rate
    assert ewma.update(4, 3.0) == 2.0


def test_non_tty_stream_gets_plain_lines_no_carriage_returns():
    out = io.StringIO()
    hook = progress_printer(stream=out)
    stats = RunnerStats(total=2)
    stats.done = 1
    hook(stats)
    stats.done = 2
    hook(stats)
    text = out.getvalue()
    assert "\r" not in text
    assert text.count("\n") == 2
    assert text.endswith("\n")


def test_tty_stream_redraws_in_place_with_final_newline():
    out = _Tty()
    hook = progress_printer(stream=out)
    stats = RunnerStats(total=2)
    stats.done = 1
    hook(stats)
    mid = out.getvalue()
    assert mid.startswith("\r")
    assert "\n" not in mid  # in-flight draws stay on one line
    stats.done = 2
    hook(stats)
    text = out.getvalue()
    assert text.endswith("\n")  # completion releases the line
    assert text.count("\n") == 1


def test_tty_redraw_pads_over_previous_longer_line():
    out = _Tty()
    hook = progress_printer(stream=out)
    stats = RunnerStats(total=100)
    stats.done = 50
    stats.retries = 10
    hook(stats)
    first_len = len(out.getvalue()) - 1  # minus leading \r
    stats = RunnerStats(total=100)  # fresh stats: shorter line
    stats.done = 99
    hook2_line_start = len(out.getvalue())
    hook(stats)
    redraw = out.getvalue()[hook2_line_start:]
    # the redraw must cover every column the longer line used
    assert len(redraw.lstrip("\r").rstrip("\n")) >= first_len
