"""Fault injection: raising, hanging, crashing jobs and corrupt caches.

One diverging simulation must never kill the sweep — it is retried,
then marked failed, while every other job completes normally.
"""

import json

import pytest

from repro.runner import JobSpec, ResultCache, run_jobs

ECHO = "tests.runner.jobs:echo"
BOOM = "tests.runner.jobs:boom"
SLEEPY = "tests.runner.jobs:sleepy"
CRASH = "tests.runner.jobs:crash"
FLAKY = "tests.runner.jobs:flaky"


def spec(kind, **params):
    return JobSpec(kind, params)


# ----------------------------------------------------------------------
# raising jobs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 2])
def test_raising_job_is_retried_then_marked_failed(workers):
    snaps = []
    results = run_jobs(
        [spec(ECHO, value=1), spec(BOOM), spec(ECHO, value=2)],
        workers=workers, cache=False, retries=1,
        progress=lambda s: snaps.append(s.snapshot()),
    )
    assert [r.status for r in results] == ["ok", "failed", "ok"]
    assert results[0].value == {"value": 1}
    assert results[2].value == {"value": 2}
    assert "injected failure" in results[1].error
    assert results[1].attempts == 2  # original + one retry
    assert snaps[-1] == dict(snaps[-1], done=2, failed=1, retries=1)


@pytest.mark.parametrize("workers", [0, 2])
def test_flaky_job_recovers_on_retry(tmp_path, workers):
    marker = tmp_path / "flaky.marker"
    res = run_jobs(
        [spec(FLAKY, marker=str(marker))],
        workers=workers, cache=False, retries=1,
    )[0]
    assert res.ok
    assert res.value["recovered"] is True
    assert res.attempts == 2


def test_failure_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    s = spec(BOOM)
    res = run_jobs([s], workers=0, cache=cache, retries=0)[0]
    assert not res.ok
    assert cache.get(s) is None  # failures are never served from cache


# ----------------------------------------------------------------------
# hanging and crashing workers (need process isolation)
# ----------------------------------------------------------------------
def test_hanging_job_times_out_without_stalling_the_sweep():
    results = run_jobs(
        [spec(SLEEPY, seconds=60.0), spec(ECHO, value="fast")],
        workers=2, cache=False, timeout=0.5, retries=0,
    )
    assert results[0].status == "failed"
    assert "timed out" in results[0].error
    assert results[1].ok and results[1].value == {"value": "fast"}


def test_crashing_worker_is_isolated_and_reported():
    results = run_jobs(
        [spec(CRASH), spec(ECHO, value="alive")],
        workers=2, cache=False, retries=1,
    )
    assert results[0].status == "failed"
    assert "crashed" in results[0].error
    assert results[0].attempts == 2
    assert results[1].ok


def test_timeout_retry_can_succeed(tmp_path):
    # first attempt hangs (no marker), retry returns instantly
    marker = tmp_path / "flaky.marker"
    res = run_jobs(
        [spec(FLAKY, marker=str(marker))],
        workers=1, cache=False, timeout=30.0, retries=1,
    )[0]
    assert res.ok and res.attempts == 2


# ----------------------------------------------------------------------
# cache corruption
# ----------------------------------------------------------------------
def test_corrupted_cache_entry_is_rebuilt(tmp_path):
    cache = ResultCache(tmp_path)
    s = spec(ECHO, value=42)
    first = run_jobs([s], workers=0, cache=cache)[0]
    assert not first.cached

    path = cache.path_for(s)
    path.write_text("\x00garbage not json")
    snaps = []
    rebuilt = run_jobs([s], workers=0, cache=cache,
                       progress=lambda st: snaps.append(st.snapshot()))[0]
    assert rebuilt.ok and not rebuilt.cached  # corrupt entry == miss
    assert rebuilt.value == first.value
    assert snaps[-1]["cached"] == 0 and snaps[-1]["done"] == 1

    # the rebuilt entry is valid JSON again and serves the next run
    assert json.loads(path.read_text())["payload"] == {"value": 42}
    assert run_jobs([s], workers=0, cache=cache)[0].cached


def test_unknown_kind_fails_gracefully():
    res = run_jobs([spec("no-such-kind")], workers=0, cache=False, retries=0)[0]
    assert res.status == "failed"
    assert "no-such-kind" in res.error
