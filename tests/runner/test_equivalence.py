"""Equivalence suite: serial, parallel, and cached paths are identical.

This is the contract that makes the runner safe to put under every
figure: fan-out and caching are pure execution strategies and must never
change a single row.
"""

import pytest

from repro.experiments.sweep import sweep_dumbbell
from repro.runner import ResultCache, dumbbell_spec, run_jobs

#: tiny but non-trivial 2-scheme x 3-point grid (seconds, not minutes)
GRID_POINTS = [{"bandwidth": 1e6}, {"bandwidth": 2e6}, {"bandwidth": 3e6}]
GRID_SCHEMES = ("pert", "sack-droptail")
GRID_KW = dict(n_fwd=2, duration=3.0, warmup=1.0, seed=3)


def run_grid(**overrides):
    kw = dict(GRID_KW)
    kw.update(overrides)
    return sweep_dumbbell(GRID_POINTS, schemes=GRID_SCHEMES, **kw)


def test_parallel_rows_equal_serial_rows_exactly():
    serial = run_grid(workers=0, cache=False)
    parallel = run_grid(workers=2, cache=False)
    assert len(serial) == len(GRID_POINTS) * len(GRID_SCHEMES)
    assert parallel == serial  # row-for-row, bit-for-bit


def test_second_run_is_fully_cached_with_identical_rows(tmp_path):
    snaps = []
    first = run_grid(workers=2, cache=tmp_path,
                     progress=lambda s: snaps.append(s.snapshot()))
    assert snaps[-1]["done"] == len(first)
    assert snaps[-1]["cached"] == 0
    assert snaps[-1]["events"] > 0  # live-simulation throughput telemetry

    snaps.clear()
    second = run_grid(workers=2, cache=tmp_path,
                      progress=lambda s: snaps.append(s.snapshot()))
    assert second == first
    assert snaps[-1]["cached"] == len(first)  # 100% cache hits
    assert snaps[-1]["done"] == 0 and snaps[-1]["failed"] == 0


def test_cache_serves_serial_and_parallel_paths_alike(tmp_path):
    serial = run_grid(workers=0, cache=tmp_path)
    cached_parallel = run_grid(workers=2, cache=tmp_path)
    assert cached_parallel == serial


def test_partial_cache_only_simulates_new_points(tmp_path):
    run_grid(workers=0, cache=tmp_path)
    extra_point = [{"bandwidth": 4e6}]
    snaps = []
    rows = sweep_dumbbell(
        GRID_POINTS + extra_point, schemes=GRID_SCHEMES, workers=0,
        cache=tmp_path, progress=lambda s: snaps.append(s.snapshot()),
        **GRID_KW,
    )
    assert len(rows) == (len(GRID_POINTS) + 1) * len(GRID_SCHEMES)
    assert snaps[-1]["cached"] == len(GRID_POINTS) * len(GRID_SCHEMES)
    assert snaps[-1]["done"] == len(GRID_SCHEMES)  # only the new point ran


def test_run_jobs_preserves_spec_order_under_fanout(tmp_path):
    specs = [
        dumbbell_spec(scheme, bandwidth=bw, **GRID_KW)
        for bw in (1e6, 2e6, 3e6)
        for scheme in GRID_SCHEMES
    ]
    results = run_jobs(specs, workers=3, cache=ResultCache(tmp_path))
    assert [r.spec for r in results] == specs
    assert all(r.ok for r in results)
    # payloads match a direct serial execution of the same specs
    serial = run_jobs(specs, workers=0, cache=False)
    assert [r.value for r in results] == [r.value for r in serial]


def test_cached_payload_equals_fresh_payload_via_json(tmp_path):
    spec = dumbbell_spec("pert", bandwidth=2e6, **GRID_KW)
    fresh = run_jobs([spec], workers=0, cache=ResultCache(tmp_path))[0]
    cached = run_jobs([spec], workers=0, cache=ResultCache(tmp_path))[0]
    assert not fresh.cached and cached.cached
    # JSON round-trip through the cache must not perturb any value
    assert cached.value == fresh.value


def test_failed_jobs_yield_marked_rows_not_exceptions():
    rows = sweep_dumbbell(
        [{"bandwidth": 2e6}], schemes=("pert", "no-such-scheme"),
        workers=0, cache=False, retries=0, **GRID_KW,
    )
    ok = [r for r in rows if not r.get("failed")]
    bad = [r for r in rows if r.get("failed")]
    assert len(ok) == 1 and ok[0]["scheme"] == "pert"
    assert len(bad) == 1 and bad[0]["scheme"] == "no-such-scheme"
    assert "error" in bad[0]
    assert bad[0]["norm_queue"] != bad[0]["norm_queue"]  # NaN marker
