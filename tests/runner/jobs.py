"""Job functions for runner fault-injection tests.

Referenced by dotted-path kind (``"tests.runner.jobs:boom"``) so both the
in-process serial path and forked worker processes can resolve them.
"""

from __future__ import annotations

import os
import pathlib
import time


def echo(params: dict) -> dict:
    """Trivially succeed, returning the input value."""
    return {"value": params["value"]}


def events(params: dict) -> dict:
    """Succeed while reporting fake simulator-event telemetry."""
    return {"value": params["value"], "events_processed": params.get("events", 100)}


def boom(params: dict) -> dict:
    """Always raise."""
    raise RuntimeError("injected failure")


def sleepy(params: dict) -> dict:
    """Hang well past any reasonable test timeout."""
    time.sleep(params.get("seconds", 60.0))
    return {"ok": True}


def crash(params: dict) -> dict:
    """Die without sending a result (simulates a segfaulting worker)."""
    os._exit(3)


def flaky(params: dict) -> dict:
    """Fail on the first attempt, succeed on the next (marker on disk)."""
    marker = pathlib.Path(params["marker"])
    if not marker.exists():
        marker.write_text("attempt 1 failed")
        raise RuntimeError("flaky first attempt")
    return {"ok": True, "recovered": True}
