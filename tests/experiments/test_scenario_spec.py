"""ScenarioSpec: declarative sweeps must match the hand-rolled loops."""

from repro.experiments import fig6_bandwidth, fig7_rtt, fig8_nflows, fig9_web
from repro.experiments.common import run_dumbbell
from repro.experiments.scenarios import ScenarioPoint, ScenarioSpec
from repro.experiments.sweep import result_row
from repro.runner import dumbbell_spec

_SCHEMES = ("pert", "sack-droptail")


def _hand_rolled(spec):
    """The historical pattern: serial loop, point-major, scheme-minor."""
    rows = []
    for point in spec.points:
        for scheme in spec.resolved_schemes():
            result = run_dumbbell(scheme, **spec.kwargs_for(point))
            rows.append(result_row(result, dict(point.tags)))
    return rows


def test_fig8_spec_matches_hand_rolled_loop():
    spec = fig8_nflows.spec(
        flow_counts=[2, 3], bandwidth=2e6, duration=3.0, warmup=1.0,
        seed=3, schemes=_SCHEMES, web_sessions=0,
    )
    assert spec.run(workers=0, cache=False) == _hand_rolled(spec)


def test_fig7_spec_matches_hand_rolled_loop():
    # fig7 is the one figure whose per-point overrides (duration, warmup)
    # differ from its tag columns (rtt_ms) — the case ScenarioPoint's
    # overrides/tags split exists for.
    spec = fig7_rtt.spec(
        rtts=[0.02, 0.04], bandwidth=2e6, n_fwd=2, seed=3,
        schemes=_SCHEMES, web_sessions=0, base_duration=3.0,
    )
    assert spec.run(workers=0, cache=False) == _hand_rolled(spec)
    # derived run length stays out of the rows; the tag column is present
    rows = spec.run(workers=0, cache=False)
    assert all("duration" not in row and "rtt_ms" in row for row in rows)


def test_fig7_duration_scales_with_rtt():
    spec = fig7_rtt.spec(rtts=[0.02, 0.4], base_duration=40.0)
    short, long = (spec.kwargs_for(p) for p in spec.points)
    assert short["duration"] == 40.0
    assert long["duration"] == 120.0  # 300 * 0.4
    assert long["warmup"] == 120.0 * 0.375


def test_fig6_tags_report_mbps():
    spec = fig6_bandwidth.spec(bandwidths=[1e6, 2e6])
    tags = [dict(p.tags) for p in spec.points]
    assert [t["bandwidth_mbps"] for t in tags] == [1.0, 2.0]
    # the raw-bps override feeds run_dumbbell but never the rows
    assert all("bandwidth" not in t for t in tags)
    assert [p.overrides["bandwidth"] for p in spec.points] == [1e6, 2e6]


BG = {"model": "pert_red", "share": 0.5, "n_flows": 20}


def _bg_spec(**kwargs):
    return ScenarioSpec(
        name="bg", title="background threading", schemes=("pert",),
        base=dict(bandwidth=2e6, rtt=0.04, n_fwd=2, duration=2.0,
                  warmup=0.5, seed=3),
        points=[
            ScenarioPoint(overrides={"n_fwd": 2}, tags={"n": 2}),
            ScenarioPoint(overrides={"n_fwd": 4}, tags={"n": 4},
                          background={"model": "tcp_red", "share": 0.2}),
        ],
        **kwargs,
    )


def test_spec_level_background_threads_into_kwargs_and_tags():
    spec = _bg_spec(background=BG)
    plain, pointwise = spec.points
    # spec-level background reaches every point's run kwargs…
    assert spec.kwargs_for(plain)["background"] == BG
    # …unless the point carries its own, which wins
    assert spec.kwargs_for(pointwise)["background"] == {
        "model": "tcp_red", "share": 0.2}
    # and rows gain the identifying columns
    assert spec.tags_for(plain) == {"n": 2, "bg_model": "pert_red",
                                    "bg_share": 0.5}
    assert spec.tags_for(pointwise) == {"n": 4, "bg_model": "tcp_red",
                                        "bg_share": 0.2}


def test_no_background_leaves_kwargs_and_tags_untouched():
    spec = _bg_spec()
    plain, pointwise = spec.points
    assert "background" not in spec.kwargs_for(plain)
    assert spec.tags_for(plain) == {"n": 2}
    # the point-level background still applies without a spec-level one
    assert spec.kwargs_for(pointwise)["background"] == {
        "model": "tcp_red", "share": 0.2}


def test_explicit_bg_tags_are_not_clobbered():
    spec = _bg_spec(background=BG)
    point = ScenarioPoint(overrides={}, tags={"n": 8, "bg_share": "custom"})
    assert spec.tags_for(point)["bg_share"] == "custom"
    assert spec.tags_for(point)["bg_model"] == "pert_red"


def test_background_distinguishes_cache_keys():
    spec = _bg_spec(background=BG)
    plain = _bg_spec()
    keys = {
        dumbbell_spec("pert", **s.kwargs_for(p)).cache_key
        for s in (spec, plain) for p in s.points
    }
    # four jobs: with/without spec background x two points (the second
    # point's own background makes its two variants collide on purpose)
    assert len(keys) == 3


def test_hybrid_spec_rows_match_hand_rolled_loop():
    spec = _bg_spec(background={"model": "pert_red", "share": 0.3,
                                "n_flows": 6})
    rows = spec.run(workers=0, cache=False)
    hand = []
    for point in spec.points:
        for scheme in spec.resolved_schemes():
            result = run_dumbbell(scheme, **spec.kwargs_for(point))
            hand.append(result_row(result, spec.tags_for(point)))
    assert rows == hand
    assert all(row["bg_model"] in ("pert_red", "tcp_red") for row in rows)


def test_all_four_figures_expose_specs():
    for mod in (fig6_bandwidth, fig7_rtt, fig8_nflows, fig9_web):
        spec = mod.spec()
        assert spec.points, mod.__name__
        assert spec.columns, mod.__name__
        assert spec.title.startswith("Figure"), mod.__name__
        # every point merges cleanly with the base kwargs
        for point in spec.points:
            kwargs = spec.kwargs_for(point)
            assert "bandwidth" in kwargs or "bandwidth" in point.overrides
