"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_registry_covers_every_paper_artifact():
    assert set(EXPERIMENTS) == {
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "table1", "fig11", "fig12", "fig12b", "fig13", "fig14",
        # beyond the paper: the hybrid engine's agreement/extreme family
        "fig_hybrid",
    }


def test_every_experiment_has_main_and_run():
    for mod in EXPERIMENTS.values():
        assert callable(getattr(mod, "main"))
        assert callable(getattr(mod, "run", None) or
                        getattr(mod, "run_min_delta", None))


def test_fig5_via_cli(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "response curve" in out
    assert "Paper expectation" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
