"""Smoke tests: every figure/table module runs end-to-end at tiny scale.

These do not validate the paper claims (the benchmarks do, at a larger
scale); they pin the module interfaces — run() signatures, row schemas —
so refactors cannot silently break the reproduction harness.
"""

import pytest

from repro.experiments import fig5_response_curve, fig13_fluid
from repro.experiments.fig2_loss_correlation import run as fig2_run
from repro.experiments.fig6_bandwidth import run as fig6_run
from repro.experiments.fig7_rtt import run as fig7_run
from repro.experiments.fig8_nflows import run as fig8_run
from repro.experiments.fig9_web import run as fig9_run
from repro.experiments.fig11_multibottleneck import run_parking_lot
from repro.experiments.fig12_dynamics import cohort_share_error, run_dynamics
from repro.experiments.fig14_pert_pi import run as fig14_run
from repro.experiments.section2 import TrafficCase, default_cases
from repro.experiments.table1_rtts import default_rtts, run as table1_run

TINY = dict(duration=10.0, warmup=4.0, seed=1)
METRIC_KEYS = {"norm_queue", "drop_rate", "utilization", "jain"}


def check_rows(rows, extra_keys=()):
    assert rows
    for row in rows:
        assert METRIC_KEYS <= set(row)
        for k in extra_keys:
            assert k in row
        assert 0 <= row["norm_queue"] <= 1
        assert 0 <= row["utilization"] <= 1


def test_fig2_tiny():
    rows = fig2_run(cases=[TrafficCase("t", 4, 2, 2)], bandwidth=8e6,
                    duration=15.0, seed=1)
    assert rows and {"flow_level", "queue_level"} <= set(rows[0])


def test_fig5_rows():
    rows = fig5_response_curve.run(n_points=5)
    assert len(rows) == 5
    assert rows[0]["probability"] == 0.0
    assert rows[-1]["probability"] == 1.0


def test_fig6_tiny():
    rows = fig6_run(bandwidths=[4e6], schemes=("pert",), web_sessions=0,
                    **TINY)
    check_rows(rows, extra_keys=("bandwidth_mbps", "n_fwd"))


def test_fig7_tiny():
    rows = fig7_run(rtts=[0.04], schemes=("pert",), n_fwd=3,
                    bandwidth=8e6, web_sessions=0, base_duration=10.0, seed=1)
    check_rows(rows, extra_keys=("rtt_ms",))


def test_fig8_tiny():
    rows = fig8_run(flow_counts=[2], schemes=("pert",), bandwidth=8e6,
                    web_sessions=0, **TINY)
    check_rows(rows, extra_keys=("n_fwd",))


def test_fig9_tiny():
    rows = fig9_run(session_counts=[2], schemes=("pert",), bandwidth=8e6,
                    n_fwd=3, **TINY)
    check_rows(rows, extra_keys=("web_sessions",))


def test_table1_tiny():
    rows = table1_run(bandwidth=8e6, n_fwd=3, rtts=default_rtts(3),
                      web_sessions=0, schemes=("pert", "vegas"), **TINY)
    check_rows(rows, extra_keys=("paper_Q", "paper_F"))
    assert {r["scheme"] for r in rows} == {"pert", "vegas"}


def test_default_rtts_spacing():
    rtts = default_rtts(10)
    assert rtts[0] == pytest.approx(0.012)
    assert rtts[-1] == pytest.approx(0.120)


def test_fig11_tiny():
    rows = run_parking_lot("pert", n_routers=3, cloud_size=2, link_bw=8e6,
                           duration=12.0, warmup=5.0, seed=1)
    assert len(rows) == 2  # one row per hop
    check_rows(rows, extra_keys=("hop",))


def test_fig12_tiny():
    res = run_dynamics("pert", n_cohorts=2, cohort_size=2, epoch=6.0,
                       bandwidth=8e6, seed=1)
    assert len(res["cohort_rates_bps"]) == 2
    assert len(res["times"]) >= 20
    err = cohort_share_error(res, epoch_index=1)
    assert err >= 0.0


def test_fig12_share_error_validates_epoch():
    res = run_dynamics("pert", n_cohorts=2, cohort_size=2, epoch=6.0,
                       bandwidth=8e6, seed=1)
    with pytest.raises(ValueError):
        cohort_share_error(res, epoch_index=99)


def test_fig13_rows():
    out = fig13_fluid.run(duration=20.0, dt=5e-3)
    assert {r["n_minus"] for r in out["fig13a"]} >= {1, 40}
    assert len(out["fig13bd"]) == 3


def test_fig14_tiny():
    rows = fig14_run(rtts=[0.04], schemes=("pert-pi",), n_fwd=3,
                     bandwidth=8e6, web_sessions=0, base_duration=10.0,
                     seed=1)
    check_rows(rows, extra_keys=("rtt_ms",))


def test_default_cases_grid():
    cases = default_cases()
    assert len(cases) == 6  # the paper's case1..case6 grid
    assert len({c.name for c in cases}) == 6
    assert all(c.n_fwd > 0 and c.web_sessions > 0 for c in cases)
