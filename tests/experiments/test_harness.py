"""Unit/integration tests for the experiment harness."""

import pytest

from repro.experiments.common import (
    access_delays_for_rtts,
    bdp_packets,
    run_dumbbell,
)
from repro.experiments.report import format_table, format_value
from repro.experiments.scenarios import SCHEMES, get_scheme, scheme_sender_kwargs
from repro.experiments.sweep import sweep_dumbbell


def test_bdp_packets():
    # 16 Mbps * 60 ms / 8000 bits = 120 packets
    assert bdp_packets(16e6, 0.060, 1000) == 120
    assert bdp_packets(1e3, 0.001, 1000) == 1  # floor at 1


def test_access_delays_reconstruct_rtt():
    delays = access_delays_for_rtts([0.060, 0.120], bottleneck_delay=0.015)
    for rtt, d in zip([0.060, 0.120], delays):
        assert 2 * (d + 0.015 + d) == pytest.approx(rtt)


def test_access_delays_validation():
    with pytest.raises(ValueError):
        access_delays_for_rtts([0.01], bottleneck_delay=0.02)


def test_get_scheme_unknown():
    with pytest.raises(KeyError):
        get_scheme("cubic")


def test_all_schemes_constructible():
    for name in SCHEMES:
        spec = get_scheme(name)
        kwargs = scheme_sender_kwargs(spec, 10e6, 1000, 10, 0.06)
        assert isinstance(kwargs, dict)


def test_run_dumbbell_basic_metrics():
    r = run_dumbbell("pert", bandwidth=8e6, rtt=0.06, n_fwd=4,
                     duration=20.0, warmup=8.0, seed=1)
    assert 0.0 <= r.norm_queue <= 1.0
    assert 0.0 <= r.drop_rate <= 1.0
    assert 0.0 <= r.utilization <= 1.0
    assert 0.0 <= r.jain <= 1.0
    assert len(r.flow_goodputs_bps) == 4
    assert r.buffer_pkts >= 8
    assert r.early_responses > 0  # PERT actually responded early


def test_run_dumbbell_goodput_consistent_with_utilization():
    r = run_dumbbell("sack-droptail", bandwidth=8e6, rtt=0.06, n_fwd=4,
                     duration=20.0, warmup=8.0, seed=1)
    total = sum(r.flow_goodputs_bps)
    # long-flow goodput can't exceed what the link carried
    assert total <= 8e6 * r.utilization * 1.05


def test_run_dumbbell_heterogeneous_rtts():
    rtts = [0.03, 0.06, 0.09]
    r = run_dumbbell("pert", bandwidth=8e6, n_fwd=3, rtts=rtts,
                     duration=15.0, warmup=6.0, seed=1)
    assert r.rtt == pytest.approx(0.03)  # base RTT = smallest


def test_run_dumbbell_rtts_length_validated():
    with pytest.raises(ValueError):
        run_dumbbell("pert", bandwidth=8e6, n_fwd=3, rtts=[0.06],
                     duration=10.0, warmup=5.0)


def test_run_dumbbell_record_trace_extras():
    r = run_dumbbell("sack-droptail", bandwidth=8e6, n_fwd=3,
                     duration=15.0, warmup=5.0, seed=1, record_rtt_flow=0)
    assert "rtt_trace" in r.extras
    assert "queue_drops" in r.extras
    assert len(r.extras["rtt_trace"]) > 100
    sampler = r.extras["queue_sampler"]
    assert sampler.length_at(10.0) >= 0


def test_run_dumbbell_reproducible():
    kw = dict(bandwidth=8e6, n_fwd=3, duration=12.0, warmup=5.0, seed=7)
    a = run_dumbbell("pert", **kw)
    b = run_dumbbell("pert", **kw)
    assert a.norm_queue == b.norm_queue
    assert a.flow_goodputs_bps == b.flow_goodputs_bps


def test_run_dumbbell_seed_changes_results():
    kw = dict(bandwidth=8e6, n_fwd=3, duration=12.0, warmup=5.0)
    a = run_dumbbell("pert", seed=1, **kw)
    b = run_dumbbell("pert", seed=2, **kw)
    assert a.flow_goodputs_bps != b.flow_goodputs_bps


def test_sweep_dumbbell_rows():
    rows = sweep_dumbbell(
        [{"bandwidth": 4e6}, {"bandwidth": 8e6}],
        schemes=("pert", "vegas"),
        n_fwd=3, duration=10.0, warmup=4.0, seed=1,
    )
    assert len(rows) == 4
    assert {r["scheme"] for r in rows} == {"pert", "vegas"}
    assert all("norm_queue" in r for r in rows)


def test_format_table_alignment_and_values():
    rows = [{"a": 1, "b": 0.123456}, {"a": 20, "b": 1e-6}]
    out = format_table(rows, ["a", "b"], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "0.123" in out and "1.00e-06" in out


def test_format_value():
    assert format_value(0) == "0"
    assert format_value(0.5) == "0.500"
    assert format_value(True) == "True"
    assert format_value("x") == "x"


def test_format_table_empty():
    assert "(no rows)" in format_table([], ["a"])
