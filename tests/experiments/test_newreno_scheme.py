"""Harness tests for the NewReno reference stack."""

from repro.experiments.common import run_dumbbell
from repro.experiments.section2 import TrafficCase, collect_case_trace


def test_newreno_runs_in_harness():
    r = run_dumbbell("newreno-droptail", bandwidth=8e6, n_fwd=4,
                     duration=20.0, warmup=8.0, seed=5)
    assert r.utilization > 0.8
    assert 0 <= r.drop_rate < 0.1
    assert r.jain > 0.8


def test_section2_traces_collectable_over_newreno():
    """The paper's measurement studies observed standard (non-SACK) TCP;
    the predictor pipeline must also work over NewReno traces."""
    case = TrafficCase("nr", n_fwd=6, n_rev=2, web_sessions=2)
    tr = collect_case_trace(case, bandwidth=8e6, duration=25.0, warmup=8.0,
                            seed=5, scheme="newreno-droptail")
    assert len(tr.rtt_trace) > 100
    assert tr.queue_drops  # droptail under load does drop
