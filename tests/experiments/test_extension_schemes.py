"""Harness tests for the extension schemes (pert-owd, pert-rem)."""

import pytest

from repro.experiments.common import run_dumbbell

KW = dict(bandwidth=8e6, rtt=0.06, n_fwd=6, duration=25.0, warmup=10.0,
          seed=4)


@pytest.mark.parametrize("scheme", ["pert-owd", "pert-rem"])
def test_extension_scheme_controls_queue(scheme):
    r = run_dumbbell(scheme, **KW)
    assert r.drop_rate < 5e-3
    assert r.utilization > 0.85
    assert r.norm_queue < 0.5
    assert r.early_responses > 0
    assert r.jain > 0.9


def test_extension_schemes_match_pert_behaviour():
    pert = run_dumbbell("pert", **KW)
    owd = run_dumbbell("pert-owd", **KW)
    # the one-way-delay variant behaves like RTT-PERT on a clean
    # reverse path (same forward congestion information)
    assert abs(owd.norm_queue - pert.norm_queue) < 0.2
    assert owd.utilization > pert.utilization - 0.1
