"""Golden-value determinism regression tests.

These pin (a) the engine's same-time event ordering and (b) the headline
metrics of one fixed (scheme, seed) dumbbell point, so engine or harness
refactors cannot silently shift every reproduced figure.  If a change
*intends* to alter simulation behaviour, these goldens must be updated
deliberately in the same commit — that is the point.
"""

import pytest

from repro.experiments.common import run_dumbbell
from repro.sim.engine import Simulator

GOLDEN_KW = dict(bandwidth=4e6, rtt=0.05, n_fwd=3, duration=8.0,
                 warmup=3.0, seed=2)

#: headline metrics for run_dumbbell("pert", **GOLDEN_KW); droptail
#: bottleneck, so independent of any queue RNG stream labelling.
PERT_GOLDEN = {
    "mean_queue_pkts": 4.330677290836653,
    "norm_queue": 0.1732270916334661,
    "drop_rate": 0.0,
    "utilization": 0.968,
    "jain": 0.995977247827996,
}
PERT_GOLDEN_INTS = {
    "buffer_pkts": 25,
    "events_processed": 44729,
    "timeouts": 0,
    "early_responses": 111,
}
PERT_GOLDEN_GOODPUTS = [1363200.0, 1176000.0, 1332800.0]

#: same point under sack-red-ecn — additionally pins the RED queue's
#: per-instance RNG stream labelling ("red" fwd, "red#1" rev).
RED_GOLDEN = {
    "mean_queue_pkts": 15.131474103585658,
    "norm_queue": 0.6052589641434263,
    "drop_rate": 0.004375497215592681,
    "mark_rate": 0.003977724741447892,
    "utilization": 1.0,
    "jain": 0.8612253210716897,
}


def test_engine_same_time_events_fire_in_schedule_order():
    """Ties on the event clock break by schedule sequence — exactly."""
    sim = Simulator(seed=1)
    order = []

    def nested(tag):
        order.append(tag)
        # same-instant events scheduled *during* the run still honour
        # schedule order relative to each other, after already-queued ones
        if tag == "b1":
            sim.schedule(0.0, order.append, "b1.child1")
            sim.schedule(0.0, order.append, "b1.child2")

    sim.schedule(2.0, order.append, "c")
    sim.schedule(1.0, nested, "b1")
    sim.schedule(1.0, order.append, "b2")
    ev = sim.schedule(1.0, order.append, "b-cancelled")
    sim.schedule(1.0, order.append, "b3")
    sim.schedule(0.5, order.append, "a")
    ev.cancel()
    sim.run()
    assert order == ["a", "b1", "b2", "b3", "b1.child1", "b1.child2", "c"]


def test_engine_event_count_is_deterministic():
    a = run_dumbbell("pert", **GOLDEN_KW)
    assert a.events_processed == PERT_GOLDEN_INTS["events_processed"]


def test_run_dumbbell_pert_golden_metrics():
    r = run_dumbbell("pert", **GOLDEN_KW)
    for name, expected in PERT_GOLDEN.items():
        assert getattr(r, name) == pytest.approx(expected, rel=1e-12, abs=1e-15), name
    for name, expected in PERT_GOLDEN_INTS.items():
        assert getattr(r, name) == expected, name
    assert r.flow_goodputs_bps == pytest.approx(PERT_GOLDEN_GOODPUTS, rel=1e-12)


def test_run_dumbbell_red_golden_metrics():
    r = run_dumbbell("sack-red-ecn", **GOLDEN_KW)
    for name, expected in RED_GOLDEN.items():
        assert getattr(r, name) == pytest.approx(expected, rel=1e-12, abs=1e-15), name
