"""Unpicklable-attachment diagnostics and checkpoint-runtime plumbing."""

from __future__ import annotations

import pytest

from repro.obs.trace import TraceWriter
from repro.sim.engine import Simulator
from repro.snapshot import (
    CheckpointSlot,
    SnapshotError,
    active_checkpoint,
    capture_bytes,
    checkpoint_scope,
    resolve_checkpoint_interval,
)


# ----------------------------------------------------------------------
# clear errors for things that cannot be checkpointed
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_scheduled_lambda_is_named_with_a_hint(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SnapshotError, match=r"closures/lambdas"):
            capture_bytes(sim)

    def test_scheduled_closure_is_named_with_a_hint(self):
        sim = Simulator(seed=1)
        box = []

        def local_callback():
            box.append(sim.now)

        sim.schedule(1.0, local_callback)
        with pytest.raises(SnapshotError, match=r"local_callback.*closures"):
            capture_bytes(sim)

    def test_error_reports_the_event_time(self):
        sim = Simulator(seed=1)
        sim.schedule(2.5, lambda: None)
        with pytest.raises(SnapshotError, match=r"t=2\.5"):
            capture_bytes(sim)

    def test_cancelled_unpicklable_events_do_not_block_capture(self):
        """Cancelled entries are purged at capture, so even a cancelled
        *lambda* cannot block a checkpoint — only live entries count."""
        from repro.snapshot import restore_bytes

        sim = Simulator(seed=1)
        fired = sim.schedule(1.0, sim.stream, "later")  # picklable
        bad = sim.schedule(2.0, lambda: None)
        bad.cancel()
        body = capture_bytes(sim)  # must not raise
        assert fired is not None
        # the original heap still physically holds both entries
        assert len(sim._heap) == 2

        sim2, _ = restore_bytes(body)
        assert len(sim2._heap) == 1  # purged copy
        assert sim2.pending() == 1
        sim2.run()
        assert sim2.events_processed == 1

    def test_live_trace_writer_in_state_is_named(self, tmp_path):
        sim = Simulator(seed=1)
        writer = TraceWriter(tmp_path / "t.jsonl")
        try:
            with pytest.raises(SnapshotError, match="TraceWriter"):
                capture_bytes(sim, {"writer": writer})
        finally:
            writer.abort()

    def test_attached_profiler_fails_fast(self):
        sim = Simulator(seed=1)
        sim.profiler = object()
        with pytest.raises(SnapshotError, match="profiler"):
            capture_bytes(sim)

    def test_capture_from_inside_run_is_refused(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, capture_bytes, sim)
        with pytest.raises(SnapshotError, match="inside run"):
            sim.run()


# ----------------------------------------------------------------------
# interval resolution and the scope/slot plumbing
# ----------------------------------------------------------------------
class TestRuntime:
    def test_interval_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", "9.0")
        assert resolve_checkpoint_interval(2.5) == 2.5

    def test_interval_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", "3.5")
        assert resolve_checkpoint_interval(None) == 3.5

    @pytest.mark.parametrize("env", ["", "0", "off", "false", "no", "OFF"])
    def test_interval_env_off_values(self, monkeypatch, env):
        monkeypatch.setenv("REPRO_CHECKPOINT", env)
        assert resolve_checkpoint_interval(None) is None

    def test_interval_unset_env_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT", raising=False)
        assert resolve_checkpoint_interval(None) is None

    @pytest.mark.parametrize("value", [0, -1, 0.0])
    def test_interval_nonpositive_disables(self, value):
        assert resolve_checkpoint_interval(value) is None

    def test_scope_installs_and_restores_the_slot(self, tmp_path):
        assert active_checkpoint() is None
        with checkpoint_scope(tmp_path / "a.ckpt", 1.0) as slot:
            assert isinstance(slot, CheckpointSlot)
            assert active_checkpoint() is slot
            with checkpoint_scope(None, None) as inner:
                assert inner is None
                assert active_checkpoint() is None
            assert active_checkpoint() is slot
        assert active_checkpoint() is None

    def test_resume_discards_a_corrupt_checkpoint(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        slot = CheckpointSlot(path, 1.0)
        slot.save(Simulator(seed=1), {"k": 1})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))

        fresh = CheckpointSlot(path, 1.0)
        assert fresh.resume() is None  # resume is an optimization...
        assert not path.exists()  # ...and the bad file is gone
        assert fresh.summary() is None

    def test_save_chains_parent_lineage(self, tmp_path):
        from repro.snapshot import inspect as snap_inspect

        path = tmp_path / "chain.ckpt"
        slot = CheckpointSlot(path, 1.0)
        sim = Simulator(seed=1)
        sim.schedule(1.0, sim.stream, "x")

        first = slot.save(sim, None)
        assert snap_inspect(path)["parent"] is None
        sim.run(until=2.0)
        second = slot.save(sim, None)
        assert snap_inspect(path)["parent"] == first.id
        assert slot.summary() == {
            "interval": 1.0, "saves": 2, "resumed": False,
            "last_id": second.id,
        }

    def test_save_detaches_and_reattaches_the_profiler(self, tmp_path):
        sim = Simulator(seed=1)
        marker = object()
        sim.profiler = marker
        slot = CheckpointSlot(tmp_path / "p.ckpt", 1.0)
        slot.save(sim, None)
        assert sim.profiler is marker
        restored = slot.resume()
        assert restored is not None
        assert restored[0].profiler is None
