"""Warm-started sweeps: one warm-up per scheme, cold-identical rows."""

from __future__ import annotations

import pytest

from repro.experiments.common import run_dumbbell_warm, warm_dumbbell_bytes
from repro.experiments.scenarios import ScenarioPoint, ScenarioSpec
from repro.experiments.sweep import sweep_dumbbell
from repro.runner import ResultCache, dumbbell_spec

BASE = dict(bandwidth=2e6, rtt=0.04, n_fwd=2, warmup=1.0, seed=3)
DURATIONS = (2.0, 2.5, 3.0, 3.5)
POINTS = [{"duration": d} for d in DURATIONS]
SCHEMES = ("pert", "sack-droptail")


def test_warm_rows_equal_cold_rows_exactly():
    cold = sweep_dumbbell(POINTS, SCHEMES, cache=False, **BASE)
    warm = sweep_dumbbell(POINTS, SCHEMES, cache=False, warm_start=True, **BASE)
    assert warm == cold  # bit-identical floats, same row order


def test_warm_start_rejects_non_duration_overrides():
    points = [{"duration": 2.0}, {"duration": 2.5, "n_fwd": 4}]
    with pytest.raises(ValueError, match="duration"):
        sweep_dumbbell(points, SCHEMES, cache=False, warm_start=True, **BASE)


def test_warm_entries_fill_the_cold_cache(tmp_path):
    """Warm-started results land in the same cache entries cold runs use."""
    cache = ResultCache(tmp_path)
    warm = sweep_dumbbell(POINTS, SCHEMES, cache=cache, warm_start=True, **BASE)

    for point in POINTS:
        for scheme in SCHEMES:
            entry = cache.get(dumbbell_spec(scheme, **dict(BASE, **point)))
            assert entry is not None
            assert entry["meta"]["warm_start"] is True
            assert entry["meta"]["attempts"] == 1

    # a later cold sweep is served entirely from those entries
    cold = sweep_dumbbell(POINTS, SCHEMES, cache=cache, workers=0, **BASE)
    assert cold == warm


def test_warm_sweep_reads_cold_cache_without_warming(tmp_path, monkeypatch):
    """Fully cached points never warm up: the warm path is pure cache reads."""
    cache = ResultCache(tmp_path)
    cold = sweep_dumbbell(POINTS, SCHEMES, cache=cache, workers=0, **BASE)

    import repro.experiments.sweep as sweep_mod

    def explode(*args, **kwargs):  # pragma: no cover - only on regression
        raise AssertionError("warm-up ran despite a fully warm cache")

    monkeypatch.setattr(sweep_mod, "warm_dumbbell_bytes", explode)
    warm = sweep_dumbbell(POINTS, SCHEMES, cache=cache, warm_start=True, **BASE)
    assert warm == cold


def test_warm_continuations_are_independent():
    """One snapshot body serves every duration; order must not matter."""
    body = warm_dumbbell_bytes("pert", **BASE)
    forward = [run_dumbbell_warm(body, d).mean_queue_pkts for d in DURATIONS]
    backward = [
        run_dumbbell_warm(body, d).mean_queue_pkts for d in reversed(DURATIONS)
    ]
    assert forward == list(reversed(backward))


def test_run_dumbbell_warm_rejects_foreign_bytes():
    from repro.sim.engine import Simulator
    from repro.snapshot import capture_bytes

    body = capture_bytes(Simulator(seed=1), {"not": "a dumbbell"})
    with pytest.raises(TypeError, match="warm_dumbbell_bytes"):
        run_dumbbell_warm(body, 2.0)


def test_scenario_spec_warm_start_passthrough():
    spec = ScenarioSpec(
        name="warm-demo",
        title="warm-start demo",
        points=[
            ScenarioPoint(overrides={"duration": d}, tags={"duration": d})
            for d in DURATIONS[:2]
        ],
        schemes=("pert",),
        base=dict(BASE),
        columns=("duration", "scheme", "utilization"),
    )
    cold = spec.run(workers=0, cache=False)
    warm = spec.run(cache=False, warm_start=True)
    assert warm == cold
