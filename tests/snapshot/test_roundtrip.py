"""Bit-identical round-trips across every queue discipline and sender.

The core contract of :mod:`repro.snapshot`: restoring a checkpoint and
continuing produces *exactly* the trajectory the original run would have
taken.  Each test builds a small dumbbell, runs to a mid-flight instant,
captures, continues the original, restores a copy, continues that, and
compares exhaustive fingerprints of both end states.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import SCHEMES, get_scheme, scheme_sender_kwargs
from repro.sim.engine import Simulator
from repro.sim.queues import QueueConfig, make_queue
from repro.sim.topology import Dumbbell
from repro.snapshot import capture_bytes, restore_bytes
from repro.tcp.base import connect_flow
from repro.tcp.sack import SackSender


def _fingerprint(sim, ctx):
    """Everything observable about the run's end state, exactly."""
    senders = ctx["senders"]
    qdiscs = ctx["qdiscs"]
    return {
        "now": sim.now,
        "events": sim.events_processed,
        "seq": sim._seq,
        "pending": sim.pending(),
        "senders": [
            (
                s.cum_ack,
                s.next_seq,
                s.cwnd,
                s.ssthresh,
                s.srtt,
                s.pkts_sent,
                s.retransmits,
                s.timeouts,
                s.fast_recoveries,
                sorted(s.sacked),
                s.in_recovery,
                s.recovery_point,
            )
            for s in senders
        ],
        "queues": [
            (
                q.stats.arrivals,
                q.stats.drops,
                q.stats.marks,
                q.stats.departures,
                len(q._buf),
                [p.seq for p in q._buf],
            )
            for q in qdiscs
        ],
    }


def _roundtrip(build, t_snap, t_end):
    """Capture at *t_snap*, continue both branches to *t_end*, compare."""
    sim, ctx = build()
    sim.run(until=t_snap)
    body = capture_bytes(sim, ctx)
    sim.run(until=t_end)
    ref = _fingerprint(sim, ctx)

    sim2, ctx2 = restore_bytes(body)
    assert sim2.now == t_snap
    sim2.run(until=t_end)
    got = _fingerprint(sim2, ctx2)
    assert got == ref
    return ref


def _queue_build(discipline):
    """Two SACK flows through a small `discipline` bottleneck."""
    def build():
        sim = Simulator(seed=11)
        cfg = QueueConfig(discipline, capacity_pkts=25)
        db = Dumbbell(
            sim,
            n_left=2,
            n_right=2,
            bottleneck_bw=4e6,
            bottleneck_delay=0.02,
            qdisc_fwd=lambda: make_queue(cfg, sim=sim),
            qdisc_rev=lambda: make_queue(QueueConfig("droptail", capacity_pkts=100)),
        )
        senders = []
        for i in range(2):
            sender, _sink = connect_flow(
                sim, db.left[i], db.right[i], flow_id=1000 + i,
                sender_cls=SackSender,
            )
            sender.start(at=0.01 * i)
            senders.append(sender)
        return sim, {"senders": senders, "qdiscs": [db.fwd.qdisc, db.rev.qdisc]}
    return build


@pytest.mark.parametrize("discipline", ["droptail", "red", "pi", "rem"])
def test_queue_discipline_roundtrip(discipline):
    ref = _roundtrip(_queue_build(discipline), t_snap=1.5, t_end=4.0)
    # the run must actually exercise the queue for the test to mean much
    assert ref["queues"][0][0] > 100  # arrivals


# every sender class the scheme registry knows, via its scheme name
_SENDER_SCHEMES = (
    "newreno-droptail",
    "sack-droptail",
    "sack-red-ecn",
    "vegas",
    "pert",
    "pert-pi",
    "pert-rem",
)


def _scheme_build(name):
    """Two flows of scheme *name* through its own bottleneck qdisc."""
    def build():
        sim = Simulator(seed=13)
        scheme = get_scheme(name)
        bw, pkt, rtt, n = 4e6, 1000, 0.04, 2
        db = Dumbbell(
            sim,
            n_left=n,
            n_right=n,
            bottleneck_bw=bw,
            bottleneck_delay=rtt / 2,
            qdisc_fwd=lambda: scheme.make_qdisc(sim, 25, bw, pkt, n, rtt),
            qdisc_rev=lambda: make_queue(QueueConfig("droptail", capacity_pkts=100)),
        )
        kwargs = scheme_sender_kwargs(scheme, bw, pkt, n, rtt)
        ecn = scheme.name.endswith("-ecn")
        senders = []
        for i in range(n):
            sender, _sink = connect_flow(
                sim, db.left[i], db.right[i], flow_id=1000 + i,
                sender_cls=scheme.sender_cls, ecn=ecn, **kwargs,
            )
            sender.start(at=0.01 * i)
            senders.append(sender)
        return sim, {"senders": senders, "qdiscs": [db.fwd.qdisc]}
    return build


@pytest.mark.parametrize("name", _SENDER_SCHEMES)
def test_sender_class_roundtrip(name):
    assert name in SCHEMES
    ref = _roundtrip(_scheme_build(name), t_snap=1.5, t_end=4.0)
    assert all(s[0] > 0 for s in ref["senders"])  # every flow delivered data


def test_sack_scoreboard_mid_recovery_roundtrip():
    """Snapshot taken *while a SACK sender is in fast recovery*.

    The scoreboard (sacked set, recovery point, rtx bookkeeping) is the
    gnarliest piece of per-flow state; a tiny buffer forces losses, and
    the capture instant is hunted step-by-step until a sender is mid-
    recovery with holes actually recorded.
    """
    build = _queue_build("droptail")

    # hunt for a mid-recovery instant on the reference timeline
    sim, ctx = build()
    t, t_snap = 0.0, None
    while t < 6.0:
        t += 0.005
        sim.run(until=t)
        if any(s.in_recovery and s.sacked for s in ctx["senders"]):
            t_snap = t
            break
    assert t_snap is not None, "no loss recovery observed; shrink the buffer"

    _roundtrip(build, t_snap=t_snap, t_end=t_snap + 2.0)


def test_rng_streams_continue_identically():
    """Restored RNG streams resume mid-sequence, not from their seeds."""
    sim = Simulator(seed=5)
    rng = sim.stream("traffic")
    _burn = [rng.random() for _ in range(100)]
    body = capture_bytes(sim)
    expect = [rng.random() for _ in range(10)]

    sim2, _state = restore_bytes(body)
    rng2 = sim2._streams["traffic"]
    assert rng2 is not rng
    assert [rng2.random() for _ in range(10)] == expect
