"""Checkpoint-aware job functions for executor crash-resume tests.

Referenced by dotted-path kind (``"tests.snapshot.jobs:crashy_dumbbell"``)
so both the in-process serial path and forked worker processes resolve
the same code, mirroring ``tests.runner.jobs``.
"""

from __future__ import annotations

import os

from repro.experiments.common import run_dumbbell
from repro.snapshot import runtime


class _DyingSlot(runtime.CheckpointSlot):
    """Raise right *after* the Nth periodic save lands on disk —
    a crash between checkpoints, as the resume machinery must assume."""

    def __init__(self, slot, die_after):
        super().__init__(slot.path, slot.interval)
        self.die_after = die_after

    def save(self, sim, state=None):
        info = super().save(sim, state)
        if self.saves >= self.die_after:
            raise RuntimeError(f"simulated crash after save #{self.saves}")
        return info


def crashy_dumbbell(params: dict) -> dict:
    """A dumbbell job whose first attempt dies mid-measure.

    The first attempt (no marker file yet) swaps the executor-installed
    checkpoint slot for a dying one; the retry runs normally and reports
    whether it resumed.  With checkpointing off (no slot) the job just
    runs clean on the first attempt.
    """
    params = dict(params)
    marker = params.pop("marker")
    die_after = int(params.pop("die_after", 2))
    slot = runtime.active_checkpoint()
    if slot is not None and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        slot = runtime._ACTIVE = _DyingSlot(slot, die_after)
    result = run_dumbbell(**params)
    return {
        "resumed": bool(slot is not None and slot.resumed),
        "resumed_at": None if slot is None else slot.resumed_at,
        "events_processed": result.events_processed,
        "mean_queue_pkts": result.mean_queue_pkts,
        "utilization": result.utilization,
        "jain": result.jain,
    }
