"""Forking: one warm snapshot, N continuations (clones and perturbations)."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.snapshot import (
    SnapshotError,
    capture_bytes,
    fork,
    fork_bytes,
    reseed_streams,
    save,
)


class Ticker:
    """Periodic consumer of one RNG stream — picklable (no closures)."""

    def __init__(self, sim, label="ticker", period=0.1):
        self.sim = sim
        self.rng = sim.stream(label)
        self.period = period
        self.values = []
        sim.schedule(period, self.tick)

    def tick(self):
        self.values.append(self.rng.random())
        self.sim.schedule(self.period, self.tick)


def _warm(seed=9, until=1.0):
    sim = Simulator(seed=seed)
    ticker = Ticker(sim)
    sim.run(until=until)
    return sim, ticker


def test_clone_fork_continues_like_the_original():
    sim, ticker = _warm()
    body = capture_bytes(sim, ticker)
    sim.run(until=3.0)

    sim2, ticker2 = fork_bytes(body)  # salt=None: pure clone
    sim2.run(until=3.0)
    assert ticker2.values == ticker.values
    assert sim2.events_processed == sim.events_processed


def test_distinct_salts_diverge_same_salt_agrees():
    sim, ticker = _warm()
    body = capture_bytes(sim, ticker)
    prefix = list(ticker.values)

    runs = {}
    for salt in ("a", "b", "a"):
        fsim, fticker = fork_bytes(body, salt)
        fsim.run(until=3.0)
        runs.setdefault(salt, []).append(fticker.values)
        # the shared prefix is history — already drawn before the fork
        assert fticker.values[: len(prefix)] == prefix

    a1, a2 = runs["a"]
    (b1,) = runs["b"]
    assert a1 == a2  # same salt => reproducible continuation
    assert a1[len(prefix):] != b1[len(prefix):]  # different salts diverge

    # and both diverge from the unsalted original
    sim.run(until=3.0)
    assert a1[len(prefix):] != ticker.values[len(prefix):]


def test_streams_derived_after_the_fork_diverge_too():
    sim, _ticker = _warm()
    body = capture_bytes(sim)

    def late_stream(salt):
        fsim, _ = fork_bytes(body, salt)
        return fsim.stream("late").random()

    assert late_stream("a") != late_stream("b")


def test_reseed_streams_returns_labels_and_is_deterministic():
    sim, _ticker = _warm(seed=1)
    assert reseed_streams(sim, "x") == ["ticker"]
    first = sim._streams["ticker"].random()

    sim2, _ = _warm(seed=1)
    reseed_streams(sim2, "x")
    assert sim2._streams["ticker"].random() == first


def test_fork_file_records_lineage(tmp_path):
    sim, ticker = _warm()
    path = tmp_path / "warm.ckpt"
    info = save(path, sim, ticker)

    children = fork(path, [None, "a", 2])
    assert len(children) == 3
    for child, salt in zip(children, [None, "a", "2"]):
        assert child.header["parent"] == info.id
        assert child.header["fork_salt"] == salt
        assert child.sim.now == sim.now


def test_duplicate_salts_rejected(tmp_path):
    sim, ticker = _warm()
    path = tmp_path / "warm.ckpt"
    save(path, sim, ticker)
    with pytest.raises(SnapshotError, match="duplicate"):
        fork(path, ["a", "b", "a"])
    # None (pure clones) may repeat freely
    assert len(fork(path, [None, None])) == 2


def test_mutate_hook_perturbs_the_continuation():
    sim, ticker = _warm()
    body = capture_bytes(sim, ticker)

    def hurry(fsim, fticker):
        fticker.period = 0.05  # double the tick rate from here on

    plain_sim, plain = fork_bytes(body)
    fast_sim, fast = fork_bytes(body, mutate=hurry)
    plain_sim.run(until=3.0)
    fast_sim.run(until=3.0)
    assert len(fast.values) > len(plain.values)
