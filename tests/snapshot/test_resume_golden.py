"""Resume-equals-straight-through, pinned to the determinism goldens.

The PR's core acceptance criterion: a run that crashes mid-measure and
resumes from its last periodic checkpoint must produce *the exact same*
:class:`DumbbellResult` — every float bit-identical — as the run that was
never interrupted, on the same fixed-seed points the golden suite pins.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict

import pytest

from repro.experiments.common import run_dumbbell
from repro.snapshot import CheckpointSlot
from repro.snapshot import runtime
from tests.experiments.test_determinism_golden import (
    GOLDEN_KW,
    PERT_GOLDEN,
    PERT_GOLDEN_INTS,
    RED_GOLDEN,
)

#: small off-golden point for the cheaper invariance tests
SMALL_KW = dict(bandwidth=2e6, rtt=0.04, n_fwd=2, duration=3.0,
                warmup=1.0, seed=4)


class _SimulatedCrash(RuntimeError):
    pass


class _DyingSlot(CheckpointSlot):
    """Checkpoint slot that kills the run right after its Nth save —
    the write lands on disk first, exactly like a crash between saves."""

    def __init__(self, path, interval, die_after):
        super().__init__(path, interval)
        self.die_after = die_after

    def save(self, sim, state=None):
        info = super().save(sim, state)
        if self.saves >= self.die_after:
            raise _SimulatedCrash(f"killed after save #{self.saves}")
        return info


@contextmanager
def _install(slot):
    """Install *slot* as the active checkpoint, as the executor would."""
    prev = runtime._ACTIVE
    runtime._ACTIVE = slot
    try:
        yield slot
    finally:
        runtime._ACTIVE = prev


def _crash_then_resume(scheme, kwargs, path, interval, die_after):
    with _install(_DyingSlot(path, interval, die_after)):
        with pytest.raises(_SimulatedCrash):
            run_dumbbell(scheme, **kwargs)
    assert path.exists(), "the dying save must have left a checkpoint"
    with _install(CheckpointSlot(path, interval)) as slot:
        result = run_dumbbell(scheme, **kwargs)
    assert slot.resumed
    return result, slot


def test_pert_resume_is_bit_identical_and_hits_the_golden(tmp_path):
    straight = run_dumbbell("pert", **GOLDEN_KW)
    resumed, slot = _crash_then_resume(
        "pert", GOLDEN_KW, tmp_path / "pert.ckpt", interval=1.0, die_after=3,
    )
    # warmup=3 saves at t=1,2; the third save (t=4) is mid-measure
    assert slot.resumed_at == 4.0
    assert asdict(resumed) == asdict(straight)
    for name, expected in PERT_GOLDEN.items():
        assert getattr(resumed, name) == pytest.approx(
            expected, rel=1e-12, abs=1e-15
        ), name
    assert resumed.events_processed == PERT_GOLDEN_INTS["events_processed"]


def test_sack_red_ecn_resume_is_bit_identical_and_hits_the_golden(tmp_path):
    straight = run_dumbbell("sack-red-ecn", **GOLDEN_KW)
    resumed, slot = _crash_then_resume(
        "sack-red-ecn", GOLDEN_KW, tmp_path / "red.ckpt",
        interval=1.0, die_after=3,
    )
    assert slot.resumed_at == 4.0
    assert asdict(resumed) == asdict(straight)
    for name, expected in RED_GOLDEN.items():
        assert getattr(resumed, name) == pytest.approx(
            expected, rel=1e-12, abs=1e-15
        ), name


def test_checkpoint_cadence_does_not_change_results(tmp_path):
    """Periodic saving alone (no crash) must be invisible in the result."""
    straight = run_dumbbell("pert", **SMALL_KW)
    with _install(CheckpointSlot(tmp_path / "c.ckpt", 0.7)) as slot:
        chunked = run_dumbbell("pert", **SMALL_KW)
    assert slot.saves > 0 and not slot.resumed
    assert asdict(chunked) == asdict(straight)


def test_mismatched_checkpoint_is_rejected_not_resumed(tmp_path):
    """A checkpoint from different run parameters must not be resumed."""
    path = tmp_path / "stale.ckpt"
    with _install(_DyingSlot(path, 0.7, die_after=2)):
        with pytest.raises(_SimulatedCrash):
            run_dumbbell("pert", **SMALL_KW)
    assert path.exists()

    other_kw = dict(SMALL_KW, seed=SMALL_KW["seed"] + 1)
    straight = run_dumbbell("pert", **other_kw)
    with _install(CheckpointSlot(path, 0.7)) as slot:
        fresh = run_dumbbell("pert", **other_kw)
    # reject() cleared the resume bookkeeping; the run restarted fresh
    # (and then wrote its own periodic checkpoints over the stale file)
    assert not slot.resumed
    assert slot.resumed_from is None
    assert asdict(fresh) == asdict(straight)
