"""Snapshot file format: header, checksums, corruption, versioning, CLI."""

from __future__ import annotations

import json

import pytest

import repro
from repro.sim.engine import Simulator
from repro.snapshot import FORMAT_VERSION, SnapshotError, load, save, verify
from repro.snapshot import __main__ as cli
from repro.snapshot.format import MAGIC, read_header


def _small_sim(seed=3):
    sim = Simulator(seed=seed)
    acc = []
    for i in range(5):
        sim.schedule(0.1 * (i + 1), acc.append, i)
    sim.run(until=0.25)
    return sim


def _save(tmp_path, **kwargs):
    sim = _small_sim()
    path = tmp_path / "snap.ckpt"
    info = save(path, sim, {"note": "hello"}, **kwargs)
    return path, info


class TestFormat:
    def test_save_writes_magic_and_json_header(self, tmp_path):
        path, info = _save(tmp_path)
        raw = path.read_bytes()
        assert raw.startswith(MAGIC)
        header_line = raw[len(MAGIC):].split(b"\n", 1)[0]
        header = json.loads(header_line)
        assert header["format"] == FORMAT_VERSION
        assert header["repro_version"] == repro.__version__
        assert header["id"] == info.id
        assert header["body_bytes"] == info.body_bytes

    def test_header_summarizes_sim(self, tmp_path):
        path, _ = _save(tmp_path, label="unit")
        header = read_header(path)
        assert header["label"] == "unit"
        assert header["sim"]["now"] == 0.25
        assert header["sim"]["pending"] == 3

    def test_load_round_trips_state(self, tmp_path):
        path, _ = _save(tmp_path)
        restored = load(path)
        assert restored.state == {"note": "hello"}
        assert restored.sim.now == 0.25
        assert restored.id == read_header(path)["id"]

    def test_verify_passes_on_good_file(self, tmp_path):
        path, _ = _save(tmp_path)
        out = verify(path)
        assert out["verified"]["pending"] == 3

    def test_flipped_body_byte_fails_checksum(self, tmp_path):
        path, _ = _save(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            load(path)

    def test_truncated_body_fails(self, tmp_path):
        path, _ = _save(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises(SnapshotError):
            load(path)

    def test_bad_magic_fails(self, tmp_path):
        path = tmp_path / "not-a-snap.ckpt"
        path.write_bytes(b"GARBAGE\n{}\n")
        with pytest.raises(SnapshotError, match="magic|not a snapshot"):
            load(path)

    def test_version_mismatch_refused_by_default(self, tmp_path, monkeypatch):
        path, _ = _save(tmp_path)
        monkeypatch.setattr(repro, "__version__", "999.0")
        with pytest.raises(SnapshotError, match="999.0"):
            load(path)
        restored = load(path, allow_version_mismatch=True)
        assert restored.sim.now == 0.25

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            load(tmp_path / "nope.ckpt")


class TestCli:
    def test_inspect(self, tmp_path, capsys):
        path, info = _save(tmp_path)
        assert cli.main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert info.id in out
        assert "pending" in out or "events" in out

    def test_inspect_json(self, tmp_path, capsys):
        path, info = _save(tmp_path)
        assert cli.main(["inspect", str(path), "--json"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["id"] == info.id

    def test_verify_ok_and_corrupt(self, tmp_path, capsys):
        path, _ = _save(tmp_path)
        assert cli.main(["verify", str(path)]) == 0
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cli.main(["verify", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_same_and_different(self, tmp_path, capsys):
        path_a, _ = _save(tmp_path)
        path_b = tmp_path / "b.ckpt"
        sim = _small_sim()
        sim.run(until=0.35)  # one more event fired
        save(path_b, sim, None)
        assert cli.main(["diff", str(path_a), str(path_a)]) == 0
        assert "match" in capsys.readouterr().out
        assert cli.main(["diff", str(path_a), str(path_b)]) == 1
        out = capsys.readouterr().out
        assert "events_processed" in out or "now" in out
