"""Runner integration: periodic checkpoints, crash resume, lineage."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import run_dumbbell
from repro.runner import JobSpec, ResultCache, run_jobs

CRASHY = "tests.snapshot.jobs:crashy_dumbbell"

#: small, fast dumbbell point shared by every test here
KW = dict(scheme="pert", bandwidth=2e6, rtt=0.04, n_fwd=2, duration=3.0,
          warmup=1.0, seed=4)


def _spec(marker, **extra):
    params = dict(KW, marker=str(marker), **extra)
    return JobSpec(CRASHY, params)


@pytest.mark.parametrize("workers", [0, 2])
def test_crashed_attempt_resumes_from_its_checkpoint(tmp_path, workers):
    cache = ResultCache(tmp_path / "cache")
    spec = _spec(tmp_path / "crash.marker", die_after=2)
    res = run_jobs(
        [spec], workers=workers, cache=cache, retries=1, checkpoint=0.5,
    )[0]

    assert res.ok
    assert res.attempts == 2  # crash + resumed retry
    assert res.value["resumed"] is True
    # interval 0.5, warmup 1.0: save #1 at t=0.5, save #2 (mid-measure,
    # fatal) at t=1.5 — the retry picks up from there
    assert res.value["resumed_at"] == 1.5
    # on success the checkpoint file is deleted
    assert not cache.checkpoint_path_for(spec).exists()

    # and the resumed run's metrics equal an uninterrupted in-process run
    straight = run_dumbbell(**KW)
    assert res.value["events_processed"] == straight.events_processed
    assert res.value["mean_queue_pkts"] == straight.mean_queue_pkts
    assert res.value["utilization"] == straight.utilization
    assert res.value["jain"] == straight.jain


def test_manifest_records_checkpoint_lineage(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = _spec(tmp_path / "lineage.marker", die_after=2)
    res = run_jobs([spec], workers=0, cache=cache, retries=1, checkpoint=0.5)[0]
    assert res.ok

    manifest = json.loads(cache.manifest_path_for(spec).read_text())
    lineage = manifest["checkpoint"]
    assert lineage["resumed"] is True
    assert lineage["resumed_at"] == 1.5
    assert lineage["resumed_from"]
    assert lineage["interval"] == 0.5
    assert lineage["saves"] > 0


def test_checkpointing_is_silently_off_without_a_cache(tmp_path):
    """No cache => no checkpoint path => the job never sees a slot."""
    res = run_jobs(
        [_spec(tmp_path / "nocache.marker")],
        workers=0, cache=False, retries=1, checkpoint=0.5,
    )[0]
    assert res.ok
    assert res.attempts == 1  # the job only crashes when a slot exists
    assert res.value["resumed"] is False


def test_unused_slot_leaves_no_lineage_or_file(tmp_path):
    """Checkpointing enabled but the job finishes before the first save."""
    cache = ResultCache(tmp_path / "cache")
    # interval longer than the whole run: the slot exists but never saves
    spec = _spec(tmp_path / "clean.marker")
    res = run_jobs([spec], workers=0, cache=cache, retries=0, checkpoint=10.0)[0]
    assert res.ok
    assert res.value["resumed"] is False
    assert not cache.checkpoint_path_for(spec).exists()
    manifest = json.loads(cache.manifest_path_for(spec).read_text())
    assert "checkpoint" not in manifest  # unused slots leave no record


def test_env_var_enables_checkpointing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINT", "0.5")
    cache = ResultCache(tmp_path / "cache")
    spec = _spec(tmp_path / "env.marker", die_after=2)
    res = run_jobs([spec], workers=0, cache=cache, retries=1)[0]
    assert res.ok
    assert res.value["resumed"] is True
