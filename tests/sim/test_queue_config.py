"""QueueConfig / make_queue: the unified queue construction API."""

import random
import warnings

import pytest

from repro.sim.engine import Simulator
from repro.sim.queues import (
    DISCIPLINES,
    DropTailQueue,
    PiQueue,
    QueueConfig,
    QueueDiscipline,
    RedQueue,
    RemQueue,
    make_queue,
)
from repro.sim.queues.config import reset_legacy_warnings


class TestRoundTrip:
    """make_queue builds every discipline with its params applied."""

    def test_droptail(self):
        q = make_queue(QueueConfig("droptail", capacity_pkts=42))
        assert isinstance(q, DropTailQueue)
        assert q.capacity == 42

    def test_red(self):
        cfg = QueueConfig(
            "red", capacity_pkts=77,
            params=dict(min_th=7.0, max_th=21.0, max_p=0.2, gentle=False,
                        adaptive=True, ecn=False),
        )
        q = make_queue(cfg)
        assert isinstance(q, RedQueue)
        assert (q.capacity, q.min_th, q.max_th, q.max_p) == (77, 7.0, 21.0, 0.2)
        assert (q.gentle, q.adaptive, q.ecn) == (False, True, False)

    def test_pi(self):
        cfg = QueueConfig(
            "pi", capacity_pkts=50,
            params=dict(q_ref=12.0, a=2e-5, b=1e-5, sample_hz=100.0),
        )
        q = make_queue(cfg)
        assert isinstance(q, PiQueue)
        assert (q.q_ref, q.a, q.b) == (12.0, 2e-5, 1e-5)
        assert q.period == pytest.approx(0.01)

    def test_rem(self):
        cfg = QueueConfig(
            "rem", capacity_pkts=60,
            params=dict(q_ref=15.0, gamma=0.002, phi=1.002),
        )
        q = make_queue(cfg)
        assert isinstance(q, RemQueue)
        assert (q.q_ref, q.gamma, q.phi) == (15.0, 0.002, 1.002)

    def test_every_registered_discipline_constructs(self):
        for name, cls in DISCIPLINES.items():
            q = make_queue(QueueConfig(name, capacity_pkts=10))
            assert isinstance(q, cls)
            assert q.capacity == 10

    def test_capacity_bytes_where_supported(self):
        q = make_queue(QueueConfig("red", capacity_pkts=10,
                                   capacity_bytes=9000))
        assert q.capacity_bytes == 9000


class TestValidation:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError, match="unknown discipline"):
            QueueConfig("codel")

    def test_unknown_param_rejected_with_valid_names(self):
        with pytest.raises(ValueError, match="min_th"):
            QueueConfig("red", params=dict(minth=5.0))

    def test_param_of_other_discipline_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            QueueConfig("droptail", params=dict(min_th=5.0))

    def test_capacity_bytes_rejected_where_unsupported(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            QueueConfig("pi", capacity_bytes=9000)

    def test_with_params_merges(self):
        cfg = QueueConfig("red", params=dict(min_th=5.0))
        cfg2 = cfg.with_params(max_th=20.0)
        assert cfg2.params == {"min_th": 5.0, "max_th": 20.0}
        assert cfg.params == {"min_th": 5.0}  # original untouched


class TestRngAndSim:
    def test_sim_derives_the_legacy_stream_label(self):
        # make_queue(sim=...) must claim the same per-discipline stream
        # the old hand-rolled factories claimed ("red", unique=True), so
        # fixed-seed experiments are bit-identical across both paths.
        sim_new = Simulator(seed=9)
        q_new = make_queue(QueueConfig("red"), sim=sim_new)
        sim_old = Simulator(seed=9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            q_old = RedQueue(100, rng=sim_old.stream("red", unique=True))
        draws_new = [q_new.rng.random() for _ in range(5)]
        draws_old = [q_old.rng.random() for _ in range(5)]
        assert draws_new == draws_old

    def test_explicit_rng_wins(self):
        rng = random.Random(123)
        q = make_queue(QueueConfig("red"), sim=Simulator(seed=9), rng=rng)
        assert q.rng is rng

    def test_sim_attaches_periodic_controllers(self):
        sim = Simulator(seed=1)
        make_queue(QueueConfig("pi"), sim=sim)
        assert sim.pending() == 1  # the controller tick is scheduled

    def test_two_queues_per_sim_coexist(self):
        sim = Simulator(seed=1)
        make_queue(QueueConfig("red"), sim=sim)
        make_queue(QueueConfig("red"), sim=sim)  # claims "red#1", no clash


class TestDeprecationShims:
    def test_direct_construction_warns_exactly_once_per_class(self):
        reset_legacy_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DropTailQueue(10)
            DropTailQueue(10)
            RedQueue(10)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 2  # one for DropTailQueue, one for RedQueue
        assert "make_queue" in str(dep[0].message)

    def test_make_queue_never_warns(self):
        reset_legacy_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for name in DISCIPLINES:
                make_queue(QueueConfig(name, capacity_pkts=10))
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert dep == []

    def test_plain_subclasses_do_not_warn(self):
        reset_legacy_warnings()

        class MyQueue(QueueDiscipline):
            pass

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MyQueue(10)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert dep == []
