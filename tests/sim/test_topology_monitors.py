"""Unit tests for topology builders and monitors."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.monitors import DropLog, LinkWindow, QueueSampler, ThroughputSampler
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Dumbbell, ParkingLot


def test_dumbbell_shape():
    sim = Simulator()
    db = Dumbbell(sim, n_left=3, n_right=2, bottleneck_bw=1e6,
                  bottleneck_delay=0.01, qdisc_fwd=lambda: DropTailQueue(10))
    assert len(db.left) == 3 and len(db.right) == 2
    assert db.fwd.src is db.r1 and db.fwd.dst is db.r2
    assert db.rev.src is db.r2 and db.rev.dst is db.r1
    # all-pairs routes exist
    assert db.right[1].node_id in db.left[0].routes
    assert db.left[2].node_id in db.right[0].routes


def test_dumbbell_access_delays_applied():
    sim = Simulator()
    db = Dumbbell(sim, n_left=2, n_right=2, bottleneck_bw=1e6,
                  bottleneck_delay=0.01, qdisc_fwd=lambda: DropTailQueue(10),
                  access_delays_left=[0.002, 0.004],
                  access_delays_right=[0.001, 0.003])
    link = db.left[1].routes[db.right[0].node_id]
    assert link.delay == pytest.approx(0.004)


def test_dumbbell_delay_list_length_validated():
    sim = Simulator()
    with pytest.raises(ValueError):
        Dumbbell(sim, n_left=2, n_right=2, bottleneck_bw=1e6,
                 bottleneck_delay=0.01, qdisc_fwd=lambda: DropTailQueue(10),
                 access_delays_left=[0.001])


def test_parking_lot_shape():
    sim = Simulator()
    lot = ParkingLot(sim, n_routers=4, cloud_size=2, link_bw=1e6,
                     link_delay=0.005, qdisc=lambda: DropTailQueue(10))
    assert len(lot.routers) == 4
    assert len(lot.core_links) == 3
    assert all(len(c) == 2 for c in lot.clouds)
    # end-to-end path uses the router chain
    first_cloud_host = lot.clouds[0][0]
    assert lot.clouds[-1][0].node_id in first_cloud_host.routes


def test_parking_lot_requires_two_routers():
    sim = Simulator()
    with pytest.raises(ValueError):
        ParkingLot(sim, n_routers=1, cloud_size=1, link_bw=1e6,
                   link_delay=0.005, qdisc=lambda: DropTailQueue(10))


def test_queue_sampler_records_and_lookup():
    sim = Simulator()
    q = DropTailQueue(10)
    sampler = QueueSampler(sim, q, interval=0.1)
    sim.schedule(0.15, lambda: q.enqueue(Packet(1, 0, 1, seq=0), sim.now))
    sim.run(until=0.55)
    assert sampler.length_at(0.0) == 0
    assert sampler.length_at(0.3) == 1
    assert sampler.mean(0.2, 0.5) == pytest.approx(1.0)


def test_queue_sampler_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        QueueSampler(sim, DropTailQueue(5), interval=0.0)


def test_queue_sampler_mean_respects_window_bounds():
    sim = Simulator()
    q = DropTailQueue(10)
    sampler = QueueSampler(sim, q, interval=1.0)
    # one packet added per second: lengths are 0,1,2,3,... at t=0,1,2,...
    for i in range(5):
        sim.schedule(i + 0.5, lambda: q.enqueue(Packet(1, 0, 1, seq=0), sim.now))
    sim.run(until=5.5)
    assert sampler.lengths == [0, 1, 2, 3, 4, 5]
    assert sampler.mean() == pytest.approx(15.0 / 6)
    assert sampler.mean(start=2.0, end=4.0) == pytest.approx((2 + 3 + 4) / 3)
    assert sampler.mean(start=2.5, end=3.5) == pytest.approx(3.0)  # only t=3
    assert sampler.mean(start=9.0) == 0.0  # empty window
    assert sampler.mean(start=0.0, end=0.0) == pytest.approx(0.0)


def test_queue_sampler_exports_schema_records():
    sim = Simulator()
    q = DropTailQueue(10)
    sampler = QueueSampler(sim, q, interval=1.0)
    sim.run(until=2.0)
    recs = sampler.records(label="bn")
    assert [r["t"] for r in recs] == sampler.times
    assert all(r["type"] == "queue_sample" and r["queue"] == "bn" for r in recs)


def test_drop_log_filters_by_flow():
    q = DropTailQueue(1)
    log = DropLog(q)
    q.enqueue(Packet(1, 0, 1, seq=0), 0.0)
    q.enqueue(Packet(1, 0, 1, seq=1), 1.0)  # dropped
    q.enqueue(Packet(2, 0, 1, seq=0), 2.0)  # dropped
    assert log.times() == [1.0, 2.0]
    assert log.times(flow_id=2) == [2.0]
    assert log.count(start=1.5) == 1


def test_link_window_requires_open_close(sim, dumbbell):
    win = LinkWindow(sim, dumbbell.fwd)
    with pytest.raises(RuntimeError):
        _ = win.utilization
    win.open()
    with pytest.raises(RuntimeError):
        _ = win.drop_rate


def test_link_window_rejects_double_open(sim, dumbbell):
    win = LinkWindow(sim, dumbbell.fwd)
    win.open()
    with pytest.raises(RuntimeError, match="already open"):
        win.open()  # would silently reset the baselines mid-window


def test_link_window_can_reopen_after_close(sim, dumbbell):
    win = LinkWindow(sim, dumbbell.fwd)
    win.open()
    sim.run(until=1.0)
    win.close()
    assert win.duration == pytest.approx(1.0)
    win.open()  # legitimate second window
    sim.run(until=3.0)
    win.close()
    assert win.duration == pytest.approx(2.0)


def test_drop_log_stores_schema_records():
    q = DropTailQueue(1)
    log = DropLog(q, label="bn")
    q.enqueue(Packet(1, 0, 1, seq=0), 0.0)
    q.enqueue(Packet(1, 0, 1, seq=7), 1.0)  # dropped (buffer full)
    assert log.events == [(1.0, 1)]
    [rec] = log.records
    assert rec["type"] == "drop" and rec["queue"] == "bn"
    assert rec["seq"] == 7 and rec["forced"] is True


def test_throughput_sampler_rates():
    sim = Simulator()
    counter = {"bytes": 0}

    def add():
        counter["bytes"] += 1000
        sim.schedule(0.1, add)

    sampler = ThroughputSampler(sim, lambda: counter["bytes"], interval=1.0)
    sim.schedule(0.05, add)
    sim.run(until=3.05)
    # 10 packets of 1000 B per second = 80 kbps
    assert sampler.rates_bps[1] == pytest.approx(80000.0)


def test_throughput_sampler_alignment_and_deltas():
    sim = Simulator()
    counter = {"bytes": 500}  # non-zero baseline must not leak into rates

    sampler = ThroughputSampler(sim, lambda: counter["bytes"], interval=0.5)
    sim.schedule(0.2, lambda: counter.update(bytes=counter["bytes"] + 250))
    sim.schedule(0.8, lambda: counter.update(bytes=counter["bytes"] + 750))
    sim.run(until=1.6)
    # first sample lands at t=interval, then every interval thereafter
    assert sampler.times == pytest.approx([0.5, 1.0, 1.5])
    # each rate is the delta over its own interval, not a running total
    assert sampler.rates_bps[0] == pytest.approx(250 * 8 / 0.5)
    assert sampler.rates_bps[1] == pytest.approx(750 * 8 / 0.5)
    assert sampler.rates_bps[2] == pytest.approx(0.0)


def test_throughput_sampler_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ThroughputSampler(sim, lambda: 0, interval=0.0)
