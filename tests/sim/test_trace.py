"""Tests for the flow tracer and ASCII rendering."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import FlowTracer, ascii_series

from ..conftest import make_dumbbell, make_flow


def test_tracer_samples_on_grid():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    tracer = FlowTracer(sim, sender, interval=0.5)
    sender.start()
    sim.run(until=5.0)
    assert len(tracer.times) == pytest.approx(11, abs=1)
    assert len(tracer.cwnd) == len(tracer.times) == len(tracer.srtt)
    assert all(c >= 1.0 for c in tracer.cwnd)


def test_tracer_delayed_start():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    tracer = FlowTracer(sim, sender, interval=0.5, start=2.0)
    sender.start()
    sim.run(until=5.0)
    assert tracer.times[0] == pytest.approx(2.0)
    # samples stay on the grid anchored at the delayed start
    assert tracer.times == pytest.approx([2.0 + 0.5 * i
                                          for i in range(len(tracer.times))])
    assert len(tracer.times) == pytest.approx(7, abs=1)


def test_tracer_start_in_past_clamps_to_now():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    sim.run(until=1.0)
    tracer = FlowTracer(sim, sender, interval=0.5, start=0.0)
    sim.run(until=2.0)
    assert tracer.times[0] == pytest.approx(1.0)


def test_tracer_stores_schema_records():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    tracer = FlowTracer(sim, sender, interval=1.0)
    sender.start()
    sim.run(until=3.0)
    from repro.obs.records import validate_record
    for rec in tracer.records:
        validate_record(rec)
        assert rec["type"] == "cwnd_sample"
        assert rec["flow"] == sender.flow_id
    assert tracer.cwnd == [r["cwnd"] for r in tracer.records]
    assert tracer.ssthresh == [r["ssthresh"] for r in tracer.records]


def test_tracer_stats():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    tracer = FlowTracer(sim, sender, interval=0.2)
    sender.start()
    sim.run(until=10.0)
    stats = tracer.cwnd_stats()
    assert stats["min"] <= stats["mean"] <= stats["max"]
    assert stats["swing"] >= 1.0


def test_tracer_empty_stats():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    tracer = FlowTracer(sim, sender, interval=1.0)
    assert tracer.cwnd_stats()["mean"] == 0.0


def test_tracer_validation():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db)
    with pytest.raises(ValueError):
        FlowTracer(sim, sender, interval=0.0)


def test_ascii_series_shape():
    out = ascii_series([1, 2, 3, 4, 5], width=5, height=4, label="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 1 + 5 + 1  # label + (height+1) rows + axis
    assert "*" in out


def test_ascii_series_handles_flat_and_empty():
    assert "no data" in ascii_series([], label="x ")
    out = ascii_series([2.0, 2.0, 2.0])
    assert "*" in out  # flat series still renders
