"""Additional queue-discipline coverage: RED internals, REM dynamics,
PI behaviour under load, and cross-discipline comparisons."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, PiQueue, RedQueue, RemQueue


def pkt(seq=0, ect=True, flow=1):
    return Packet(flow_id=flow, src=0, dst=1, seq=seq, ect=ect)


class TestRedCountMechanism:
    """Floyd & Jacobson's inter-mark uniformization (the `count` state)."""

    def make(self, max_p=0.1):
        return RedQueue(1000, min_th=5, max_th=15, max_p=max_p, w_q=1.0,
                        gentle=False, ecn=True, rng=random.Random(7))

    def test_count_increases_effective_probability(self):
        # with avg pinned mid-band, successive survivals raise p_a; a mark
        # must occur within ~1/p_b packets (here 20)
        q = self.make(max_p=0.5)
        # preload the queue so avg sits at 10 (p_b = 0.25)
        for i in range(10):
            q.enqueue(pkt(i), 0.0)
        q.avg = 10.0
        marks_gap = 0
        max_gap = 0
        for i in range(200):
            p = pkt(100 + i)
            q.enqueue(p, 0.0)
            q.avg = 10.0  # hold the average fixed for the test
            if p.ce:
                max_gap = max(max_gap, marks_gap)
                marks_gap = 0
            else:
                marks_gap += 1
        # uniformized marking cannot leave arbitrarily long gaps
        assert max_gap <= 2 * int(1 / 0.25)

    def test_count_resets_below_min_th(self):
        q = self.make()
        q.avg = 10.0
        q._count = 5
        q.avg = 1.0
        q.admit(pkt(0), 0.0)
        assert q._count == 0


class TestRemDynamics:
    def test_price_tracks_persistent_backlog(self):
        q = RemQueue(1000, q_ref=5.0, gamma=0.01, alpha=0.5,
                     rng=random.Random(1))
        for i in range(40):
            q.enqueue(pkt(i), 0.0)
        prices = []
        for _ in range(20):
            q.update()
            prices.append(q.price)
        assert prices == sorted(prices)  # monotone under constant overload

    def test_equilibrium_price_stable_at_reference(self):
        q = RemQueue(1000, q_ref=10.0, gamma=0.01, alpha=0.5,
                     rng=random.Random(1))
        for i in range(10):
            q.enqueue(pkt(i), 0.0)
        q.update()
        p1 = q.price
        q.update()  # q == q_ref and q == q_prev: no drift
        assert q.price == pytest.approx(p1)

    def test_mark_probability_monotone_in_price(self):
        q = RemQueue(100, rng=random.Random(1))
        probs = []
        for price in (0.0, 1.0, 10.0, 100.0):
            q.price = price
            probs.append(q.mark_probability())
        assert probs == sorted(probs)
        assert probs[0] == 0.0 and probs[-1] < 1.0


class TestPiUnderLoad:
    def test_pi_holds_queue_near_reference_closed_loop(self):
        """Crude closed loop: arrivals thinned by the marking probability
        must settle the queue near q_ref."""
        sim = Simulator(seed=3)
        q = PiQueue(500, q_ref=50.0, a=5e-4, b=4.8e-4, sample_hz=100.0,
                    sim=sim, rng=random.Random(3))
        rng = random.Random(5)
        seq = [0]

        def offer():
            # offered load responds inversely to p (TCP-ish backoff)
            n = max(1, int(3 * (1.0 - q.p)))
            for _ in range(n):
                q.enqueue(pkt(seq[0]), sim.now)
                seq[0] += 1
            q.dequeue(sim.now)
            q.dequeue(sim.now)
            sim.schedule(0.001, offer)

        sim.schedule(0.0, offer)
        sim.run(until=20.0)
        assert 10 <= len(q) <= 150  # bounded near the reference


class TestCrossDiscipline:
    def test_aqm_keeps_shorter_queue_than_droptail_open_loop(self):
        """Under identical overload, every AQM sheds load earlier than
        DropTail (which only drops at capacity)."""
        rng = random.Random(1)

        def drive(q):
            t = 0.0
            for i in range(3000):
                t += 0.0005
                q.enqueue(pkt(i), t)
                if i % 2 == 0:
                    q.dequeue(t)
                if hasattr(q, "update") and i % 10 == 0:
                    q.update()
            return len(q)

        droptail = drive(DropTailQueue(200))
        red = drive(RedQueue(200, min_th=20, max_th=60, max_p=0.2, w_q=0.01,
                             ecn=False, rng=random.Random(2)))
        pi = drive(PiQueue(200, q_ref=30.0, a=2e-3, b=1.9e-3, ecn=False,
                           rng=random.Random(2)))
        # REM's textbook phi=1.001 needs prices in the hundreds; use a
        # sharper exponential for this short open-loop drive
        rem = drive(RemQueue(200, q_ref=30.0, gamma=0.05, phi=1.05,
                             ecn=False, rng=random.Random(2)))
        assert droptail == 200  # pinned at capacity
        for aqm_q in (red, pi, rem):
            assert aqm_q < droptail
