"""Unit tests for links, nodes and routing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Network


class Collector:
    """Endpoint that records arrivals with timestamps."""

    def __init__(self, sim):
        self.sim = sim
        self.seen = []

    def receive(self, pkt):
        self.seen.append((self.sim.now, pkt.seq))


def two_nodes(sim, bw=8e6, delay=0.01, buf=10):
    a = Node(sim, 0, "a")
    b = Node(sim, 1, "b")
    link = Link(sim, a, b, bandwidth=bw, delay=delay, qdisc=DropTailQueue(buf))
    a.add_route(1, link)
    return a, b, link


def test_serialization_plus_propagation_delay():
    sim = Simulator()
    a, b, link = two_nodes(sim, bw=8e6, delay=0.01)
    sink = Collector(sim)
    b.register_endpoint(5, sink)
    pkt = Packet(flow_id=5, src=0, dst=1, size=1000, seq=0)
    sim.schedule(0.0, a.send, pkt)
    sim.run()
    # 1000 B at 8 Mbps = 1 ms serialization + 10 ms propagation
    assert sink.seen == [(pytest.approx(0.011), 0)]


def test_back_to_back_packets_paced_by_bandwidth():
    sim = Simulator()
    a, b, link = two_nodes(sim, bw=8e6, delay=0.0)
    sink = Collector(sim)
    b.register_endpoint(5, sink)
    for i in range(3):
        sim.schedule(0.0, a.send, Packet(flow_id=5, src=0, dst=1, size=1000, seq=i))
    sim.run()
    times = [t for t, _ in sink.seen]
    assert times == [pytest.approx(0.001), pytest.approx(0.002), pytest.approx(0.003)]


def test_queue_overflow_drops_excess():
    sim = Simulator()
    a, b, link = two_nodes(sim, bw=8e4, delay=0.0, buf=2)
    sink = Collector(sim)
    b.register_endpoint(5, sink)
    # one in flight + 2 queued; the rest dropped
    for i in range(10):
        sim.schedule(0.0, a.send, Packet(flow_id=5, src=0, dst=1, size=1000, seq=i))
    sim.run()
    assert len(sink.seen) == 3
    assert link.qdisc.stats.drops == 7


def test_utilization_measurement():
    sim = Simulator()
    a, b, link = two_nodes(sim, bw=8e6, delay=0.0)
    b.register_endpoint(5, Collector(sim))
    for i in range(10):
        sim.schedule(0.0, a.send, Packet(flow_id=5, src=0, dst=1, size=1000, seq=i))
    sim.run(until=0.0101)  # tiny slack for float accumulation in tx times
    assert link.utilization(duration=0.01) == pytest.approx(1.0)


def test_unroutable_packet_counted():
    sim = Simulator()
    a, b, link = two_nodes(sim)
    a.receive(Packet(flow_id=9, src=1, dst=99))
    assert a.packets_unroutable == 1


def test_unknown_flow_at_destination_dropped_silently():
    sim = Simulator()
    a, b, link = two_nodes(sim)
    sim.schedule(0.0, a.send, Packet(flow_id=123, src=0, dst=1))
    sim.run()
    assert b.packets_unroutable == 1


def test_duplicate_endpoint_registration_rejected():
    sim = Simulator()
    node = Node(sim, 0)
    node.register_endpoint(1, Collector(sim))
    with pytest.raises(ValueError):
        node.register_endpoint(1, Collector(sim))


def test_link_validation():
    sim = Simulator()
    a, b = Node(sim, 0), Node(sim, 1)
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=0, delay=0.01, qdisc=DropTailQueue(5))
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=1e6, delay=-1, qdisc=DropTailQueue(5))


def test_multihop_routing_via_network():
    sim = Simulator()
    net = Network(sim)
    n0, n1, n2 = (net.add_node(f"n{i}") for i in range(3))
    net.connect(n0, n1, 8e6, 0.001)
    net.connect(n1, n2, 8e6, 0.001)
    net.compute_routes()
    sink = Collector(sim)
    n2.register_endpoint(7, sink)
    sim.schedule(0.0, n0.send, Packet(flow_id=7, src=0, dst=n2.node_id, seq=3))
    sim.run()
    assert sink.seen and sink.seen[0][1] == 3
    assert n1.packets_forwarded == 1


def test_bfs_routes_prefer_fewest_hops():
    sim = Simulator()
    net = Network(sim)
    nodes = [net.add_node(f"n{i}") for i in range(4)]
    # ring: 0-1-2-3-0; from 0 to 2 both ways are 2 hops, but 0->1->2 was
    # discovered first; from 0 to 3 the direct link must be used.
    net.connect(nodes[0], nodes[1], 1e6, 0.001)
    net.connect(nodes[1], nodes[2], 1e6, 0.001)
    net.connect(nodes[2], nodes[3], 1e6, 0.001)
    net.connect(nodes[3], nodes[0], 1e6, 0.001)
    net.compute_routes()
    assert nodes[0].routes[nodes[3].node_id].dst is nodes[3]
