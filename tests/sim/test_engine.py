"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(0.3, order.append, "c")
    sim.schedule(0.1, order.append, "a")
    sim.schedule(0.2, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_cancel_skips_event():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    sim.cancel(ev)
    sim.run()
    assert fired == []


def test_cancel_none_is_noop():
    sim = Simulator()
    sim.cancel(None)  # should not raise


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_limit():
    sim = Simulator()

    def loop():
        sim.schedule(0.1, loop)

    sim.schedule(0.0, loop)
    sim.run(max_events=10)
    assert sim.events_processed == 10


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    e1.cancel()
    assert sim.pending() == 1


def test_pending_is_constant_time_counter():
    # pending() must not scan the heap: cancelled events linger there
    # until popped, but the live count reflects them immediately.
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(100)]
    for ev in events[:60]:
        ev.cancel()
    assert sim.pending() == 40
    assert len(sim._heap) == 100  # lazy deletion: heap still holds them


def test_cancel_is_idempotent():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    e1.cancel()  # double cancel must not decrement twice
    assert sim.pending() == 1


def test_cancel_after_fire_is_a_noop():
    sim = Simulator()
    fired = []
    e1 = sim.schedule(1.0, lambda: fired.append(1))
    e2 = sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert fired == [1]
    assert sim.pending() == 1
    e1.cancel()  # already executed: must not affect the live count
    assert sim.pending() == 1
    e2.cancel()
    assert sim.pending() == 0


def test_pending_drains_to_zero_after_run():
    sim = Simulator()
    for i in range(5):
        sim.schedule(0.1 * (i + 1), lambda: None)
    sim.run()
    assert sim.pending() == 0


def test_streams_are_reproducible_and_independent():
    a1 = Simulator(seed=7).stream("x").random()
    a2 = Simulator(seed=7).stream("x").random()
    b = Simulator(seed=7).stream("y").random()
    c = Simulator(seed=8).stream("x").random()
    assert a1 == a2
    assert a1 != b
    assert a1 != c


def test_stream_label_collision_rejected():
    sim = Simulator(seed=7)
    sim.stream("starts")
    with pytest.raises(SimulationError):
        sim.stream("starts")  # silently shared streams are a bug


def test_unique_streams_get_deterministic_suffixes():
    sim = Simulator(seed=7)
    r0 = sim.stream("red", unique=True)  # claims bare "red"
    r1 = sim.stream("red", unique=True)  # claims "red#1"
    r2 = sim.stream("red", unique=True)  # claims "red#2"
    ref = Simulator(seed=7)
    assert r0.random() == ref.stream("red").random()
    assert r1.random() == ref.stream("red#1").random()
    assert r2.random() == ref.stream("red#2").random()
    # first unique claim matches the historical bare label, so existing
    # single-instance simulations keep their exact random sequences
    assert r0.random() != r1.random() or r0.random() != r2.random()


def test_unique_stream_skips_explicitly_claimed_labels():
    sim = Simulator(seed=7)
    sim.stream("red")  # explicit bare claim first
    r = sim.stream("red", unique=True)  # must not collide: gets "red#1"
    assert r.random() == Simulator(seed=7).stream("red#1").random()


def test_run_not_reentrant():
    sim = Simulator()
    err = []

    def inner():
        try:
            sim.run()
        except SimulationError:
            err.append(True)

    sim.schedule(0.0, inner)
    sim.run()
    assert err == [True]


def test_nonfinite_delay_rejected():
    sim = Simulator()
    for bad in (float("nan"), float("inf")):
        with pytest.raises(SimulationError):
            sim.schedule(bad, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_fire(bad, lambda: None)


def test_nonfinite_absolute_time_rejected():
    sim = Simulator()
    for bad in (float("nan"), float("inf")):
        with pytest.raises(SimulationError):
            sim.schedule_at(bad, lambda: None)


def test_rejected_schedule_corrupts_nothing():
    # A rejected schedule must not consume a sequence number or leave a
    # stale heap entry: ordering afterwards is as if it never happened.
    sim = Simulator()
    fired = []
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), fired.append, "nan")
    sim.schedule(1.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "c")
    sim.run()
    assert fired == ["b", "c"]
    assert sim.pending() == 0


def test_schedule_fire_interleaves_with_schedule():
    # schedule_fire shares the sequence space with schedule(): same-time
    # callbacks fire in schedule order regardless of which API made them.
    sim = Simulator()
    order = []
    sim.schedule(0.5, order.append, 1)
    sim.schedule_fire(0.5, order.append, 2)
    sim.schedule(0.5, order.append, 3)
    sim.run()
    assert order == [1, 2, 3]


def test_cancelled_events_survive_pickle_roundtrip():
    # Regression for snapshot support: cancelled-but-unpopped heap entries
    # must neither fire after a restore nor drift the pending() counter.
    # (Capture purges them; this pins the observable contract either way.)
    import pickle

    sim = Simulator(seed=3)
    rng = sim.stream("ticks")
    keep = sim.schedule(1.0, rng.random)
    dead = sim.schedule(2.0, rng.random)
    late = sim.schedule(3.0, rng.random)
    dead.cancel()
    assert sim.pending() == 2

    blob = pickle.dumps({"sim": sim, "late": late})
    restored = pickle.loads(blob)
    sim2, late2 = restored["sim"], restored["late"]
    assert sim2.pending() == 2
    assert keep is not None

    # an external handle pickled alongside the sim still controls the
    # restored heap entry (pickle memo keeps them the same object)
    late2.cancel()
    assert sim2.pending() == 1
    sim2.run()
    assert sim2.events_processed == 1  # only `keep` fired; no double-fire
    assert sim2.pending() == 0
    assert sim2.now == 1.0

    # the original simulator is untouched by the capture
    sim.run()
    assert sim.events_processed == 2
    assert sim.pending() == 0
