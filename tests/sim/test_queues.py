"""Unit tests for queue disciplines: DropTail, RED, PI."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, PiQueue, RedQueue


def pkt(seq=0, ect=False, size=1000):
    return Packet(flow_id=1, src=0, dst=1, seq=seq, size=size, ect=ect)


# ----------------------------------------------------------------------
# DropTail
# ----------------------------------------------------------------------
class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        for i in range(3):
            assert q.enqueue(pkt(seq=i), now=0.0)
        assert [q.dequeue(1.0).seq for _ in range(3)] == [0, 1, 2]

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(pkt(0), 0.0)
        assert q.enqueue(pkt(1), 0.0)
        assert not q.enqueue(pkt(2), 0.0)
        assert q.stats.drops == 1
        assert q.stats.forced_drops == 1
        assert q.stats.early_drops == 0

    def test_byte_accounting(self):
        q = DropTailQueue(5)
        q.enqueue(pkt(0, size=100), 0.0)
        q.enqueue(pkt(1, size=200), 0.0)
        assert q.byte_length == 300
        q.dequeue(1.0)
        assert q.byte_length == 200

    def test_dequeue_empty_returns_none(self):
        q = DropTailQueue(5)
        assert q.dequeue(0.0) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_drop_listener_invoked(self):
        q = DropTailQueue(1)
        seen = []
        q.drop_listeners.append(lambda p, t: seen.append((p.seq, t)))
        q.enqueue(pkt(0), 0.0)
        q.enqueue(pkt(1), 2.0)
        assert seen == [(1, 2.0)]

    def test_mean_queue_time_average(self):
        q = DropTailQueue(10)
        q.enqueue(pkt(0), 0.0)  # queue 0 before, 1 after
        q.enqueue(pkt(1), 1.0)  # 1 for [0,1]
        q.dequeue(3.0)  # 2 for [1,3]
        # mean over [0,4]: (0*0 + 1*1 + 2*2 + 1*1)/4 = 1.5
        assert q.stats.mean_queue(4.0, len(q)) == pytest.approx(1.5)

    def test_conservation(self):
        q = DropTailQueue(4)
        accepted = sum(q.enqueue(pkt(i), 0.0) for i in range(10))
        drained = 0
        while q.dequeue(1.0) is not None:
            drained += 1
        assert accepted == drained
        assert q.stats.enqueues == q.stats.departures + len(q)
        assert q.stats.arrivals == q.stats.enqueues + q.stats.drops


# ----------------------------------------------------------------------
# RED
# ----------------------------------------------------------------------
class TestRed:
    def make(self, **kw):
        defaults = dict(
            capacity_pkts=100, min_th=5, max_th=15, max_p=0.1,
            w_q=0.25, gentle=True, ecn=False, rng=random.Random(1),
        )
        defaults.update(kw)
        return RedQueue(**defaults)

    def test_no_drops_below_min_th(self):
        q = self.make()
        for i in range(4):
            assert q.enqueue(pkt(i), 0.0)
        assert q.stats.drops == 0

    def test_mark_probability_zero_below_min(self):
        q = self.make()
        q.avg = 3.0
        assert q.mark_probability() == 0.0

    def test_mark_probability_linear_between_thresholds(self):
        q = self.make()
        q.avg = 10.0  # midpoint of [5, 15]
        assert q.mark_probability() == pytest.approx(0.05)

    def test_gentle_region(self):
        q = self.make()
        q.avg = 22.5  # midpoint of [15, 30]
        assert q.mark_probability() == pytest.approx(0.1 + 0.9 * 0.5)

    def test_probability_one_beyond_2maxth(self):
        q = self.make()
        q.avg = 31.0
        assert q.mark_probability() == 1.0

    def test_non_gentle_jumps_to_one(self):
        q = self.make(gentle=False)
        q.avg = 16.0
        assert q.mark_probability() == 1.0

    def test_ecn_marks_instead_of_drops(self):
        q = self.make(ecn=True)
        q.avg = 40.0  # forces probability 1
        p = pkt(0, ect=True)
        assert q.enqueue(p, 0.0)
        assert p.ce
        assert q.stats.marks == 1
        assert q.stats.drops == 0

    def test_non_ect_dropped_at_high_avg(self):
        q = self.make(ecn=True)
        q.avg = 40.0
        assert not q.enqueue(pkt(0, ect=False), 0.0)
        assert q.stats.drops == 1

    def test_forced_drop_when_full(self):
        q = self.make(capacity_pkts=2)
        q.enqueue(pkt(0), 0.0)
        q.enqueue(pkt(1), 0.0)
        assert not q.enqueue(pkt(2), 0.0)
        assert q.stats.forced_drops == 1

    def test_average_tracks_queue(self):
        q = self.make(w_q=0.5)
        for i in range(8):
            q.enqueue(pkt(i), 0.0)
        assert 0 < q.avg <= 8

    def test_idle_decay(self):
        q = self.make(w_q=0.5, mean_pkt_time=0.001)
        for i in range(6):
            q.enqueue(pkt(i), 0.0)
        while q.dequeue(0.0) is not None:
            pass
        avg_before = q.avg
        q.enqueue(pkt(99), 1.0)  # 1 s idle: ~1000 packet-times of decay
        assert q.avg < avg_before

    def test_adaptive_max_p_increases_under_pressure(self):
        q = self.make(adaptive=True, interval=0.0)
        q.avg = 14.0  # above the target band
        p0 = q.max_p
        q._adapt_max_p(now=1.0)
        assert q.max_p > p0

    def test_adaptive_max_p_decreases_when_light(self):
        q = self.make(adaptive=True, interval=0.0)
        q.avg = 5.5  # below the target band
        q.max_p = 0.2
        q._adapt_max_p(now=1.0)
        assert q.max_p < 0.2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            self.make(min_th=10, max_th=5)
        with pytest.raises(ValueError):
            self.make(max_p=0.0)


# ----------------------------------------------------------------------
# PI
# ----------------------------------------------------------------------
class TestPi:
    def test_probability_rises_above_reference(self):
        q = PiQueue(100, q_ref=5.0, a=0.01, b=0.005, rng=random.Random(1))
        for i in range(20):
            q.enqueue(pkt(i), 0.0)
        p_prev = q.p
        for _ in range(5):
            q.update()
        assert q.p > p_prev

    def test_probability_decays_below_reference(self):
        q = PiQueue(100, q_ref=50.0, a=0.01, b=0.005, rng=random.Random(1))
        q.p = 0.5
        q._q_old = 0.0
        for _ in range(5):
            q.update()
        assert q.p < 0.5

    def test_probability_clamped(self):
        q = PiQueue(100, q_ref=0.0, a=10.0, b=0.0, rng=random.Random(1))
        for i in range(50):
            q.enqueue(pkt(i), 0.0)
        for _ in range(10):
            q.update()
        assert 0.0 <= q.p <= 1.0

    def test_marks_ect_packets(self):
        q = PiQueue(100, q_ref=1.0, ecn=True, rng=random.Random(1))
        q.p = 1.0
        p = pkt(0, ect=True)
        assert q.enqueue(p, 0.0)
        assert p.ce

    def test_drops_non_ect(self):
        q = PiQueue(100, q_ref=1.0, ecn=True, rng=random.Random(1))
        q.p = 1.0
        assert not q.enqueue(pkt(0), 0.0)

    def test_self_scheduling_with_simulator(self):
        sim = Simulator()
        q = PiQueue(100, q_ref=0.0, a=0.05, b=0.01, sample_hz=100.0,
                    sim=sim, rng=random.Random(1))
        for i in range(30):
            q.enqueue(pkt(i), 0.0)
        sim.run(until=0.5)
        assert q.p > 0.0  # periodic updates fired

    def test_validation(self):
        with pytest.raises(ValueError):
            PiQueue(100, q_ref=-1.0)
        with pytest.raises(ValueError):
            PiQueue(100, sample_hz=0.0)
