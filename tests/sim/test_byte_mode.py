"""Tests for byte-bounded queues and RED's byte mode."""

import random

import pytest

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, RedQueue


def pkt(seq=0, size=1000, ect=False):
    return Packet(flow_id=1, src=0, dst=1, seq=seq, size=size, ect=ect)


class TestByteCapacity:
    def test_byte_bound_enforced(self):
        q = DropTailQueue(100, capacity_bytes=2500)
        assert q.enqueue(pkt(0, size=1000), 0.0)
        assert q.enqueue(pkt(1, size=1000), 0.0)
        assert not q.enqueue(pkt(2, size=1000), 0.0)  # would exceed 2500 B
        assert q.enqueue(pkt(3, size=400), 0.0)  # small packet still fits
        assert q.stats.forced_drops == 1

    def test_packet_bound_still_applies(self):
        q = DropTailQueue(2, capacity_bytes=10**9)
        q.enqueue(pkt(0), 0.0)
        q.enqueue(pkt(1), 0.0)
        assert not q.enqueue(pkt(2), 0.0)

    def test_byte_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(10, capacity_bytes=0)

    def test_dequeue_frees_byte_budget(self):
        q = DropTailQueue(100, capacity_bytes=1000)
        q.enqueue(pkt(0, size=1000), 0.0)
        assert not q.enqueue(pkt(1, size=100), 0.0)
        q.dequeue(1.0)
        assert q.enqueue(pkt(2, size=100), 1.0)


class TestRedByteMode:
    def make(self, byte_mode):
        return RedQueue(1000, min_th=5, max_th=15, max_p=0.5, w_q=1.0,
                        gentle=False, ecn=False, byte_mode=byte_mode,
                        mean_pkt_size=1000, rng=random.Random(3))

    def _drop_rate(self, q, size, n=2000):
        drops = 0
        for i in range(n):
            q.avg = 10.0  # hold mid-band: p_b = 0.25
            if not q.enqueue(pkt(i, size=size), 0.0):
                drops += 1
            q.dequeue(0.0)
        return drops / n

    def test_small_packets_spared_in_byte_mode(self):
        big = self._drop_rate(self.make(True), size=1000)
        small = self._drop_rate(self.make(True), size=40)
        assert small < 0.25 * big

    def test_packet_mode_size_blind(self):
        big = self._drop_rate(self.make(False), size=1000)
        small = self._drop_rate(self.make(False), size=40)
        assert abs(big - small) < 0.1

    def test_byte_mode_probability_capped(self):
        q = self.make(True)
        q.avg = 10.0
        # a jumbo packet cannot push effective probability above 1
        verdicts = {q.admit(pkt(i, size=100000), 0.0) for i in range(5)}
        assert verdicts <= {"drop", "enqueue"}
