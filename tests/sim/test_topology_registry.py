"""Topology registry: make_topology round-trips and builder shims."""

import warnings

import pytest

from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import (
    TOPOLOGIES,
    Dumbbell,
    ParkingLot,
    build_dumbbell,
    build_parking_lot,
    make_topology,
    reset_builder_warnings,
)

DB_KW = dict(n_left=2, n_right=2, bottleneck_bw=1e6, bottleneck_delay=0.01,
             qdisc_fwd=lambda: DropTailQueue(10))
LOT_KW = dict(n_routers=3, cloud_size=2, link_bw=1e6, link_delay=0.005,
              qdisc=lambda: DropTailQueue(10))


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_builder_warnings()
    yield
    reset_builder_warnings()


def test_registry_contents():
    assert TOPOLOGIES == {"dumbbell": Dumbbell, "parking_lot": ParkingLot}


def test_make_dumbbell_roundtrip():
    db = make_topology("dumbbell", Simulator(), **DB_KW)
    assert isinstance(db, Dumbbell)
    assert len(db.left) == 2 and len(db.right) == 2
    assert db.bottleneck_queue is db.fwd.qdisc


def test_make_parking_lot_roundtrip():
    lot = make_topology("parking_lot", Simulator(), **LOT_KW)
    assert isinstance(lot, ParkingLot)
    assert len(lot.routers) == 3
    assert len(lot.core_links) == 2


def test_unknown_topology_fails_loudly():
    with pytest.raises(ValueError, match="dumbbell"):
        make_topology("triangle", Simulator(), **DB_KW)


def test_unknown_param_fails_loudly():
    with pytest.raises(ValueError, match="n_hosts"):
        make_topology("dumbbell", Simulator(), n_hosts=3, **DB_KW)


def test_builder_shims_delegate_and_warn_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        db = build_dumbbell(Simulator(), **DB_KW)
        build_dumbbell(Simulator(), **DB_KW)
        lot = build_parking_lot(Simulator(), **LOT_KW)
    assert isinstance(db, Dumbbell)
    assert isinstance(lot, ParkingLot)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    # one per builder, not per call
    assert len(deprecations) == 2
    assert all("make_topology" in str(w.message) for w in deprecations)


def test_factory_matches_direct_construction():
    a = make_topology("dumbbell", Simulator(), **DB_KW)
    b = Dumbbell(Simulator(), **DB_KW)
    assert len(a.left) == len(b.left)
    assert a.fwd.bandwidth == b.fwd.bandwidth
