"""Tests for the REM emulation (queue, response law, sender)."""

import random

import pytest

from repro.core.pert_rem import PertRemConfig, PertRemSender
from repro.core.response import RemResponse
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import RemQueue
from repro.tcp.sack import SackSender

from ..conftest import make_dumbbell, make_flow


class TestRemResponse:
    def test_price_accumulates_above_target(self):
        rem = RemResponse(gamma=1.0, alpha=1.0, phi=2.0, target_delay=0.0)
        p1 = rem.update(0.01)
        p2 = rem.update(0.01)
        assert 0 < p1 < p2 < 1

    def test_price_decays_below_target(self):
        rem = RemResponse(gamma=1.0, alpha=1.0, phi=2.0, target_delay=0.05)
        rem.price = 5.0
        rem._prev = 0.0
        for _ in range(10):
            rem.update(0.0)
        assert rem.price < 5.0

    def test_price_never_negative(self):
        rem = RemResponse(gamma=10.0, alpha=1.0, phi=2.0, target_delay=0.1)
        for _ in range(50):
            rem.update(0.0)
        assert rem.price == 0.0
        assert rem.probability() == 0.0

    def test_probability_bounds(self):
        rem = RemResponse(phi=2.0)
        rem.price = 1000.0
        assert rem.probability() == pytest.approx(1.0)
        rem.price = 0.0
        assert rem.probability() == 0.0

    def test_exponential_law(self):
        rem = RemResponse(phi=2.0)
        rem.price = 1.0
        assert rem.probability() == pytest.approx(0.5)

    def test_reset(self):
        rem = RemResponse()
        rem.update(1.0)
        rem.reset()
        assert rem.price == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RemResponse(phi=1.0)
        with pytest.raises(ValueError):
            RemResponse(gamma=0.0)
        with pytest.raises(ValueError):
            RemResponse(target_delay=-1.0)


class TestRemQueue:
    def pkt(self, seq=0, ect=False):
        return Packet(flow_id=1, src=0, dst=1, seq=seq, ect=ect)

    def test_price_rises_above_reference(self):
        q = RemQueue(100, q_ref=2.0, gamma=0.1, rng=random.Random(1))
        for i in range(20):
            q.enqueue(self.pkt(i), 0.0)
        for _ in range(5):
            q.update()
        assert q.price > 0 and q.mark_probability() > 0

    def test_price_decays_when_light(self):
        q = RemQueue(100, q_ref=50.0, gamma=0.1, rng=random.Random(1))
        q.price = 10.0
        for _ in range(50):
            q.update()
        assert q.price < 10.0

    def test_marks_ect_drops_others(self):
        q = RemQueue(100, q_ref=0.0, rng=random.Random(1))
        q.price = 1e9  # probability ~ 1
        p = self.pkt(0, ect=True)
        assert q.enqueue(p, 0.0)
        assert p.ce
        assert not q.enqueue(self.pkt(1, ect=False), 0.0)

    def test_self_scheduling(self):
        sim = Simulator()
        q = RemQueue(100, q_ref=0.0, gamma=0.05, sample_hz=100.0, sim=sim,
                     rng=random.Random(1))
        for i in range(30):
            q.enqueue(self.pkt(i), 0.0)
        sim.run(until=0.5)
        assert q.price > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RemQueue(10, phi=0.9)
        with pytest.raises(ValueError):
            RemQueue(10, gamma=0.0)


class TestPertRemSender:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PertRemConfig(phi=1.0).validate()
        with pytest.raises(ValueError):
            PertRemConfig(early_decrease=0.0).validate()
        PertRemConfig().validate()

    def test_controls_queue_like_pert(self):
        from repro.sim.monitors import DropLog

        sim = Simulator(seed=1)
        db = make_dumbbell(sim, n=4, bw=8e6, buffer_pkts=60)
        log = DropLog(db.bottleneck_queue)
        senders = []
        for i in range(4):
            s, _ = make_flow(sim, db, idx=i, sender_cls=PertRemSender)
            s.start(at=0.1 * i)
            senders.append(s)
        samples = []

        def sample():
            samples.append(len(db.bottleneck_queue))
            sim.schedule(0.05, sample)

        sim.schedule(5.0, sample)
        sim.run(until=25.0)
        mean_q = sum(samples) / len(samples)
        assert mean_q < 30  # held well below the 60-packet buffer
        assert log.count(start=5.0) == 0
        assert sum(s.early_responses for s in senders) > 0

    def test_keeps_queue_below_plain_sack(self):
        def run(cls):
            sim = Simulator(seed=2)
            db = make_dumbbell(sim, n=4, bw=8e6, buffer_pkts=60)
            for i in range(4):
                s, _ = make_flow(sim, db, idx=i, sender_cls=cls)
                s.start()
            samples = []

            def sample():
                samples.append(len(db.bottleneck_queue))
                sim.schedule(0.05, sample)

            sim.schedule(5.0, sample)
            sim.run(until=20.0)
            return sum(samples) / len(samples)

        assert run(PertRemSender) < 0.6 * run(SackSender)

    def test_no_response_in_recovery(self):
        sim = Simulator(seed=1)
        db = make_dumbbell(sim)
        s, _ = make_flow(sim, db, sender_cls=PertRemSender)
        s.in_recovery = True
        s.controller.price = 1e9

        class FakeAck:
            pass

        before = s.cwnd
        s.on_ack(FakeAck(), rtt_sample=0.5)
        assert s.cwnd == before
