"""Unit and behavioural tests for the PERT sender (the core contribution)."""

import pytest

from repro.core.config import PertConfig
from repro.core.pert import PertSender
from repro.sim.engine import Simulator
from repro.tcp.sack import SackSender

from ..conftest import make_dumbbell, make_flow


def test_config_validation():
    with pytest.raises(ValueError):
        PertConfig(t_min=0.02, t_max=0.01).validate()
    with pytest.raises(ValueError):
        PertConfig(p_max=0.0).validate()
    with pytest.raises(ValueError):
        PertConfig(early_decrease=1.0).validate()
    with pytest.raises(ValueError):
        PertConfig(srtt_weight=1.0).validate()
    PertConfig().validate()  # paper defaults are valid


def test_paper_default_parameters():
    cfg = PertConfig()
    assert cfg.t_min == pytest.approx(0.005)
    assert cfg.t_max == pytest.approx(0.010)
    assert cfg.p_max == pytest.approx(0.05)
    assert cfg.srtt_weight == pytest.approx(0.99)
    assert cfg.early_decrease == pytest.approx(0.35)


def test_response_probability_zero_at_empty_queue():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=PertSender)
    sender.signal.update(0.024)  # min == srtt -> zero queuing delay
    assert sender.response_probability() == 0.0


def test_early_response_reduces_by_35_percent():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=PertSender)
    sender.cwnd = 100.0
    sender._early_response()
    assert sender.cwnd == pytest.approx(65.0)
    assert sender.early_responses == 1


def test_early_response_floor_at_two_packets():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=PertSender)
    sender.cwnd = 2.0
    sender._early_response()
    assert sender.cwnd == 2.0


def test_no_early_response_during_loss_recovery():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=PertSender)
    sender.in_recovery = True
    sender.signal.update(0.024)
    sender.signal.update(1.0)  # huge queuing delay -> probability 1

    class FakeAck:
        pass

    before = sender.cwnd
    sender.on_ack(FakeAck(), rtt_sample=1.0)
    assert sender.cwnd == before
    assert sender.early_responses == 0


def test_at_most_one_response_per_rtt():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=PertSender)
    sender.signal.update(0.02)

    class FakeAck:
        pass

    # saturate the signal so probability == 1 on every ACK
    for _ in range(200):
        sender.on_ack(FakeAck(), rtt_sample=2.0)
    # sim.now never advances, so only the first response can fire
    assert sender.early_responses == 1


def test_pert_keeps_queue_low_vs_sack():
    from repro.sim.monitors import DropLog

    def run(cls):
        sim = Simulator(seed=1)
        db = make_dumbbell(sim, n=4, bw=8e6, buffer_pkts=60)
        log = DropLog(db.bottleneck_queue)
        senders = []
        for i in range(4):
            s, _ = make_flow(sim, db, idx=i, sender_cls=cls)
            s.start(at=0.1 * i)
            senders.append(s)
        samples = []

        def sample():
            samples.append(len(db.bottleneck_queue))
            sim.schedule(0.05, sample)

        sim.schedule(5.0, sample)
        sim.run(until=20.0)
        # measure losses in steady state only (slow-start overshoot is
        # loss-driven for every TCP, PERT included)
        return (sum(samples) / len(samples), log.count(start=5.0), senders)

    q_sack, drops_sack, _ = run(SackSender)
    q_pert, drops_pert, pert_senders = run(PertSender)
    assert q_pert < q_sack * 0.6
    assert drops_pert == 0 and drops_sack > 0
    assert sum(s.early_responses for s in pert_senders) > 0


def test_pert_utilization_stays_high():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=4, bw=8e6, buffer_pkts=60)
    for i in range(4):
        s, _ = make_flow(sim, db, idx=i, sender_cls=PertSender)
        s.start()
    bytes0 = {}
    sim.run(until=5.0)
    bytes0 = db.fwd.bytes_transmitted
    sim.run(until=20.0)
    util = (db.fwd.bytes_transmitted - bytes0) * 8.0 / (8e6 * 15.0)
    assert util > 0.85


def test_pert_falls_back_to_loss_recovery():
    """With thresholds so high the curve never fires, PERT behaves as SACK."""
    sim = Simulator(seed=1)
    cfg = PertConfig(t_min=10.0, t_max=20.0)
    db = make_dumbbell(sim, bw=8e6, buffer_pkts=25)
    s, sink = make_flow(sim, db, sender_cls=PertSender, config=cfg)
    s.start()
    sim.run(until=15.0)
    assert s.early_responses == 0
    assert s.fast_recoveries > 0  # losses handled by standard recovery
    assert sink.rcv_next > 1000


def test_signal_trace_recording():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s, _ = make_flow(sim, db, sender_cls=PertSender)
    s.record_signal = True
    s.start(npackets=50)
    sim.run(until=10.0)
    assert len(s.signal_trace) > 0
    t, srtt, prob = s.signal_trace[-1]
    assert srtt > 0 and 0.0 <= prob <= 1.0


def test_non_gentle_config():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s, _ = make_flow(sim, db, sender_cls=PertSender,
                     config=PertConfig(gentle=False))
    s.signal.update(0.01)
    s.signal.min_rtt = 0.01
    s.signal.value = 0.01 + 0.011  # queuing delay just above t_max
    assert s.response_probability() == 1.0
