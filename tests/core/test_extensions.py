"""Tests for the Section 7 extensions: OWD signal, adaptive pro-activeness."""

import pytest

from repro.core.config import PertConfig
from repro.core.pert import PertSender
from repro.core.pert_owd import PertOwdSender
from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Dumbbell
from repro.tcp.base import connect_flow
from repro.traffic.cbr import CbrSink, CbrSource

from ..conftest import make_dumbbell, make_flow


# ----------------------------------------------------------------------
# one-way-delay PERT
# ----------------------------------------------------------------------
def run_with_reverse_congestion(sender_cls):
    """One forward flow plus a CBR flood of the *reverse* bottleneck."""
    sim = Simulator(seed=5)
    db = Dumbbell(
        sim, n_left=2, n_right=2, bottleneck_bw=8e6, bottleneck_delay=0.01,
        qdisc_fwd=lambda: DropTailQueue(100),
        qdisc_rev=lambda: DropTailQueue(100),
    )
    # cap the window below the path BDP so the forward queue never
    # builds: any congestion signal must come from the reverse path
    sender, sink = connect_flow(sim, db.left[0], db.right[0], flow_id=1,
                                sender_cls=sender_cls, max_cwnd=15.0)
    sender.start()
    # near-saturating reverse-direction CBR: inflates ACK-path delay only
    cbr = CbrSource(sim, db.right[1], dst=db.left[1].node_id, flow_id=2,
                    rate_bps=7.9e6)
    CbrSink(db.left[1], flow_id=2)
    cbr.start(at=3.0)
    sim.run(until=20.0)
    return sender, sink, db


def test_owd_ack_echo_present():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    sender, _ = make_flow(sim, db, sender_cls=PertOwdSender)
    sender.record_signal = True
    sender.start(npackets=50)
    sim.run(until=10.0)
    assert sender.signal.samples > 0
    # the one-way signal is about half the RTT on a symmetric path
    assert sender.signal.min_rtt < sender.min_rtt * 0.75


def test_rtt_pert_responds_to_reverse_congestion_owd_does_not():
    """Paper Sec. 7: RTT-based PERT reacts to reverse congestion; the
    one-way-delay variant stays blind to it."""
    rtt_sender, _, _ = run_with_reverse_congestion(PertSender)
    owd_sender, _, _ = run_with_reverse_congestion(PertOwdSender)
    assert rtt_sender.early_responses > 0
    assert owd_sender.early_responses < max(1, rtt_sender.early_responses // 5)


def test_owd_pert_still_controls_forward_queue():
    from repro.sim.monitors import DropLog

    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=4, bw=8e6, buffer_pkts=60)
    log = DropLog(db.bottleneck_queue)
    for i in range(4):
        s, _ = make_flow(sim, db, idx=i, sender_cls=PertOwdSender)
        s.start()
    samples = []

    def sample():
        samples.append(len(db.bottleneck_queue))
        sim.schedule(0.05, sample)

    sim.schedule(5.0, sample)
    sim.run(until=20.0)
    assert sum(samples) / len(samples) < 30
    assert log.count(start=5.0) == 0  # steady state is lossless


# ----------------------------------------------------------------------
# adaptive pro-activeness knobs
# ----------------------------------------------------------------------
class FakeAck:
    owd_echo = -1.0


def make_saturated_pert(sim, db, **config_kwargs):
    cfg = PertConfig(**config_kwargs)
    sender, _ = make_flow(sim, db, sender_cls=PertSender, config=cfg)
    sender.signal.update(0.02)  # min rtt baseline
    return sender


def test_escalating_interval_doubles_spacing():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s = make_saturated_pert(sim, db, escalating_interval=True)
    assert s._interval_scale == 1.0
    s._early_response()
    assert s._interval_scale == 2.0
    s._early_response()
    assert s._interval_scale == 4.0
    # signal returning below t_min resets the escalation
    s.on_ack(FakeAck(), rtt_sample=0.02)
    assert s._interval_scale == 1.0


def test_escalating_interval_capped():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s = make_saturated_pert(sim, db, escalating_interval=True)
    for _ in range(10):
        s._early_response()
    assert s._interval_scale == 16.0


def test_deterministic_threshold_fires_without_coin_flip():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s = make_saturated_pert(sim, db, deterministic_threshold=0.75)
    s.rng.random = lambda: 0.999  # coin flip would always refuse
    s.on_ack(FakeAck(), rtt_sample=2.0)  # probability 1 >= threshold
    assert s.early_responses == 1


def test_deterministic_threshold_validation():
    with pytest.raises(ValueError):
        PertConfig(deterministic_threshold=0.0).validate()
    with pytest.raises(ValueError):
        PertConfig(deterministic_threshold=1.5).validate()
    PertConfig(deterministic_threshold=0.75).validate()


def test_aggressive_increase_grows_faster_without_congestion():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s = make_saturated_pert(sim, db, aggressive_increase=1.0)
    s.ssthresh = 5.0
    s.cwnd = 10.0
    # uncongested ACK: normal hook adds the compensation growth
    s.on_ack(FakeAck(), rtt_sample=0.02)
    assert s.cwnd == pytest.approx(10.0 + 1.0 / 10.0)


def test_aggressive_increase_validation():
    with pytest.raises(ValueError):
        PertConfig(aggressive_increase=-0.1).validate()
