"""Unit tests for the response curves (gentle RED, RED, PI)."""

import pytest

from repro.core.response import GentleRedCurve, PiResponse, RedCurve


class TestGentleRedCurve:
    def setup_method(self):
        # the paper's parameters, on the queuing-delay axis
        self.curve = GentleRedCurve(t_min=0.005, t_max=0.010, p_max=0.05)

    def test_zero_below_t_min(self):
        assert self.curve(0.0) == 0.0
        assert self.curve(0.005) == 0.0

    def test_linear_ramp_to_p_max(self):
        assert self.curve(0.0075) == pytest.approx(0.025)
        assert self.curve(0.010 - 1e-12) == pytest.approx(0.05, abs=1e-6)

    def test_gentle_ramp_to_one(self):
        assert self.curve(0.015) == pytest.approx(0.05 + 0.95 * 0.5)
        assert self.curve(0.020) == 1.0

    def test_one_beyond_twice_t_max(self):
        assert self.curve(0.5) == 1.0

    def test_monotone_nondecreasing(self):
        xs = [i * 1e-4 for i in range(300)]
        ps = [self.curve(x) for x in xs]
        assert all(b >= a for a, b in zip(ps, ps[1:]))
        assert all(0.0 <= p <= 1.0 for p in ps)

    def test_slope_matches_stability_definition(self):
        assert self.curve.slope == pytest.approx(0.05 / 0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            GentleRedCurve(t_min=0.01, t_max=0.005)
        with pytest.raises(ValueError):
            GentleRedCurve(p_max=0.0)
        with pytest.raises(ValueError):
            GentleRedCurve(p_max=1.5)


class TestRedCurve:
    def test_jumps_to_one_at_t_max(self):
        c = RedCurve(t_min=0.005, t_max=0.010, p_max=0.05)
        assert c(0.0099) < 0.05 + 1e-9
        assert c(0.0101) == 1.0


class TestPiResponse:
    def test_integrates_positive_error(self):
        pi = PiResponse(k=1.0, m=0.5, target_delay=0.0, delta=0.01)
        p1 = pi.update(0.01)
        p2 = pi.update(0.01)
        assert 0 < p1 < p2  # persistent error accumulates

    def test_decays_on_negative_error(self):
        pi = PiResponse(k=1.0, m=0.5, target_delay=0.05, delta=0.01)
        pi.p = 0.5
        pi._prev_err = 0.0
        for _ in range(10):
            pi.update(0.0)  # delay below target
        assert pi.p < 0.5

    def test_clamped_to_unit_interval(self):
        pi = PiResponse(k=100.0, m=0.1, target_delay=0.0, delta=0.01)
        for _ in range(100):
            pi.update(1.0)
        assert pi.p == 1.0
        for _ in range(200):
            pi.update(-1.0)
        assert pi.p == 0.0

    def test_gamma_beta_from_bilinear_transform(self):
        pi = PiResponse(k=2.0, m=4.0, target_delay=0.0, delta=0.1)
        assert pi.gamma == pytest.approx(2.0 / 4.0 + 2.0 * 0.1 / 2.0)
        assert pi.beta == pytest.approx(2.0 / 4.0 - 2.0 * 0.1 / 2.0)

    def test_steady_state_holds_target(self):
        # at exactly the target there is no drift
        pi = PiResponse(k=1.0, m=1.0, target_delay=0.01, delta=0.01)
        pi.update(0.05)
        p = pi.update(0.01)
        pprev = pi.p
        for _ in range(5):
            pi.update(0.01)
        assert pi.p == pytest.approx(pprev, abs=1e-12)

    def test_reset(self):
        pi = PiResponse(k=1.0, m=1.0)
        pi.update(0.5)
        pi.reset()
        assert pi.p == 0.0 and pi._prev_err == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PiResponse(k=0.0, m=1.0)
        with pytest.raises(ValueError):
            PiResponse(k=1.0, m=1.0, delta=0.0)
