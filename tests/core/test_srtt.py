"""Unit tests for the smoothed-RTT signals."""

import pytest

from repro.core.srtt import EwmaRtt, MovingAverageRtt


class TestEwmaRtt:
    def test_first_sample_initialises(self):
        e = EwmaRtt(weight=0.99)
        assert e.update(0.1) == pytest.approx(0.1)

    def test_ewma_formula(self):
        e = EwmaRtt(weight=0.9)
        e.update(0.1)
        assert e.update(0.2) == pytest.approx(0.9 * 0.1 + 0.1 * 0.2)

    def test_heavier_history_weight_is_smoother(self):
        fast = EwmaRtt(weight=0.5)
        slow = EwmaRtt(weight=0.99)
        for estimator in (fast, slow):
            estimator.update(0.1)
            for _ in range(10):
                estimator.update(0.3)
        assert slow.value < fast.value  # 0.99 moves far less per sample

    def test_converges_to_constant_signal(self):
        e = EwmaRtt(weight=0.99)
        for _ in range(2000):
            e.update(0.25)
        assert e.value == pytest.approx(0.25, rel=1e-6)

    def test_min_rtt_tracked(self):
        e = EwmaRtt()
        for s in (0.3, 0.1, 0.2):
            e.update(s)
        assert e.min_rtt == pytest.approx(0.1)

    def test_queuing_delay_is_srtt_minus_min(self):
        e = EwmaRtt(weight=0.0)  # srtt == last sample
        e.update(0.1)
        e.update(0.15)
        assert e.queuing_delay == pytest.approx(0.05)

    def test_queuing_delay_never_negative(self):
        e = EwmaRtt(weight=0.99)
        e.update(0.3)
        e.update(0.1)  # min drops below the smoothed value
        assert e.queuing_delay >= 0.0

    def test_queuing_delay_zero_before_samples(self):
        assert EwmaRtt().queuing_delay == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            EwmaRtt(weight=1.0)
        with pytest.raises(ValueError):
            EwmaRtt().update(0.0)

    def test_reset(self):
        e = EwmaRtt()
        e.update(0.1)
        e.reset()
        assert e.value is None and e.samples == 0


class TestMovingAverageRtt:
    def test_mean_of_window(self):
        m = MovingAverageRtt(window=3)
        for s in (0.1, 0.2, 0.3):
            m.update(s)
        assert m.value == pytest.approx(0.2)

    def test_window_slides(self):
        m = MovingAverageRtt(window=2)
        for s in (0.1, 0.2, 0.4):
            m.update(s)
        assert m.value == pytest.approx(0.3)

    def test_partial_window(self):
        m = MovingAverageRtt(window=100)
        m.update(0.5)
        assert m.value == pytest.approx(0.5)

    def test_none_before_samples(self):
        assert MovingAverageRtt().value is None

    def test_queuing_delay(self):
        m = MovingAverageRtt(window=2)
        m.update(0.1)
        m.update(0.2)
        assert m.queuing_delay == pytest.approx(0.15 - 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAverageRtt(window=0)
        with pytest.raises(ValueError):
            MovingAverageRtt().update(-1.0)

    def test_running_sum_matches_recompute(self):
        m = MovingAverageRtt(window=5)
        samples = [0.1, 0.25, 0.08, 0.3, 0.12, 0.2, 0.18]
        for s in samples:
            m.update(s)
        assert m.value == pytest.approx(sum(samples[-5:]) / 5)
