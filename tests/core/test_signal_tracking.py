"""Does PERT's delay signal actually track the bottleneck queue?

The scheme's premise is that srtt − min RTT estimates the path's queuing
delay; these tests close the loop by comparing the estimate against the
queue the simulator actually holds.
"""

import pytest

from repro.core.pert import PertSender
from repro.sim.engine import Simulator
from repro.sim.monitors import QueueSampler
from repro.tcp.sack import SackSender

from ..conftest import make_dumbbell, make_flow

BW = 8e6
PKT_TIME = 1000 * 8.0 / BW  # seconds per packet at the bottleneck


def run_tagged(sender_cls, buffer_pkts=80, until=25.0):
    sim = Simulator(seed=8)
    db = make_dumbbell(sim, n=3, bw=BW, buffer_pkts=buffer_pkts)
    tagged = None
    for i in range(3):
        s, _ = make_flow(sim, db, idx=i,
                         sender_cls=PertSender if i == 0 else sender_cls)
        if i == 0:
            tagged = s
            tagged.record_signal = True
        s.start(at=0.2 * i)
    sampler = QueueSampler(sim, db.bottleneck_queue, interval=0.02)
    sim.run(until=until)
    return tagged, sampler


def test_signal_tracks_actual_queuing_delay():
    tagged, sampler = run_tagged(SackSender)
    # compare the smoothed estimate against the sampled queue, converted
    # to delay, over the steady half of the run
    errs = []
    for t, srtt, _prob in tagged.signal_trace:
        if t < 10.0:
            continue
        actual = sampler.length_at(t) * PKT_TIME
        estimate = srtt - tagged.signal.min_rtt
        errs.append(abs(estimate - actual))
    assert errs
    mean_err = sum(errs) / len(errs)
    # the estimate is a heavily smoothed, RTT-delayed observation of a
    # moving target; agreement within ~20 ms at this scale means it is
    # genuinely tracking the queue rather than noise
    assert mean_err < 0.020


def test_probability_zero_on_idle_path_positive_under_load():
    """srtt_0.99 smooths over instantaneous wiggles by design; what must
    hold is the *sustained* contrast: ~zero response probability on an
    uncongested path, clearly positive probability under standing load."""

    def run(max_cwnd):
        sim = Simulator(seed=8)
        db = make_dumbbell(sim, n=3, bw=BW, buffer_pkts=80)
        tagged = None
        for i in range(3):
            s, _ = make_flow(sim, db, idx=i, sender_cls=PertSender,
                             max_cwnd=max_cwnd)
            if i == 0:
                tagged = s
                tagged.record_signal = True
            s.start(at=0.2 * i)
        sim.run(until=20.0)
        probs = [p for t, _s, p in tagged.signal_trace if t > 10.0]
        return sum(probs) / len(probs)

    idle_prob = run(max_cwnd=5.0)  # 3 flows x 5 pkts << BDP: no queue
    loaded_prob = run(max_cwnd=1e9)
    assert idle_prob < 0.005
    assert loaded_prob > 10 * max(idle_prob, 1e-4)
