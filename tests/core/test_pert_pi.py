"""Unit tests for the PERT/PI sender."""

import pytest

from repro.core.config import PertPiConfig
from repro.core.pert_pi import PertPiSender
from repro.sim.engine import Simulator

from ..conftest import make_dumbbell, make_flow


def test_config_validation():
    with pytest.raises(ValueError):
        PertPiConfig(k=0.0).validate()
    with pytest.raises(ValueError):
        PertPiConfig(target_delay=-1.0).validate()
    PertPiConfig().validate()


def test_controller_state_advances_on_acks():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s, _ = make_flow(sim, db, sender_cls=PertPiSender,
                     config=PertPiConfig(k=1.0, m=0.5, target_delay=0.0))

    class FakeAck:
        pass

    s.on_ack(FakeAck(), rtt_sample=0.05)  # establishes min_rtt
    assert s.controller.p == 0.0
    for _ in range(5):
        s.on_ack(FakeAck(), rtt_sample=0.2)  # sustained queuing delay
    assert s.controller.p > 0.0


def test_early_response_uses_35_percent_decrease():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s, _ = make_flow(sim, db, sender_cls=PertPiSender)
    s.cwnd = 10.0
    s._early_response()
    assert s.cwnd == pytest.approx(6.5)


def test_pert_pi_controls_queue_end_to_end():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=4, bw=8e6, buffer_pkts=100)
    senders = []
    for i in range(4):
        s, _ = make_flow(sim, db, idx=i, sender_cls=PertPiSender,
                         config=PertPiConfig(k=2.0, m=0.05, target_delay=0.003,
                                             delta=0.004))
        s.start(at=0.1 * i)
        senders.append(s)
    samples = []

    def sample():
        samples.append(len(db.bottleneck_queue))
        sim.schedule(0.05, sample)

    sim.schedule(8.0, sample)
    sim.run(until=25.0)
    mean_q = sum(samples) / len(samples)
    assert mean_q < 50  # queue held well below the buffer
    assert sum(s.early_responses for s in senders) > 0
    assert db.bottleneck_queue.stats.drops == 0


def test_no_response_in_recovery():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim)
    s, _ = make_flow(sim, db, sender_cls=PertPiSender)
    s.in_recovery = True
    s.controller.p = 1.0

    class FakeAck:
        pass

    before = s.cwnd
    s.on_ack(FakeAck(), rtt_sample=0.5)
    assert s.cwnd == before
