"""Unit tests for traffic generators: FTP populations, web sessions, CBR."""

import itertools
import random

import pytest

from repro.sim.engine import Simulator
from repro.traffic.cbr import CbrSink, CbrSource
from repro.traffic.ftp import start_long_flows
from repro.traffic.web import WebSession, bounded_pareto, start_web_sessions

from ..conftest import make_dumbbell


def test_bounded_pareto_bounds():
    rng = random.Random(1)
    xs = [bounded_pareto(rng, shape=1.2, scale=2.0, cap=50.0) for _ in range(2000)]
    assert all(2.0 <= x <= 50.0 for x in xs)
    # heavy tail: mean well above the scale parameter
    assert sum(xs) / len(xs) > 3.0


def test_bounded_pareto_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        bounded_pareto(rng, shape=0.0, scale=1.0, cap=10.0)
    with pytest.raises(ValueError):
        bounded_pareto(rng, shape=1.0, scale=5.0, cap=1.0)


def test_start_long_flows_random_starts_and_tagging():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=4)
    pairs = [(db.left[i], db.right[i]) for i in range(4)]
    flows = start_long_flows(sim, pairs, itertools.count(),
                             start_window=2.0, record_rtt_flow_index=1)
    assert len(flows) == 4
    sim.run(until=10.0)
    assert all(sink.rcv_next > 0 for _, sink in flows)
    assert flows[1][0].rtt_trace and not flows[0][0].rtt_trace


def test_web_session_fetches_pages():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=2)
    session = WebSession(
        sim, server=db.left[0], client=db.right[0],
        flow_ids=itertools.count(), rng=random.Random(3), think_mean=0.2,
    )
    session.start(at=0.0)
    sim.run(until=20.0)
    assert session.pages_fetched > 3
    assert session.objects_fetched >= session.pages_fetched
    assert session.packets_requested > 0


def test_web_session_cleans_up_endpoints():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=2)
    session = WebSession(
        sim, server=db.left[0], client=db.right[0],
        flow_ids=itertools.count(), rng=random.Random(3), think_mean=0.2,
    )
    session.start()
    sim.run(until=20.0)
    # completed object flows must not leak endpoint registrations:
    # at most the in-flight object remains on each node
    assert len(db.left[0].endpoints) <= 1
    assert len(db.right[0].endpoints) <= 1


def test_web_session_stop():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=2)
    session = WebSession(
        sim, server=db.left[0], client=db.right[0],
        flow_ids=itertools.count(), rng=random.Random(3), think_mean=0.1,
    )
    session.start()
    sim.run(until=5.0)
    session.stop()
    fetched = session.objects_fetched
    sim.run(until=10.0)
    assert session.objects_fetched <= fetched + 1  # at most the in-flight one


def test_start_web_sessions_independent_streams():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=2)
    sessions = start_web_sessions(
        sim, 3, server=db.left[0], client=db.right[0],
        flow_ids=itertools.count(), start_window=1.0, think_mean=0.2,
    )
    sim.run(until=15.0)
    fetched = [s.objects_fetched for s in sessions]
    assert all(f > 0 for f in fetched)
    assert len(set(fetched)) > 1  # sessions are not lockstep clones


def test_cbr_rate():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=1, bw=8e6)
    src = CbrSource(sim, db.left[0], dst=db.right[0].node_id, flow_id=99,
                    rate_bps=1e6, pkt_size=1000)
    sink = CbrSink(db.right[0], flow_id=99)
    src.start()
    sim.run(until=8.0)
    rate = sink.bytes_received * 8.0 / 8.0
    assert rate == pytest.approx(1e6, rel=0.02)


def test_cbr_stop():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=1)
    src = CbrSource(sim, db.left[0], dst=db.right[0].node_id, flow_id=99,
                    rate_bps=1e6)
    CbrSink(db.right[0], flow_id=99)
    src.start()
    sim.run(until=1.0)
    src.stop()
    sent = src.pkts_sent
    sim.run(until=2.0)
    assert src.pkts_sent == sent


def test_cbr_validation():
    sim = Simulator(seed=1)
    db = make_dumbbell(sim, n=1)
    with pytest.raises(ValueError):
        CbrSource(sim, db.left[0], dst=1, flow_id=9, rate_bps=0.0)
