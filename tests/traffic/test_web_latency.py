"""Web object response-time tests: PERT's short queues speed up the web."""

import itertools
import random

from repro.core.pert import PertSender
from repro.metrics.stats import mean, percentile
from repro.sim.engine import Simulator
from repro.tcp.sack import SackSender
from repro.traffic.web import WebSession

from ..conftest import make_dumbbell, make_flow


def run_mixed(long_cls, web_cls, seed=6):
    """4 long flows + 3 web sessions sharing a 8 Mbps DropTail bottleneck."""
    sim = Simulator(seed=seed)
    db = make_dumbbell(sim, n=5, bw=8e6, buffer_pkts=75)
    for i in range(4):
        s, _ = make_flow(sim, db, idx=i, sender_cls=long_cls)
        s.start(at=0.2 * i)
    sessions = []
    fids = itertools.count(5000)
    for j in range(3):
        sess = WebSession(sim, server=db.left[4], client=db.right[4],
                          flow_ids=fids, rng=random.Random(100 + j),
                          sender_cls=web_cls, think_mean=0.4)
        sess.start(at=1.0 + j)
        sessions.append(sess)
    sim.run(until=40.0)
    latencies = [x for s in sessions for x in s.object_latencies]
    return latencies


def test_object_latencies_recorded():
    lat = run_mixed(SackSender, SackSender)
    assert len(lat) > 30
    assert all(x > 0 for x in lat)


def test_pert_improves_web_response_time():
    """Short queues cut the RTT web objects see during slow start."""
    lat_sack = run_mixed(SackSender, SackSender)
    lat_pert = run_mixed(PertSender, PertSender)
    assert mean(lat_pert) < mean(lat_sack)
    assert percentile(lat_pert, 90) < percentile(lat_sack, 90)
