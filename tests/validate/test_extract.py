"""Metric-id grammar and row-flattening helpers (repro.validate.extract)."""

from __future__ import annotations

from repro.validate.extract import fmt_num, metric_id, rows_to_metrics, subset


class TestFmtNum:
    def test_integral_floats_print_as_ints(self):
        assert fmt_num(8.0) == "8"
        assert fmt_num(-2.0) == "-2"

    def test_non_integral_floats_use_repr(self):
        assert fmt_num(0.05) == "0.05"
        assert fmt_num(2.5) == "2.5"

    def test_bools_and_strings(self):
        assert fmt_num(True) == "true"
        assert fmt_num("pert") == "pert"
        assert fmt_num(12) == "12"


class TestMetricId:
    def test_plain(self):
        assert metric_id("pert", "jain") == "pert.jain"

    def test_no_prefix(self):
        assert metric_id("", "p", {"delay_ms": 10.0}) == "p@delay_ms=10"

    def test_tags_preserve_order(self):
        assert (
            metric_id("pert", "q", {"bw": 8e6 / 1e6, "rtt": 0.05})
            == "pert.q@bw=8,rtt=0.05"
        )


class TestRowsToMetrics:
    ROWS = [
        {"scheme": "pert", "bandwidth_mbps": 8.0, "norm_queue": 0.1,
         "drop_rate": 0.0},
        {"scheme": "vegas", "bandwidth_mbps": 8.0, "norm_queue": 0.2,
         "drop_rate": 0.001},
    ]

    def test_flatten(self):
        out = rows_to_metrics(
            self.ROWS, metrics=("norm_queue", "drop_rate"),
            keys=("bandwidth_mbps",),
        )
        assert out["pert.norm_queue@bandwidth_mbps=8"] == 0.1
        assert out["vegas.drop_rate@bandwidth_mbps=8"] == 0.001
        assert len(out) == 4

    def test_failed_rows_skipped(self):
        rows = [dict(self.ROWS[0]), dict(self.ROWS[1], failed=True)]
        out = rows_to_metrics(rows, metrics=("norm_queue",),
                              keys=("bandwidth_mbps",))
        assert "vegas.norm_queue@bandwidth_mbps=8" not in out
        assert len(out) == 1

    def test_custom_prefix_col(self):
        rows = [{"case": "case1", "flow_level": 0.2, "queue_level": 0.8}]
        out = rows_to_metrics(rows, metrics=("flow_level", "queue_level"),
                              prefix_col="case")
        assert out == {"case1.flow_level": 0.2, "case1.queue_level": 0.8}

    def test_subset_reports_absent_ids(self):
        out = rows_to_metrics(self.ROWS, metrics=("norm_queue",),
                              keys=("bandwidth_mbps",))
        assert subset(out, ["pert.norm_queue@bandwidth_mbps=8",
                            "pert.norm_queue@bandwidth_mbps=99"]) \
            == ["pert.norm_queue@bandwidth_mbps=99"]
