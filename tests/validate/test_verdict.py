"""Expected-file round-trips and verdict rollup semantics."""

from __future__ import annotations

import pytest

from repro.validate.bands import Band, check_metric
from repro.validate.verdict import (
    VERDICT_SCHEMA,
    ExpectedFigure,
    FigureVerdict,
    Verdict,
    load_expected,
    write_expected,
)


def _expected():
    return ExpectedFigure(
        figure="figX",
        title="Figure X — demo",
        tiers={
            "quick": {"pert.q@bw=8": Band(target=0.14, rel_tol=1e-6)},
            "full": {"pert.q@bw=10": Band(max=0.5, source="paper")},
        },
    )


class TestExpectedFiles:
    def test_write_load_round_trip(self, tmp_path):
        path = write_expected(_expected(), tmp_path / "figX.json")
        loaded = load_expected(path)
        assert loaded.figure == "figX"
        assert loaded.title == "Figure X — demo"
        assert loaded.bands("quick") == _expected().tiers["quick"]
        assert loaded.bands("full") == _expected().tiers["full"]
        assert loaded.bands("nightly") == {}  # unknown tier -> empty

    def test_rewrite_is_byte_stable(self, tmp_path):
        p1 = write_expected(_expected(), tmp_path / "a.json")
        first = p1.read_bytes()
        p2 = write_expected(load_expected(p1), tmp_path / "a.json")
        assert p2.read_bytes() == first


def _check(status, metric="m", known_gap=False):
    band = Band(target=1.0, abs_tol=0.1, known_gap=known_gap)
    measured = {"pass": 1.0, "fail": 5.0, "gap": 5.0, "missing": None}[status]
    c = check_metric(metric, band, measured)
    assert c.status == status
    return c


class TestFigureVerdict:
    def test_status_rollup(self):
        assert FigureVerdict("f", "f", checks=[_check("pass")]).status == "pass"
        assert FigureVerdict(
            "f", "f", checks=[_check("pass"), _check("gap", known_gap=True)]
        ).status == "gap"
        assert FigureVerdict(
            "f", "f", checks=[_check("pass"), _check("fail")]
        ).status == "fail"

    def test_missing_fails_figure(self):
        fv = FigureVerdict("f", "f", checks=[_check("missing")])
        assert fv.status == "fail" and fv.failed

    def test_runner_error_fails_figure(self):
        fv = FigureVerdict("f", "f", checks=[], error="boom")
        assert fv.status == "fail"

    def test_json_round_trip(self):
        fv = FigureVerdict(
            "f", "Fig f", checks=[_check("pass"), _check("fail")],
            unchecked=3, wall_time=1.5,
        )
        back = FigureVerdict.from_json(fv.to_json())
        assert back.figure == "f" and back.title == "Fig f"
        assert [c.status for c in back.checks] == ["pass", "fail"]
        assert back.unchecked == 3 and back.status == "fail"


class TestVerdict:
    def test_rollup_and_counts(self):
        v = Verdict(tier="quick", figures=[
            FigureVerdict("a", "a", checks=[_check("pass"), _check("pass")]),
            FigureVerdict("b", "b", checks=[_check("gap", known_gap=True)]),
            FigureVerdict("c", "c", checks=[_check("fail")]),
        ])
        assert v.status == "fail"
        assert v.failing_figures == ["c"]
        assert v.counts() == {"pass": 2, "fail": 1, "gap": 1, "missing": 0}

    def test_save_load_round_trip(self, tmp_path):
        v = Verdict(tier="quick", figures=[
            FigureVerdict("a", "a", checks=[_check("pass")]),
        ])
        path = v.save(tmp_path / "verdict.json")
        loaded = Verdict.load(path)
        assert loaded.tier == "quick"
        assert loaded.status == "pass"
        assert [f.figure for f in loaded.figures] == ["a"]

    def test_schema_mismatch_rejected(self, tmp_path):
        path = Verdict(tier="quick").save(tmp_path / "v.json")
        text = path.read_text().replace(
            f'"schema": {VERDICT_SCHEMA}', '"schema": 999'
        )
        path.write_text(text)
        with pytest.raises(ValueError, match="schema"):
            Verdict.load(path)
