"""docs/RESULTS.md rendering: deterministic, badge-bearing, table-complete."""

from __future__ import annotations

from repro.validate.bands import Band, check_metric
from repro.validate.docgen import render_results_md, write_results_md
from repro.validate.verdict import FigureVerdict, Verdict


def _verdict():
    return Verdict(tier="quick", figures=[
        FigureVerdict(
            "fig6", "Figure 6 — impact of bottleneck bandwidth",
            checks=[
                check_metric("pert.norm_queue@bandwidth_mbps=8",
                             Band(target=0.14, rel_tol=1e-6), 0.14),
                check_metric("pert.jain",
                             Band(target=0.99, rel_tol=0.01, source="paper",
                                  known_gap=True, note="Table 1 gap"),
                             0.5),
            ],
            unchecked=2, wall_time=3.2,
        ),
        FigureVerdict("fig9", "Figure 9 — web traffic", checks=[],
                      error="runner exploded"),
    ])


def test_render_is_deterministic():
    assert render_results_md(_verdict()) == render_results_md(_verdict())


def test_wall_time_does_not_leak_into_doc():
    a = _verdict()
    b = _verdict()
    b.figures[0].wall_time = 99.0
    assert render_results_md(a) == render_results_md(b)


def test_content_has_badges_and_tables():
    text = render_results_md(_verdict())
    assert "GENERATED FILE" in text
    assert "python -m repro.validate run --quick" in text
    assert "✅ pass" in text
    assert "⚠️ known gap" in text and "Table 1 gap" in text
    assert "❌ FAIL" in text
    assert "`pert.norm_queue@bandwidth_mbps=8`" in text
    assert "runner exploded" in text
    assert "+0.00%" in text  # deviation column for the on-target metric
    assert "2 additional measured metrics carry no band" in text


def test_write_results_md_round_trips_bytes(tmp_path):
    path = write_results_md(_verdict(), tmp_path / "RESULTS.md")
    assert path.read_text(encoding="utf-8") == render_results_md(_verdict())
    # regeneration over an existing file is byte-identical
    write_results_md(_verdict(), path)
    assert path.read_text(encoding="utf-8") == render_results_md(_verdict())
