"""Unit tests for the tolerance-band model (repro.validate.bands)."""

from __future__ import annotations

import math

import pytest

from repro.validate.bands import Band, MetricCheck, check_metric


class TestBandContains:
    def test_target_with_abs_tol(self):
        band = Band(target=1.0, abs_tol=0.1)
        assert band.contains(1.05)
        assert band.contains(0.95)
        assert not band.contains(1.2)

    def test_target_with_rel_tol(self):
        band = Band(target=10.0, rel_tol=0.05)
        assert band.contains(10.4)
        assert not band.contains(10.6)

    def test_abs_and_rel_combine_additively(self):
        # allowed = abs_tol + rel_tol * |target| = 0.1 + 0.1 = 0.2
        band = Band(target=1.0, abs_tol=0.1, rel_tol=0.1)
        assert band.contains(1.15)
        assert not band.contains(1.25)

    def test_min_bound_inclusive(self):
        band = Band(min=0.5)
        assert band.contains(0.5)
        assert band.contains(2.0)
        assert not band.contains(0.499)

    def test_max_bound_inclusive(self):
        band = Band(max=0.005)
        assert band.contains(0.005)
        assert band.contains(0.0)
        assert not band.contains(0.0051)

    def test_target_and_bounds_all_enforced(self):
        band = Band(target=1.0, rel_tol=0.5, max=1.2)
        assert band.contains(1.2)
        assert not band.contains(1.4)  # within rel_tol but over max

    def test_nan_never_passes(self):
        assert not Band(target=1.0, rel_tol=10.0).contains(math.nan)
        assert not Band(min=-math.inf).contains(math.nan)

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError, match="target"):
            Band()

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            Band(target=1.0, source="vibes")


class TestBandJson:
    def test_round_trip_preserves_everything(self):
        band = Band(target=0.14, abs_tol=1e-9, rel_tol=1e-6,
                    min=0.0, max=1.0, source="paper",
                    known_gap=True, note="Table 1")
        assert Band.from_json(band.to_json()) == band

    def test_defaults_omitted_from_json(self):
        out = Band(target=1.0, source="golden").to_json()
        assert out == {"target": 1.0, "source": "golden"}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown band keys"):
            Band.from_json({"target": 1.0, "tolerance": 0.1})

    def test_describe_is_human_readable(self):
        assert Band(target=0.14, rel_tol=1e-6).describe() == "0.14 ±1e-06r"
        assert Band(max=0.005).describe() == "≤ 0.005"
        assert Band(min=0.5).describe() == "≥ 0.5"


class TestDeviation:
    def test_signed_percent(self):
        band = Band(target=0.1, rel_tol=0.2)
        assert band.deviation_pct(0.115) == pytest.approx(15.0)
        assert band.deviation_pct(0.085) == pytest.approx(-15.0)

    def test_none_without_target_or_at_zero_target(self):
        assert Band(max=1.0).deviation_pct(0.5) is None
        assert Band(target=0.0, abs_tol=0.1).deviation_pct(0.05) is None


class TestCheckMetric:
    def test_pass(self):
        c = check_metric("pert.q", Band(target=1.0, abs_tol=0.1), 1.05)
        assert c.status == "pass" and not c.failed

    def test_fail(self):
        c = check_metric("pert.q", Band(target=1.0, abs_tol=0.1), 2.0)
        assert c.status == "fail" and c.failed

    def test_known_gap_downgrades_fail_to_gap(self):
        band = Band(target=1.0, abs_tol=0.1, known_gap=True)
        assert check_metric("pert.q", band, 2.0).status == "gap"
        assert not check_metric("pert.q", band, 2.0).failed
        # in-band measurements still report pass, not gap
        assert check_metric("pert.q", band, 1.0).status == "pass"

    def test_missing_measurement_fails_the_gate(self):
        c = check_metric("pert.q", Band(target=1.0), None)
        assert c.status == "missing" and c.failed
        assert c.deviation_pct() is None

    def test_check_is_frozen(self):
        c = check_metric("pert.q", Band(target=1.0), 1.0)
        assert isinstance(c, MetricCheck)
        with pytest.raises(AttributeError):
            c.status = "pass"
