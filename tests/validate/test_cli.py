"""End-to-end CLI tests for ``python -m repro.validate``.

Exercises the real gate on fig5 (the analytic PERT response curve — the
one suite entry with no simulation behind it, so these stay fast): a
clean run passes and regenerates the results doc byte-identically, and a
deliberately perturbed expected band makes the same run exit non-zero
naming the offending figure.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.validate.__main__ import main
from repro.validate.suite import EXPECTED_DIR
from repro.validate.verdict import Verdict


@pytest.fixture
def fig5_expected(tmp_path):
    """Copy the committed fig5 bands into an isolated expected dir."""
    exp_dir = tmp_path / "expected"
    exp_dir.mkdir()
    shutil.copy(EXPECTED_DIR / "fig5.json", exp_dir / "fig5.json")
    return exp_dir


def _run(tmp_path, exp_dir, extra=()):
    out = tmp_path / "verdict.json"
    docs = tmp_path / "RESULTS.md"
    code = main([
        "run", "--quick", "--figure", "fig5",
        "--expected", str(exp_dir),
        "--out", str(out), "--docs", str(docs), *extra,
    ])
    return code, out, docs


def test_clean_run_passes_and_writes_artifacts(tmp_path, fig5_expected, capsys):
    code, out, docs = _run(tmp_path, fig5_expected)
    assert code == 0
    assert "overall: pass" in capsys.readouterr().out
    verdict = Verdict.load(out)
    assert verdict.tier == "quick"
    assert verdict.status == "pass"
    assert [f.figure for f in verdict.figures] == ["fig5"]
    assert "Figure 5" in docs.read_text(encoding="utf-8")


def test_results_doc_regenerates_byte_identically(tmp_path, fig5_expected):
    code, _, docs = _run(tmp_path, fig5_expected)
    assert code == 0
    first = docs.read_bytes()
    code, _, docs = _run(tmp_path, fig5_expected)
    assert code == 0
    assert docs.read_bytes() == first


def test_perturbed_band_fails_naming_the_figure(tmp_path, fig5_expected, capsys):
    path = fig5_expected / "fig5.json"
    data = json.loads(path.read_text(encoding="utf-8"))
    band = data["tiers"]["quick"]["metrics"]["p@delay_ms=10"]
    band["target"] = band["target"] + 0.06  # well outside abs+rel tolerance
    path.write_text(json.dumps(data), encoding="utf-8")

    code, out, _ = _run(tmp_path, fig5_expected)
    captured = capsys.readouterr().out
    assert code == 1
    assert "VALIDATION FAILED: fig5" in captured
    assert "p@delay_ms=10" in captured
    assert Verdict.load(out).status == "fail"


def test_missing_paper_metric_fails_as_missing(tmp_path, fig5_expected, capsys):
    path = fig5_expected / "fig5.json"
    data = json.loads(path.read_text(encoding="utf-8"))
    data["tiers"]["quick"]["metrics"]["p@delay_ms=999"] = {
        "target": 0.5, "abs_tol": 0.1, "source": "paper",
    }
    path.write_text(json.dumps(data), encoding="utf-8")

    code, out, _ = _run(tmp_path, fig5_expected)
    assert code == 1
    assert "not measured" in capsys.readouterr().out
    verdict = Verdict.load(out)
    statuses = {c.metric: c.status for c in verdict.figures[0].checks}
    assert statuses["p@delay_ms=999"] == "missing"


def test_no_docs_flag_skips_results_doc(tmp_path, fig5_expected):
    code, _, docs = _run(tmp_path, fig5_expected, extra=("--no-docs",))
    assert code == 0
    assert not docs.exists()


def test_report_exits_2_without_a_verdict(tmp_path, capsys):
    code = main(["report", "--verdict", str(tmp_path / "nope.json")])
    assert code == 2
    assert "no verdict found" in capsys.readouterr().out


def test_report_renders_saved_verdict(tmp_path, fig5_expected, capsys):
    _, out, _ = _run(tmp_path, fig5_expected)
    capsys.readouterr()
    code = main(["report", "--verdict", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "paper-fidelity verdict" in captured
    assert "fig5" in captured


def test_experiments_report_delegates_to_validate(tmp_path, monkeypatch, capsys):
    """`python -m repro.experiments report` points at the validate verdict."""
    from repro.experiments.__main__ import main as experiments_main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "empty-cache"))
    code = experiments_main(["report"])
    assert code == 2  # no verdict yet -> validate's "run first" exit code
    assert "python -m repro.validate run" in capsys.readouterr().out
