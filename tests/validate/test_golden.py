"""update-golden reconciliation rules (repro.validate.golden)."""

from __future__ import annotations

from repro.validate.bands import Band, GOLDEN_ABS_TOL, GOLDEN_REL_TOL
from repro.validate.golden import _reconcile


def test_new_metric_gets_default_golden_band():
    new, changed = _reconcile({}, {"pert.q": 0.14})
    assert new["pert.q"] == Band(target=0.14, abs_tol=GOLDEN_ABS_TOL,
                                 rel_tol=GOLDEN_REL_TOL, source="golden")
    assert changed == ["+ pert.q"]


def test_golden_target_replaced_tolerances_kept():
    old = {"pert.q": Band(target=0.1, abs_tol=0.01, rel_tol=0.05,
                          note="hand-widened")}
    new, changed = _reconcile(old, {"pert.q": 0.2})
    band = new["pert.q"]
    assert band.target == 0.2
    assert band.abs_tol == 0.01 and band.rel_tol == 0.05
    assert band.note == "hand-widened"
    assert changed == ["~ pert.q: 0.1 -> 0.2"]


def test_unchanged_golden_reports_no_change():
    old = {"pert.q": Band(target=0.14, rel_tol=1e-6)}
    new, changed = _reconcile(old, {"pert.q": 0.14})
    assert new["pert.q"].target == 0.14
    assert changed == []


def test_paper_band_kept_verbatim():
    old = {"pert.jain": Band(target=0.99, rel_tol=0.3, source="paper",
                             known_gap=True)}
    new, changed = _reconcile(old, {"pert.jain": 0.42})
    assert new["pert.jain"] is old["pert.jain"]
    assert changed == []


def test_unmeasured_golden_dropped_unmeasured_paper_kept():
    old = {
        "gone.golden": Band(target=1.0, source="golden"),
        "gone.paper": Band(max=0.5, source="paper"),
    }
    new, changed = _reconcile(old, {})
    assert "gone.golden" not in new
    assert new["gone.paper"] == old["gone.paper"]
    assert changed == ["- gone.golden"]
