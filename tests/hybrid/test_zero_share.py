"""Zero-background hybrid runs must be bit-identical to pure packet runs.

The hybrid coupling's contract: ``background=None``, a zero-share
background and the historical no-background call are the *same run* —
same resolved params, same event sequence, same result object — under
both engine backends.  This is what keeps every committed golden and
snapshot valid with the hybrid machinery in the tree.
"""

import pytest

from repro.experiments.common import _resolve_params, run_dumbbell

KW = dict(rtt=0.04, n_fwd=3, duration=2.5, warmup=1.0, seed=3)
BW = 4e6

ENGINES = ("legacy", "array")


RESOLVE_DEFAULTS = dict(
    n_rev=0, web_sessions=0, pkt_size=1000, buffer_pkts=None, rtts=None,
    start_window=None, record_rtt_flow=None, queue_sample_interval=None,
)


def test_zero_share_resolves_to_no_background():
    plain = _resolve_params(scheme="pert", bandwidth=BW,
                            **KW, **RESOLVE_DEFAULTS)
    zero = _resolve_params(scheme="pert", bandwidth=BW,
                           background={"model": "pert_red", "share": 0.0},
                           **KW, **RESOLVE_DEFAULTS)
    assert plain == zero
    assert plain["background"] is None


@pytest.mark.parametrize("engine", ENGINES)
def test_zero_share_run_bit_identical(engine, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", engine)
    plain = run_dumbbell("pert", BW, **KW)
    zero = run_dumbbell(
        "pert", BW, background={"model": "pert_red", "share": 0.0}, **KW
    )
    assert plain == zero
    assert plain.events_processed == zero.events_processed
    assert zero.background_model is None
    assert zero.background_share == 0.0
    assert zero.background_pkts == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_hybrid_run_agrees_across_engines(engine, monkeypatch):
    """A *non-zero* background is deterministic per engine backend."""
    monkeypatch.setenv("REPRO_ENGINE", engine)
    bg = {"model": "pert_red", "share": 0.4, "n_flows": 8}
    a = run_dumbbell("pert", BW, background=bg, **KW)
    b = run_dumbbell("pert", BW, background=bg, **KW)
    assert a == b
    assert a.background_pkts > 0


def test_hybrid_metrics_identical_between_engines(monkeypatch):
    bg = {"model": "pert_red", "share": 0.4, "n_flows": 8}
    results = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        results[engine] = run_dumbbell("pert", BW, background=bg, **KW)
    legacy, array = results["legacy"], results["array"]
    assert legacy.events_processed == array.events_processed
    assert legacy.background_pkts == array.background_pkts
    assert legacy.jain == array.jain
    assert legacy.utilization == array.utilization
    assert legacy.mean_queue_pkts == array.mean_queue_pkts
