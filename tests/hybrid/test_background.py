"""BackgroundLoad spec handling and the injector's rate fidelity."""

import math

import pytest

from repro.experiments.common import run_dumbbell
from repro.fluid import RateSegment, make_fluid_model
from repro.hybrid import BackgroundLoad

KW = dict(rtt=0.04, n_fwd=3, duration=4.0, warmup=1.0, seed=3)
BW = 8e6  # 1000 pkts/s at the default 1000-byte packets


def test_from_spec_normalises_none_and_zero_share():
    assert BackgroundLoad.from_spec(None) is None
    # share 0 degenerates to "no background" so the resolved params (and
    # therefore cache keys and goldens) match a background-free run
    assert BackgroundLoad.from_spec({"model": "pert_red", "share": 0.0}) is None
    assert BackgroundLoad.from_spec(
        BackgroundLoad(model="pert_red", share=0.0)) is None


def test_from_spec_passthrough_and_dict():
    load = BackgroundLoad(model="tcp_red", share=0.3, n_flows=7)
    assert BackgroundLoad.from_spec(load) is load
    parsed = BackgroundLoad.from_spec({"model": "tcp_red", "share": 0.3,
                                       "n_flows": 7})
    assert parsed == load


def test_canonical_roundtrips_through_constructor():
    load = BackgroundLoad(model="pert_pi", share=0.4, n_flows=11,
                          aggregate=3, arrival="paced",
                          params={"tq_ref": 0.004})
    assert BackgroundLoad(**load.canonical()) == load


def test_validation_rejects_bad_specs():
    with pytest.raises(ValueError):
        BackgroundLoad(model="pert_red", share=1.0)  # share must be < 1
    with pytest.raises(ValueError):
        BackgroundLoad(model="pert_red", share=-0.1)
    with pytest.raises(ValueError):
        BackgroundLoad(model="pert_red", share=0.5, aggregate=0)
    with pytest.raises(ValueError):
        BackgroundLoad(model="pert_red", share=0.5, arrival="bursty")
    with pytest.raises(ValueError):
        BackgroundLoad(model="no_such_model", share=0.5)
    with pytest.raises(ValueError):
        # fluid params are validated eagerly, not at attach time
        BackgroundLoad(model="pert_red", share=0.5,
                       params={"not_a_param": 1.0})


def test_paced_injection_hits_fluid_rate():
    """Paced macro-packets reproduce the settled fluid rate exactly."""
    share = 0.5
    bg = {"model": "pert_red", "share": share, "n_flows": 20}
    result = run_dumbbell("pert", BW, background=bg, **KW)
    # poisson default: offered macro count concentrates on rate*duration
    pkt_rate = BW / (8.0 * 1000)
    expected = share * pkt_rate * KW["duration"]
    offered = result.extras["background_offered_pkts"]
    assert offered == pytest.approx(expected, rel=0.15)
    assert result.background_model == "pert_red"
    assert result.background_share == share


def test_paced_arrival_is_deterministic_macro_count():
    bg = {"model": "pert_red", "share": 0.5, "n_flows": 20,
          "arrival": "paced", "aggregate": 5}
    r = run_dumbbell("pert", BW, background=bg, **KW)
    pkt_rate = BW / (8.0 * 1000)
    macro_rate = 0.5 * pkt_rate / 5
    expected_macros = macro_rate * KW["duration"]
    # offered counts fluid packets (macros * aggregate)
    assert r.extras["background_offered_pkts"] == pytest.approx(
        expected_macros * 5, rel=0.02)


def test_background_runs_are_deterministic():
    bg = {"model": "pert_red", "share": 0.4, "n_flows": 10}
    a = run_dumbbell("pert", BW, background=bg, **KW)
    b = run_dumbbell("pert", BW, background=bg, **KW)
    assert a == b


def test_segments_preserve_trajectory_volume():
    model = make_fluid_model("pert_red", capacity=500.0, n_flows=10,
                             rtt=0.06)
    from repro.fluid import rate_trajectory

    traj = rate_trajectory(model, 8.0, dt=2e-3)
    segs = traj.segments(0.5)
    assert segs[0].start == 0.0
    assert segs[-1].end == pytest.approx(8.0)
    for a, b in zip(segs, segs[1:]):
        assert a.end == pytest.approx(b.start)
    seg_volume = sum((s.end - s.start) * s.rate_pps for s in segs)
    import numpy as np

    true_volume = float(np.trapezoid(traj.rate_pps, traj.times))
    assert seg_volume == pytest.approx(true_volume, rel=1e-6)


def test_rate_segment_validation():
    with pytest.raises(ValueError):
        RateSegment(1.0, 0.5, 100.0)
    assert math.isfinite(RateSegment(0.0, 1.0, 100.0).rate_pps)
