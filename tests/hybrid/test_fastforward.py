"""Fluid fast-forward convergence and warm-started hybrid continuations."""

import pytest

from repro.experiments.common import run_dumbbell, run_dumbbell_warm
from repro.fluid import make_fluid_model
from repro.hybrid import fluid_fast_forward, warm_hybrid_bytes

KW = dict(rtt=0.04, n_fwd=3, warmup=1.0, seed=3)
BW = 4e6
BG = {"model": "pert_red", "share": 0.4, "n_flows": 8}


def test_fast_forward_settles_at_equilibrium():
    model = make_fluid_model("pert_red", capacity=400.0, n_flows=10,
                             rtt=0.06)
    steady = fluid_fast_forward(model)
    # starting from the analytic equilibrium, a stable model never moves
    assert steady.converged
    assert steady.rate_pps == pytest.approx(steady.equilibrium_pps, rel=1e-3)
    assert steady.equilibrium_pps == pytest.approx(400.0)


def test_fast_forward_explicit_horizon_integrates_once():
    model = make_fluid_model("pert_red", capacity=300.0, n_flows=6, rtt=0.05)
    steady = fluid_fast_forward(model, horizon=5.0)
    assert steady.horizon == 5.0
    assert steady.trajectory.duration == pytest.approx(5.0)


def test_fast_forward_all_models():
    for name in ("pert_red", "tcp_red", "pert_pi"):
        model = make_fluid_model(name, capacity=500.0, n_flows=10, rtt=0.06)
        steady = fluid_fast_forward(model, horizon=10.0)
        assert steady.rate_pps == pytest.approx(500.0, rel=0.05), name


def test_warm_hybrid_continuation_bit_identical():
    """Fluid-seeded warm start + continuation == cold hybrid run."""
    body = warm_hybrid_bytes("pert", BW, BG, **KW)
    warm = run_dumbbell_warm(body, 3.0)
    cold = run_dumbbell("pert", BW, background=BG, duration=3.0, **KW)
    assert warm == cold
    assert warm.background_pkts == cold.background_pkts > 0
