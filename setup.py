"""Setuptools shim; all metadata lives in pyproject.toml.

Kept so that ``pip install -e .`` works on environments whose setuptools
lacks the ``wheel`` package (legacy editable installs go through
``setup.py develop``).
"""

from setuptools import setup

setup()
