"""Setuptools shim; all metadata lives in pyproject.toml.

Kept so that ``pip install -e .`` works on environments whose setuptools
lacks the ``wheel`` package (legacy editable installs go through
``setup.py develop``), and to host the optional compiled-engine build:

    pip install -e .                         # pure Python, zero build steps
    REPRO_BUILD_COMPILED=1 pip install -e .  # + hand-written C core
    pip install -e .[compiled]               # + mypyc toolchain for
    REPRO_BUILD_COMPILED=mypyc pip install -e .

See docs/PERFORMANCE.md ("Building the compiled engine") and
``python -m repro.compiled.build`` for in-place builds without
reinstalling.
"""

import os
import sys

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_BUILD_COMPILED", "").strip().lower() not in (
    "",
    "0",
    "off",
    "false",
    "no",
):
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
    from repro.compiled.build import extensions_for_setup

    ext_modules = extensions_for_setup()

setup(ext_modules=ext_modules)
