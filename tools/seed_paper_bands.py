#!/usr/bin/env python
"""Seed the paper-sourced bands in ``src/repro/validate/expected/``.

One-shot editorial tool: writes the ``source: "paper"`` bands — published
numbers from Bhandarkar et al. (Table 1, Figures 5 and 13) and the
paper's qualitative claims encoded as min/max bounds — into the per-figure
expected files, preserving any golden bands already present.  Golden
(repro-pinned) targets are managed separately by
``python -m repro.validate update-golden``; rerunning this script is only
needed when the *paper* interpretation in docs/VALIDATION.md changes.

Usage::

    PYTHONPATH=src python tools/seed_paper_bands.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.validate.bands import Band  # noqa: E402
from repro.validate.suite import SUITE, expected_path, load_suite_expected  # noqa: E402
from repro.validate.verdict import ExpectedFigure, write_expected  # noqa: E402


def paper(target=None, *, abs_tol=0.0, rel_tol=0.0, min=None, max=None,
          known_gap=False, note=""):
    return Band(target=target, abs_tol=abs_tol, rel_tol=rel_tol, min=min,
                max=max, source="paper", known_gap=known_gap, note=note)


def fig5_bands() -> Dict[str, Band]:
    """Figure 5 response curve: analytic, so paper targets are exact."""
    curve = {0: 0.0, 2.5: 0.0, 5: 0.0, 7.5: 0.025, 10: 0.05, 12.5: 0.2875,
             15: 0.525, 17.5: 0.7625, 20: 1.0, 22.5: 1.0, 25: 1.0}
    note = "gentle-RED curve, T_min=5ms T_max=10ms p_max=0.05 (Fig. 5)"
    return {
        f"p@delay_ms={k:g}": paper(v, abs_tol=1e-9, rel_tol=1e-6, note=note)
        for k, v in curve.items()
    }


def fig13_bands() -> Dict[str, Band]:
    """Figure 13: stability pattern and the δ_min ≈ 0.1 s anchor."""
    out = {
        "min_delta_s@n_minus=40": paper(
            0.1, rel_tol=0.2, note="Fig. 13(a): δ_min ≈ 0.1 s at N⁻ = 40"),
        "min_delta_s@n_minus=50": paper(
            max=0.1, note="Fig. 13(a): δ_min monotonically decreasing"),
    }
    for rtt_ms, stable in ((100, 1.0), (160, 1.0), (171, 0.0)):
        verdict = "stable" if stable else "unstable"
        out[f"stable@rtt_ms={rtt_ms}"] = paper(
            stable, note=f"Fig. 13(b-d): {verdict} at R = {rtt_ms} ms")
    return out


def table1_bands() -> Dict[str, Band]:
    """Table 1 published Q/p/U/F values with documented tolerances."""
    out: Dict[str, Band] = {}
    # (scheme, Q, U, F); p is banded as an upper bound — the published
    # drop probabilities are O(1e-4..1e-6) where run-length noise
    # dominates any point target.
    rows = [
        ("pert", 0.28, 0.9381, 0.86),
        ("sack-droptail", 0.42, 0.9377, 0.44),
        ("sack-red-ecn", 0.41, 0.9390, 0.51),
        ("vegas", 0.07, 0.9999, 0.98),
    ]
    p_max = {"pert": 1e-4, "sack-droptail": 5e-3, "sack-red-ecn": 5e-3,
             "vegas": 1e-5}
    for scheme, q, u, f in rows:
        out[f"{scheme}.norm_queue"] = paper(
            q, rel_tol=0.35, note="Table 1 Q")
        out[f"{scheme}.drop_rate"] = paper(
            max=p_max[scheme], note="Table 1 p (order-of-magnitude bound)")
        out[f"{scheme}.utilization"] = paper(
            u, rel_tol=0.06, note="Table 1 U")
        gap = scheme == "pert"
        out[f"{scheme}.jain"] = paper(
            f, rel_tol=0.30, known_gap=gap,
            note="Table 1 F" + (
                "; PERT RTT-fairness not fully reproduced at scaled "
                "bandwidth (see docs/VALIDATION.md)" if gap else ""))
    return out


def fig2_bands() -> Dict[str, Band]:
    """Fig. 2 claim: queue-level fraction well above flow-level."""
    out: Dict[str, Band] = {}
    for case in ("case1", "case2", "case3", "case4", "case5", "case6"):
        out[f"{case}.queue_level"] = paper(
            min=0.5, note="Fig. 2: queue-level high→loss fraction ~0.6-0.9")
        out[f"{case}.flow_level"] = paper(
            max=0.5, note="Fig. 2: flow-level fraction ~0.1-0.4")
    return out


def fig3_bands() -> Dict[str, Band]:
    """Fig. 3 claim: srtt_0.99 dominates; Vegas best classic."""
    return {
        "srtt_0.99.efficiency": paper(
            min=0.6, note="Fig. 3: srtt_0.99 high efficiency"),
        "srtt_0.99.false_pos": paper(
            max=0.4, note="Fig. 3: srtt_0.99 low false positives"),
        "srtt_0.99.false_neg": paper(
            max=0.4, note="Fig. 3: srtt_0.99 low false negatives"),
        "vegas.efficiency": paper(
            min=0.4, note="Fig. 3: Vegas best of the classic predictors"),
    }


def fig4_bands() -> Dict[str, Band]:
    return {
        "false_positives.below_half_fraction": paper(
            min=0.5,
            note="Fig. 4: false-positive mass mostly below half occupancy"),
    }


def fig6_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for bw in (1, 2, 4, 8, 16, 32):
        at = f"@bandwidth_mbps={bw}"
        out[f"pert.drop_rate{at}"] = paper(
            max=0.01, note="Fig. 6: proactive schemes keep ~zero loss")
        out[f"sack-red-ecn.drop_rate{at}"] = paper(
            max=0.01, note="Fig. 6: proactive schemes keep ~zero loss")
        out[f"pert.jain{at}"] = paper(
            min=0.8, note="Fig. 6: PERT fairness stays near 1")
        out[f"sack-droptail.norm_queue{at}"] = paper(
            min=0.3, note="Fig. 6: SACK/DropTail queue stays high")
        if bw >= 4:
            out[f"pert.utilization{at}"] = paper(
                min=0.8,
                note="Fig. 6: PERT utilization dips only at small buffers")
    return out


def fig7_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for rtt_ms in (20, 40, 60, 120, 240, 400):
        at = f"@rtt_ms={rtt_ms}"
        out[f"pert.drop_rate{at}"] = paper(
            max=0.01, note="Fig. 7: PERT drop rate tracks RED-ECN (~0)")
        out[f"pert.jain{at}"] = paper(
            min=0.7, note="Fig. 7: fairness stays high across RTTs")
        out[f"pert.utilization{at}"] = paper(
            min=0.6, note="Fig. 7: utilization high, dipping at extreme RTTs")
    return out


def fig8_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for n in (1, 2, 5, 10, 20, 40, 80):
        at = f"@n_fwd={n}"
        out[f"pert.drop_rate{at}"] = paper(
            max=0.02, note="Fig. 8: PERT drops track RED-ECN as flows grow")
        out[f"pert.jain{at}"] = paper(
            min=0.8, note="Fig. 8: Jain index high even at large flow counts")
        out[f"sack-droptail.norm_queue{at}"] = paper(
            min=0.3, note="Fig. 8: droptail queue high throughout")
    return out


def fig9_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for n in (2, 4, 8, 16, 32):
        at = f"@web_sessions={n}"
        out[f"pert.drop_rate{at}"] = paper(
            max=0.01, note="Fig. 9: PERT keeps losses ~zero at every web load")
        out[f"pert.norm_queue{at}"] = paper(
            max=0.5, note="Fig. 9: PERT keeps the average queue low")
        out[f"pert.jain{at}"] = paper(
            min=0.7, note="Fig. 9: long-flow fairness stays high")
    return out


def fig11_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for hop in ("R1-R2", "R2-R3", "R3-R4", "R4-R5", "R5-R6"):
        at = f"@hop={hop}"
        out[f"pert.drop_rate{at}"] = paper(
            max=1e-3, note="Fig. 11: PERT ~zero drops on every hop")
        out[f"pert.norm_queue{at}"] = paper(
            max=0.5, note="Fig. 11: PERT low queue on every hop")
        out[f"pert.utilization{at}"] = paper(
            min=0.7, note="Fig. 11: utilization like SACK/RED-ECN")
    return out


def fig12_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for e in range(4):
        out[f"pert.share_error@epoch={e}"] = paper(
            max=0.25,
            note="Fig. 12: cohorts re-converge to equal shares each epoch")
    return out


def fig12b_bands() -> Dict[str, Band]:
    return {
        "pert.concede_s": paper(
            max=10.0, note="§4.7: responsive flows concede quickly"),
        "pert.reclaim_s": paper(
            max=10.0, note="§4.7: bandwidth reclaimed promptly"),
        "pert.drops_squeeze": paper(
            max=5.0, note="§4.7: PERT concedes with near-zero loss"),
    }


def fig14_bands() -> Dict[str, Band]:
    out: Dict[str, Band] = {}
    for rtt_ms in (20, 60, 120, 240):
        at = f"@rtt_ms={rtt_ms}"
        out[f"pert-pi.drop_rate{at}"] = paper(
            max=0.01, note="Fig. 14: PERT-PI very effective at avoiding drops")
        out[f"pert-pi.utilization{at}"] = paper(
            min=0.7, note="Fig. 14: PERT-PI utilization matches router PI/ECN")
        out[f"pert-pi.jain{at}"] = paper(
            min=0.7, note="Fig. 14: fairness comparable to PI/ECN")
    return out


#: figure id -> {tier: paper bands}; fig5/fig13 run unscaled at both tiers,
#: so their paper bands apply to both.
PAPER_BANDS = {
    "fig2": {"full": fig2_bands()},
    "fig3": {"full": fig3_bands()},
    "fig4": {"full": fig4_bands()},
    "fig5": {"quick": fig5_bands(), "full": fig5_bands()},
    "fig6": {"full": fig6_bands()},
    "fig7": {"full": fig7_bands()},
    "fig8": {"full": fig8_bands()},
    "fig9": {"full": fig9_bands()},
    "table1": {"full": table1_bands()},
    "fig11": {"full": fig11_bands()},
    "fig12": {"full": fig12_bands()},
    "fig12b": {"full": fig12b_bands()},
    "fig13": {"quick": fig13_bands(), "full": fig13_bands()},
    "fig14": {"full": fig14_bands()},
}


def main() -> None:
    for figure, per_tier in PAPER_BANDS.items():
        existing = load_suite_expected(figure)
        if existing is None:
            existing = ExpectedFigure(figure=figure,
                                      title=SUITE[figure].title, tiers={})
        existing.title = SUITE[figure].title
        for tier, bands in per_tier.items():
            merged = {
                mid: band
                for mid, band in existing.bands(tier).items()
                if band.source == "golden"
            }
            merged.update(bands)
            existing.tiers[tier] = merged
        path = write_expected(existing, expected_path(figure))
        n = sum(len(b) for b in per_tier.values())
        print(f"{figure}: {n} paper bands -> {path}")


if __name__ == "__main__":
    main()
