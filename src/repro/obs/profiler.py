"""Opt-in sampling profiler for the event loop.

Attached via ``Simulator.profiler``, the profiler takes over event
dispatch and times every ``period``-th callback with
``time.perf_counter``, attributing the cost to the callback's qualified
name.  Sampling (rather than timing every event) keeps the profiled
run's slowdown small while still ranking hot callbacks accurately over
the millions of events a real run processes; ``est_time`` scales the
sampled time back up by the period.

The profiler observes wall time only — it never touches simulation
state, so a profiled run produces identical results (the dispatch path
calls exactly ``fn(*args)`` either way).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Samples event-callback wall time; see :meth:`top` for results."""

    def __init__(self, period: int = 16):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = int(period)
        self.events = 0
        #: qualname -> [sample_count, sampled_seconds]
        self.samples: Dict[str, List[float]] = {}

    def dispatch(self, fn, args) -> None:
        """Run one event callback, timing it if it falls on the sampling grid."""
        self.events += 1
        if self.events % self.period:
            fn(*args)
            return
        t0 = perf_counter()
        fn(*args)
        dt = perf_counter() - t0
        key = getattr(fn, "__qualname__", None) or repr(fn)
        cell = self.samples.get(key)
        if cell is None:
            self.samples[key] = [1, dt]
        else:
            cell[0] += 1
            cell[1] += dt

    def top(self, n: int = 10) -> List[dict]:
        """The *n* hottest callbacks by estimated total wall time."""
        rows = [
            {
                "callback": name,
                "samples": int(count),
                "sampled_time": sampled,
                "est_time": sampled * self.period,
            }
            for name, (count, sampled) in self.samples.items()
        ]
        rows.sort(key=lambda r: (-r["est_time"], r["callback"]))
        return rows[:n]

    def snapshot(self) -> dict:
        """JSON-serializable summary for manifests."""
        return {
            "period": self.period,
            "events": self.events,
            "top": self.top(20),
        }
