"""Observability CLI.

Usage::

    python -m repro.obs report <run-dir> [--top N] [--no-trace] [--history [F]]
    python -m repro.obs diff <runA> <runB> [--threshold PCT] [--strict]
    python -m repro.obs profile [--scheme pert] [--bandwidth BPS]
                                [--duration S] [--seed N] [--period K]

``report`` post-processes the manifests and traces a runner execution
left next to its cache entries (point it at the ``--cache-dir`` of a
``python -m repro.experiments ... --obs --trace`` run); ``--history``
appends the ``BENCH_history.jsonl`` perf trajectory.  ``diff`` compares
two run directories scheme by scheme with signed percent deltas and a
configurable flag threshold (``--strict`` exits 1 when any delta
exceeds it).  ``profile`` runs one dumbbell simulation under the
sampling profiler and prints the hottest event callbacks — the quickest
way to see where simulation wall time goes before optimising.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .report import format_table, generate_report

#: repo-root bench history (src/repro/obs/__main__.py -> three parents up)
_DEFAULT_HISTORY = Path(__file__).resolve().parents[3] / "BENCH_history.jsonl"


def _cmd_report(args) -> int:
    history = args.history
    if history == "":  # bare --history: the committed repo trajectory
        history = str(_DEFAULT_HISTORY)
    print(generate_report(
        args.run_dir, top=args.top, include_trace=not args.no_trace,
        history=history,
    ))
    return 0


def _cmd_diff(args) -> int:
    from .diff import diff_runs, flagged_deltas, format_diff

    diff = diff_runs(args.run_a, args.run_b)
    print(format_diff(diff, threshold_pct=args.threshold))
    if args.strict and flagged_deltas(diff, args.threshold):
        return 1
    return 0


def _cmd_profile(args) -> int:
    from ..experiments.common import run_dumbbell
    from .runtime import ObsFlags, observe_job

    flags = ObsFlags(profile=True, profile_period=args.period)
    with observe_job(flags) as obs:
        result = run_dumbbell(
            scheme=args.scheme,
            bandwidth=args.bandwidth,
            n_fwd=args.flows,
            duration=args.duration,
            warmup=min(args.duration / 3.0, 20.0),
            seed=args.seed,
        )
    meta = obs.finish()
    prof = meta.get("profile") or {}
    wall = meta["wall_time"]
    print(
        f"{args.scheme} @ {args.bandwidth/1e6:.1f}Mbps, {args.duration:.0f}s sim: "
        f"{result.events_processed:,} events in {wall:.3f}s wall "
        f"({result.events_processed / wall:,.0f} events/s, "
        f"sampling 1/{prof.get('period', '?')})"
    )
    rows = [
        [r["callback"], str(r["samples"]), f"{r['est_time']:.3f}s"]
        for r in prof.get("top", [])[:args.top]
    ]
    print(format_table(["callback", "samples", "est_time"], rows))
    if meta.get("phases"):
        phases = ", ".join(
            f"{k}={v:.3f}s" for k, v in sorted(meta["phases"].items())
        )
        print(f"phases: {phases}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect observability output of repro runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="summarize a run directory")
    rep.add_argument("run_dir", help="directory holding *.manifest.json "
                                     "(the runner's cache dir)")
    rep.add_argument("--top", type=int, default=10, metavar="N",
                     help="rows in the slowest-jobs/hot-callbacks tables")
    rep.add_argument("--no-trace", action="store_true",
                     help="skip reading sibling *.trace.jsonl files")
    rep.add_argument("--history", nargs="?", const="", default=None,
                     metavar="FILE",
                     help="append the bench-history trajectory (default "
                          "file: the repo's BENCH_history.jsonl)")
    rep.set_defaults(fn=_cmd_report)

    dif = sub.add_parser("diff", help="compare two run directories")
    dif.add_argument("run_a", help="baseline run directory (A)")
    dif.add_argument("run_b", help="candidate run directory (B)")
    dif.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                     help="flag |delta| over this percent (default 10)")
    dif.add_argument("--strict", action="store_true",
                     help="exit 1 when any delta exceeds the threshold")
    dif.set_defaults(fn=_cmd_diff)

    prof = sub.add_parser("profile", help="profile one dumbbell run")
    prof.add_argument("--scheme", default="pert")
    prof.add_argument("--bandwidth", type=float, default=10e6, metavar="BPS")
    prof.add_argument("--duration", type=float, default=15.0, metavar="S")
    prof.add_argument("--flows", type=int, default=10, metavar="N")
    prof.add_argument("--seed", type=int, default=1)
    prof.add_argument("--period", type=int, default=16, metavar="K",
                      help="time every K-th event (default 16)")
    prof.add_argument("--top", type=int, default=10, metavar="N")
    prof.set_defaults(fn=_cmd_profile)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly instead of
        # tracebacking (redirect so the interpreter's exit flush is safe).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
