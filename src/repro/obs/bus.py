"""Live telemetry bus: job lifecycle + heartbeat events, streamed to JSONL.

PR 2's observability is strictly post-hoc — manifests and traces become
readable only after a job finishes.  The bus is the *live* complement:
while a sweep is still executing, the runner publishes job lifecycle
events (started / finished / failed / retried / cached / resumed), job
phase transitions, and periodic wall-clock heartbeats (simulated-time
progress, events scheduled, peak RSS) into one append-only JSON Lines
file next to the cache.  ``python -m repro.serve`` tails that file to
drive a streaming dashboard; finished runs keep it as a forensic
timeline.

Transport
---------
Every process — the scheduling parent and each one-shot worker — opens
the same file with ``O_APPEND`` and emits each event as a **single
``os.write`` of one newline-terminated JSON line**.  POSIX guarantees
append-mode writes of this size land atomically at end-of-file, so
concurrent workers never interleave bytes mid-line and no locks or
queues are needed; a reader at worst sees a not-yet-complete final line,
which :func:`iter_events` tolerates.  Events are deliberately small
(well under the 4 KiB atomicity floor); :meth:`EventBus.emit` refuses
oversized records rather than risking a torn line.

Determinism contract (inherited from PR 2): the bus is **default-off**
(``REPRO_BUS`` unset) and costs nothing when off; when on, it observes
but never mutates — no simulator events, no RNG draws — so results are
bit-identical either way.  Bus records carry *wall-clock* timestamps and
process ids, which is why they live in their own ``events.jsonl`` file,
segregated from every golden-checked artifact (cache entries, manifests,
traces).

Schema v1 event types and their payload fields (beyond ``v``/``type``/
``ts``/``pid``):

==================  ==================================================
``run_started``     ``total`` (jobs in this ``run_jobs`` call)
``run_finished``    ``stats`` (final :meth:`RunnerStats.snapshot` dict)
``job_started``     ``key, kind, scheme, seed, attempt``
``job_finished``    ``key, wall_time, events, attempts``
``job_failed``      ``key, error, attempts``
``job_retried``     ``key, attempt`` (the attempt that just failed)
``job_cached``      ``key`` (served from the on-disk cache)
``job_resumed``     ``key, resumed_at`` (simulated seconds)
``phase_started``   ``key, phase``
``phase_finished``  ``key, phase, seconds``
``heartbeat``       ``key, sim_now, events, sched, peak_rss_kb``
``fleet_submitted`` ``sweep, jobs, deduped`` (store hits at submit)
``fleet_leased``    ``key, worker, expires, attempt``
``fleet_requeued``  ``key, reason`` (lease expiry / failed attempt)
``fleet_done``      ``key, worker, store`` (``fresh`` or ``hit``)
``fleet_failed``    ``key, worker, error`` (attempt budget exhausted)
``fleet_worker``    ``worker, state`` (``started``/``exited``/``killed``)
``fleet_queue``     ``pending, leased, done, failed`` (+ ``store``)
==================  ==================================================

The ``fleet_*`` family is published by :mod:`repro.fleet` workers and
schedulers over the same file: ``fleet_queue`` is a periodic whole-queue
depth snapshot (what the dashboard's queue chips render), the rest are
per-transition records mirroring the fleet journal.

``heartbeat.sched`` is the simulator's monotone event sequence counter —
a live proxy for work done that the hot loop already maintains, so
heartbeats read it for free; ``events`` (``events_processed``) updates
at ``run(until=...)`` chunk boundaries.  Consumers derive events/s from
consecutive heartbeats' ``sched``/``ts`` deltas.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "BUS_SCHEMA",
    "BUS_FILENAME",
    "EVENT_TYPES",
    "EventBus",
    "bus_scope",
    "active_bus",
    "emit",
    "resolve_bus_path",
    "resolve_heartbeat_interval",
    "heartbeat_loop",
    "iter_events",
    "read_events",
    "validate_event",
]

#: bump when event types / fields change incompatibly
BUS_SCHEMA = 1

#: bus filename, written next to the cache entries of its run
BUS_FILENAME = "events.jsonl"

#: largest serialized line emit() will write — POSIX guarantees atomic
#: O_APPEND writes up to PIPE_BUF (>= 4096); stay safely under it
_MAX_LINE_BYTES = 3072

#: event type -> required payload fields (beyond v/type/ts/pid)
EVENT_TYPES: Dict[str, tuple] = {
    "run_started": ("total",),
    "run_finished": ("stats",),
    "job_started": ("key", "kind", "attempt"),
    "job_finished": ("key", "wall_time", "events", "attempts"),
    "job_failed": ("key", "error", "attempts"),
    "job_retried": ("key", "attempt"),
    "job_cached": ("key",),
    "job_resumed": ("key", "resumed_at"),
    "phase_started": ("key", "phase"),
    "phase_finished": ("key", "phase", "seconds"),
    "heartbeat": ("key", "sim_now", "events", "sched", "peak_rss_kb"),
    # fleet (repro.fleet) lifecycle — mirrors the fleet journal
    "fleet_submitted": ("sweep", "jobs", "deduped"),
    "fleet_leased": ("key", "worker", "expires", "attempt"),
    "fleet_requeued": ("key", "reason"),
    "fleet_done": ("key", "worker", "store"),
    "fleet_failed": ("key", "worker", "error"),
    "fleet_worker": ("worker", "state"),
    "fleet_queue": ("pending", "leased", "done", "failed"),
}

_TRUTHY = {"1", "on", "true", "yes"}
_OFF_VALUES = {"", "0", "off", "false", "no"}


def validate_event(rec: dict) -> None:
    """Raise ``ValueError`` if *rec* is not a well-formed bus event."""
    if not isinstance(rec, dict):
        raise ValueError(f"bus event must be a dict, got {type(rec).__name__}")
    if rec.get("v") != BUS_SCHEMA:
        raise ValueError(f"unsupported bus schema version {rec.get('v')!r}")
    etype = rec.get("type")
    required = EVENT_TYPES.get(etype)
    if required is None:
        raise ValueError(f"unknown bus event type {etype!r}")
    if not isinstance(rec.get("ts"), (int, float)):
        raise ValueError(f"bus event {etype!r} missing numeric wall time 'ts'")
    missing = [f for f in required if f not in rec]
    if missing:
        raise ValueError(f"bus event {etype!r} missing fields {missing}")


class EventBus:
    """Append-only JSONL event sink shared by every process of one run.

    Each process constructs its own :class:`EventBus` over the same path
    (the file descriptor is *not* shareable across ``spawn``-style
    workers); ``O_APPEND`` makes their single-``write`` lines compose
    without coordination.  Emission is best-effort: a full disk or a
    vanished directory degrades telemetry, never the sweep.
    """

    def __init__(self, path: Union[str, Path], *, job: Optional[str] = None):
        self.path = Path(path)
        self.job = job  # default `key` field stamped on emitted events
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()  # heartbeat thread emits concurrently

    def emit(self, etype: str, **fields) -> Optional[dict]:
        """Validate and append one event; returns it (or ``None`` if the
        bus is closed or the write failed — telemetry never raises)."""
        if self._fd is None:
            return None
        rec = {"v": BUS_SCHEMA, "type": etype, "ts": time.time(),
               "pid": os.getpid()}
        if "key" not in fields and "key" in EVENT_TYPES.get(etype, ()):
            rec["key"] = self.job  # may be None outside a job scope
        rec.update(fields)
        validate_event(rec)
        line = json.dumps(rec, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        if len(data) > _MAX_LINE_BYTES:
            raise ValueError(
                f"bus event {etype!r} serializes to {len(data)} bytes, over "
                f"the {_MAX_LINE_BYTES}-byte atomic-append budget; trim its "
                f"payload fields"
            )
        try:
            with self._lock:
                if self._fd is None:
                    return None
                os.write(self._fd, data)
        except OSError:  # pragma: no cover - disk trouble
            return None
        return rec

    def close(self) -> None:
        """Close the file descriptor (idempotent)."""
        with self._lock:
            fd, self._fd = self._fd, None
        if fd is not None:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventBus path={self.path} job={self.job}>"


_ACTIVE_BUS: Optional[EventBus] = None


@contextmanager
def bus_scope(path: Optional[Union[str, Path]], *, job: Optional[str] = None):
    """Make an :class:`EventBus` over *path* the process-active bus.

    Yields the bus, or ``None`` when *path* is unset — callers wrap
    unconditionally and test the yield, mirroring ``checkpoint_scope``.
    The active bus is what :func:`emit` and the phase hooks in
    :mod:`repro.obs.runtime` publish to.
    """
    global _ACTIVE_BUS
    bus = EventBus(path, job=job) if path is not None else None
    prev, _ACTIVE_BUS = _ACTIVE_BUS, bus
    try:
        yield bus
    finally:
        _ACTIVE_BUS = prev
        if bus is not None:
            bus.close()


def active_bus() -> Optional[EventBus]:
    """The bus installed by :func:`bus_scope` in this process, if any."""
    return _ACTIVE_BUS


def emit(etype: str, **fields) -> Optional[dict]:
    """Publish on the process-active bus; no-op (``None``) when off."""
    bus = _ACTIVE_BUS
    if bus is None:
        return None
    return bus.emit(etype, **fields)


def resolve_bus_path(store=None, bus=None) -> Optional[Path]:
    """Resolve where (whether) this run's bus file lives.

    ``bus=None`` honours ``$REPRO_BUS``: unset/falsy disables, a truthy
    flag (``1``/``on``/...) places :data:`BUS_FILENAME` next to the
    cache (*store*'s root — no cache means no implicit location, so the
    flag is ignored with the bus off), and anything else is taken as an
    explicit file path.  ``bus=False`` disables; a str/Path is used
    as-is.
    """
    if bus is False:
        return None
    if bus is not None:
        return Path(bus).expanduser()
    env = os.environ.get("REPRO_BUS", "").strip()
    if env.lower() in _OFF_VALUES:
        return None
    if env.lower() in _TRUTHY:
        if store is None:
            return None
        return Path(store.root) / BUS_FILENAME
    return Path(env).expanduser()


def resolve_heartbeat_interval(interval: Optional[float] = None) -> float:
    """Wall seconds between heartbeats; ``$REPRO_BUS_INTERVAL`` default 1.0."""
    if interval is not None:
        return max(0.05, float(interval))
    env = os.environ.get("REPRO_BUS_INTERVAL", "").strip()
    try:
        return max(0.05, float(env)) if env else 1.0
    except ValueError:
        return 1.0  # unparseable knob: fall back rather than crash a sweep


@contextmanager
def heartbeat_loop(bus: Optional[EventBus], interval: Optional[float] = None):
    """Emit periodic ``heartbeat`` events from a daemon thread.

    Each beat samples the active job observation's registered simulator
    (see :func:`repro.obs.runtime.note_simulator`): simulated ``now``,
    ``events_processed`` (updated at run-chunk boundaries) and the live
    event sequence counter, plus the process's peak RSS.  Sampling reads
    a few attributes from another thread and never touches simulation
    state, so a heartbeating run is bit-identical to a silent one.  With
    *bus* ``None`` this is a no-op context.
    """
    if bus is None:
        yield
        return
    from .runtime import _peak_rss_kb, active

    interval = resolve_heartbeat_interval(interval)
    stop = threading.Event()

    def beat() -> None:
        obs = active()
        sim = getattr(obs, "simulator", None) if obs is not None else None
        bus.emit(
            "heartbeat",
            sim_now=float(sim.now) if sim is not None else None,
            events=int(sim.events_processed) if sim is not None else None,
            sched=int(sim._seq) if sim is not None else None,
            peak_rss_kb=_peak_rss_kb(),
        )

    def loop() -> None:
        while not stop.wait(interval):
            beat()

    thread = threading.Thread(target=loop, name="repro-bus-heartbeat",
                              daemon=True)
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=2.0)
        beat()  # final beat: the job's closing progress sample


def iter_events(path: Union[str, Path]) -> Iterator[dict]:
    """Stream events from a bus file, tolerating live-run torn tails.

    A final line without a trailing newline (a writer mid-append) is
    skipped, as is any line that fails to parse or validate — a live
    dashboard must render whatever is durable, not crash on the frontier.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if not line.endswith("\n"):
                return  # torn tail: a writer is mid-append
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                validate_event(rec)
            except ValueError:
                continue
            yield rec


def read_events(path: Union[str, Path]) -> List[dict]:
    """Load a whole bus file into memory (missing file -> empty list)."""
    try:
        return list(iter_events(path))
    except OSError:
        return []
