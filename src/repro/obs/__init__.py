"""Observability layer: metrics, traces, run manifests and reporting.

The simulation engine, links, queue disciplines and TCP senders all
carry an ``obs`` attachment point that defaults to ``None``; when a
:class:`Collector` is attached they publish structured signals into a
deterministic :class:`MetricsRegistry` and (optionally) a
schema-versioned JSONL trace.  The runner writes one manifest per job
next to its cache entry, and ``python -m repro.obs report <run-dir>``
turns a directory of manifests/traces into wall-time, throughput and
queue-behaviour summaries.

Everything here is strictly passive: attaching a collector schedules no
simulator events and draws from no RNG stream, so instrumented and
uninstrumented runs produce bit-identical results (pinned by a golden
test).  Live telemetry (the ``REPRO_BUS`` event bus tailed by
``python -m repro.serve``) follows the same contract: events carry
wall-clock context but never feed back into results.  See
``docs/OBSERVABILITY.md`` for the full tour.
"""

from .bus import (
    BUS_SCHEMA,
    EventBus,
    active_bus,
    bus_scope,
    emit,
    iter_events,
    read_events,
    resolve_bus_path,
)
from .collect import Collector
from .diff import diff_runs, flagged_deltas, format_diff
from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifests,
    load_manifests_with_warnings,
    write_manifest,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SamplingProfiler
from .records import TRACE_SCHEMA, record, validate_record
from .report import format_table, generate_report, history_section, scheme_summary
from .runtime import (
    JobObservation,
    ObsFlags,
    active,
    note_simulator,
    observe_job,
    phase,
    resolve_obs_flags,
)
from .trace import iter_trace, read_trace, write_trace

__all__ = [
    "BUS_SCHEMA",
    "Collector",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "JobObservation",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "ObsFlags",
    "SamplingProfiler",
    "TRACE_SCHEMA",
    "active",
    "active_bus",
    "build_manifest",
    "bus_scope",
    "diff_runs",
    "emit",
    "flagged_deltas",
    "format_diff",
    "format_table",
    "generate_report",
    "history_section",
    "iter_events",
    "iter_trace",
    "load_manifests",
    "load_manifests_with_warnings",
    "note_simulator",
    "observe_job",
    "phase",
    "read_events",
    "read_trace",
    "record",
    "resolve_bus_path",
    "resolve_obs_flags",
    "scheme_summary",
    "validate_record",
    "write_manifest",
    "write_trace",
]
