"""Observability layer: metrics, traces, run manifests and reporting.

The simulation engine, links, queue disciplines and TCP senders all
carry an ``obs`` attachment point that defaults to ``None``; when a
:class:`Collector` is attached they publish structured signals into a
deterministic :class:`MetricsRegistry` and (optionally) a
schema-versioned JSONL trace.  The runner writes one manifest per job
next to its cache entry, and ``python -m repro.obs report <run-dir>``
turns a directory of manifests/traces into wall-time, throughput and
queue-behaviour summaries.

Everything here is strictly passive: attaching a collector schedules no
simulator events and draws from no RNG stream, so instrumented and
uninstrumented runs produce bit-identical results (pinned by a golden
test).  See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from .collect import Collector
from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifests,
    write_manifest,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SamplingProfiler
from .records import TRACE_SCHEMA, record, validate_record
from .report import format_table, generate_report
from .runtime import (
    JobObservation,
    ObsFlags,
    active,
    observe_job,
    phase,
    resolve_obs_flags,
)
from .trace import iter_trace, read_trace, write_trace

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "Histogram",
    "JobObservation",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "ObsFlags",
    "SamplingProfiler",
    "TRACE_SCHEMA",
    "active",
    "build_manifest",
    "format_table",
    "generate_report",
    "iter_trace",
    "load_manifests",
    "observe_job",
    "phase",
    "read_trace",
    "record",
    "resolve_obs_flags",
    "validate_record",
    "write_manifest",
    "write_trace",
]
