"""The Collector: where component hooks publish metrics and trace records.

Instrumented components (queue disciplines, links, TCP senders) carry an
``obs`` attribute that is ``None`` by default; the hot-path cost of the
instrumentation when disabled is one attribute load and an ``is None``
test per hook site (guarded by ``tests/obs/test_overhead.py``).
Attaching a component points its ``obs`` at a :class:`Collector` and
registers a small per-component instrument holding pre-resolved counter
and histogram references, so the enabled path does no dict lookups by
metric name per event either.

Design rule (pinned by the obs-on/off golden test): a collector never
schedules simulator events, never draws randomness, and never mutates
the objects it observes beyond the ``obs``/``obs_label`` attachment
fields — so enabling collection cannot perturb a simulation.  "Periodic"
queue/cwnd samples are therefore evaluated lazily at hook time: a sample
record is emitted at most once per ``sample_interval`` of simulated
time, timestamped with the event that triggered it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import (
    CWND_EDGES,
    QUEUE_DELAY_EDGES,
    QUEUE_LEN_EDGES,
    MetricsRegistry,
)
from .records import TRACE_SCHEMA

__all__ = ["Collector"]


class _QueueInstrument:
    __slots__ = (
        "qdisc", "label", "bandwidth", "next_sample",
        "c_enqueues", "c_drops", "c_forced", "c_marks",
        "h_qlen", "h_delay",
    )

    def __init__(self, qdisc, label: str, bandwidth: Optional[float], reg: MetricsRegistry):
        self.qdisc = qdisc
        self.label = label
        self.bandwidth = bandwidth
        self.next_sample = 0.0
        base = f"queue.{label}"
        self.c_enqueues = reg.counter(f"{base}.enqueues")
        self.c_drops = reg.counter(f"{base}.drops")
        self.c_forced = reg.counter(f"{base}.forced_drops")
        self.c_marks = reg.counter(f"{base}.marks")
        self.h_qlen = reg.histogram(f"{base}.qlen", QUEUE_LEN_EDGES)
        self.h_delay = reg.histogram(f"{base}.delay", QUEUE_DELAY_EDGES)


class _SenderInstrument:
    __slots__ = (
        "sender", "label", "next_sample",
        "c_early", "c_timeouts", "h_cwnd",
    )

    def __init__(self, sender, label: str, reg: MetricsRegistry):
        self.sender = sender
        self.label = label
        self.next_sample = 0.0
        base = f"flow.{label}"
        self.c_early = reg.counter(f"{base}.early_responses")
        self.c_timeouts = reg.counter(f"{base}.timeouts")
        self.h_cwnd = reg.histogram(f"{base}.cwnd", CWND_EDGES)


class _LinkInstrument:
    __slots__ = ("link", "label", "next_sample")

    def __init__(self, link, label: str):
        self.link = link
        self.label = label
        self.next_sample = 0.0


class Collector:
    """Aggregates metrics and (optionally) trace records for one run.

    Parameters
    ----------
    registry:
        Metrics registry to publish into (a fresh one by default).
    trace:
        Keep per-event trace records (enqueue/drop/mark/early-response/
        timeout plus periodic samples) in :attr:`records` for the JSONL
        sink.  Off by default because packet-event traces grow with the
        event count.
    sample_interval:
        Minimum simulated seconds between consecutive ``queue_sample`` /
        ``cwnd_sample`` / ``link_sample`` emissions per component.
    trace_packet_events:
        When tracing, also record one ``enqueue`` record per admitted
        packet (the chattiest record type).  Drops and marks are always
        recorded when tracing.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: bool = False,
        sample_interval: float = 0.1,
        trace_packet_events: bool = True,
    ):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.records: Optional[List[dict]] = [] if trace else None
        self.sample_interval = sample_interval
        self.trace_packet_events = trace_packet_events
        self._queues: Dict[int, _QueueInstrument] = {}
        self._senders: Dict[int, _SenderInstrument] = {}
        self._links: Dict[int, _LinkInstrument] = {}

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_queue(self, qdisc, label: str, bandwidth: Optional[float] = None) -> None:
        """Observe a queue discipline; *bandwidth* (bps) enables the
        drain-time queue-delay estimate in samples and histograms."""
        self._queues[id(qdisc)] = _QueueInstrument(
            qdisc, label, bandwidth, self.registry
        )
        qdisc.obs = self
        qdisc.obs_label = label

    def attach_sender(self, sender, label: Optional[str] = None) -> None:
        """Observe a TCP sender (early responses, timeouts, cwnd)."""
        label = label if label is not None else str(sender.flow_id)
        self._senders[id(sender)] = _SenderInstrument(sender, label, self.registry)
        sender.obs = self
        sender.obs_label = label

    def attach_link(self, link, label: str) -> None:
        """Observe a link's transmit progress (periodic byte counters)."""
        self._links[id(link)] = _LinkInstrument(link, label)
        link.obs = self
        link.obs_label = label

    # ------------------------------------------------------------------
    # queue hooks (called from QueueDiscipline.enqueue/dequeue)
    # ------------------------------------------------------------------
    def queue_event(self, qdisc, kind: str, pkt, now: float, forced: bool = False) -> None:
        """Hook: a packet was enqueued, dropped, or marked at *qdisc*."""
        qi = self._queues[id(qdisc)]
        records = self.records
        if kind == "enqueue":
            qi.c_enqueues.inc()
            if records is not None and self.trace_packet_events:
                records.append({
                    "v": TRACE_SCHEMA, "type": "enqueue", "t": now,
                    "queue": qi.label, "flow": pkt.flow_id, "seq": pkt.seq,
                    "qlen": len(qdisc),
                })
        elif kind == "drop":
            qi.c_drops.inc()
            if forced:
                qi.c_forced.inc()
            if records is not None:
                records.append({
                    "v": TRACE_SCHEMA, "type": "drop", "t": now,
                    "queue": qi.label, "flow": pkt.flow_id, "seq": pkt.seq,
                    "qlen": len(qdisc), "forced": forced,
                })
        else:  # mark
            qi.c_marks.inc()
            if records is not None:
                records.append({
                    "v": TRACE_SCHEMA, "type": "mark", "t": now,
                    "queue": qi.label, "flow": pkt.flow_id, "seq": pkt.seq,
                    "qlen": len(qdisc),
                })
        if now >= qi.next_sample:
            self._queue_sample(qi, now)

    def queue_departure(self, qdisc, pkt, now: float) -> None:
        """Hook: a packet left *qdisc*; may emit a periodic queue sample."""
        qi = self._queues[id(qdisc)]
        if now >= qi.next_sample:
            self._queue_sample(qi, now)

    def _queue_sample(self, qi: _QueueInstrument, now: float) -> None:
        qi.next_sample = now + self.sample_interval
        qlen = len(qi.qdisc)
        nbytes = qi.qdisc.byte_length
        delay = nbytes * 8.0 / qi.bandwidth if qi.bandwidth else None
        qi.h_qlen.observe(qlen)
        if delay is not None:
            qi.h_delay.observe(delay)
        if self.records is not None:
            rec = {
                "v": TRACE_SCHEMA, "type": "queue_sample", "t": now,
                "queue": qi.label, "qlen": qlen, "bytes": nbytes,
                "delay": delay,
            }
            aqm = qi.qdisc.aqm_state()
            if aqm is not None:
                rec["aqm"] = aqm
            self.records.append(rec)

    # ------------------------------------------------------------------
    # sender hooks (called from TcpSender and the PERT variants)
    # ------------------------------------------------------------------
    def sender_event(self, sender, kind: str, now: float) -> None:
        """Hook: *sender* took an early response or a timeout."""
        si = self._senders[id(sender)]
        if kind == "early_response":
            si.c_early.inc()
        else:  # timeout
            si.c_timeouts.inc()
        if self.records is not None:
            self.records.append({
                "v": TRACE_SCHEMA, "type": kind, "t": now,
                "flow": sender.flow_id, "cwnd": sender.cwnd,
            })

    def sender_ack(self, sender, now: float) -> None:
        """Hook: *sender* processed an ACK; may emit a cwnd sample."""
        si = self._senders[id(sender)]
        if now < si.next_sample:
            return
        si.next_sample = now + self.sample_interval
        si.h_cwnd.observe(sender.cwnd)
        if self.records is not None:
            self.records.append({
                "v": TRACE_SCHEMA, "type": "cwnd_sample", "t": now,
                "flow": sender.flow_id, "cwnd": sender.cwnd,
                "ssthresh": sender.ssthresh, "srtt": sender.srtt,
            })

    # ------------------------------------------------------------------
    # link hook (called from Link._tx_done)
    # ------------------------------------------------------------------
    def link_tx(self, link, now: float) -> None:
        """Hook: *link* transmitted a packet; may emit a link sample."""
        li = self._links[id(link)]
        if now < li.next_sample:
            return
        li.next_sample = now + self.sample_interval
        if self.records is not None:
            self.records.append({
                "v": TRACE_SCHEMA, "type": "link_sample", "t": now,
                "link": li.label, "bytes": link.bytes_transmitted,
                "pkts": link.packets_transmitted,
            })

    # ------------------------------------------------------------------
    def finalize(self, sim) -> None:
        """Record end-of-run engine gauges (events processed, sim time)."""
        reg = self.registry
        reg.gauge("sim.events_processed").set(sim.events_processed)
        reg.gauge("sim.time").set(sim.now)
        for qi in self._queues.values():
            stats = qi.qdisc.stats
            base = f"queue.{qi.label}"
            reg.gauge(f"{base}.arrivals").set(stats.arrivals)
            reg.gauge(f"{base}.drop_rate").set(stats.drop_rate)

    def snapshot(self) -> dict:
        """Metrics snapshot (delegates to the registry)."""
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    # snapshot (checkpoint) support
    # ------------------------------------------------------------------
    def __getstate__(self):
        """The instrument maps are keyed by ``id(component)``, which is
        meaningless in a restored process — pickle the instruments as
        lists (each holds a reference to its component, and the pickle
        memo keeps those identical to the components inside the restored
        simulator graph) and re-key on the way back in."""
        state = self.__dict__.copy()
        state["_queues"] = list(self._queues.values())
        state["_senders"] = list(self._senders.values())
        state["_links"] = list(self._links.values())
        return state

    def __setstate__(self, state):
        queues = state.pop("_queues")
        senders = state.pop("_senders")
        links = state.pop("_links")
        self.__dict__.update(state)
        self._queues = {id(qi.qdisc): qi for qi in queues}
        self._senders = {id(si.sender): si for si in senders}
        self._links = {id(li.link): li for li in links}
