"""Deterministic metrics primitives: counters, gauges, histograms.

All three instruments are plain Python state with no clocks, no RNG and
no background threads, so a registry snapshot is a pure function of the
simulation that fed it — the same fixed-seed run always yields the same
snapshot, which lets golden tests pin metric output exactly.

Histograms use *fixed* bucket edges supplied at creation time (never
auto-scaled from observed data) for the same reason: adaptive edges
would make two runs with slightly different inputs produce structurally
different snapshots.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "QUEUE_DELAY_EDGES", "QUEUE_LEN_EDGES", "CWND_EDGES"]

#: default bucket edges for queue-delay histograms (seconds)
QUEUE_DELAY_EDGES: Tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
)
#: default bucket edges for queue-length histograms (packets)
QUEUE_LEN_EDGES: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
)
#: default bucket edges for congestion-window histograms (packets)
CWND_EDGES: Tuple[float, ...] = (
    2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1) to the count."""
        self.value += n

    def snapshot(self):
        """The current count (already JSON-clean)."""
        return self.value


class Gauge:
    """Last-set value (e.g. current controller probability)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record *value* as the gauge's current reading."""
        self.value = value

    def snapshot(self):
        """The last-set value (``None`` when never set)."""
        return self.value


class Histogram:
    """Fixed-edge histogram with sum/count/min/max.

    ``edges`` are the *upper* bounds of the finite buckets; one implicit
    overflow bucket catches everything above the last edge.  Edges must
    be strictly increasing and are immutable after construction.
    """

    __slots__ = ("name", "edges", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)  # + overflow
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Add one observation to its bucket and the running aggregates."""
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket edge containing the q-quantile (``None`` if empty).

        The overflow bucket reports the maximum observed value, so the
        estimate is always finite.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.edges[i] if i < len(self.edges) else self.max
        return self.max

    def snapshot(self):
        """JSON-clean dict: bucket edges/counts plus sum/count/min/max."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able as JSON.

    Instrument names are free-form dotted strings; the convention used by
    the built-in hooks is ``<component>.<label>.<signal>`` (for example
    ``queue.bottleneck.fwd.drops`` or ``flow.0.cwnd``).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create the :class:`Counter` registered under *name*."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the :class:`Gauge` registered under *name*."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get-or-create the :class:`Histogram` under *name* (fixed edges)."""
        return self._get(name, Histogram, lambda: Histogram(name, edges))

    def _get(self, name, cls, make):
        inst = self._instruments.get(name)
        if inst is None:
            inst = make()
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view of every instrument, sorted by name."""
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }
