"""Job-scoped observation context shared between the runner and jobs.

The executor wraps every job attempt in :func:`observe_job`; simulation
code (e.g. :func:`repro.experiments.common.run_dumbbell`) then reaches
the active observation through module-level accessors without any
plumbing through job parameters — crucially, job *specs* (and therefore
cache keys) never mention observability at all, so instrumented and
plain runs share cache entries.

When no observation is active every accessor returns ``None`` and
:func:`phase` degenerates to an empty context manager, keeping the
library usable (and cheap) outside the runner.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional

from .collect import Collector
from .profiler import SamplingProfiler

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None

__all__ = [
    "ObsFlags",
    "JobObservation",
    "observe_job",
    "active",
    "active_collector",
    "active_profiler",
    "adopt_collector",
    "note_simulator",
    "phase",
    "resolve_obs_flags",
]

_TRUTHY = {"1", "on", "true", "yes"}


@dataclass(frozen=True)
class ObsFlags:
    """What a job observation should capture (phases/RSS are always on)."""

    collect: bool = False  # in-sim metrics registry
    trace: bool = False  # per-event JSONL trace records (implies collect)
    profile: bool = False  # sampling profiler around the event loop
    sample_interval: float = 0.1
    profile_period: int = 16


def resolve_obs_flags(env=None) -> ObsFlags:
    """Read ``REPRO_OBS`` / ``REPRO_TRACE`` / ``REPRO_PROFILE`` (+ the
    ``REPRO_OBS_INTERVAL`` sampling knob) from the environment."""
    env = env if env is not None else os.environ

    def on(name: str) -> bool:
        return env.get(name, "").strip().lower() in _TRUTHY

    trace = on("REPRO_TRACE")
    interval = env.get("REPRO_OBS_INTERVAL", "").strip()
    return ObsFlags(
        collect=on("REPRO_OBS") or trace,
        trace=trace,
        profile=on("REPRO_PROFILE"),
        sample_interval=float(interval) if interval else 0.1,
    )


def _peak_rss_kb() -> Optional[int]:
    if resource is None:  # pragma: no cover
        return None
    # Linux reports kilobytes; macOS reports bytes.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss / 1024) if os.uname().sysname == "Darwin" else int(rss)


class JobObservation:
    """Everything observed about one job attempt.

    Phase wall times and peak RSS are recorded unconditionally (they
    cost nothing per event); the collector, trace buffer and profiler
    exist only when the corresponding flag is set.
    """

    def __init__(self, flags: ObsFlags):
        self.flags = flags
        self.collector: Optional[Collector] = (
            Collector(trace=flags.trace, sample_interval=flags.sample_interval)
            if (flags.collect or flags.trace)
            else None
        )
        self.profiler: Optional[SamplingProfiler] = (
            SamplingProfiler(period=flags.profile_period) if flags.profile else None
        )
        self.phases: Dict[str, float] = {}
        #: the job's live simulator, registered by harness code via
        #: :func:`note_simulator` so bus heartbeats can sample progress
        self.simulator = None
        self._t0 = time.monotonic()

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* of wall time under phase *name*."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def finish(self) -> dict:
        """Close out and return the JSON-clean observation summary."""
        out: dict = {
            "wall_time": time.monotonic() - self._t0,
            "phases": dict(self.phases),
            "peak_rss_kb": _peak_rss_kb(),
        }
        if self.collector is not None:
            out["metrics"] = self.collector.snapshot()
            if self.collector.records is not None:
                out["trace_records"] = self.collector.records
        if self.profiler is not None:
            out["profile"] = self.profiler.snapshot()
        return out


_ACTIVE: Optional[JobObservation] = None


@contextmanager
def observe_job(flags: Optional[ObsFlags] = None):
    """Make a fresh :class:`JobObservation` the active one for the block."""
    global _ACTIVE
    obs = JobObservation(flags if flags is not None else resolve_obs_flags())
    prev, _ACTIVE = _ACTIVE, obs
    try:
        yield obs
    finally:
        _ACTIVE = prev


def active() -> Optional[JobObservation]:
    """The observation installed by :func:`observe_job`, if any."""
    return _ACTIVE


def active_collector() -> Optional[Collector]:
    """The active observation's collector (``None`` when not collecting)."""
    return _ACTIVE.collector if _ACTIVE is not None else None


def active_profiler() -> Optional[SamplingProfiler]:
    """The active observation's profiler (``None`` when not profiling)."""
    return _ACTIVE.profiler if _ACTIVE is not None else None


def adopt_collector(collector: Optional[Collector]) -> bool:
    """Swap a restored collector into the active observation.

    When a job resumes from a checkpoint, the collector rides along
    inside the snapshot (it is attached to queues/senders/links in the
    simulator graph).  The fresh :class:`JobObservation` made for the
    retry attempt must report *that* collector's metrics, not the empty
    one it constructed — the executor calls this after a successful
    resume.  Returns ``True`` if an adoption happened.
    """
    if _ACTIVE is None or collector is None:
        return False
    _ACTIVE.collector = collector
    return True


@contextmanager
def phase(name: str):
    """Time a named phase of the active observation (no-op when idle).

    When a telemetry bus is active in this process (see
    :mod:`repro.obs.bus`), phase entry/exit also publish
    ``phase_started``/``phase_finished`` events — two appends per phase,
    nothing per event.
    """
    obs = _ACTIVE
    if obs is None:
        yield
        return
    from . import bus as _bus

    live = _bus.active_bus()
    if live is not None:
        live.emit("phase_started", phase=name)
    t0 = time.monotonic()
    try:
        yield
    finally:
        seconds = time.monotonic() - t0
        obs.add_phase(name, seconds)
        if live is not None:
            live.emit("phase_finished", phase=name, seconds=seconds)


def note_simulator(sim) -> bool:
    """Register *sim* as the active observation's live simulator.

    Harness code (e.g. the dumbbell builder) calls this right after
    constructing or restoring its :class:`~repro.sim.engine.Simulator`
    so the bus heartbeat thread can read progress counters off it.
    Costs one global load when no observation is active; returns ``True``
    if a registration happened.
    """
    if _ACTIVE is None:
        return False
    _ACTIVE.simulator = sim
    return True
