"""Cross-run analytics: compare two run directories scheme by scheme.

``python -m repro.obs diff <runA> <runB>`` answers "what changed
between these two sweeps?" from their on-disk manifests alone — no
re-simulation, works across machines.  Both directories are rolled up
with :func:`repro.obs.report.scheme_summary` and every shared scheme is
compared metric by metric (throughput, drop rate, normalized queue,
utilization, mean queue delay), with signed percent deltas and a
configurable threshold that flags — and, with ``--strict``, fails —
regressions.  Typical uses: a before/after perf check on the same
scenario matrix, or an A/B between two AQM parameterizations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .manifest import load_manifests_with_warnings
from .report import format_table, scheme_summary

__all__ = ["DEFAULT_DIFF_METRICS", "diff_runs", "flagged_deltas", "format_diff"]

#: metrics compared per scheme, in display order
DEFAULT_DIFF_METRICS: Tuple[str, ...] = (
    "events_per_sec",
    "wall_time",
    "drop_rate",
    "norm_queue",
    "utilization",
    "queue_delay",
)


def _delta_pct(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """Signed percent change from *a* to *b* (``None`` when undefined)."""
    if a is None or b is None:
        return None
    if isinstance(a, float) and math.isnan(a):
        return None
    if isinstance(b, float) and math.isnan(b):
        return None
    if a == 0:
        return 0.0 if b == 0 else None
    return 100.0 * (b - a) / abs(a)


def diff_runs(
    run_a, run_b, metrics: Sequence[str] = DEFAULT_DIFF_METRICS,
) -> dict:
    """Structured comparison of two run directories.

    Returns a JSON-clean dict::

        {
          "runs": [<a>, <b>],
          "jobs": [<n_a>, <n_b>],
          "warnings": [<skipped_a>, <skipped_b>],
          "schemes": {
            "<scheme>": {"<metric>": {"a": x, "b": y, "delta_pct": d}, ...},
          },
          "only_a": [...], "only_b": [...],
        }

    Validation manifests are excluded; schemes present in only one run
    are listed, not compared.
    """
    out: Dict = {"runs": [str(run_a), str(run_b)], "schemes": {}}
    summaries = []
    out["jobs"] = []
    out["warnings"] = []
    for run_dir in (run_a, run_b):
        manifests, warnings = load_manifests_with_warnings(run_dir)
        manifests = [m for m in manifests if m.get("kind") != "validation"]
        summaries.append(scheme_summary(manifests))
        out["jobs"].append(len(manifests))
        out["warnings"].append(len(warnings))
    a, b = summaries
    out["only_a"] = sorted(set(a) - set(b))
    out["only_b"] = sorted(set(b) - set(a))
    for scheme in sorted(set(a) & set(b)):
        cell: Dict[str, dict] = {}
        for metric in metrics:
            va, vb = a[scheme].get(metric), b[scheme].get(metric)
            cell[metric] = {"a": va, "b": vb, "delta_pct": _delta_pct(va, vb)}
        out["schemes"][scheme] = cell
    return out


def flagged_deltas(diff: dict, threshold_pct: float) -> List[Tuple[str, str, float]]:
    """``(scheme, metric, delta_pct)`` rows whose |delta| exceeds the threshold."""
    over = []
    for scheme, cell in diff["schemes"].items():
        for metric, entry in cell.items():
            d = entry.get("delta_pct")
            if d is not None and abs(d) > threshold_pct:
                over.append((scheme, metric, d))
    over.sort(key=lambda row: -abs(row[2]))
    return over


def _fmt(v: Optional[float]) -> str:
    if v is None:
        return "-"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    return f"{v:.4f}"


def format_diff(diff: dict, threshold_pct: float = 10.0) -> str:
    """Human-readable diff table; deltas over the threshold get a ``!``."""
    lines = [
        f"run A : {diff['runs'][0]} ({diff['jobs'][0]} jobs)",
        f"run B : {diff['runs'][1]} ({diff['jobs'][1]} jobs)",
    ]
    if any(diff.get("warnings", [0, 0])):
        lines.append(
            f"skipped unreadable manifests: A={diff['warnings'][0]} "
            f"B={diff['warnings'][1]}"
        )
    rows = []
    for scheme, cell in sorted(diff["schemes"].items()):
        for metric, entry in cell.items():
            d = entry["delta_pct"]
            flag = "!" if d is not None and abs(d) > threshold_pct else ""
            rows.append([
                f"{scheme}.{metric}", _fmt(entry["a"]), _fmt(entry["b"]),
                f"{d:+.2f}%{flag}" if d is not None else "-",
            ])
    lines.append(format_table(["scheme.metric", "A", "B", "delta"], rows))
    for side, schemes in (("A", diff["only_a"]), ("B", diff["only_b"])):
        if schemes:
            lines.append(f"schemes only in {side}: {', '.join(schemes)}")
    over = flagged_deltas(diff, threshold_pct)
    if over:
        lines.append(
            f"{len(over)} deltas over the +/-{threshold_pct:g}% threshold "
            f"(worst: {over[0][0]}.{over[0][1]} {over[0][2]:+.2f}%)"
        )
    else:
        lines.append(f"all deltas within +/-{threshold_pct:g}%")
    return "\n".join(lines)
