"""JSONL trace sink: one schema record per line, atomically written.

The format is deliberately boring — UTF-8 JSON Lines — so traces can be
grepped, streamed, or loaded into pandas without this package.  Writing
goes through a temp file + ``os.replace`` like the result cache, so a
killed run never leaves a torn trace next to a valid cache entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .records import validate_record

__all__ = ["write_trace", "read_trace", "iter_trace"]


def write_trace(path: Union[str, Path], records: Iterable[dict]) -> Path:
    """Write *records* to *path* as JSON Lines (atomic, validated)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for rec in records:
                validate_record(rec)
                fh.write(json.dumps(rec, sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def iter_trace(path: Union[str, Path]) -> Iterator[dict]:
    """Stream records from a JSONL trace file, validating each line."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from None
            validate_record(rec)
            yield rec


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Load a whole JSONL trace into memory."""
    return list(iter_trace(path))
