"""JSONL trace sink: one schema record per line, atomically written.

The format is deliberately boring — UTF-8 JSON Lines — so traces can be
grepped, streamed, or loaded into pandas without this package.  Writing
goes through a temp file + ``os.replace`` like the result cache, so a
killed run never leaves a torn trace next to a valid cache entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .records import validate_record

__all__ = ["TraceWriter", "write_trace", "read_trace", "iter_trace"]


class TraceWriter:
    """Streaming JSONL sink for runs too long to buffer records in memory.

    Append validated records one at a time; :meth:`close` (or the context
    manager exit) atomically publishes the file via temp + ``os.replace``
    just like :func:`write_trace`.

    A :class:`TraceWriter` holds an open file handle, so it is explicitly
    *not* checkpointable: attach it to harness state and
    ``repro.snapshot`` fails fast with an error naming the writer instead
    of a cryptic pickle traceback.  Close the writer (or keep it out of
    the snapshotted state) before checkpointing.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, self._tmp = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
        self._fh = os.fdopen(fd, "w", encoding="utf-8")
        self.records_written = 0

    def write(self, rec: dict) -> None:
        """Validate and append one record as a JSON line."""
        validate_record(rec)
        self._fh.write(json.dumps(rec, sort_keys=True))
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> Path:
        """Flush and atomically publish the trace file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            os.replace(self._tmp, self.path)
        return self.path

    def abort(self) -> None:
        """Discard the partial trace without publishing it."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            try:
                os.unlink(self._tmp)
            except OSError:
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    def __getstate__(self):
        from ..snapshot.errors import SnapshotError

        raise SnapshotError(
            f"cannot snapshot: a live TraceWriter ({self.path}) holds an "
            f"open file handle; close it or keep it out of the "
            f"checkpointed state"
        )


def write_trace(path: Union[str, Path], records: Iterable[dict]) -> Path:
    """Write *records* to *path* as JSON Lines (atomic, validated)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for rec in records:
                validate_record(rec)
                fh.write(json.dumps(rec, sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def iter_trace(path: Union[str, Path]) -> Iterator[dict]:
    """Stream records from a JSONL trace file, validating each line."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from None
            validate_record(rec)
            yield rec


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Load a whole JSONL trace into memory."""
    return list(iter_trace(path))
