"""Turn a run directory of manifests/traces into a readable report.

The report CLI (``python -m repro.obs report <run-dir>``) is pure
post-processing: it only reads the ``*.manifest.json`` and
``*.trace.jsonl`` files the runner wrote, so it works on any completed
run — including one produced on another machine — without re-simulating
anything.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional

from .manifest import load_manifests_with_warnings
from .trace import iter_trace

__all__ = [
    "generate_report",
    "format_table",
    "scheme_summary",
    "history_section",
]


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Left-aligned first column, right-aligned rest; plain text."""
    if not rows:
        return "(none)"
    table = [headers] + rows
    widths = [max(len(str(r[i])) for r in table) for i in range(len(headers))]
    lines = []
    for irow, row in enumerate(table):
        cells = [
            str(c).ljust(widths[i]) if i == 0 else str(c).rjust(widths[i])
            for i, c in enumerate(row)
        ]
        lines.append("  ".join(cells).rstrip())
        if irow == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_secs(s: Optional[float]) -> str:
    return "-" if s is None else f"{s:.3f}s"


def _fmt_rate(r: Optional[float]) -> str:
    if r is None or (isinstance(r, float) and math.isnan(r)):
        return "-"
    return f"{r:.4f}"


def _job_label(m: dict) -> str:
    bits = [str(m.get("kind", "?"))]
    if m.get("scheme"):
        bits.append(str(m["scheme"]))
    if m.get("seed") is not None:
        bits.append(f"seed={m['seed']}")
    return "/".join(bits)


def scheme_summary(manifests: List[dict]) -> Dict[str, dict]:
    """Numeric per-scheme rollup of a manifest set.

    Groups by hoisted ``scheme`` (falling back to ``kind``) and returns,
    per group: job count, summed wall seconds, summed events, events/s,
    and the mean ``drop_rate`` / ``norm_queue`` / ``utilization`` of the
    jobs that reported them (``None`` when none did).  This is the shared
    aggregation behind the report table, the live dashboard's
    ``/api/metrics``, and ``python -m repro.obs diff``.
    """
    by_scheme: Dict[str, dict] = {}
    acc: Dict[str, dict] = {}
    for m in manifests:
        key = str(m.get("scheme") or m.get("kind") or "?")
        agg = acc.setdefault(
            key, {"jobs": 0, "wall": 0.0, "events": 0, "drop": [], "queue": [], "util": []}
        )
        agg.setdefault("delay", [])
        agg["jobs"] += 1
        agg["wall"] += m.get("wall_time") or 0.0
        agg["events"] += m.get("events") or 0
        result = m.get("result") or {}
        for field, dest in (("drop_rate", "drop"), ("norm_queue", "queue"),
                            ("utilization", "util")):
            v = result.get(field)
            if isinstance(v, (int, float)) and not math.isnan(v):
                agg[dest].append(float(v))
        # mean queue delay across this job's --obs metric snapshots
        for name, snap in (m.get("metrics") or {}).items():
            if (name.startswith("queue.") and name.endswith(".delay")
                    and isinstance(snap, dict) and snap.get("count")):
                agg["delay"].append(snap["sum"] / snap["count"])

    def mean(xs):
        return sum(xs) / len(xs) if xs else None

    for scheme in sorted(acc):
        agg = acc[scheme]
        by_scheme[scheme] = {
            "jobs": agg["jobs"],
            "wall_time": agg["wall"],
            "events": agg["events"],
            "events_per_sec": agg["events"] / agg["wall"] if agg["wall"] > 0 else 0.0,
            "drop_rate": mean(agg["drop"]),
            "norm_queue": mean(agg["queue"]),
            "utilization": mean(agg["util"]),
            "queue_delay": mean(agg["delay"]),
        }
    return by_scheme


def _scheme_rollup(manifests: List[dict]) -> List[List[str]]:
    rows = []
    for scheme, agg in scheme_summary(manifests).items():
        rows.append([
            scheme, str(agg["jobs"]), _fmt_secs(agg["wall_time"]),
            f"{agg['events']:,}", f"{agg['events_per_sec']:,.0f}",
            _fmt_rate(agg["drop_rate"]), _fmt_rate(agg["norm_queue"]),
            _fmt_rate(agg["utilization"]),
        ])
    return rows


def _phase_rollup(manifests: List[dict]) -> List[List[str]]:
    totals: Dict[str, float] = {}
    for m in manifests:
        for name, secs in (m.get("phases") or {}).items():
            totals[name] = totals.get(name, 0.0) + secs
    grand = sum(totals.values())
    return [
        [name, _fmt_secs(secs), f"{100.0 * secs / grand:.1f}%" if grand else "-"]
        for name, secs in sorted(totals.items(), key=lambda kv: -kv[1])
    ]


def _profile_rollup(manifests: List[dict], top: int) -> List[List[str]]:
    totals: Dict[str, List[float]] = {}
    for m in manifests:
        for row in (m.get("profile") or {}).get("top", []):
            cell = totals.setdefault(row["callback"], [0, 0.0])
            cell[0] += row.get("samples", 0)
            cell[1] += row.get("est_time", 0.0)
    rows = sorted(totals.items(), key=lambda kv: -kv[1][1])[:top]
    return [
        [name, str(int(samples)), _fmt_secs(est)]
        for name, (samples, est) in rows
    ]


def _queue_delay_summary(manifests: List[dict]) -> List[List[str]]:
    """Per-queue delay/drop summary from metrics snapshots (``--obs``)."""
    rows = []
    for m in manifests:
        metrics = m.get("metrics") or {}
        for name, snap in sorted(metrics.items()):
            if not (name.startswith("queue.") and name.endswith(".delay")):
                continue
            if not isinstance(snap, dict) or not snap.get("count"):
                continue
            label = name[len("queue."):-len(".delay")]
            drops = metrics.get(f"queue.{label}.drops", 0)
            enq = metrics.get(f"queue.{label}.enqueues", 0)
            marks = metrics.get(f"queue.{label}.marks", 0)
            arrivals = (drops or 0) + (enq or 0)
            mean_delay = snap["sum"] / snap["count"]
            rows.append([
                f"{_job_label(m)} {label}",
                f"{mean_delay * 1e3:.2f}ms",
                f"{(snap['max'] or 0.0) * 1e3:.2f}ms",
                str(snap["count"]),
                _fmt_rate(drops / arrivals if arrivals else None),
                str(marks),
            ])
    return rows


def _trace_summary(manifests: List[dict]) -> List[str]:
    lines: List[str] = []
    for m in manifests:
        trace_file = m.get("trace_file")
        if not trace_file or "_path" not in m:
            continue
        path = Path(m["_path"]).parent / trace_file
        if not path.exists():
            continue
        counts: Dict[str, int] = {}
        delays: List[float] = []
        try:
            for rec in iter_trace(path):
                counts[rec["type"]] = counts.get(rec["type"], 0) + 1
                if rec["type"] == "queue_sample" and rec.get("delay") is not None:
                    delays.append(rec["delay"])
        except (OSError, ValueError) as exc:
            lines.append(f"  {trace_file}: unreadable ({exc})")
            continue
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        lines.append(f"  {_job_label(m)} [{trace_file}]")
        lines.append(f"    records: {summary or '(empty)'}")
        if delays:
            delays.sort()
            p95 = delays[min(len(delays) - 1, int(0.95 * len(delays)))]
            lines.append(
                f"    queue delay: mean={sum(delays)/len(delays)*1e3:.2f}ms "
                f"p95={p95*1e3:.2f}ms max={delays[-1]*1e3:.2f}ms"
            )
    return lines


def generate_report(
    run_dir, top: int = 10, include_trace: bool = True,
    history: Optional[str] = None,
) -> str:
    """Build the full text report for *run_dir*.

    *history* optionally names a ``BENCH_history.jsonl`` file whose perf
    trajectory is appended as a final section (see
    :func:`history_section`).
    """
    all_manifests, warnings = load_manifests_with_warnings(run_dir)
    validations = [m for m in all_manifests if m.get("kind") == "validation"]
    manifests = [m for m in all_manifests if m.get("kind") != "validation"]
    out: List[str] = []
    if not all_manifests:
        text = (
            f"no manifests found under {run_dir}\n"
            "(manifests are written next to cache entries by fresh runs; "
            "re-run with --no-cache disabled, e.g. "
            "`python -m repro.experiments fig6 --obs --cache-dir <run-dir>`; "
            "for paper-fidelity verdicts see `python -m repro.validate report`)"
        )
        if warnings:
            text += "\n" + _warnings_section(warnings)
        if history:
            text += "\n" + history_section(history)
        return text
    if not manifests:
        out.append(f"run directory : {run_dir}")
        out.append("jobs          : 0 (validation manifests only)")
        out.append(_validation_section(validations))
        if warnings:
            out.append(_warnings_section(warnings))
        if history:
            out.append(history_section(history))
        return "\n".join(out)

    total_wall = sum(m.get("wall_time") or 0.0 for m in manifests)
    total_events = sum(m.get("events") or 0 for m in manifests)
    out.append(f"run directory : {run_dir}")
    out.append(f"jobs          : {len(manifests)}")
    out.append(f"job wall time : {_fmt_secs(total_wall)}")
    out.append(f"sim events    : {total_events:,}")
    if total_wall > 0:
        out.append(f"events/s      : {total_events / total_wall:,.0f}")

    out.append("\n== events/s by scheme ==")
    out.append(format_table(
        ["scheme", "jobs", "wall", "events", "events/s",
         "drop_rate", "norm_queue", "util"],
        _scheme_rollup(manifests),
    ))

    phases = _phase_rollup(manifests)
    if phases:
        out.append("\n== wall time by phase ==")
        out.append(format_table(["phase", "wall", "share"], phases))

    slowest = sorted(manifests, key=lambda m: -(m.get("wall_time") or 0.0))[:top]
    rows = []
    for m in slowest:
        wall = m.get("wall_time") or 0.0
        events = m.get("events") or 0
        rss = m.get("peak_rss_kb")
        rows.append([
            _job_label(m), _fmt_secs(wall), f"{events:,}",
            f"{events / wall:,.0f}" if wall > 0 else "-",
            f"{rss / 1024:.0f}MB" if rss else "-",
            str(m.get("attempts", 1)),
        ])
    out.append(f"\n== slowest jobs (top {len(rows)}) ==")
    out.append(format_table(
        ["job", "wall", "events", "events/s", "peak_rss", "attempts"], rows,
    ))

    hot = _profile_rollup(manifests, top)
    if hot:
        out.append(f"\n== hottest callbacks (top {len(hot)}, sampled) ==")
        out.append(format_table(["callback", "samples", "est_time"], hot))

    qrows = _queue_delay_summary(manifests)
    if qrows:
        out.append("\n== queue delay / drop summary (from --obs metrics) ==")
        out.append(format_table(
            ["queue", "mean_delay", "max_delay", "samples", "drop_rate", "marks"],
            qrows,
        ))

    if include_trace:
        tlines = _trace_summary(manifests)
        if tlines:
            out.append("\n== traces ==")
            out.extend(tlines)

    if validations:
        out.append(_validation_section(validations))

    if warnings:
        out.append(_warnings_section(warnings))

    if history:
        out.append(history_section(history))

    return "\n".join(out)


def _warnings_section(warnings: List[dict]) -> str:
    """List manifests skipped as unreadable (crashed/killed runs)."""
    lines = [f"\n== skipped manifests ({len(warnings)} unreadable) =="]
    for w in warnings:
        lines.append(f"  {w['path']}: {w['error']}")
    lines.append("(torn writes from a crashed run; delete them or re-run "
                 "the affected jobs)")
    return "\n".join(lines)


def history_section(path, last: int = 10) -> str:
    """Render the bench-history trajectory (``BENCH_history.jsonl``).

    Each line of the file is one ``python -m benchmarks.perf`` run
    (schema-tagged, engine + git-sha stamped — see
    :func:`benchmarks.perf.append_history`); the section tabulates the
    most recent *last* entries per benchmark with the rate delta from
    the previous entry, so perf drift is visible run over run.
    """
    path = Path(path)
    if not path.exists():
        return (f"\n== bench history ==\nno history at {path} "
                "(populated by `python -m benchmarks.perf`)")
    entries: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict) and isinstance(rec.get("rates"), dict):
                entries.append(rec)
    if not entries:
        return f"\n== bench history ==\nno parseable entries in {path}"
    rows = []
    window = entries[-last:]
    prev_by_name: Dict[str, float] = {}
    for e in entries[: len(entries) - len(window)]:
        for name, rate in e["rates"].items():
            prev_by_name[name] = rate
    for e in window:
        for name in sorted(e["rates"]):
            rate = e["rates"][name]
            prev = prev_by_name.get(name)
            delta = (
                f"{100.0 * (rate - prev) / prev:+.1f}%"
                if prev else "-"
            )
            rows.append([
                name, str(e.get("git_sha") or "?"),
                str(e.get("engine") or "?"),
                "quick" if e.get("quick") else "full",
                f"{rate:,.0f}", delta,
            ])
            prev_by_name[name] = rate
    return (
        f"\n== bench history (last {len(window)} runs of {len(entries)}) ==\n"
        + format_table(
            ["benchmark", "git_sha", "engine", "tier", "rate", "delta"], rows,
        )
    )


def _validation_section(validations: List[dict]) -> str:
    """Summarize paper-fidelity verdict manifests left by repro.validate."""
    rows = []
    for m in validations:
        v = m.get("validation") or {}
        devs = [d for d in (v.get("deviations_pct") or {}).values()
                if isinstance(d, (int, float))]
        worst = max(devs, key=abs) if devs else None
        rows.append([
            f"{v.get('figure', '?')} ({v.get('tier', '?')})",
            str(v.get("status", "?")),
            str(len(v.get("deviations_pct") or {})),
            f"{worst:+.2f}%" if worst is not None else "-",
            _fmt_secs(m.get("wall_time")),
        ])
    return (
        "\n== paper-fidelity validation (repro.validate) ==\n"
        + format_table(["figure", "status", "metrics", "worst_dev", "wall"], rows)
        + "\n(details: `python -m repro.validate report`)"
    )
