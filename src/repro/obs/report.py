"""Turn a run directory of manifests/traces into a readable report.

The report CLI (``python -m repro.obs report <run-dir>``) is pure
post-processing: it only reads the ``*.manifest.json`` and
``*.trace.jsonl`` files the runner wrote, so it works on any completed
run — including one produced on another machine — without re-simulating
anything.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Optional

from .manifest import load_manifests
from .trace import iter_trace

__all__ = ["generate_report", "format_table"]


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Left-aligned first column, right-aligned rest; plain text."""
    if not rows:
        return "(none)"
    table = [headers] + rows
    widths = [max(len(str(r[i])) for r in table) for i in range(len(headers))]
    lines = []
    for irow, row in enumerate(table):
        cells = [
            str(c).ljust(widths[i]) if i == 0 else str(c).rjust(widths[i])
            for i, c in enumerate(row)
        ]
        lines.append("  ".join(cells).rstrip())
        if irow == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_secs(s: Optional[float]) -> str:
    return "-" if s is None else f"{s:.3f}s"


def _fmt_rate(r: Optional[float]) -> str:
    if r is None or (isinstance(r, float) and math.isnan(r)):
        return "-"
    return f"{r:.4f}"


def _job_label(m: dict) -> str:
    bits = [str(m.get("kind", "?"))]
    if m.get("scheme"):
        bits.append(str(m["scheme"]))
    if m.get("seed") is not None:
        bits.append(f"seed={m['seed']}")
    return "/".join(bits)


def _scheme_rollup(manifests: List[dict]) -> List[List[str]]:
    by_scheme: Dict[str, dict] = {}
    for m in manifests:
        key = str(m.get("scheme") or m.get("kind") or "?")
        agg = by_scheme.setdefault(
            key, {"jobs": 0, "wall": 0.0, "events": 0, "drop": [], "queue": [], "util": []}
        )
        agg["jobs"] += 1
        agg["wall"] += m.get("wall_time") or 0.0
        agg["events"] += m.get("events") or 0
        result = m.get("result") or {}
        for field, dest in (("drop_rate", "drop"), ("norm_queue", "queue"),
                            ("utilization", "util")):
            v = result.get(field)
            if isinstance(v, (int, float)) and not math.isnan(v):
                agg[dest].append(float(v))
    rows = []
    for scheme in sorted(by_scheme):
        agg = by_scheme[scheme]
        evps = agg["events"] / agg["wall"] if agg["wall"] > 0 else 0.0

        def mean(xs):
            return sum(xs) / len(xs) if xs else None

        rows.append([
            scheme, str(agg["jobs"]), _fmt_secs(agg["wall"]),
            f"{agg['events']:,}", f"{evps:,.0f}",
            _fmt_rate(mean(agg["drop"])), _fmt_rate(mean(agg["queue"])),
            _fmt_rate(mean(agg["util"])),
        ])
    return rows


def _phase_rollup(manifests: List[dict]) -> List[List[str]]:
    totals: Dict[str, float] = {}
    for m in manifests:
        for name, secs in (m.get("phases") or {}).items():
            totals[name] = totals.get(name, 0.0) + secs
    grand = sum(totals.values())
    return [
        [name, _fmt_secs(secs), f"{100.0 * secs / grand:.1f}%" if grand else "-"]
        for name, secs in sorted(totals.items(), key=lambda kv: -kv[1])
    ]


def _profile_rollup(manifests: List[dict], top: int) -> List[List[str]]:
    totals: Dict[str, List[float]] = {}
    for m in manifests:
        for row in (m.get("profile") or {}).get("top", []):
            cell = totals.setdefault(row["callback"], [0, 0.0])
            cell[0] += row.get("samples", 0)
            cell[1] += row.get("est_time", 0.0)
    rows = sorted(totals.items(), key=lambda kv: -kv[1][1])[:top]
    return [
        [name, str(int(samples)), _fmt_secs(est)]
        for name, (samples, est) in rows
    ]


def _queue_delay_summary(manifests: List[dict]) -> List[List[str]]:
    """Per-queue delay/drop summary from metrics snapshots (``--obs``)."""
    rows = []
    for m in manifests:
        metrics = m.get("metrics") or {}
        for name, snap in sorted(metrics.items()):
            if not (name.startswith("queue.") and name.endswith(".delay")):
                continue
            if not isinstance(snap, dict) or not snap.get("count"):
                continue
            label = name[len("queue."):-len(".delay")]
            drops = metrics.get(f"queue.{label}.drops", 0)
            enq = metrics.get(f"queue.{label}.enqueues", 0)
            marks = metrics.get(f"queue.{label}.marks", 0)
            arrivals = (drops or 0) + (enq or 0)
            mean_delay = snap["sum"] / snap["count"]
            rows.append([
                f"{_job_label(m)} {label}",
                f"{mean_delay * 1e3:.2f}ms",
                f"{(snap['max'] or 0.0) * 1e3:.2f}ms",
                str(snap["count"]),
                _fmt_rate(drops / arrivals if arrivals else None),
                str(marks),
            ])
    return rows


def _trace_summary(manifests: List[dict]) -> List[str]:
    lines: List[str] = []
    for m in manifests:
        trace_file = m.get("trace_file")
        if not trace_file or "_path" not in m:
            continue
        path = Path(m["_path"]).parent / trace_file
        if not path.exists():
            continue
        counts: Dict[str, int] = {}
        delays: List[float] = []
        try:
            for rec in iter_trace(path):
                counts[rec["type"]] = counts.get(rec["type"], 0) + 1
                if rec["type"] == "queue_sample" and rec.get("delay") is not None:
                    delays.append(rec["delay"])
        except (OSError, ValueError) as exc:
            lines.append(f"  {trace_file}: unreadable ({exc})")
            continue
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        lines.append(f"  {_job_label(m)} [{trace_file}]")
        lines.append(f"    records: {summary or '(empty)'}")
        if delays:
            delays.sort()
            p95 = delays[min(len(delays) - 1, int(0.95 * len(delays)))]
            lines.append(
                f"    queue delay: mean={sum(delays)/len(delays)*1e3:.2f}ms "
                f"p95={p95*1e3:.2f}ms max={delays[-1]*1e3:.2f}ms"
            )
    return lines


def generate_report(
    run_dir, top: int = 10, include_trace: bool = True
) -> str:
    """Build the full text report for *run_dir*."""
    all_manifests = load_manifests(run_dir)
    validations = [m for m in all_manifests if m.get("kind") == "validation"]
    manifests = [m for m in all_manifests if m.get("kind") != "validation"]
    out: List[str] = []
    if not all_manifests:
        return (
            f"no manifests found under {run_dir}\n"
            "(manifests are written next to cache entries by fresh runs; "
            "re-run with --no-cache disabled, e.g. "
            "`python -m repro.experiments fig6 --obs --cache-dir <run-dir>`; "
            "for paper-fidelity verdicts see `python -m repro.validate report`)"
        )
    if not manifests:
        out.append(f"run directory : {run_dir}")
        out.append("jobs          : 0 (validation manifests only)")
        out.append(_validation_section(validations))
        return "\n".join(out)

    total_wall = sum(m.get("wall_time") or 0.0 for m in manifests)
    total_events = sum(m.get("events") or 0 for m in manifests)
    out.append(f"run directory : {run_dir}")
    out.append(f"jobs          : {len(manifests)}")
    out.append(f"job wall time : {_fmt_secs(total_wall)}")
    out.append(f"sim events    : {total_events:,}")
    if total_wall > 0:
        out.append(f"events/s      : {total_events / total_wall:,.0f}")

    out.append("\n== events/s by scheme ==")
    out.append(format_table(
        ["scheme", "jobs", "wall", "events", "events/s",
         "drop_rate", "norm_queue", "util"],
        _scheme_rollup(manifests),
    ))

    phases = _phase_rollup(manifests)
    if phases:
        out.append("\n== wall time by phase ==")
        out.append(format_table(["phase", "wall", "share"], phases))

    slowest = sorted(manifests, key=lambda m: -(m.get("wall_time") or 0.0))[:top]
    rows = []
    for m in slowest:
        wall = m.get("wall_time") or 0.0
        events = m.get("events") or 0
        rss = m.get("peak_rss_kb")
        rows.append([
            _job_label(m), _fmt_secs(wall), f"{events:,}",
            f"{events / wall:,.0f}" if wall > 0 else "-",
            f"{rss / 1024:.0f}MB" if rss else "-",
            str(m.get("attempts", 1)),
        ])
    out.append(f"\n== slowest jobs (top {len(rows)}) ==")
    out.append(format_table(
        ["job", "wall", "events", "events/s", "peak_rss", "attempts"], rows,
    ))

    hot = _profile_rollup(manifests, top)
    if hot:
        out.append(f"\n== hottest callbacks (top {len(hot)}, sampled) ==")
        out.append(format_table(["callback", "samples", "est_time"], hot))

    qrows = _queue_delay_summary(manifests)
    if qrows:
        out.append("\n== queue delay / drop summary (from --obs metrics) ==")
        out.append(format_table(
            ["queue", "mean_delay", "max_delay", "samples", "drop_rate", "marks"],
            qrows,
        ))

    if include_trace:
        tlines = _trace_summary(manifests)
        if tlines:
            out.append("\n== traces ==")
            out.extend(tlines)

    if validations:
        out.append(_validation_section(validations))

    return "\n".join(out)


def _validation_section(validations: List[dict]) -> str:
    """Summarize paper-fidelity verdict manifests left by repro.validate."""
    rows = []
    for m in validations:
        v = m.get("validation") or {}
        devs = [d for d in (v.get("deviations_pct") or {}).values()
                if isinstance(d, (int, float))]
        worst = max(devs, key=abs) if devs else None
        rows.append([
            f"{v.get('figure', '?')} ({v.get('tier', '?')})",
            str(v.get("status", "?")),
            str(len(v.get("deviations_pct") or {})),
            f"{worst:+.2f}%" if worst is not None else "-",
            _fmt_secs(m.get("wall_time")),
        ])
    return (
        "\n== paper-fidelity validation (repro.validate) ==\n"
        + format_table(["figure", "status", "metrics", "worst_dev", "wall"], rows)
        + "\n(details: `python -m repro.validate report`)"
    )
