"""Per-job run manifests: what ran, how long, and what it measured.

One manifest is written next to each cache entry
(``<key>.manifest.json`` beside ``<key>.json``) by the runner's
executor after a fresh (non-cached) job completes.  Manifests are the
durable forensic record the report CLI reads: even after the payload is
consumed and the progress line has scrolled away, the manifest still
says which spec hash/seed produced the row, how wall time split across
phases, how many events the simulator processed, the process's peak
RSS, and — when ``--obs`` was on — the final metrics snapshot.

Schema v1 fields:

==================  ===================================================
``schema``          manifest schema version (this module's constant)
``key``             the job's :attr:`JobSpec.cache_key` (spec hash)
``kind``            registered job kind (e.g. ``dumbbell``)
``params``          full JSON params, including ``seed`` and ``scheme``
``seed``/``scheme`` hoisted copies for cheap filtering
``repro_version``   package version that produced the result
``wall_time``       job wall-clock seconds (successful attempt only)
``events``          simulator events processed
``attempts``        attempts consumed (1 = first try)
``phases``          phase name -> wall seconds (setup/warmup/measure)
``peak_rss_kb``     peak resident set size of the job process
``result``          scalar fields of the job payload (drop_rate, ...)
``metrics``         metrics-registry snapshot (with ``--obs``)
``profile``         sampling-profiler summary (with ``REPRO_PROFILE``)
``trace_file``      basename of the sibling JSONL trace (with --trace)
``checkpoint``      checkpoint lineage (interval, saves, resume facts)
==================  ===================================================
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "build_validation_manifest",
    "write_manifest",
    "load_manifests",
    "load_manifests_with_warnings",
]

#: bump when manifest fields change incompatibly
MANIFEST_SCHEMA = 1

#: manifest filename suffix (sibling of the cache entry)
MANIFEST_SUFFIX = ".manifest.json"
#: trace filename suffix (sibling of the cache entry)
TRACE_SUFFIX = ".trace.jsonl"


def _scalar_fields(payload: Any) -> Optional[Dict[str, Any]]:
    """Copy the scalar (summarizable) fields out of a dict payload."""
    if not isinstance(payload, dict):
        return None
    return {
        k: v
        for k, v in payload.items()
        if isinstance(v, (int, float, str, bool)) or v is None
    }


def build_manifest(
    *,
    key: str,
    kind: str,
    params: Dict[str, Any],
    wall_time: float,
    events: int,
    attempts: int,
    payload: Any = None,
    obs_meta: Optional[dict] = None,
    trace_file: Optional[str] = None,
) -> dict:
    """Assemble a schema-v1 manifest dict (JSON-clean)."""
    # Imported lazily: repro/__init__ -> sim -> monitors -> obs would
    # otherwise form a cycle through this module at import time.
    from .. import __version__

    manifest: dict = {
        "schema": MANIFEST_SCHEMA,
        "key": key,
        "kind": kind,
        "params": dict(params),
        "seed": params.get("seed"),
        "scheme": params.get("scheme"),
        "repro_version": __version__,
        "wall_time": wall_time,
        "events": events,
        "attempts": attempts,
    }
    result = _scalar_fields(payload)
    if result is not None:
        manifest["result"] = result
    if obs_meta:
        for field in ("phases", "peak_rss_kb", "metrics", "profile", "checkpoint"):
            if obs_meta.get(field) is not None:
                manifest[field] = obs_meta[field]
    if trace_file is not None:
        manifest["trace_file"] = trace_file
    return manifest


def build_validation_manifest(
    *,
    figure: str,
    tier: str,
    status: str,
    deviations: Dict[str, Optional[float]],
    wall_time: float,
    error: Optional[str] = None,
) -> dict:
    """Assemble a manifest for one paper-fidelity figure check.

    Validation manifests share the schema-v1 envelope so
    :func:`load_manifests` and the report CLI pick them up alongside
    job manifests; ``kind`` is ``"validation"`` and the figure-specific
    facts — per-metric signed percent deviations from their targets and
    the pass/gap/fail status — live under the ``validation`` key.
    Written by ``python -m repro.validate run`` into the run directory's
    ``validation/`` folder.
    """
    from .. import __version__

    return {
        "schema": MANIFEST_SCHEMA,
        "kind": "validation",
        "repro_version": __version__,
        "wall_time": wall_time,
        "validation": {
            "figure": figure,
            "tier": tier,
            "status": status,
            "error": error,
            "deviations_pct": dict(deviations),
        },
    }


def write_manifest(path: Union[str, Path], manifest: dict) -> Path:
    """Atomically write *manifest* as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_manifests(run_dir: Union[str, Path]) -> List[dict]:
    """Load every ``*.manifest.json`` under *run_dir* (recursively).

    Unparseable files are skipped (a torn write from a killed run must
    not break reporting on the rest); callers who want to surface the
    skips use :func:`load_manifests_with_warnings`.  Each loaded
    manifest gains a ``_path`` key pointing back at its file so callers
    can find the sibling trace.
    """
    manifests, _warnings = load_manifests_with_warnings(run_dir)
    return manifests


def load_manifests_with_warnings(
    run_dir: Union[str, Path],
) -> Tuple[List[dict], List[dict]]:
    """Like :func:`load_manifests`, plus one warning record per skipped file.

    Crashed or killed runs leave corrupt, truncated, or shape-invalid
    manifests behind; reports and the live dashboard must keep working
    on the healthy remainder, so each bad file is skipped and described
    by a warning record ``{"path": <file>, "error": <why>}`` instead of
    raising.
    """
    run_dir = Path(run_dir)
    manifests: List[dict] = []
    warnings: List[dict] = []
    for path in sorted(run_dir.rglob(f"*{MANIFEST_SUFFIX}")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            warnings.append({
                "path": str(path),
                "error": f"{type(exc).__name__}: {exc}",
            })
            continue
        if not isinstance(manifest, dict):
            warnings.append({
                "path": str(path),
                "error": f"manifest is {type(manifest).__name__}, not an object",
            })
            continue
        manifest["_path"] = str(path)
        manifests.append(manifest)
    return manifests, warnings
