"""Trace record schema: versioned, validated, JSON-clean event dicts.

Every trace record is a flat dict with three mandatory fields —
``v`` (schema version), ``type`` (one of :data:`RECORD_TYPES`) and
``t`` (simulation time, seconds) — plus per-type payload fields.  The
schema is the contract between everything that *emits* records (the
collector hooks, :class:`repro.sim.monitors.DropLog`,
:class:`repro.sim.trace.FlowTracer`) and everything that *consumes*
them (the JSONL sink, ``python -m repro.obs report``), so bump
:data:`TRACE_SCHEMA` whenever a type gains, loses or re-types a field.

Schema v1 record types and their payload fields:

=================  ====================================================
``enqueue``        ``queue, flow, seq, qlen``
``drop``           ``queue, flow, seq, qlen, forced``
``mark``           ``queue, flow, seq, qlen``
``early_response`` ``flow, cwnd`` (end-host AQM emulation response)
``timeout``        ``flow, cwnd`` (RTO fired)
``queue_sample``   ``queue, qlen, bytes, delay`` (+ optional ``aqm``
                   sub-dict with controller state: RED avg/max_p,
                   PI p, REM price)
``cwnd_sample``    ``flow, cwnd, ssthresh, srtt``
``link_sample``    ``link, bytes, pkts``
=================  ====================================================
"""

from __future__ import annotations

from typing import Dict

__all__ = ["TRACE_SCHEMA", "RECORD_TYPES", "record", "validate_record"]

#: bump when record types / fields change incompatibly
TRACE_SCHEMA = 1

#: record type -> required payload fields (beyond v/type/t)
RECORD_TYPES: Dict[str, tuple] = {
    "enqueue": ("queue", "flow", "seq", "qlen"),
    "drop": ("queue", "flow", "seq", "qlen", "forced"),
    "mark": ("queue", "flow", "seq", "qlen"),
    "early_response": ("flow", "cwnd"),
    "timeout": ("flow", "cwnd"),
    "queue_sample": ("queue", "qlen", "bytes", "delay"),
    "cwnd_sample": ("flow", "cwnd", "ssthresh", "srtt"),
    "link_sample": ("link", "bytes", "pkts"),
}


def record(rtype: str, t: float, **fields) -> dict:
    """Build one schema-v1 trace record (validated)."""
    rec = {"v": TRACE_SCHEMA, "type": rtype, "t": t}
    rec.update(fields)
    validate_record(rec)
    return rec


def validate_record(rec: dict) -> None:
    """Raise ``ValueError`` if *rec* is not a well-formed schema record."""
    if not isinstance(rec, dict):
        raise ValueError(f"record must be a dict, got {type(rec).__name__}")
    if rec.get("v") != TRACE_SCHEMA:
        raise ValueError(f"unsupported trace schema version {rec.get('v')!r}")
    rtype = rec.get("type")
    required = RECORD_TYPES.get(rtype)
    if required is None:
        raise ValueError(f"unknown record type {rtype!r}")
    if not isinstance(rec.get("t"), (int, float)):
        raise ValueError(f"record {rtype!r} missing numeric time 't'")
    missing = [f for f in required if f not in rec]
    if missing:
        raise ValueError(f"record {rtype!r} missing fields {missing}")
