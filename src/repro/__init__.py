"""Reproduction of "Emulating AQM from End Hosts" (PERT, SIGCOMM 2007).

Top-level re-exports cover the most common entry points: the PERT senders
and configuration, the baseline TCP variants, the simulator and topology
builders, and the fairness metric.  See ``DESIGN.md`` for the full system
inventory and ``EXPERIMENTS.md`` for the paper-vs-measured results.
"""

from .core import (
    EwmaRtt,
    GentleRedCurve,
    PertConfig,
    PertPiConfig,
    PertPiSender,
    PertSender,
    PiResponse,
)
from .metrics import jain_index
from .sim import (
    DropTailQueue,
    Dumbbell,
    Network,
    ParkingLot,
    PiQueue,
    RedQueue,
    Simulator,
)
from .tcp import (
    NewRenoSender,
    SackEcnSender,
    SackSender,
    TcpSink,
    VegasSender,
    connect_flow,
)

__version__ = "1.0.0"

__all__ = [
    "PertSender",
    "PertPiSender",
    "PertConfig",
    "PertPiConfig",
    "GentleRedCurve",
    "PiResponse",
    "EwmaRtt",
    "Simulator",
    "Dumbbell",
    "ParkingLot",
    "Network",
    "DropTailQueue",
    "RedQueue",
    "PiQueue",
    "SackSender",
    "SackEcnSender",
    "NewRenoSender",
    "VegasSender",
    "TcpSink",
    "connect_flow",
    "jain_index",
    "__version__",
]
