/* _core.c — C implementations of the ArraySimulator hot methods.
 *
 * This module is the "cext" tier of repro.compiled: a hand-written
 * CPython extension that replaces the six hottest methods of
 * repro.sim.engine.ArraySimulator (run, schedule, schedule_at,
 * schedule_fire, schedule_fire1, advance_if_clear) with C code that is
 * a line-by-line transliteration of the pure-Python bodies.
 *
 * Bit-identity is the design constraint, not a goal to approximate:
 *
 *   - All time comparisons go through PyObject_RichCompareBool, so
 *     int/float mixed comparisons behave exactly as in Python.
 *   - Event times are computed with PyNumber_Add(self.now, delay) —
 *     the same object-level float addition the interpreter performs.
 *   - The heap is the same plain Python list of tuples, manipulated by
 *     an exact clone of CPython's heapq sift algorithms (including the
 *     mutation-during-comparison guards), so heap layout and pop order
 *     are identical to heapq's.
 *   - Error messages reuse the pure engine's f-string wording via
 *     PyUnicode_FromFormat with %R.
 *   - self.now / self._live are written before each dispatch (callbacks
 *     read them), events_processed is batched into the finally block,
 *     and the inline-dispatch window (_horizon/_ninline) follows the
 *     exact open/close rules of ArraySimulator.run.
 *
 * Performance notes
 * -----------------
 * The engine state stays in the ordinary Python __slots__ of the
 * instance (that is what keeps the compiled and pure builds freely
 * interchangeable, snapshot-compatible, and diffable), so the naive
 * approach is PyObject_GetAttr/SetAttr per field.  Measured on CPython
 * 3.11 that is a *pessimisation*: the specializing interpreter compiles
 * `self._seq` down to a direct slot load (LOAD_ATTR_SLOT), while
 * C-side GetAttr takes the generic lookup path every time — the first
 * cut of this file benchmarked ~2x *slower* than pure Python.  So
 * setup() extracts the member-descriptor offsets of every hot slot
 * once, and the hot paths below read and write the slots directly
 * ((PyObject **)((char *)self + offset)), which is exactly the memory
 * access the specialized bytecode performs.  Counter updates
 * (_seq/_live/_ninline/events_processed) use PyLong_AsSsize_t +
 * PyLong_FromSsize_t fast math with a PyNumber_Add fallback for
 * arbitrary-width values, which preserves exact int semantics.
 *
 * The functions here take `self` explicitly as their first argument and
 * are exported wrapped in PyInstanceMethod_New, so assigning them in a
 * Python class body makes them bind like normal methods.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#if PY_VERSION_HEX < 0x030c0000
#include <structmember.h>
#endif

/* ------------------------------------------------------------------ */
/* module state (registered once via setup() from repro.compiled.engine) */

static PyObject *g_sim_cls = NULL;       /* CompiledSimulator */
static PyObject *g_event_cls = NULL;     /* repro.sim.engine.Event */
static PyObject *g_sim_error = NULL;     /* repro.sim.engine.SimulationError */
static PyObject *g_fallback_run = NULL;  /* ArraySimulator.run (pure) */

static PyObject *g_inf = NULL;           /* float('inf') */
static PyObject *g_neg_inf = NULL;       /* float('-inf') */
static PyObject *g_zero_f = NULL;        /* 0.0 */
static PyObject *g_zero_i = NULL;        /* 0 */

/* simulator slot offsets, filled in by setup() */
static Py_ssize_t o_now = -1;
static Py_ssize_t o_seq = -1;
static Py_ssize_t o_live = -1;
static Py_ssize_t o_running = -1;
static Py_ssize_t o_profiler = -1;
static Py_ssize_t o_events_processed = -1;
static Py_ssize_t o_heap = -1;
static Py_ssize_t o_horizon = -1;
static Py_ssize_t o_ninline = -1;

/* Event slot offsets */
static Py_ssize_t o_ev_cancelled = -1;
static Py_ssize_t o_ev_fired = -1;

static PyObject *s_dispatch = NULL;      /* "dispatch" (profiler attr) */

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* borrowed-reference slot read; raises AttributeError on an unset slot */
static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t off, const char *name)
{
    PyObject *v = SLOT(obj, off);
    if (v == NULL)
        PyErr_SetString(PyExc_AttributeError, name);
    return v;
}

/* slot write: steal nothing, drop the old value */
static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(obj, off);
    Py_INCREF(v);
    SLOT(obj, off) = v;
    Py_XDECREF(old);
}

/* self.<slot> += delta with exact Python-int semantics: fast ssize_t
 * math for machine-width values, PyNumber_Add for anything wider */
static int
slot_add(PyObject *obj, Py_ssize_t off, Py_ssize_t delta, const char *name)
{
    PyObject *cur = slot_get(obj, off, name);
    PyObject *nw;

    if (cur == NULL)
        return -1;
    if (PyLong_CheckExact(cur)) {
        Py_ssize_t v = PyLong_AsSsize_t(cur);
        if (v != -1 || !PyErr_Occurred()) {
            nw = PyLong_FromSsize_t(v + delta);
            if (nw == NULL)
                return -1;
            SLOT(obj, off) = nw;
            Py_DECREF(cur);
            return 0;
        }
        PyErr_Clear();  /* wider than Py_ssize_t: take the object path */
    }
    {
        PyObject *d = PyLong_FromSsize_t(delta);
        if (d == NULL)
            return -1;
        nw = PyNumber_Add(cur, d);
        Py_DECREF(d);
        if (nw == NULL)
            return -1;
        SLOT(obj, off) = nw;
        Py_DECREF(cur);
        return 0;
    }
}

/* the `self` every exported method requires: an instance of the class
 * whose slot offsets setup() extracted */
static int
check_self(PyObject *self)
{
    if (g_sim_cls == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro.compiled._core used before setup() — import "
                        "it through repro.compiled.engine");
        return -1;
    }
    if (!PyObject_TypeCheck(self, (PyTypeObject *)g_sim_cls)) {
        PyErr_Format(PyExc_TypeError,
                     "compiled engine method bound to %.100s instance "
                     "(expected a CompiledSimulator)",
                     Py_TYPE(self)->tp_name);
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* heapq clone — same algorithm as Modules/_heapqmodule.c, including
 * the list-mutated-during-comparison guards, so heap layout matches
 * the pure engine's heapq usage exactly. */

/* a < b for heap entries.  Entries are `(time, seq, ...)` tuples whose
 * first element is (almost always) an exact float and whose second is a
 * unique exact int, so `tuple.__lt__` decides at element 0 or 1 — never
 * deeper.  The fast path replays exactly that: C double compare (same
 * semantics as float_richcompare, including -0.0 == 0.0) and, on a
 * time tie, the seq ints.  Anything else — non-float times, equal seqs
 * (impossible by construction, but be exact) — falls through to the
 * generic rich compare, which raises the same errors pure Python would. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b) &&
        PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
            double va = PyFloat_AS_DOUBLE(ta);
            double vb = PyFloat_AS_DOUBLE(tb);
            if (va != vb)
                return va < vb;
            PyObject *sa = PyTuple_GET_ITEM(a, 1);
            PyObject *sb = PyTuple_GET_ITEM(b, 1);
            if (PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
                Py_ssize_t ia = PyLong_AsSsize_t(sa);
                if (ia == -1 && PyErr_Occurred())
                    PyErr_Clear();
                else {
                    Py_ssize_t ib = PyLong_AsSsize_t(sb);
                    if (ib == -1 && PyErr_Occurred())
                        PyErr_Clear();
                    else if (ia != ib)
                        return ia < ib;
                }
            }
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem, *parent;
    Py_ssize_t parentpos, size;
    int cmp;

    size = PyList_GET_SIZE(heap);
    if (pos >= size) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return -1;
    }
    while (pos > startpos) {
        parentpos = (pos - 1) >> 1;
        newitem = PyList_GET_ITEM(heap, pos);
        parent = PyList_GET_ITEM(heap, parentpos);
        Py_INCREF(newitem);
        Py_INCREF(parent);
        cmp = entry_lt(newitem, parent);
        Py_DECREF(parent);
        Py_DECREF(newitem);
        if (cmp < 0)
            return -1;
        if (size != PyList_GET_SIZE(heap)) {
            PyErr_SetString(PyExc_RuntimeError,
                            "list changed size during iteration");
            return -1;
        }
        if (cmp == 0)
            break;
        parent = PyList_GET_ITEM(heap, parentpos);
        newitem = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, parentpos, newitem);
        PyList_SET_ITEM(heap, pos, parent);
        pos = parentpos;
    }
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t startpos, endpos, childpos, limit;
    PyObject *tmp1, *tmp2;
    int cmp;

    endpos = PyList_GET_SIZE(heap);
    startpos = pos;
    if (pos >= endpos) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return -1;
    }
    limit = endpos >> 1;  /* smallest pos that has no child */
    while (pos < limit) {
        childpos = 2 * pos + 1;  /* leftmost child position */
        if (childpos + 1 < endpos) {
            PyObject *a = PyList_GET_ITEM(heap, childpos);
            PyObject *b = PyList_GET_ITEM(heap, childpos + 1);
            Py_INCREF(a);
            Py_INCREF(b);
            cmp = entry_lt(a, b);
            Py_DECREF(a);
            Py_DECREF(b);
            if (cmp < 0)
                return -1;
            if (endpos != PyList_GET_SIZE(heap)) {
                PyErr_SetString(PyExc_RuntimeError,
                                "list changed size during iteration");
                return -1;
            }
            childpos += ((unsigned)cmp ^ 1);  /* increment when cmp==0 */
        }
        /* Move the smaller child up. */
        tmp1 = PyList_GET_ITEM(heap, childpos);
        tmp2 = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, childpos, tmp2);
        PyList_SET_ITEM(heap, pos, tmp1);
        pos = childpos;
    }
    /* Bubble it up to its final resting place (by sifting its parents
     * down). */
    return heap_siftdown(heap, startpos, pos);
}

static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) != 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Caller guarantees the heap is a non-empty list. */
static PyObject *
heap_pop(PyObject *heap)
{
    PyObject *lastelt, *returnitem;
    Py_ssize_t n = PyList_GET_SIZE(heap);

    lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) != 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0)
        return lastelt;
    returnitem = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, lastelt);  /* old heap[0] ref now ours */
    if (heap_siftup(heap, 0) != 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* ------------------------------------------------------------------ */
/* small helpers */

/* replicate `0.0 <= x < inf`: 1 true, 0 false, -1 error (e.g. the
 * TypeError an unorderable delay raises in pure Python).  Fast path for
 * exact floats — the universal case — mirroring the interpreter's
 * float-compare specialization; everything else takes the generic
 * rich-compare route. */
static int
finite_nonneg(PyObject *x)
{
    int c;

    if (PyFloat_CheckExact(x)) {
        double v = PyFloat_AS_DOUBLE(x);
        return v >= 0.0 && v < Py_HUGE_VAL;  /* NaN fails both, like Python */
    }
    c = PyObject_RichCompareBool(g_zero_f, x, Py_LE);
    if (c <= 0)
        return c;
    return PyObject_RichCompareBool(x, g_inf, Py_LT);
}

static PyObject *
raise_bad_delay(PyObject *delay)
{
    PyObject *msg = PyUnicode_FromFormat(
        "bad delay %R: must be finite and >= 0", delay);
    if (msg != NULL) {
        PyErr_SetObject(g_sim_error, msg);
        Py_DECREF(msg);
    }
    return NULL;
}

/* Consume one sequence number and bump the live-event count, exactly
 * like `seq = self._seq; self._seq = seq + 1; self._live += 1`.
 * Returns a new reference to the claimed seq, or NULL. */
static PyObject *
claim_seq(PyObject *self)
{
    PyObject *seq = slot_get(self, o_seq, "_seq");

    if (seq == NULL)
        return NULL;
    Py_INCREF(seq);
    if (slot_add(self, o_seq, 1, "_seq") != 0 ||
        slot_add(self, o_live, 1, "_live") != 0) {
        Py_DECREF(seq);
        return NULL;
    }
    return seq;
}

/* `self.now + delay` — fast float path, object path otherwise */
static PyObject *
time_after(PyObject *self, PyObject *delay)
{
    PyObject *now = slot_get(self, o_now, "now");

    if (now == NULL)
        return NULL;
    if (PyFloat_CheckExact(now) && PyFloat_CheckExact(delay))
        return PyFloat_FromDouble(PyFloat_AS_DOUBLE(now) +
                                  PyFloat_AS_DOUBLE(delay));
    return PyNumber_Add(now, delay);
}

/* ------------------------------------------------------------------ */
/* scheduling primitives */

static PyObject *
c_schedule_fire1(PyObject *Py_UNUSED(mod), PyObject *const *args,
                 Py_ssize_t nargs)
{
    PyObject *self, *delay, *fn, *arg;
    PyObject *tm, *seq, *entry, *heap;
    int ok, r;

    if (nargs != 4) {
        PyErr_Format(PyExc_TypeError,
                     "schedule_fire1() takes 3 arguments (%zd given)",
                     nargs - 1);
        return NULL;
    }
    self = args[0];
    delay = args[1];
    fn = args[2];
    arg = args[3];
    if (check_self(self) != 0)
        return NULL;

    ok = finite_nonneg(delay);
    if (ok < 0)
        return NULL;
    if (!ok)
        return raise_bad_delay(delay);

    seq = claim_seq(self);
    if (seq == NULL)
        return NULL;
    tm = time_after(self, delay);
    if (tm == NULL) {
        Py_DECREF(seq);
        return NULL;
    }
    entry = PyTuple_Pack(4, tm, seq, fn, arg);
    Py_DECREF(tm);
    Py_DECREF(seq);
    if (entry == NULL)
        return NULL;
    heap = slot_get(self, o_heap, "_heap");
    if (heap == NULL || !PyList_Check(heap)) {
        Py_DECREF(entry);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_heap must be a list");
        return NULL;
    }
    Py_INCREF(heap);
    r = heap_push(heap, entry);
    Py_DECREF(heap);
    Py_DECREF(entry);
    if (r != 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
c_schedule_fire(PyObject *Py_UNUSED(mod), PyObject *const *args,
                Py_ssize_t nargs)
{
    PyObject *self, *delay, *fn;
    PyObject *tm, *seq, *entry, *heap, *rest;
    int ok, r;

    if (nargs < 3) {
        PyErr_Format(PyExc_TypeError,
                     "schedule_fire() requires delay and fn (%zd args given)",
                     nargs - 1);
        return NULL;
    }
    self = args[0];
    delay = args[1];
    fn = args[2];
    if (check_self(self) != 0)
        return NULL;

    ok = finite_nonneg(delay);
    if (ok < 0)
        return NULL;
    if (!ok)
        return raise_bad_delay(delay);

    seq = claim_seq(self);
    if (seq == NULL)
        return NULL;
    tm = time_after(self, delay);
    if (tm == NULL) {
        Py_DECREF(seq);
        return NULL;
    }
    if (nargs == 4) {
        /* single-argument shape → flat 4-tuple entry */
        entry = PyTuple_Pack(4, tm, seq, fn, args[3]);
    }
    else {
        rest = PyTuple_New(nargs - 3);
        if (rest == NULL) {
            Py_DECREF(tm);
            Py_DECREF(seq);
            return NULL;
        }
        for (Py_ssize_t i = 3; i < nargs; i++) {
            Py_INCREF(args[i]);
            PyTuple_SET_ITEM(rest, i - 3, args[i]);
        }
        entry = PyTuple_Pack(5, tm, seq, fn, rest, Py_None);
        Py_DECREF(rest);
    }
    Py_DECREF(tm);
    Py_DECREF(seq);
    if (entry == NULL)
        return NULL;
    heap = slot_get(self, o_heap, "_heap");
    if (heap == NULL || !PyList_Check(heap)) {
        Py_DECREF(entry);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_heap must be a list");
        return NULL;
    }
    Py_INCREF(heap);
    r = heap_push(heap, entry);
    Py_DECREF(heap);
    Py_DECREF(entry);
    if (r != 0)
        return NULL;
    Py_RETURN_NONE;
}

/* shared tail of schedule()/schedule_at(): build the Event, push the
 * 5-tuple entry, return the Event */
static PyObject *
schedule_event_common(PyObject *self, PyObject *tm, PyObject *fn,
                      PyObject *const *extra, Py_ssize_t nextra)
{
    PyObject *seq, *cargs, *ev, *entry, *heap;
    int r;

    seq = claim_seq(self);
    if (seq == NULL)
        return NULL;
    cargs = PyTuple_New(nextra);
    if (cargs == NULL) {
        Py_DECREF(seq);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nextra; i++) {
        Py_INCREF(extra[i]);
        PyTuple_SET_ITEM(cargs, i, extra[i]);
    }
    ev = PyObject_CallFunctionObjArgs(g_event_cls, tm, seq, fn, cargs,
                                      self, NULL);
    if (ev == NULL) {
        Py_DECREF(cargs);
        Py_DECREF(seq);
        return NULL;
    }
    entry = PyTuple_Pack(5, tm, seq, fn, cargs, ev);
    Py_DECREF(cargs);
    Py_DECREF(seq);
    if (entry == NULL) {
        Py_DECREF(ev);
        return NULL;
    }
    heap = slot_get(self, o_heap, "_heap");
    if (heap == NULL || !PyList_Check(heap)) {
        Py_DECREF(entry);
        Py_DECREF(ev);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_heap must be a list");
        return NULL;
    }
    Py_INCREF(heap);
    r = heap_push(heap, entry);
    Py_DECREF(heap);
    Py_DECREF(entry);
    if (r != 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return ev;
}

static PyObject *
c_schedule(PyObject *Py_UNUSED(mod), PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *self, *delay, *fn, *tm, *ev;
    int ok;

    if (nargs < 3) {
        PyErr_Format(PyExc_TypeError,
                     "schedule() requires delay and fn (%zd args given)",
                     nargs - 1);
        return NULL;
    }
    self = args[0];
    delay = args[1];
    fn = args[2];
    if (check_self(self) != 0)
        return NULL;

    ok = finite_nonneg(delay);
    if (ok < 0)
        return NULL;
    if (!ok)
        return raise_bad_delay(delay);

    tm = time_after(self, delay);
    if (tm == NULL)
        return NULL;
    ev = schedule_event_common(self, tm, fn, args + 3, nargs - 3);
    Py_DECREF(tm);
    return ev;
}

static PyObject *
c_schedule_at(PyObject *Py_UNUSED(mod), PyObject *const *args,
              Py_ssize_t nargs)
{
    PyObject *self, *tm, *fn, *now;
    int ok;

    if (nargs < 3) {
        PyErr_Format(PyExc_TypeError,
                     "schedule_at() requires time and fn (%zd args given)",
                     nargs - 1);
        return NULL;
    }
    self = args[0];
    tm = args[1];
    fn = args[2];
    if (check_self(self) != 0)
        return NULL;

    now = slot_get(self, o_now, "now");
    if (now == NULL)
        return NULL;
    Py_INCREF(now);
    /* replicate `self.now <= time < inf` */
    if (PyFloat_CheckExact(now) && PyFloat_CheckExact(tm)) {
        double vn = PyFloat_AS_DOUBLE(now), vt = PyFloat_AS_DOUBLE(tm);
        ok = vn <= vt && vt < Py_HUGE_VAL;
    }
    else {
        ok = PyObject_RichCompareBool(now, tm, Py_LE);
        if (ok > 0)
            ok = PyObject_RichCompareBool(tm, g_inf, Py_LT);
        if (ok < 0) {
            Py_DECREF(now);
            return NULL;
        }
    }
    if (!ok) {
        PyObject *msg = PyUnicode_FromFormat(
            "bad time %R: must be finite and >= now %R", tm, now);
        Py_DECREF(now);
        if (msg != NULL) {
            PyErr_SetObject(g_sim_error, msg);
            Py_DECREF(msg);
        }
        return NULL;
    }
    Py_DECREF(now);
    return schedule_event_common(self, tm, fn, args + 3, nargs - 3);
}

/* ------------------------------------------------------------------ */
/* inline-dispatch claim */

static PyObject *
c_advance_if_clear(PyObject *Py_UNUSED(mod), PyObject *const *args,
                   Py_ssize_t nargs)
{
    PyObject *self, *tm, *hor, *heap;
    int cmp;

    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError,
                     "advance_if_clear() takes 1 argument (%zd given)",
                     nargs - 1);
        return NULL;
    }
    self = args[0];
    tm = args[1];
    if (check_self(self) != 0)
        return NULL;

    hor = slot_get(self, o_horizon, "_horizon");
    if (hor == NULL)
        return NULL;
    if (PyFloat_CheckExact(tm) && PyFloat_CheckExact(hor)) {
        cmp = PyFloat_AS_DOUBLE(tm) > PyFloat_AS_DOUBLE(hor);
    }
    else {
        cmp = PyObject_RichCompareBool(tm, hor, Py_GT);
        if (cmp < 0)
            return NULL;
    }
    if (cmp)
        Py_RETURN_FALSE;

    heap = slot_get(self, o_heap, "_heap");
    if (heap == NULL || !PyList_Check(heap)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_heap must be a list");
        return NULL;
    }
    if (PyList_GET_SIZE(heap) > 0) {
        PyObject *head = PyList_GET_ITEM(heap, 0);
        PyObject *h0;
        if (!PyTuple_Check(head) || PyTuple_GET_SIZE(head) < 1) {
            PyErr_SetString(PyExc_TypeError, "heap entries must be tuples");
            return NULL;
        }
        h0 = PyTuple_GET_ITEM(head, 0);
        if (PyFloat_CheckExact(h0) && PyFloat_CheckExact(tm)) {
            cmp = PyFloat_AS_DOUBLE(h0) <= PyFloat_AS_DOUBLE(tm);
        }
        else {
            cmp = PyObject_RichCompareBool(h0, tm, Py_LE);
            if (cmp < 0)
                return NULL;
        }
        if (cmp)
            Py_RETURN_FALSE;
    }
    slot_set(self, o_now, tm);
    if (slot_add(self, o_seq, 1, "_seq") != 0 ||
        slot_add(self, o_ninline, 1, "_ninline") != 0)
        return NULL;
    Py_RETURN_TRUE;
}

/* ------------------------------------------------------------------ */
/* the run loop */

static PyObject *
c_run(PyObject *Py_UNUSED(mod), PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"self", "until", "max_events", NULL};
    PyObject *self, *until = Py_None, *max_events = Py_None;
    PyObject *running, *profiler, *heap = NULL, *horizon = NULL;
    Py_ssize_t budget = -1, processed = 0;
    int is_running, failed = 0, float_horizon;
    double horizon_d = 0.0;

    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O|OO:run", kwlist,
                                     &self, &until, &max_events))
        return NULL;
    if (check_self(self) != 0)
        return NULL;

    if (max_events != Py_None) {
        budget = PyLong_AsSsize_t(max_events);
        if (budget == -1 && PyErr_Occurred()) {
            /* exotic budget type (e.g. a float) — the pure loop handles
             * it with Python `==` semantics; delegate rather than guess */
            PyErr_Clear();
            return PyObject_CallFunctionObjArgs(g_fallback_run, self, until,
                                                max_events, NULL);
        }
    }

    running = slot_get(self, o_running, "_running");
    if (running == NULL)
        return NULL;
    is_running = PyObject_IsTrue(running);
    if (is_running < 0)
        return NULL;
    if (is_running) {
        PyErr_SetString(g_sim_error, "run() is not reentrant");
        return NULL;
    }
    slot_set(self, o_running, Py_True);

    /* Everything below must flow through the `finally` tail. */
    profiler = slot_get(self, o_profiler, "profiler");
    if (profiler == NULL) {
        failed = 1;
        goto finally;
    }
    Py_INCREF(profiler);
    heap = slot_get(self, o_heap, "_heap");
    if (heap == NULL || !PyList_Check(heap)) {
        heap = NULL;
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_heap must be a list");
        failed = 1;
        goto finally;
    }
    Py_INCREF(heap);
    horizon = (until == Py_None) ? g_inf : until;
    Py_INCREF(horizon);
    float_horizon = PyFloat_CheckExact(horizon);
    if (float_horizon)
        horizon_d = PyFloat_AS_DOUBLE(horizon);

    if (budget < 0 && profiler == Py_None) {
        /* Open the inline-dispatch window for advance_if_clear(). */
        slot_set(self, o_horizon, horizon);
    }

    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *entry, *tm, *fn, *res = NULL, *ev = NULL;
        Py_ssize_t width;
        int cmp;

        entry = heap_pop(heap);
        if (entry == NULL) {
            failed = 1;
            break;
        }
        if (!PyTuple_Check(entry)) {
            Py_DECREF(entry);
            PyErr_SetString(PyExc_TypeError, "heap entries must be tuples");
            failed = 1;
            break;
        }
        width = PyTuple_GET_SIZE(entry);
        if (width != 4) {
            ev = PyTuple_GET_ITEM(entry, 4);  /* borrowed */
            if (ev != Py_None) {
                PyObject *c;
                if (PyObject_TypeCheck(ev, (PyTypeObject *)g_event_cls)) {
                    c = SLOT(ev, o_ev_cancelled);
                    cmp = c ? PyObject_IsTrue(c) : 0;
                }
                else {
                    c = PyObject_GetAttrString(ev, "cancelled");
                    if (c == NULL) {
                        Py_DECREF(entry);
                        failed = 1;
                        break;
                    }
                    cmp = PyObject_IsTrue(c);
                    Py_DECREF(c);
                }
                if (cmp < 0) {
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
                if (cmp) {
                    Py_DECREF(entry);
                    continue;
                }
            }
        }
        tm = PyTuple_GET_ITEM(entry, 0);  /* borrowed */
        if (float_horizon && PyFloat_CheckExact(tm)) {
            cmp = PyFloat_AS_DOUBLE(tm) > horizon_d;
        }
        else {
            cmp = PyObject_RichCompareBool(tm, horizon, Py_GT);
            if (cmp < 0) {
                Py_DECREF(entry);
                failed = 1;
                break;
            }
        }
        if (cmp) {
            int r = heap_push(heap, entry);
            Py_DECREF(entry);
            if (r != 0)
                failed = 1;
            break;
        }
        slot_set(self, o_now, tm);
        if (slot_add(self, o_live, -1, "_live") != 0) {
            Py_DECREF(entry);
            failed = 1;
            break;
        }
        fn = PyTuple_GET_ITEM(entry, 2);  /* borrowed */
        if (width == 4) {
            PyObject *arg = PyTuple_GET_ITEM(entry, 3);
            if (profiler == Py_None) {
                res = PyObject_CallOneArg(fn, arg);
            }
            else {
                PyObject *tup = PyTuple_Pack(1, arg);
                if (tup != NULL) {
                    res = PyObject_CallMethodObjArgs(profiler, s_dispatch,
                                                     fn, tup, NULL);
                    Py_DECREF(tup);
                }
            }
        }
        else {
            PyObject *cargs = PyTuple_GET_ITEM(entry, 3);
            if (ev != Py_None) {
                if (PyObject_TypeCheck(ev, (PyTypeObject *)g_event_cls)) {
                    slot_set(ev, o_ev_fired, Py_True);
                }
                else if (PyObject_SetAttrString(ev, "fired", Py_True) != 0) {
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
            }
            if (profiler == Py_None) {
                res = PyObject_Call(fn, cargs, NULL);
            }
            else {
                res = PyObject_CallMethodObjArgs(profiler, s_dispatch,
                                                 fn, cargs, NULL);
            }
        }
        Py_DECREF(entry);
        if (res == NULL) {
            failed = 1;
            break;
        }
        Py_DECREF(res);
        processed++;
        if (processed == budget)
            break;
    }

    /* if until is not None and self.now < until: self.now = until */
    if (!failed && until != Py_None) {
        PyObject *nw = slot_get(self, o_now, "now");
        if (nw == NULL) {
            failed = 1;
        }
        else {
            int lt;
            if (PyFloat_CheckExact(nw) && PyFloat_CheckExact(until)) {
                lt = PyFloat_AS_DOUBLE(nw) < PyFloat_AS_DOUBLE(until);
            }
            else {
                lt = PyObject_RichCompareBool(nw, until, Py_LT);
                if (lt < 0)
                    failed = 1;
            }
            if (lt > 0)
                slot_set(self, o_now, until);
        }
    }

finally:
    {
        /* The `finally` tail: runs with any in-flight exception parked,
         * exactly like the pure engine's try/finally. */
        PyObject *et = NULL, *ev_ = NULL, *tb = NULL;

        PyErr_Fetch(&et, &ev_, &tb);

        slot_set(self, o_running, Py_False);
        slot_set(self, o_horizon, g_neg_inf);
        /* events_processed += processed + _ninline; _ninline = 0 */
        {
            PyObject *nin = SLOT(self, o_ninline);
            Py_ssize_t nin_v = (nin && PyLong_CheckExact(nin))
                                   ? PyLong_AsSsize_t(nin)
                                   : -1;
            if (nin_v >= 0 || !PyErr_Occurred()) {
                if (nin_v < 0)
                    nin_v = 0;  /* unset slot: nothing inline-dispatched */
                if (slot_add(self, o_events_processed,
                             processed + nin_v, "events_processed") != 0) {
                    if (et == NULL)
                        PyErr_Fetch(&et, &ev_, &tb);
                    else
                        PyErr_Clear();
                    failed = 1;
                }
                else {
                    slot_set(self, o_ninline, g_zero_i);
                }
            }
            else {
                PyErr_Clear();
            }
        }

        PyErr_Restore(et, ev_, tb);
    }
    Py_XDECREF(profiler);
    Py_XDECREF(heap);
    Py_XDECREF(horizon);
    if (failed || PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* registration */

static Py_ssize_t
slot_offset(PyObject *cls, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    Py_ssize_t off;

    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_TypeError,
                     "%s.%s is not a __slots__ member (found %.100s)",
                     ((PyTypeObject *)cls)->tp_name, name,
                     Py_TYPE(descr)->tp_name);
        Py_DECREF(descr);
        return -1;
    }
    off = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return off;
}

static PyObject *
c_setup(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *sim_cls, *event_cls, *sim_error, *fallback_run;

    if (!PyArg_ParseTuple(args, "OOOO:setup", &sim_cls, &event_cls,
                          &sim_error, &fallback_run))
        return NULL;
    if (!PyType_Check(sim_cls) || !PyType_Check(event_cls)) {
        PyErr_SetString(PyExc_TypeError,
                        "setup() expects (SimClass, Event, SimulationError, "
                        "fallback_run)");
        return NULL;
    }

    if ((o_now = slot_offset(sim_cls, "now")) < 0 ||
        (o_seq = slot_offset(sim_cls, "_seq")) < 0 ||
        (o_live = slot_offset(sim_cls, "_live")) < 0 ||
        (o_running = slot_offset(sim_cls, "_running")) < 0 ||
        (o_profiler = slot_offset(sim_cls, "profiler")) < 0 ||
        (o_events_processed = slot_offset(sim_cls, "events_processed")) < 0 ||
        (o_heap = slot_offset(sim_cls, "_heap")) < 0 ||
        (o_horizon = slot_offset(sim_cls, "_horizon")) < 0 ||
        (o_ninline = slot_offset(sim_cls, "_ninline")) < 0 ||
        (o_ev_cancelled = slot_offset(event_cls, "cancelled")) < 0 ||
        (o_ev_fired = slot_offset(event_cls, "fired")) < 0)
        return NULL;

    Py_INCREF(sim_cls);
    Py_XSETREF(g_sim_cls, sim_cls);
    Py_INCREF(event_cls);
    Py_XSETREF(g_event_cls, event_cls);
    Py_INCREF(sim_error);
    Py_XSETREF(g_sim_error, sim_error);
    Py_INCREF(fallback_run);
    Py_XSETREF(g_fallback_run, fallback_run);
    Py_RETURN_NONE;
}

static PyMethodDef core_methods[] = {
    {"setup", (PyCFunction)c_setup, METH_VARARGS,
     "setup(SimClass, Event, SimulationError, fallback_run) -- register "
     "the engine classes this extension dispatches through and extract "
     "their __slots__ offsets.  Called once by repro.compiled.engine at "
     "import."},
    {NULL, NULL, 0, NULL},
};

/* methods exported wrapped in PyInstanceMethod so class-body assignment
 * binds them like Python functions */
static PyMethodDef m_run = {
    "run", (PyCFunction)(void (*)(void))c_run,
    METH_VARARGS | METH_KEYWORDS,
    "run(until=None, max_events=None) -- C run loop, bit-identical to "
    "ArraySimulator.run."};
static PyMethodDef m_schedule = {
    "schedule", (PyCFunction)(void (*)(void))c_schedule, METH_FASTCALL,
    "schedule(delay, fn, *args) -> Event -- C fast path, bit-identical "
    "to ArraySimulator.schedule."};
static PyMethodDef m_schedule_at = {
    "schedule_at", (PyCFunction)(void (*)(void))c_schedule_at, METH_FASTCALL,
    "schedule_at(time, fn, *args) -> Event -- C fast path, bit-identical "
    "to ArraySimulator.schedule_at."};
static PyMethodDef m_schedule_fire = {
    "schedule_fire", (PyCFunction)(void (*)(void))c_schedule_fire,
    METH_FASTCALL,
    "schedule_fire(delay, fn, *args) -- C fast path, bit-identical to "
    "ArraySimulator.schedule_fire."};
static PyMethodDef m_schedule_fire1 = {
    "schedule_fire1", (PyCFunction)(void (*)(void))c_schedule_fire1,
    METH_FASTCALL,
    "schedule_fire1(delay, fn, arg) -- C fast path, bit-identical to "
    "ArraySimulator.schedule_fire1."};
static PyMethodDef m_advance_if_clear = {
    "advance_if_clear", (PyCFunction)(void (*)(void))c_advance_if_clear,
    METH_FASTCALL,
    "advance_if_clear(time) -> bool -- C inline-dispatch claim, "
    "bit-identical to ArraySimulator.advance_if_clear."};

PyDoc_STRVAR(core_doc,
"C implementations of the ArraySimulator hot methods (the \"cext\" tier\n"
"of repro.compiled).  Exports run/schedule/schedule_at/schedule_fire/\n"
"schedule_fire1/advance_if_clear as instancemethod-wrapped callables\n"
"that repro.compiled.engine.CompiledSimulator assigns in its class\n"
"body, plus setup() to register the engine classes and extract their\n"
"__slots__ offsets.  Never import this module directly; go through\n"
"repro.compiled, which degrades silently when it is absent.");

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT, "repro.compiled._core", core_doc, -1,
    core_methods, NULL, NULL, NULL, NULL,
};

static int
add_instancemethod(PyObject *mod, PyMethodDef *def)
{
    PyObject *func = PyCFunction_NewEx(def, NULL, NULL);
    PyObject *meth;

    if (func == NULL)
        return -1;
    meth = PyInstanceMethod_New(func);
    Py_DECREF(func);
    if (meth == NULL)
        return -1;
    if (PyModule_AddObject(mod, def->ml_name, meth) != 0) {
        Py_DECREF(meth);
        return -1;
    }
    return 0;
}

PyMODINIT_FUNC
PyInit__core(void)
{
    PyObject *mod = PyModule_Create(&core_module);
    if (mod == NULL)
        return NULL;

    s_dispatch = PyUnicode_InternFromString("dispatch");
    g_inf = PyFloat_FromDouble(Py_HUGE_VAL);
    g_neg_inf = PyFloat_FromDouble(-Py_HUGE_VAL);
    g_zero_f = PyFloat_FromDouble(0.0);
    g_zero_i = PyLong_FromLong(0);
    if (s_dispatch == NULL || g_inf == NULL || g_neg_inf == NULL ||
        g_zero_f == NULL || g_zero_i == NULL)
        goto error;

    if (add_instancemethod(mod, &m_run) != 0 ||
        add_instancemethod(mod, &m_schedule) != 0 ||
        add_instancemethod(mod, &m_schedule_at) != 0 ||
        add_instancemethod(mod, &m_schedule_fire) != 0 ||
        add_instancemethod(mod, &m_schedule_fire1) != 0 ||
        add_instancemethod(mod, &m_advance_if_clear) != 0)
        goto error;

    if (PyModule_AddStringConstant(mod, "TIER", "cext") != 0)
        goto error;

    return mod;

error:
    Py_DECREF(mod);
    return NULL;
}
