"""CompiledSimulator — the array engine with its hot methods in C.

:class:`CompiledSimulator` subclasses
:class:`repro.sim.engine.ArraySimulator` and, when the ``cext`` tier
extension (:mod:`repro.compiled._core`) is importable, overrides the six
hot methods — ``run``, ``schedule``, ``schedule_at``, ``schedule_fire``,
``schedule_fire1``, ``advance_if_clear`` — with their C
transliterations.  Everything else (construction, RNG streams,
snapshot ``__getstate__``/``__setstate__``, ``live_entries``,
cancellation) is inherited pure Python, and all mutable state lives in
the ordinary Python slots, which is what makes the two builds
bit-identical and snapshot-compatible.

The class is defined *unconditionally*: a pickled snapshot that
references ``repro.compiled.engine.CompiledSimulator`` must unpickle in
a process without the extension.  In that case the class simply
inherits every method from ``ArraySimulator`` and behaves as the pure
engine — same results, just slower.

Engine selection never imports this module directly; it goes through
:func:`repro.compiled.engine_class`, which owns the ``REPRO_COMPILED``
knob and the silent-degrade rules.
"""

from __future__ import annotations

from ..sim.engine import ArraySimulator, Event, SimulationError

from . import status as _status

__all__ = ["CompiledSimulator"]

_st = _status()
_core = _st.module if _st.tier == "cext" else None


class CompiledSimulator(ArraySimulator):
    """Array engine with C hot methods (pure-Python fallback built in).

    Selected automatically by :func:`repro.sim.engine.get_engine_class`
    when the extension is built and ``REPRO_COMPILED`` does not pin pure
    Python; constructible directly (or via ``REPRO_ENGINE=compiled``)
    for explicit control.  Behaviour is bit-identical to
    :class:`~repro.sim.engine.ArraySimulator`: same event ordering,
    sequence numbering, ``events_processed`` counts, error messages,
    and snapshot state — the differential suite and the determinism
    goldens hold it to that.
    """

    __slots__ = ()

    if _core is not None:
        run = _core.run
        schedule = _core.schedule
        schedule_at = _core.schedule_at
        schedule_fire = _core.schedule_fire
        schedule_fire1 = _core.schedule_fire1
        advance_if_clear = _core.advance_if_clear


if _core is not None:
    # Hand the extension everything it dispatches through: the engine
    # class (setup() extracts the __slots__ member offsets the C hot
    # paths read and write directly), the Event class, the error type
    # the validation paths raise, and the pure run loop it delegates
    # exotic max_events types to.
    _core.setup(CompiledSimulator, Event, SimulationError, ArraySimulator.run)
