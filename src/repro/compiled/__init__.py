"""Optional compiled backend for the simulation hot core.

This package owns everything about ahead-of-time compilation of the
event engine: discovering a built extension, deciding whether to use it
(the ``REPRO_COMPILED`` knob), and degrading to the pure-Python engine
when nothing is built — silently, because "no extension" is the normal
state of a source checkout, not an error.

Tiers
-----
Two kinds of compiled artifact are recognised, probed in this order:

``module`` tier (mypyc or Cython)
    A whole-module compilation of :mod:`repro.sim.engine` installed as
    ``repro.compiled._compiled_engine``.  Built by
    ``python -m repro.compiled.build --tier mypyc`` (or ``cython``) when
    the corresponding toolchain is importable; the build stamps
    ``_build_info.json`` next to the artifact so :func:`status` can
    report which tool produced it.
``cext`` tier
    A hand-written CPython extension (``repro.compiled._core``) holding
    C transliterations of the six hottest ``ArraySimulator`` methods,
    bound into :class:`repro.compiled.engine.CompiledSimulator`.  Needs
    only a C compiler and the CPython headers — no third-party
    toolchain — so it is the tier that builds everywhere.

Selection
---------
``REPRO_COMPILED`` (read lazily, so tests can flip it per-instance):

``0``/``off``/``false``/``no``
    Never use a compiled engine, even when one is built.
``1``/``on``/``true``/``yes``/``require``
    Prefer a compiled engine; warn once if none is importable (the
    engine still falls back to pure Python — it never errors).
unset / empty / ``auto``
    Use a compiled engine when one imports cleanly, pure Python
    otherwise, with no message either way.

A *broken* artifact — one that exists but raises something other than
:class:`ModuleNotFoundError` on import — warns once and falls back; a
*missing* artifact is silent unless explicitly requested.

The public surface is tiny on purpose: :func:`engine_class` is what
:func:`repro.sim.engine.get_engine_class` calls, and :func:`status` is
the introspection hook used by benchmarks, the perf guard, and
``python -m repro.compiled.build --status``.
"""

from __future__ import annotations

import importlib
import os
import warnings
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "CoreStatus",
    "engine_class",
    "active_tier",
    "compiled_requested",
    "compiled_disabled",
    "status",
    "reset",
]

#: probe order: whole-module artifacts (mypyc/Cython) win over the
#: hand-written C core when both are built
_MODULE_TIER = "repro.compiled._compiled_engine"
_CEXT_TIER = "repro.compiled._core"

_FALSEY = ("0", "off", "false", "no")
_TRUTHY = ("1", "on", "true", "yes", "require")


@dataclass
class CoreStatus:
    """What the one-time extension probe found.

    ``tier`` is ``"mypyc"``/``"cython"`` (module tier, per the build
    stamp), ``"cext"`` (hand-written C core), or ``None`` when nothing
    compiled is importable.  ``error`` carries the import failure text
    for a *broken* artifact; a merely missing one leaves it ``None``.
    """

    tier: Optional[str]
    module: Optional[Any]
    error: Optional[str]

    @property
    def available(self) -> bool:
        """True when a compiled artifact imported cleanly."""
        return self.module is not None


_status: Optional[CoreStatus] = None
_warned_broken = False
_warned_missing = False


def _module_tier_name() -> str:
    """Resolve the module tier's tool label from its build stamp."""
    import json
    from pathlib import Path

    stamp = Path(__file__).with_name("_build_info.json")
    try:
        info = json.loads(stamp.read_text())
        tool = str(info.get("tier", "module"))
    except (OSError, ValueError):
        tool = "module"
    return tool


def _import_tier(modname: str) -> Any:
    """Import one candidate artifact (seam for the fallback tests)."""
    return importlib.import_module(modname)


def _probe() -> CoreStatus:
    """Try each tier once; remember the outcome for the process."""
    global _status, _warned_broken
    if _status is not None:
        return _status
    broken: Optional[str] = None
    for modname in (_MODULE_TIER, _CEXT_TIER):
        try:
            mod = _import_tier(modname)
        except ModuleNotFoundError:
            continue  # not built — the normal state, stay silent
        except Exception as exc:  # pragma: no cover - exercised via tests
            broken = f"{modname}: {type(exc).__name__}: {exc}"
            continue
        if modname == _CEXT_TIER:
            tier = "cext"
        else:
            tier = _module_tier_name()
        _status = CoreStatus(tier=tier, module=mod, error=broken)
        return _status
    _status = CoreStatus(tier=None, module=None, error=broken)
    if broken is not None and not _warned_broken:
        _warned_broken = True
        warnings.warn(
            f"compiled engine extension failed to import ({broken}); "
            f"falling back to the pure-Python engine",
            RuntimeWarning,
            stacklevel=3,
        )
    return _status


def status() -> CoreStatus:
    """Return the (cached) result of the extension probe."""
    return _probe()


def compiled_disabled() -> bool:
    """True when ``REPRO_COMPILED`` explicitly pins pure Python."""
    return os.environ.get("REPRO_COMPILED", "").strip().lower() in _FALSEY


def compiled_requested() -> bool:
    """True when ``REPRO_COMPILED`` explicitly asks for the extension."""
    return os.environ.get("REPRO_COMPILED", "").strip().lower() in _TRUTHY


def engine_class() -> Optional[type]:
    """The compiled engine class to use right now, or ``None`` for pure.

    Combines the knob with the probe: returns ``None`` when
    ``REPRO_COMPILED=0`` or when no artifact is importable (warning once
    if one was explicitly requested), else the engine class backed by
    the winning tier.
    """
    global _warned_missing
    if compiled_disabled():
        return None
    st = _probe()
    if not st.available:
        if compiled_requested() and not _warned_missing:
            _warned_missing = True
            warnings.warn(
                "REPRO_COMPILED requested a compiled engine but none is "
                "built; falling back to the pure-Python engine "
                "(build one with: python -m repro.compiled.build)",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    if st.tier == "cext":
        from .engine import CompiledSimulator

        return CompiledSimulator
    # module tier: the compiled copy of repro.sim.engine exports the
    # same ArraySimulator contract under its own module name
    return st.module.ArraySimulator


def active_tier() -> Optional[str]:
    """Tier label of the engine actually in use (``None`` = pure)."""
    return status().tier if engine_class() is not None else None


def reset() -> None:
    """Forget the probe result and warning latches (test hook)."""
    global _status, _warned_broken, _warned_missing
    _status = None
    _warned_broken = False
    _warned_missing = False
