"""Fluid fast-forward: skip the ensemble transient analytically.

A packet-level run spends its warm-up simulating every flow's slow-start
into steady state — at 10^5 flows that transient alone is unaffordable.
The fluid model gets there by integration: :func:`fluid_fast_forward`
runs the DDE until the exported sending rate settles (doubling the
horizon until the trajectory tail is flat) and returns the settled
operating point.  The hybrid harness then injects the *settled* rate
from t = 0 (``BackgroundLoad(fast_forward=True)``), and
:func:`repro.hybrid.warm_hybrid_bytes` captures a
:mod:`repro.snapshot` body right after the (short, packet-side-only)
warm-up — one fluid integration plus one warm-up seeds any number of
measured continuations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fluid.rates import RateTrajectory, equilibrium_rate, rate_trajectory

__all__ = ["FluidSteadyState", "fluid_fast_forward"]


@dataclass(frozen=True)
class FluidSteadyState:
    """Settled operating point of a fast-forwarded fluid model."""

    #: settled aggregate arrival rate in packets/second
    rate_pps: float
    #: rate the model's analytic equilibrium predicts (= its capacity)
    equilibrium_pps: float
    #: did the trajectory tail actually flatten within the horizon?
    converged: bool
    #: fluid horizon integrated (seconds)
    horizon: float
    #: the full exported trajectory (for plotting / diagnostics)
    trajectory: RateTrajectory


def fluid_fast_forward(
    model,
    horizon: Optional[float] = None,
    dt: float = 2e-3,
    max_horizon: float = 240.0,
    tail: float = 0.25,
    rel_tol: float = 0.02,
) -> FluidSteadyState:
    """Integrate *model* to steady state and return the settled rate.

    The integration starts *at the model's analytic equilibrium state*
    (that is the fast-forward: the ensemble transient is skipped
    algebraically, the DDE only has to confirm the point holds).  A
    stable model therefore settles within the first horizon; an
    unstable one falls into its limit cycle and the tail mean is the
    honest rate to inject.

    With ``horizon=None`` the integration starts at a few hundred RTTs
    and doubles until the trailing *tail* fraction of the rate
    trajectory is flat to within *rel_tol* (or *max_horizon* is hit —
    ``converged=False`` then flags an oscillatory/unstable model, e.g. a
    PERT/RED ensemble beyond its Figure 13 stability boundary).  An
    explicit *horizon* integrates exactly once.
    """
    x0 = model.equilibrium_state()
    if horizon is not None:
        traj = rate_trajectory(model, horizon, dt=dt, x0=x0)
        return FluidSteadyState(
            rate_pps=traj.steady_rate(tail),
            equilibrium_pps=equilibrium_rate(model),
            converged=traj.is_settled(tail, rel_tol),
            horizon=horizon,
            trajectory=traj,
        )
    h = max(30.0, 300.0 * model.rtt)
    while True:
        traj = rate_trajectory(model, h, dt=dt, x0=x0)
        settled = traj.is_settled(tail, rel_tol)
        if settled or h >= max_horizon:
            return FluidSteadyState(
                rate_pps=traj.steady_rate(tail),
                equilibrium_pps=equilibrium_rate(model),
                converged=settled,
                horizon=h,
                trajectory=traj,
            )
        h = min(2.0 * h, max_horizon)
