"""Hybrid run entry points built on the ordinary dumbbell harness.

``run_dumbbell(..., background=...)`` already accepts a
:class:`~repro.hybrid.BackgroundLoad`; this module adds the hybrid-
specific conveniences on top: :func:`run_hybrid_dumbbell` derives the
foreground-flow queue-delay distribution the 10^5-flow deliverable
reports, and :func:`warm_hybrid_bytes` is the fluid-seeded
:mod:`repro.snapshot` warm start — one fluid fast-forward plus one
packet warm-up, measured at any number of durations via
:func:`repro.experiments.common.run_dumbbell_warm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Union

from ..experiments.common import DumbbellResult, run_dumbbell, warm_dumbbell_bytes
from .background import BackgroundLoad

__all__ = [
    "HybridSummary",
    "summarize_hybrid",
    "run_hybrid_dumbbell",
    "warm_hybrid_bytes",
]


@dataclass(frozen=True)
class HybridSummary:
    """Foreground-experience summary of one hybrid run.

    Queue-delay statistics are derived from the tagged foreground flow's
    per-ACK RTT trace (sample minus the flow's propagation delay), i.e.
    the delay a real flow *experienced* through the fluid-loaded queue —
    not a fluid prediction.
    """

    result: DumbbellResult
    #: foreground Jain fairness index (same as ``result.jain``)
    jain: float
    #: mean / median / 95th-percentile queuing delay (seconds) seen by
    #: the tagged foreground flow during the measurement window
    qdelay_mean: float
    qdelay_p50: float
    qdelay_p95: float
    #: background macro-packets injected / fluid packets represented
    background_pkts: int
    background_offered_pkts: int


def _percentile(sorted_vals: List[float], frac: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    idx = min(len(sorted_vals) - 1, max(0, int(frac * len(sorted_vals))))
    return sorted_vals[idx]


def summarize_hybrid(
    result: DumbbellResult, warmup: Optional[float] = None
) -> HybridSummary:
    """Derive the foreground queue-delay distribution from *result*.

    Requires the run to have been tagged (``record_rtt_flow=...``) so a
    per-ACK RTT trace is available; samples before *warmup* (the
    measurement-window start) are discarded when given.
    """
    trace = result.extras.get("rtt_trace")
    if not trace:
        raise ValueError(
            "hybrid summary needs a run with record_rtt_flow set "
            "(no rtt_trace in result.extras)"
        )
    base = min(r for _, r, _ in trace)
    cutoff = warmup if warmup is not None else 0.0
    window = [r - base for t, r, _ in trace if t >= cutoff]
    if not window:
        window = [r - base for _, r, _ in trace]
    window.sort()
    return HybridSummary(
        result=result,
        jain=result.jain,
        qdelay_mean=sum(window) / len(window),
        qdelay_p50=_percentile(window, 0.50),
        qdelay_p95=_percentile(window, 0.95),
        background_pkts=result.background_pkts,
        background_offered_pkts=result.extras.get("background_offered_pkts", 0),
    )


def run_hybrid_dumbbell(
    scheme: str,
    bandwidth: float,
    background: Union[BackgroundLoad, Mapping[str, Any]],
    record_rtt_flow: int = 0,
    **kwargs: Any,
) -> HybridSummary:
    """Run one hybrid dumbbell point and summarise the foreground view.

    Thin wrapper over ``run_dumbbell(..., background=...)`` that tags a
    foreground flow for RTT tracing and reduces the trace to the
    fairness / queue-delay distribution the hybrid deliverable reports.
    All other keyword arguments are forwarded unchanged.
    """
    result = run_dumbbell(
        scheme,
        bandwidth,
        background=background,
        record_rtt_flow=record_rtt_flow,
        **kwargs,
    )
    return summarize_hybrid(result, warmup=kwargs.get("warmup", 20.0))


def warm_hybrid_bytes(
    scheme: str,
    bandwidth: float,
    background: Union[BackgroundLoad, Mapping[str, Any]],
    **kwargs: Any,
) -> bytes:
    """Fluid-seeded warm start: snapshot a hybrid run at window-open.

    The background's fluid model is fast-forwarded analytically (the
    default ``BackgroundLoad.fast_forward``), so the packet-side
    warm-up only has to converge the foreground flows against an
    already-settled background — then the state is captured exactly as
    :func:`repro.experiments.common.warm_dumbbell_bytes` does.  Feed the
    bytes to :func:`repro.experiments.common.run_dumbbell_warm` once per
    desired duration; each continuation is bit-identical to the
    corresponding cold hybrid run.
    """
    return warm_dumbbell_bytes(scheme, bandwidth, background=background, **kwargs)
