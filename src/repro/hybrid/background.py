"""Fluid-driven background load: the packet side of the hybrid coupling.

A :class:`BackgroundLoad` declares *what* drives the bottleneck's
background share — which fluid model, how many fluid flows, what share
of capacity — in a JSON-clean form that rides inside
:func:`repro.runner.dumbbell_spec` params, so hybrid jobs cache and
dedupe like any other.  :func:`attach_background` turns the declaration
into live objects at build time: it integrates the fluid model, reduces
the sending-rate trajectory to piecewise-constant segments
(:meth:`repro.fluid.RateTrajectory.segments`) and starts a
:class:`BackgroundSource` that replays them through the ordinary event
engine.

The injected arrival process is deterministic and seedable: inter-
arrivals come from the simulator's ``"background"`` RNG stream (claimed
only when a background is actually attached, so zero-background runs
remain bit-identical to pure packet runs).  ``aggregate`` batches the
fluid ensemble's packets into macro-packets — at 10^5 flows the fluid
rate can exceed what per-packet events allow, and a GSO-style burst of
``aggregate`` payloads per event keeps the event count bounded by
``rate / aggregate`` instead of the raw packet rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from ..fluid.rates import RateSegment, rate_trajectory
from ..fluid.registry import make_fluid_model
from ..sim.engine import Event, Simulator
from ..sim.node import Node
from ..sim.packet import Packet

__all__ = [
    "BACKGROUND_FLOW_ID",
    "BackgroundLoad",
    "BackgroundSource",
    "BackgroundSink",
    "attach_background",
]

#: reserved flow id for background macro-packets — real flows count up
#: from 0, so a negative id can never collide
BACKGROUND_FLOW_ID = -1


@dataclass(frozen=True)
class BackgroundLoad:
    """Declarative description of a fluid-driven background ensemble.

    Parameters
    ----------
    model:
        Fluid model name from :data:`repro.fluid.FLUID_MODELS`
        (``"pert_red"``, ``"tcp_red"``, ``"pert_pi"``).
    share:
        Fraction of the bottleneck capacity handed to the fluid
        ensemble (its model ``capacity`` becomes ``share * C``).  A
        share of 0 means "no background" — the spec normalises to
        ``None`` and the run is bit-identical to a pure packet run.
    n_flows:
        Number of flows in the fluid ensemble (the N the packet engine
        cannot afford).
    rtt:
        Fluid round-trip delay in seconds; ``None`` uses the packet
        run's base RTT.
    aggregate:
        Packets per injected macro-packet (GSO-style batching; event
        count scales with ``rate / aggregate``).
    segment_dt:
        Piecewise-constant segment length (seconds) when replaying the
        full fluid trajectory.
    fast_forward:
        When true (the default), integrate the fluid model to steady
        state up front (:func:`repro.hybrid.fluid_fast_forward`) and
        inject the settled rate from t = 0 — the fluid transient is
        skipped, matching the packet side's own warm-up discipline.
        When false, the transient trajectory itself is replayed.
    horizon, fluid_dt:
        Fluid integration horizon and step.  ``horizon=None`` picks the
        fast-forward default or the run duration, respectively.
    arrival:
        ``"poisson"`` (exponential inter-arrivals, the natural model of
        a large aggregate; seeded from the ``"background"`` stream) or
        ``"paced"`` (deterministic even spacing).
    params:
        Extra fluid-model parameters forwarded verbatim to
        :func:`repro.fluid.make_fluid_model`.
    """

    model: str
    share: float
    n_flows: int = 100
    rtt: Optional[float] = None
    aggregate: int = 1
    segment_dt: float = 0.25
    fast_forward: bool = True
    horizon: Optional[float] = None
    fluid_dt: float = 2e-3
    arrival: str = "poisson"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.share < 1.0:
            raise ValueError("background share must be in [0, 1)")
        if self.n_flows <= 0:
            raise ValueError("background n_flows must be positive")
        if self.aggregate < 1:
            raise ValueError("aggregate must be >= 1")
        if self.segment_dt <= 0 or self.fluid_dt <= 0:
            raise ValueError("segment_dt and fluid_dt must be positive")
        if self.arrival not in ("poisson", "paced"):
            raise ValueError("arrival must be 'poisson' or 'paced'")
        # validate model name and params eagerly (and freeze the mapping)
        from ..fluid.registry import fluid_model_params

        allowed = fluid_model_params(self.model)
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise ValueError(
                f"unknown fluid parameter(s) {unknown} for background model "
                f"{self.model!r}; valid: {sorted(allowed)}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def from_spec(
        cls, spec: Union[None, "BackgroundLoad", Mapping[str, Any]]
    ) -> Optional["BackgroundLoad"]:
        """Normalise a user-facing spec; zero share collapses to ``None``.

        Accepts ``None``, a :class:`BackgroundLoad`, or its dict form
        (the shape sweeps and the runner's JSON params carry).  The
        collapse of ``share == 0`` to ``None`` is what makes zero-share
        hybrid runs *bit-identical* to pure packet runs: nothing is
        constructed, no RNG stream is claimed, no event is scheduled.
        """
        if spec is None:
            return None
        load = spec if isinstance(spec, cls) else cls(**dict(spec))
        if load.share == 0.0:
            return None
        return load

    def canonical(self) -> Dict[str, Any]:
        """JSON-clean dict form (stable key order via sorted serialisers)."""
        return {
            "model": self.model,
            "share": float(self.share),
            "n_flows": int(self.n_flows),
            "rtt": None if self.rtt is None else float(self.rtt),
            "aggregate": int(self.aggregate),
            "segment_dt": float(self.segment_dt),
            "fast_forward": bool(self.fast_forward),
            "horizon": None if self.horizon is None else float(self.horizon),
            "fluid_dt": float(self.fluid_dt),
            "arrival": self.arrival,
            "params": dict(self.params),
        }


class BackgroundSource:
    """Replays piecewise-constant rate segments as macro-packet arrivals.

    The source self-schedules like :class:`repro.traffic.cbr.CbrSource`
    but follows a rate *schedule*: within a segment, inter-arrivals are
    exponential (``"poisson"``) or even (``"paced"``); at a segment
    boundary the gap is resampled at the new rate — exact for a
    piecewise-constant Poisson process by memorylessness.  After the
    last segment the final rate is held, so a schedule shorter than the
    run degrades gracefully to its settled tail.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: int,
        segments: List[RateSegment],
        pkt_size: int = 1000,
        aggregate: int = 1,
        rng: Optional[random.Random] = None,
        flow_id: int = BACKGROUND_FLOW_ID,
    ):
        if not segments:
            raise ValueError("need at least one rate segment")
        self.sim = sim
        self.node = node
        self.dst = dst
        self.segments = list(segments)
        self.pkt_size = pkt_size
        self.aggregate = aggregate
        self.rng = rng
        self.flow_id = flow_id
        #: macro-packets injected so far
        self.pkts_sent = 0
        #: fluid-ensemble packets represented (pkts_sent * aggregate)
        self.offered_pkts = 0
        self._seq = 0
        self._seg_idx = 0
        self._timer: Optional[Event] = None
        self.running = False
        #: the far-router sink, set by :func:`attach_background`
        self.sink: Optional["BackgroundSink"] = None

    def start(self, at: float = 0.0) -> None:
        """Begin injecting at simulation time *at*."""
        self.running = True
        self._schedule_next(max(at, self.sim.now))

    def stop(self) -> None:
        """Cancel the pending arrival and stop injecting."""
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    def _macro_rate_at(self, t: float) -> float:
        """Macro-packet arrival rate in effect at time *t* (may be 0)."""
        while (self._seg_idx < len(self.segments) - 1
               and t >= self.segments[self._seg_idx].end):
            self._seg_idx += 1
        return self.segments[self._seg_idx].rate_pps / self.aggregate

    def _schedule_next(self, now: float) -> None:
        """Schedule the next arrival from the rate in effect at *now*."""
        seg = None
        while True:
            rate = self._macro_rate_at(now)
            seg = self.segments[self._seg_idx]
            last = self._seg_idx == len(self.segments) - 1
            if rate > 0.0:
                if self.rng is not None:
                    gap = self.rng.expovariate(rate)
                else:
                    gap = 1.0 / rate
                t = now + gap
                if last or t < seg.end:
                    break
            elif last:
                # settled at zero rate: nothing more to inject, ever
                self.running = False
                self._timer = None
                return
            # boundary crossed (or idle segment): resample at the next
            # segment's rate — exact for piecewise-constant Poisson
            now = seg.end
        self._timer = self.sim.schedule(t - self.sim.now, self._tick)

    def _tick(self) -> None:
        if not self.running:
            return
        pkt = Packet(
            flow_id=self.flow_id,
            src=self.node.node_id,
            dst=self.dst,
            size=self.pkt_size * self.aggregate,
            seq=self._seq,
        )
        self._seq += 1
        self.pkts_sent += 1
        self.offered_pkts += self.aggregate
        self.node.send(pkt)
        self._schedule_next(self.sim.now)

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - source only sends
        """Sources ignore input (endpoint-protocol compatibility)."""


class BackgroundSink:
    """Counts background macro-packets surviving the bottleneck queue."""

    def __init__(self, node: Node, flow_id: int = BACKGROUND_FLOW_ID):
        self.pkts_received = 0
        self.bytes_received = 0
        node.register_endpoint(flow_id, self)

    def receive(self, pkt: Packet) -> None:
        """Account one delivered background macro-packet."""
        self.pkts_received += 1
        self.bytes_received += pkt.size


def background_model(load: BackgroundLoad, bandwidth: float, pkt_size: int,
                     base_rtt: float):
    """Build the fluid model a :class:`BackgroundLoad` describes.

    The model's ``capacity`` is the ensemble's capacity share in
    packets/second; at equilibrium the exported rate equals exactly
    ``share * C`` (see :func:`repro.fluid.equilibrium_rate`).
    """
    pkt_rate = bandwidth / (8.0 * pkt_size)
    return make_fluid_model(
        load.model,
        capacity=load.share * pkt_rate,
        n_flows=load.n_flows,
        rtt=load.rtt if load.rtt is not None else base_rtt,
        **dict(load.params),
    )


def attach_background(
    sim: Simulator,
    db,
    load: BackgroundLoad,
    *,
    bandwidth: float,
    pkt_size: int,
    base_rtt: float,
    duration: float,
) -> BackgroundSource:
    """Integrate the fluid model and start the injector on *db*'s bottleneck.

    Called by the experiment harness at the *end* of topology/flow
    construction, so the streams and event sequence numbers of the pure
    packet prefix are untouched.  Background macro-packets enter at
    router ``r1`` addressed to ``r2`` — they traverse (and load) exactly
    the forward bottleneck queue, then terminate at the far router's
    :class:`BackgroundSink`.
    """
    model = background_model(load, bandwidth, pkt_size, base_rtt)
    if load.fast_forward:
        from .fastforward import fluid_fast_forward  # local: avoids cycle

        steady = fluid_fast_forward(
            model, horizon=load.horizon, dt=load.fluid_dt
        )
        segments = [RateSegment(0.0, duration, steady.rate_pps)]
    else:
        horizon = load.horizon if load.horizon is not None else duration
        traj = rate_trajectory(model, horizon, dt=load.fluid_dt)
        segments = traj.segments(load.segment_dt)
    rng = sim.stream("background") if load.arrival == "poisson" else None
    source = BackgroundSource(
        sim,
        db.r1,
        dst=db.r2.node_id,
        segments=segments,
        pkt_size=pkt_size,
        aggregate=load.aggregate,
        rng=rng,
    )
    source.sink = BackgroundSink(db.r2)
    source.start(at=0.0)
    return source
