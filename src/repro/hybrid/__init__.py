"""Hybrid fluid–packet engine: million-flow scenarios on a laptop.

The packet simulator reproduces the paper's figures faithfully but its
event count grows with the number of flows; the fluid models of Section
5 capture the *aggregate* behaviour of an arbitrarily large PERT or TCP
ensemble at a cost independent of N.  This package couples the two: a
fluid model supplies the aggregate background arrival rate at the
bottleneck while a handful of packet-level foreground flows experience
the resulting queue — the scenario shape ns-2 could never run at
10^5–10^6 flows.

The coupling is one-directional and deterministic: the fluid trajectory
is integrated up front (:func:`repro.fluid.rate_trajectory`), reduced to
piecewise-constant :class:`~repro.fluid.RateSegment` runs, and replayed
by a :class:`BackgroundSource` through the ordinary event engine — so
seeded runs stay reproducible, snapshots keep working, and a zero-share
background degenerates to exactly the pure packet run.

Entry points:

* ``run_dumbbell(..., background=...)`` — the existing harness accepts a
  :class:`BackgroundLoad` (or its dict form) and injects the fluid
  ensemble at the bottleneck;
* :func:`run_hybrid_dumbbell` — convenience wrapper that also derives
  foreground queue-delay distributions;
* :func:`fluid_fast_forward` — integrate a model to steady state so the
  background enters settled at t = 0;
* :func:`warm_hybrid_bytes` — fluid-seeded :mod:`repro.snapshot`
  warm start for measuring many durations of one hybrid scenario.
"""

from .background import BackgroundLoad, BackgroundSink, BackgroundSource, attach_background
from .fastforward import FluidSteadyState, fluid_fast_forward
from .run import HybridSummary, run_hybrid_dumbbell, summarize_hybrid, warm_hybrid_bytes

__all__ = [
    "summarize_hybrid",
    "BackgroundLoad",
    "BackgroundSource",
    "BackgroundSink",
    "attach_background",
    "FluidSteadyState",
    "fluid_fast_forward",
    "HybridSummary",
    "run_hybrid_dumbbell",
    "warm_hybrid_bytes",
]
