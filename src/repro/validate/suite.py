"""The validation suite: which figures run at which tier, and how.

Each :class:`FigureCheck` binds a figure id to per-tier *measurement
runners* — thunks that execute the experiment (through the cached
parallel runner wherever the figure is grid-shaped) and flatten the
output into ``{metric_id: value}`` via the experiment module's
``validation_metrics`` hook.  The suite compares those measurements
against the committed bands in ``expected/<figure>.json`` and rolls the
outcome up into a :class:`~repro.validate.verdict.Verdict`.

Tiers:

* ``quick`` — minutes, CI-sized operating points; targets are goldens
  pinned from this reproduction (regression detection);
* ``full`` — the figures' default (paper-scaled) operating points;
  targets are the paper's published numbers and claims (fidelity), so
  this is the nightly tier.

Measurement runners import experiment modules lazily so that importing
:mod:`repro.validate` stays cheap and cycle-free.

Because every grid-shaped figure executes through
:func:`repro.runner.run_jobs`, validation runs share the on-disk result
cache with ordinary experiment runs — a re-validation after an unrelated
edit simulates nothing, and each fresh job leaves its usual run manifest
for ``python -m repro.obs report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .bands import check_metric
from .verdict import ExpectedFigure, FigureVerdict, Verdict, load_expected

__all__ = [
    "EXPECTED_DIR",
    "FigureCheck",
    "SUITE",
    "available_figures",
    "expected_path",
    "load_suite_expected",
    "run_suite",
]

#: committed per-figure band files live next to this module
EXPECTED_DIR = Path(__file__).resolve().parent / "expected"

TIERS = ("quick", "full")


@dataclass(frozen=True)
class FigureCheck:
    """One figure's validation entry: title + per-tier measurement runners."""

    figure: str
    title: str
    #: tier name -> thunk returning {metric_id: float}
    runners: Dict[str, Callable[[], Dict[str, float]]]

    def tiers(self) -> List[str]:
        """Tier names this figure participates in, in canonical order."""
        return [t for t in TIERS if t in self.runners]


# ----------------------------------------------------------------------
# measurement runners (lazy imports; tier parameters documented in
# docs/VALIDATION.md — change them only together with update-golden)
# ----------------------------------------------------------------------
def _fig2(full: bool) -> Dict[str, float]:
    from ..experiments import fig2_loss_correlation as mod
    if full:
        return mod.validation_metrics(mod.run())
    from ..experiments.section2 import TrafficCase
    cases = [TrafficCase("case1", n_fwd=5, n_rev=2, web_sessions=2),
             TrafficCase("case2", n_fwd=8, n_rev=4, web_sessions=4)]
    return mod.validation_metrics(
        mod.run(cases=cases, bandwidth=8e6, duration=20.0)
    )


def _fig3(full: bool) -> Dict[str, float]:
    from ..experiments import fig3_predictors as mod
    if full:
        return mod.validation_metrics(mod.run())
    from ..experiments.section2 import TrafficCase
    cases = [TrafficCase("case1", n_fwd=5, n_rev=2, web_sessions=2)]
    return mod.validation_metrics(
        mod.run(cases=cases, bandwidth=8e6, duration=20.0)
    )


def _fig4(full: bool) -> Dict[str, float]:
    from ..experiments import fig4_false_positive_pdf as mod
    if full:
        return mod.validation_metrics(mod.run())
    from ..experiments.section2 import TrafficCase
    cases = [TrafficCase("case1", n_fwd=5, n_rev=2, web_sessions=2),
             TrafficCase("case2", n_fwd=8, n_rev=4, web_sessions=4)]
    return mod.validation_metrics(
        mod.run(cases=cases, bandwidth=8e6, duration=20.0)
    )


def _fig5() -> Dict[str, float]:
    from ..experiments import fig5_response_curve as mod
    # 11 points over 0-25 ms lands exactly on the paper's anchor delays
    # (5/7.5/10/15/20 ms), so the bands can quote Figure 5 directly.
    return mod.validation_metrics(mod.run(n_points=11))


def _fig6(full: bool) -> Dict[str, float]:
    from ..experiments import fig6_bandwidth as mod
    spec = mod.spec() if full else mod.spec(
        bandwidths=[2e6, 8e6], duration=8.0, warmup=3.0, web_sessions=1
    )
    return mod.validation_metrics(spec.run())


def _fig7(full: bool) -> Dict[str, float]:
    from ..experiments import fig7_rtt as mod
    spec = mod.spec() if full else mod.spec(
        rtts=[0.02, 0.05], bandwidth=8e6, n_fwd=6, base_duration=8.0
    )
    return mod.validation_metrics(spec.run())


def _fig8(full: bool) -> Dict[str, float]:
    from ..experiments import fig8_nflows as mod
    spec = mod.spec() if full else mod.spec(
        flow_counts=[2, 12], bandwidth=8e6, duration=8.0, warmup=3.0,
        web_sessions=1,
    )
    return mod.validation_metrics(spec.run())


def _fig9(full: bool) -> Dict[str, float]:
    from ..experiments import fig9_web as mod
    spec = mod.spec() if full else mod.spec(
        session_counts=[2, 6], bandwidth=6e6, n_fwd=4, duration=8.0,
        warmup=3.0,
    )
    return mod.validation_metrics(spec.run())


def _table1(full: bool) -> Dict[str, float]:
    from ..experiments import table1_rtts as mod
    if full:
        return mod.validation_metrics(mod.run())
    return mod.validation_metrics(mod.run(
        bandwidth=8e6, n_fwd=6, web_sessions=4, duration=12.0, warmup=4.0
    ))


def _fig11(full: bool) -> Dict[str, float]:
    from ..experiments import fig11_multibottleneck as mod
    if full:
        return mod.validation_metrics(mod.run())
    return mod.validation_metrics(mod.run(
        n_routers=4, cloud_size=3, link_bw=8e6, duration=12.0, warmup=5.0
    ))


def _fig12(full: bool) -> Dict[str, float]:
    from ..experiments import fig12_dynamics as mod
    if full:
        return mod.validation_metrics(mod.run())
    return mod.validation_metrics(mod.run(
        schemes=("pert", "sack-droptail"), n_cohorts=2, cohort_size=3,
        epoch=8.0, bandwidth=6e6,
    ))


def _fig12b(full: bool) -> Dict[str, float]:
    from ..experiments import fig12b_cbr_dynamics as mod
    if full:
        return mod.validation_metrics(mod.run())
    return mod.validation_metrics(mod.run(schemes=("pert", "sack-droptail")))


def _fig13() -> Dict[str, float]:
    from ..experiments import fig13_fluid as mod
    # Full paper parameters at every tier: the DDE integration is the
    # one sub-minute check whose paper numbers need no scaling.
    return mod.validation_metrics(mod.run())


def _fig14(full: bool) -> Dict[str, float]:
    from ..experiments import fig14_pert_pi as mod
    if full:
        return mod.validation_metrics(mod.run())
    return mod.validation_metrics(mod.run(
        rtts=[0.03, 0.06], bandwidth=8e6, n_fwd=6, web_sessions=1,
        base_duration=8.0,
    ))


def _warmstart(full: bool) -> Dict[str, float]:
    # Exercises repro.snapshot end to end: one simulated warm-up per
    # scheme, every duration measured from a clone of the warmed state.
    # The continuations are bit-identical to cold runs, so their rows
    # can be pinned as goldens like any other figure's.
    from ..experiments.sweep import sweep_dumbbell
    from .extract import rows_to_metrics
    durations = (30.0, 45.0, 60.0) if full else (8.0, 12.0)
    kwargs = (
        dict(bandwidth=10e6, n_fwd=8, warmup=15.0, seed=1)
        if full else dict(bandwidth=6e6, n_fwd=5, warmup=4.0, seed=1)
    )
    rows = sweep_dumbbell(
        [{"duration": d} for d in durations],
        schemes=("pert", "sack-droptail"),
        warm_start=True,
        **kwargs,
    )
    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("duration",),
    )


def _hybrid(full: bool) -> Dict[str, float]:
    # Hybrid fluid-packet engine: every agreement point runs twice (pure
    # packet and hybrid) at the same per-flow bandwidth, plus the
    # 10^5-flow scenario only the hybrid engine can afford.  The agree.*
    # metrics carry hand-set bounds asserting packet-vs-hybrid
    # agreement; everything else is a golden pin.
    from ..experiments import fig_hybrid as mod
    if full:
        return mod.validation_metrics(mod.run())
    return mod.validation_metrics(mod.run(
        flow_counts=[10, 40], duration=12.0, warmup=4.0,
        extreme_duration=12.0, extreme_warmup=4.0,
    ))


#: the registered checks, in docs/RESULTS.md order
SUITE: Dict[str, FigureCheck] = {
    c.figure: c
    for c in (
        FigureCheck("fig2", "Figure 2 — flow-level vs queue-level loss correlation",
                    {"quick": lambda: _fig2(False), "full": lambda: _fig2(True)}),
        FigureCheck("fig3", "Figure 3 — congestion-predictor comparison",
                    {"quick": lambda: _fig3(False), "full": lambda: _fig3(True)}),
        FigureCheck("fig4", "Figure 4 — queue occupancy at srtt_0.99 false positives",
                    {"quick": lambda: _fig4(False), "full": lambda: _fig4(True)}),
        FigureCheck("fig5", "Figure 5 — PERT response curve",
                    {"quick": _fig5, "full": _fig5}),
        FigureCheck("fig6", "Figure 6 — impact of bottleneck bandwidth",
                    {"quick": lambda: _fig6(False), "full": lambda: _fig6(True)}),
        FigureCheck("fig7", "Figure 7 — impact of end-to-end RTT",
                    {"quick": lambda: _fig7(False), "full": lambda: _fig7(True)}),
        FigureCheck("fig8", "Figure 8 — impact of the number of flows",
                    {"quick": lambda: _fig8(False), "full": lambda: _fig8(True)}),
        FigureCheck("fig9", "Figure 9 — impact of web traffic",
                    {"quick": lambda: _fig9(False), "full": lambda: _fig9(True)}),
        FigureCheck("table1", "Table 1 — heterogeneous RTTs",
                    {"quick": lambda: _table1(False), "full": lambda: _table1(True)}),
        FigureCheck("fig11", "Figure 11 — multiple bottlenecks (parking lot)",
                    {"quick": lambda: _fig11(False), "full": lambda: _fig11(True)}),
        FigureCheck("fig12", "Figure 12 — dynamics under arriving/departing flows",
                    {"quick": lambda: _fig12(False), "full": lambda: _fig12(True)}),
        FigureCheck("fig12b", "Section 4.7 — dynamics under CBR traffic",
                    {"full": lambda: _fig12b(True)}),
        FigureCheck("fig13", "Figure 13 — PERT/RED fluid-model stability",
                    {"quick": _fig13, "full": _fig13}),
        FigureCheck("fig14", "Figure 14 — emulating PI at end hosts",
                    {"quick": lambda: _fig14(False), "full": lambda: _fig14(True)}),
        FigureCheck("warmstart", "Warm-started duration sweep (snapshot fidelity)",
                    {"quick": lambda: _warmstart(False), "full": lambda: _warmstart(True)}),
        FigureCheck("hybrid", "Hybrid engine — fluid background vs packet agreement",
                    {"quick": lambda: _hybrid(False), "full": lambda: _hybrid(True)}),
    )
}


def available_figures(tier: str) -> List[str]:
    """Figure ids participating in *tier*, in suite order."""
    return [f for f, c in SUITE.items() if tier in c.runners]


def expected_path(figure: str, expected_dir: Optional[Path] = None) -> Path:
    """Path of *figure*'s committed expected file."""
    root = Path(expected_dir) if expected_dir is not None else EXPECTED_DIR
    return root / f"{figure}.json"


def load_suite_expected(
    figure: str, expected_dir: Optional[Path] = None
) -> Optional[ExpectedFigure]:
    """Load *figure*'s expected bands, or ``None`` when the file is absent."""
    path = expected_path(figure, expected_dir)
    if not path.exists():
        return None
    return load_expected(path)


def measure_figure(figure: str, tier: str) -> Dict[str, float]:
    """Execute *figure*'s measurement runner for *tier*."""
    check = SUITE[figure]
    try:
        runner = check.runners[tier]
    except KeyError:
        raise KeyError(f"{figure} has no {tier!r} tier "
                       f"(tiers: {check.tiers()})") from None
    return runner()


def check_figure(
    figure: str,
    tier: str,
    expected_dir: Optional[Path] = None,
    measurements: Optional[Dict[str, float]] = None,
) -> FigureVerdict:
    """Measure one figure and compare it against its expected bands.

    A measurement-runner exception does not propagate: it lands in
    ``FigureVerdict.error`` and fails the figure, so one broken
    experiment cannot mask the verdicts of the rest.
    """
    check = SUITE[figure]
    expected = load_suite_expected(figure, expected_dir)
    fv = FigureVerdict(figure=figure, title=check.title)
    if expected is None:
        fv.error = (
            f"no expected file for {figure} "
            f"(run `python -m repro.validate update-golden --figure {figure}`)"
        )
        return fv
    t0 = time.monotonic()
    if measurements is None:
        try:
            measurements = measure_figure(figure, tier)
        except Exception as exc:  # noqa: BLE001 - isolate per-figure crashes
            fv.error = f"{type(exc).__name__}: {exc}"
            fv.wall_time = time.monotonic() - t0
            return fv
    fv.wall_time = time.monotonic() - t0
    bands = expected.bands(tier)
    for mid in sorted(bands):
        fv.checks.append(check_metric(mid, bands[mid], measurements.get(mid)))
    fv.unchecked = len([m for m in measurements if m not in bands])
    return fv


def run_suite(
    tier: str,
    figures: Optional[Sequence[str]] = None,
    expected_dir: Optional[Path] = None,
    progress: Optional[Callable[[FigureVerdict], None]] = None,
) -> Verdict:
    """Run every selected figure at *tier* and roll up the verdict."""
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; valid: {TIERS}")
    selected = list(figures) if figures else available_figures(tier)
    unknown = [f for f in selected if f not in SUITE]
    if unknown:
        raise KeyError(f"unknown figures {unknown}; valid: {sorted(SUITE)}")
    verdict = Verdict(tier=tier)
    for figure in selected:
        if tier not in SUITE[figure].runners:
            continue
        fv = check_figure(figure, tier, expected_dir)
        verdict.figures.append(fv)
        if progress is not None:
            progress(fv)
    return verdict
