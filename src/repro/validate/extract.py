"""Metric-id helpers shared by the experiment modules' extraction hooks.

Every experiment module exports ``validation_metrics(output)`` — a hook
that flattens whatever its ``run()`` returns into a flat
``{metric_id: float}`` mapping.  The helpers here keep the id grammar
uniform across figures::

    <scheme>.<metric>                      # single-point tables (Table 1)
    <scheme>.<metric>@<key>=<value>        # one sweep axis (Figs. 6-9)
    <scheme>.<metric>@<k1>=<v1>,<k2>=<v2>  # multi-axis points

Ids must be deterministic (they key the committed ``expected/*.json``
files), so numeric tag values go through :func:`fmt_num` — integral
floats print as ints, everything else through ``repr``-shortest form —
and rows are emitted in input order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["fmt_num", "metric_id", "rows_to_metrics"]


def fmt_num(value) -> str:
    """Deterministic compact rendering of a tag value for metric ids."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def metric_id(prefix: str, metric: str, tags: Mapping[str, object] = ()) -> str:
    """Build one ``prefix.metric@k=v,...`` id from its parts."""
    mid = f"{prefix}.{metric}" if prefix else metric
    if tags:
        point = ",".join(f"{k}={fmt_num(v)}" for k, v in tags.items())
        mid = f"{mid}@{point}"
    return mid


def rows_to_metrics(
    rows: Iterable[Mapping],
    metrics: Sequence[str],
    keys: Sequence[str] = (),
    prefix_col: str = "scheme",
) -> Dict[str, float]:
    """Flatten table rows into ``{metric_id: value}``.

    *keys* name the row columns identifying the sweep point (they become
    the ``@k=v`` suffix); *prefix_col* names the column whose value
    prefixes each id (usually the scheme).  Rows flagged ``failed`` are
    skipped — their metrics then report as ``missing``, which fails the
    gate with the job error visible in the run report rather than a NaN
    comparison.
    """
    out: Dict[str, float] = {}
    for row in rows:
        if row.get("failed"):
            continue
        prefix = str(row[prefix_col]) if prefix_col else ""
        tags = {k: row[k] for k in keys}
        for m in metrics:
            out[metric_id(prefix, m, tags)] = float(row[m])
    return out


def subset(metrics: Mapping[str, float], ids: Sequence[str]) -> List[str]:
    """Expected ids absent from *metrics* (debugging aid for suites)."""
    return [i for i in ids if i not in metrics]
