"""Paper-fidelity regression gate (``python -m repro.validate``).

Runs every reproduced figure/table through the cached parallel runner,
extracts the headline metrics via each experiment module's
``validation_metrics`` hook, and compares them against the committed
expectations in ``src/repro/validate/expected/*.json``:

* **quick** tier — CI-sized operating points checked against *golden*
  targets pinned from this reproduction (tight tolerances; catches any
  behavioural drift);
* **full** tier — paper-scale operating points checked against the
  *paper's* published numbers and claims (loose, documented tolerance
  bands; measures fidelity).

The verdict is machine-readable JSON; ``docs/RESULTS.md`` is regenerated
from it on every run.  See ``docs/VALIDATION.md`` for the tolerance
methodology and the ``update-golden`` workflow.
"""

from .bands import (
    GOLDEN_ABS_TOL,
    GOLDEN_REL_TOL,
    Band,
    MetricCheck,
    check_metric,
)
from .docgen import render_results_md, write_results_md
from .extract import fmt_num, metric_id, rows_to_metrics, subset
from .golden import update_golden
from .suite import (
    SUITE,
    TIERS,
    available_figures,
    check_figure,
    measure_figure,
    run_suite,
)
from .verdict import (
    VERDICT_SCHEMA,
    ExpectedFigure,
    FigureVerdict,
    Verdict,
    load_expected,
    write_expected,
)

__all__ = [
    "Band",
    "MetricCheck",
    "check_metric",
    "GOLDEN_ABS_TOL",
    "GOLDEN_REL_TOL",
    "metric_id",
    "fmt_num",
    "rows_to_metrics",
    "subset",
    "VERDICT_SCHEMA",
    "ExpectedFigure",
    "FigureVerdict",
    "Verdict",
    "load_expected",
    "write_expected",
    "SUITE",
    "TIERS",
    "available_figures",
    "measure_figure",
    "check_figure",
    "run_suite",
    "update_golden",
    "render_results_md",
    "write_results_md",
]
