"""Generate ``docs/RESULTS.md`` from a validation verdict.

The headline results document is *never hand-maintained*: every
``python -m repro.validate run`` regenerates it from the verdict, so the
committed file is exactly what the quick tier measures on a clean
checkout.  The renderer is a pure function of the verdict's
deterministic fields (tier, metric ids, bands, measured values) — no
timestamps, host names, or wall times — which is what makes "regenerate
and ``git diff --exit-code``" a valid CI gate.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from .bands import MetricCheck
from .verdict import FigureVerdict, Verdict

__all__ = ["render_results_md", "write_results_md"]

_BADGES = {"pass": "✅ pass", "gap": "⚠️ known gap", "fail": "❌ FAIL",
           "missing": "❌ MISSING"}

_HEADER = """\
# Results — paper vs. reproduction

<!-- GENERATED FILE — do not edit.
     Regenerate with:  python -m repro.validate run --{tier}
     Methodology and tolerance rationale:  docs/VALIDATION.md -->
"""

_TIER_BLURBS = {
    "quick": (
        "Validation tier: **quick** (CI-sized operating points; targets are "
        "goldens pinned from this reproduction — any drift outside a "
        "metric's band fails the gate).  The nightly `--full` tier compares "
        "the paper-scaled runs against Bhandarkar et al.'s published "
        "numbers instead."
    ),
    "full": (
        "Validation tier: **full** (paper-scaled operating points; targets "
        "are the paper's published numbers and claims with the tolerance "
        "bands documented in docs/VALIDATION.md)."
    ),
}


def _fmt_measured(value: Optional[float]) -> str:
    """Deterministic fixed-format rendering of a measured value."""
    if value is None:
        return "—"
    if value == 0:
        return "0"
    if abs(value) < 1e-3 or abs(value) >= 1e5:
        return f"{value:.3e}"
    return f"{value:.4f}"


def _fmt_deviation(check: MetricCheck) -> str:
    """Signed percent deviation column ("—" without a point target)."""
    dev = check.deviation_pct()
    if dev is None:
        return "—"
    return f"{dev:+.2f}%"


def _figure_section(fig: FigureVerdict) -> List[str]:
    """Render one figure's heading + metric table."""
    lines = [f"## {fig.title}", ""]
    lines.append(f"**Status: {_BADGES.get(fig.status, fig.status)}**")
    lines.append("")
    if fig.error is not None:
        lines.append(f"> check failed to run: `{fig.error}`")
        lines.append("")
        return lines
    if not fig.checks:
        lines.append("_No metrics banded at this tier._")
        lines.append("")
        return lines
    lines.append("| metric | source | band | measured | deviation | status |")
    lines.append("|---|---|---|---|---|---|")
    for c in fig.checks:
        note = f" — {c.band.note}" if c.band.note else ""
        lines.append(
            f"| `{c.metric}` | {c.band.source} | {c.band.describe()} "
            f"| {_fmt_measured(c.measured)} | {_fmt_deviation(c)} "
            f"| {_BADGES.get(c.status, c.status)}{note} |"
        )
    if fig.unchecked:
        lines.append("")
        lines.append(
            f"_{fig.unchecked} additional measured metric"
            f"{'s' if fig.unchecked != 1 else ''} carry no band at this "
            f"tier (see `python -m repro.validate diff`)._"
        )
    lines.append("")
    return lines


def render_results_md(verdict: Verdict) -> str:
    """Render the full RESULTS.md text for *verdict* (deterministic)."""
    counts = verdict.counts()
    lines: List[str] = [_HEADER.format(tier=verdict.tier), ""]
    lines.append(_TIER_BLURBS.get(verdict.tier, f"Validation tier: {verdict.tier}."))
    lines.append("")
    lines.append(
        f"**Overall: {_BADGES.get(verdict.status, verdict.status)}** — "
        f"{counts['pass']} pass, {counts['fail']} fail, "
        f"{counts['gap']} known gaps, {counts['missing']} missing, "
        f"over {len(verdict.figures)} figures."
    )
    lines.append("")
    lines.append("| figure | status | checks | known gaps |")
    lines.append("|---|---|---|---|")
    for fig in verdict.figures:
        gaps = sum(1 for c in fig.checks if c.status == "gap")
        lines.append(
            f"| [{fig.title}](#{_anchor(fig.title)}) "
            f"| {_BADGES.get(fig.status, fig.status)} "
            f"| {len(fig.checks)} | {gaps or ''} |"
        )
    lines.append("")
    for fig in verdict.figures:
        lines.extend(_figure_section(fig))
    return "\n".join(lines).rstrip() + "\n"


def _anchor(title: str) -> str:
    """GitHub-style heading anchor for the overview table's links."""
    out = []
    for ch in title.lower():
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-")
    return "".join(out)


def write_results_md(verdict: Verdict, path: Union[str, Path]) -> Path:
    """Render and write RESULTS.md for *verdict*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = render_results_md(verdict)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
    return path
