"""Paper-fidelity validation CLI.

Usage::

    python -m repro.validate run [--quick|--full] [--figure F ...]
                                 [-j N] [--no-cache] [--cache-dir DIR]
                                 [--docs PATH | --no-docs] [--out PATH]
    python -m repro.validate report [--quick|--full] [--verdict PATH]
    python -m repro.validate update-golden [--quick|--full] [--figure F ...]
    python -m repro.validate diff [--quick|--full] [--figure F ...]

``run`` executes the selected tier through the cached parallel runner,
compares every extracted metric against the committed bands in
``src/repro/validate/expected/``, writes the machine-readable verdict
(plus per-figure deviation manifests for ``python -m repro.obs
report``), regenerates ``docs/RESULTS.md``, and exits non-zero naming
the offending figures when anything lands outside its band.

``report`` re-renders the last verdict without re-running anything;
``diff`` shows every measured metric (banded or not) against its band;
``update-golden`` re-pins the repro-sourced targets after an
intentional behaviour change (see ``docs/VALIDATION.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path
from typing import Dict, Iterator, Optional

from .docgen import write_results_md
from .suite import SUITE, run_suite
from .verdict import FigureVerdict, Verdict

#: default location of the committed, generated results document
DEFAULT_DOCS = Path("docs") / "RESULTS.md"


@contextlib.contextmanager
def _scoped_env(updates: Dict[str, Optional[str]]) -> Iterator[None]:
    """Apply environment overrides for the duration of the run only."""
    saved = {k: os.environ.get(k) for k in updates}
    try:
        for k, v in updates.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _runner_env(args) -> Dict[str, Optional[str]]:
    """Translate CLI flags into the runner's environment knobs."""
    env: Dict[str, Optional[str]] = {}
    if getattr(args, "workers", None) is not None:
        env["REPRO_WORKERS"] = str(args.workers)
    if getattr(args, "no_cache", False):
        env["REPRO_CACHE"] = "0"
    if getattr(args, "cache_dir", None):
        env["REPRO_CACHE_DIR"] = args.cache_dir
    if getattr(args, "progress", False):
        env["REPRO_PROGRESS"] = "1"
    return env


def _tier(args) -> str:
    return "full" if args.full else "quick"


def _validation_dir() -> Path:
    """Where verdicts and validation manifests live: ``<cache>/validation``."""
    from ..runner.cache import default_cache_dir

    return default_cache_dir() / "validation"


def _default_verdict_path(tier: str) -> Path:
    return _validation_dir() / f"verdict-{tier}.json"


def _figure_line(fv: FigureVerdict) -> str:
    """One status line per figure for the live run output."""
    gaps = sum(1 for c in fv.checks if c.status == "gap")
    extra = f", {gaps} known gap{'s' if gaps != 1 else ''}" if gaps else ""
    if fv.error is not None:
        return f"{fv.figure:10s} FAIL   (check error: {fv.error})"
    return (
        f"{fv.figure:10s} {fv.status:5s}  "
        f"{len(fv.checks)} checks{extra}  [{fv.wall_time:.1f}s]"
    )


def _print_failures(verdict: Verdict) -> None:
    """Spell out every out-of-band metric with its band and deviation."""
    for fv in verdict.figures:
        if not fv.failed:
            continue
        print(f"\n{fv.figure} — {fv.title}: FAIL")
        if fv.error is not None:
            print(f"  check error: {fv.error}")
        for c in fv.checks:
            if not c.failed:
                continue
            dev = c.deviation_pct()
            devs = f" ({dev:+.2f}% off target)" if dev is not None else ""
            measured = "not measured" if c.measured is None else repr(c.measured)
            print(f"  {c.metric}: measured {measured}, "
                  f"band {c.band.describe()}{devs}")


def _write_validation_manifests(verdict: Verdict) -> None:
    """Drop one deviation manifest per figure for the obs report CLI."""
    from ..obs.manifest import build_validation_manifest, write_manifest

    out_dir = _validation_dir()
    for fv in verdict.figures:
        manifest = build_validation_manifest(
            figure=fv.figure,
            tier=verdict.tier,
            status=fv.status,
            deviations={c.metric: c.deviation_pct() for c in fv.checks},
            wall_time=fv.wall_time,
            error=fv.error,
        )
        write_manifest(
            out_dir / f"{verdict.tier}-{fv.figure}.manifest.json", manifest
        )


def _summary(verdict: Verdict) -> str:
    counts = verdict.counts()
    return (
        f"overall: {verdict.status} ({counts['pass']} pass / "
        f"{counts['fail']} fail / {counts['gap']} gap / "
        f"{counts['missing']} missing over {len(verdict.figures)} figures)"
    )


def _cmd_run(args) -> int:
    tier = _tier(args)
    with _scoped_env(_runner_env(args)):
        verdict = run_suite(
            tier, figures=args.figure or None,
            expected_dir=Path(args.expected) if args.expected else None,
            progress=lambda fv: print(_figure_line(fv)),
        )
    out_path = Path(args.out) if args.out else _default_verdict_path(tier)
    verdict.save(out_path)
    _write_validation_manifests(verdict)
    print(f"verdict: {out_path}")
    if not args.no_docs:
        docs = Path(args.docs) if args.docs else DEFAULT_DOCS
        write_results_md(verdict, docs)
        print(f"results doc regenerated: {docs}")
    print(_summary(verdict))
    if verdict.status == "fail":
        _print_failures(verdict)
        print(f"\nVALIDATION FAILED: {', '.join(verdict.failing_figures)}")
        return 1
    return 0


def _cmd_report(args) -> int:
    tier = _tier(args)
    path = Path(args.verdict) if args.verdict else _default_verdict_path(tier)
    if not path.exists():
        print(f"no verdict found at {path}")
        print(f"run `python -m repro.validate run --{tier}` first")
        return 2
    verdict = Verdict.load(path)
    print(f"== paper-fidelity verdict (tier: {verdict.tier}) ==")
    for fv in verdict.figures:
        print(_figure_line(fv))
    print(_summary(verdict))
    if verdict.status == "fail":
        _print_failures(verdict)
    return 0


def _cmd_update_golden(args) -> int:
    from .golden import update_golden

    tier = _tier(args)
    with _scoped_env(_runner_env(args)):
        changes = update_golden(
            tier, figures=args.figure or None,
            expected_dir=Path(args.expected) if args.expected else None,
        )
    total = 0
    for figure, changed in changes.items():
        print(f"{figure}: {len(changed)} band change"
              f"{'s' if len(changed) != 1 else ''}")
        for line in changed:
            print(f"  {line}")
        total += len(changed)
    print(f"update-golden ({tier}): {len(changes)} figures rewritten, "
          f"{total} targets changed")
    print("review the expected/*.json diff, then re-run "
          f"`python -m repro.validate run --{tier}`")
    return 0


def _cmd_diff(args) -> int:
    from .suite import load_suite_expected, measure_figure
    from .suite import available_figures as _avail

    tier = _tier(args)
    figures = args.figure or _avail(tier)
    with _scoped_env(_runner_env(args)):
        for figure in figures:
            if tier not in SUITE[figure].runners:
                continue
            expected = load_suite_expected(
                figure, Path(args.expected) if args.expected else None
            )
            bands = expected.bands(tier) if expected is not None else {}
            measured = measure_figure(figure, tier)
            print(f"\n== {figure} — {SUITE[figure].title} ({tier}) ==")
            for mid in sorted(set(bands) | set(measured)):
                band = bands.get(mid)
                value = measured.get(mid)
                shown = "(not measured)" if value is None else f"{value!r}"
                if band is None:
                    print(f"  {mid}: {shown}  [no band]")
                    continue
                dev = band.deviation_pct(value) if value is not None else None
                devs = f"  {dev:+.3f}%" if dev is not None else ""
                ok = "ok" if value is not None and band.contains(value) else "OUT"
                print(f"  {mid}: {shown} vs {band.describe()}{devs}  [{ok}]")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Paper-fidelity regression gate for the PERT reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, runner_flags=True):
        tier = p.add_mutually_exclusive_group()
        tier.add_argument("--quick", action="store_true", default=True,
                          help="CI tier: scaled-down points vs pinned goldens "
                               "(default)")
        tier.add_argument("--full", action="store_true",
                          help="nightly tier: paper-scale points vs published "
                               "numbers")
        p.add_argument("--figure", action="append", metavar="ID",
                       choices=sorted(SUITE),
                       help="restrict to one figure (repeatable)")
        p.add_argument("--expected", default=None, metavar="DIR",
                       help="override the committed expected/ directory "
                            "(tests use this)")
        if runner_flags:
            p.add_argument("-j", "--workers", type=int, default=None,
                           metavar="N",
                           help="worker processes for grid figures "
                                "(default: $REPRO_WORKERS; 0 = serial)")
            p.add_argument("--no-cache", action="store_true",
                           help="disable the on-disk result cache")
            p.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="cache directory (default: $REPRO_CACHE_DIR "
                                "or ~/.cache/repro)")
            p.add_argument("--progress", action="store_true",
                           help="log per-job runner progress")

    run_p = sub.add_parser(
        "run", help="run a tier, regenerate docs/RESULTS.md, gate on bands")
    common(run_p)
    run_p.add_argument("--out", default=None, metavar="PATH",
                       help="verdict JSON path "
                            "(default: <cache>/validation/verdict-<tier>.json)")
    run_p.add_argument("--docs", default=None, metavar="PATH",
                       help=f"results doc path (default: {DEFAULT_DOCS})")
    run_p.add_argument("--no-docs", action="store_true",
                       help="skip regenerating the results doc")
    run_p.set_defaults(fn=_cmd_run)

    rep_p = sub.add_parser("report", help="re-render the last verdict")
    common(rep_p, runner_flags=False)
    rep_p.add_argument("--verdict", default=None, metavar="PATH",
                       help="verdict file to render (default: the tier's "
                            "last `run` output)")
    rep_p.set_defaults(fn=_cmd_report)

    gold_p = sub.add_parser(
        "update-golden",
        help="re-pin golden targets after an intentional change")
    common(gold_p)
    gold_p.set_defaults(fn=_cmd_update_golden)

    diff_p = sub.add_parser(
        "diff", help="show every measured metric against its band")
    common(diff_p)
    diff_p.set_defaults(fn=_cmd_diff)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
