"""The ``update-golden`` workflow: re-pin repro-sourced targets.

Golden bands (``source: "golden"``) pin this reproduction's own
deterministic output; after an *intentional* behaviour change (new RNG
stream, different default parameter, engine rework) they are re-measured
and rewritten here.  Paper bands (``source: "paper"``) encode published
numbers and claims — they are never touched by automation; changing one
is an editorial act done by hand with a rationale in
``docs/VALIDATION.md``.

Reconciliation rules, per figure and tier:

* measured id with an existing golden band  → target := measured value
  (tolerances, notes, bounds are preserved);
* measured id with an existing paper band   → band kept verbatim;
* measured id with no band                  → new golden band with the
  default tolerances (:data:`~repro.validate.bands.GOLDEN_REL_TOL` /
  :data:`~repro.validate.bands.GOLDEN_ABS_TOL`);
* unmeasured golden band                    → dropped (the metric no
  longer exists);
* unmeasured paper band                     → kept, so the next ``run``
  reports it ``missing`` — a silent disappearance of a paper-tracked
  metric must fail loudly, not be garbage-collected.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .bands import Band, GOLDEN_ABS_TOL, GOLDEN_REL_TOL
from .suite import (
    SUITE,
    available_figures,
    expected_path,
    load_suite_expected,
    measure_figure,
)
from .verdict import ExpectedFigure, write_expected

__all__ = ["update_golden"]


def _reconcile(
    old: Dict[str, Band], measured: Dict[str, float]
) -> Tuple[Dict[str, Band], List[str]]:
    """Merge measured values into a band map per the module's rules."""
    new: Dict[str, Band] = {}
    changed: List[str] = []
    for mid, value in measured.items():
        band = old.get(mid)
        if band is None:
            new[mid] = Band(target=value, abs_tol=GOLDEN_ABS_TOL,
                            rel_tol=GOLDEN_REL_TOL, source="golden")
            changed.append(f"+ {mid}")
        elif band.source == "golden":
            if band.target != value:
                changed.append(f"~ {mid}: {band.target!r} -> {value!r}")
            new[mid] = dataclasses.replace(band, target=value)
        else:
            new[mid] = band
    for mid, band in old.items():
        if mid in new:
            continue
        if band.source == "paper":
            new[mid] = band
        else:
            changed.append(f"- {mid}")
    return new, changed


def update_golden(
    tier: str,
    figures: Optional[Sequence[str]] = None,
    expected_dir: Optional[Path] = None,
) -> Dict[str, List[str]]:
    """Re-measure *figures* at *tier* and rewrite their golden targets.

    Returns ``{figure: [change descriptions]}`` (empty list = file
    rewritten with no band changes).  Figures without an expected file
    get one created, all-golden.
    """
    selected = list(figures) if figures else available_figures(tier)
    changes: Dict[str, List[str]] = {}
    for figure in selected:
        if tier not in SUITE[figure].runners:
            continue
        measured = measure_figure(figure, tier)
        existing = load_suite_expected(figure, expected_dir)
        if existing is None:
            existing = ExpectedFigure(
                figure=figure, title=SUITE[figure].title, tiers={}
            )
        new_bands, changed = _reconcile(existing.bands(tier), measured)
        existing.tiers[tier] = new_bands
        existing.title = SUITE[figure].title
        write_expected(existing, expected_path(figure, expected_dir))
        changes[figure] = changed
    return changes
