"""Machine-readable validation verdicts and the expected-file format.

Two JSON artefacts live here:

* **expected files** (``src/repro/validate/expected/<figure>.json``,
  committed) — per-figure, per-tier bands::

      {
        "figure": "fig6",
        "title": "Figure 6 — impact of bottleneck bandwidth",
        "tiers": {
          "quick": {"metrics": {"pert.norm_queue@bandwidth_mbps=2": {...band...}}},
          "full":  {"metrics": {...}}
        }
      }

* **verdict files** (written by ``python -m repro.validate run`` under
  ``<cache>/validation/``) — the machine-readable outcome a later
  ``report``/``diff`` renders, and the input :mod:`repro.validate.docgen`
  turns into ``docs/RESULTS.md``.  Verdicts carry no timestamps or
  host facts in the fields docgen reads, so regenerated docs are
  byte-identical for identical measurements.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .bands import Band, MetricCheck

__all__ = [
    "VERDICT_SCHEMA",
    "ExpectedFigure",
    "FigureVerdict",
    "Verdict",
    "load_expected",
    "write_expected",
]

#: bump when the verdict JSON layout changes incompatibly
VERDICT_SCHEMA = 1


@dataclass
class ExpectedFigure:
    """Parsed expected file: the bands one figure is validated against."""

    figure: str
    title: str
    #: tier name -> {metric id -> Band}
    tiers: Dict[str, Dict[str, Band]]
    path: Optional[Path] = None

    def bands(self, tier: str) -> Dict[str, Band]:
        """The bands of *tier* (empty when the figure skips that tier)."""
        return self.tiers.get(tier, {})

    def to_json(self) -> Dict:
        """JSON-clean dict in the committed expected-file layout."""
        return {
            "figure": self.figure,
            "title": self.title,
            "tiers": {
                tier: {"metrics": {m: b.to_json() for m, b in sorted(bands.items())}}
                for tier, bands in sorted(self.tiers.items())
            },
        }


def load_expected(path: Union[str, Path]) -> ExpectedFigure:
    """Parse one expected file, validating every band eagerly."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    tiers: Dict[str, Dict[str, Band]] = {}
    for tier, section in data.get("tiers", {}).items():
        tiers[tier] = {
            mid: Band.from_json(band)
            for mid, band in section.get("metrics", {}).items()
        }
    return ExpectedFigure(
        figure=data["figure"], title=data.get("title", data["figure"]),
        tiers=tiers, path=path,
    )


def write_expected(expected: ExpectedFigure, path: Union[str, Path]) -> Path:
    """Write an expected file with stable formatting (sorted, indented).

    Stable bytes matter: ``update-golden`` rewrites these committed
    files, and a no-change rewrite must be a no-change diff.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(expected.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


@dataclass
class FigureVerdict:
    """Every metric check of one figure at one tier."""

    figure: str
    title: str
    checks: List[MetricCheck] = field(default_factory=list)
    #: measured metrics the expected file does not band (informational)
    unchecked: int = 0
    #: wall seconds spent producing the measurements (not read by docgen)
    wall_time: float = 0.0
    #: check-runner failure (exception text) — fails the figure outright
    error: Optional[str] = None

    @property
    def status(self) -> str:
        """``pass`` / ``gap`` / ``fail`` rollup for the whole figure."""
        if self.error is not None or any(c.failed for c in self.checks):
            return "fail"
        if any(c.status == "gap" for c in self.checks):
            return "gap"
        return "pass"

    @property
    def failed(self) -> bool:
        """True when this figure should fail the regression gate."""
        return self.status == "fail"

    def to_json(self) -> Dict:
        """JSON-clean dict embedded in the verdict file."""
        return {
            "figure": self.figure,
            "title": self.title,
            "status": self.status,
            "error": self.error,
            "unchecked": self.unchecked,
            "wall_time": self.wall_time,
            "metrics": [
                {
                    "id": c.metric,
                    "status": c.status,
                    "measured": c.measured,
                    "deviation_pct": c.deviation_pct(),
                    "band": c.band.to_json(),
                }
                for c in self.checks
            ],
        }

    @classmethod
    def from_json(cls, data: Dict) -> "FigureVerdict":
        """Rebuild a figure verdict from its JSON dict."""
        checks = [
            MetricCheck(
                metric=m["id"],
                band=Band.from_json(m["band"]),
                measured=m["measured"],
                status=m["status"],
            )
            for m in data.get("metrics", [])
        ]
        return cls(
            figure=data["figure"], title=data.get("title", data["figure"]),
            checks=checks, unchecked=data.get("unchecked", 0),
            wall_time=data.get("wall_time", 0.0), error=data.get("error"),
        )


@dataclass
class Verdict:
    """One full validation run: tier + per-figure verdicts + rollup."""

    tier: str
    figures: List[FigureVerdict] = field(default_factory=list)

    @property
    def status(self) -> str:
        """``pass``/``gap``/``fail`` rollup across all figures."""
        if any(f.failed for f in self.figures):
            return "fail"
        if any(f.status == "gap" for f in self.figures):
            return "gap"
        return "pass"

    @property
    def failing_figures(self) -> List[str]:
        """Names of figures that fail the gate (empty when green)."""
        return [f.figure for f in self.figures if f.failed]

    def counts(self) -> Dict[str, int]:
        """Per-status totals over every metric check."""
        counts = {"pass": 0, "fail": 0, "gap": 0, "missing": 0}
        for fig in self.figures:
            for c in fig.checks:
                counts[c.status] = counts.get(c.status, 0) + 1
        return counts

    def to_json(self) -> Dict:
        """JSON-clean dict (the verdict-file layout)."""
        return {
            "schema": VERDICT_SCHEMA,
            "tier": self.tier,
            "status": self.status,
            "counts": self.counts(),
            "figures": [f.to_json() for f in self.figures],
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the verdict file (stable formatting)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Verdict":
        """Read a verdict file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("schema") != VERDICT_SCHEMA:
            raise ValueError(
                f"verdict schema {data.get('schema')!r} != {VERDICT_SCHEMA} "
                f"(re-run `python -m repro.validate run`)"
            )
        return cls(
            tier=data["tier"],
            figures=[FigureVerdict.from_json(f) for f in data.get("figures", [])],
        )
