"""Tolerance bands: the quantitative contract behind every validation check.

A reproduced metric is never compared to the paper (or to a pinned
golden) by eyeball — each expected value carries an explicit band, and a
measurement either lands inside it or the gate fails.  This is the same
discipline AQM-parameter studies apply when tuning response curves:
quantitative targets with stated tolerances, not "the plot looks right".

A :class:`Band` supports two complementary shapes, usable together:

* **target bands** — ``target`` with ``abs_tol``/``rel_tol``; passes when
  ``|measured - target| <= abs_tol + rel_tol * |target|`` (the
  ``math.isclose`` convention, but one-sided per metric so bands are
  auditable in the expected files);
* **bound bands** — ``min``/``max`` inclusive limits, for the paper's
  qualitative claims ("drop rate ~0", "utilization stays high") where a
  point target would be false precision.

``known_gap`` marks a metric the reproduction is *known* not to hit at
the scaled operating point (documented in ``docs/VALIDATION.md``); an
out-of-band measurement then reports as ``gap`` instead of ``fail`` so
the regression gate stays green without hiding the deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["Band", "MetricCheck", "check_metric"]

#: default relative tolerance for golden (repro-pinned) targets — wide
#: enough for cross-libm ulp noise, tight enough to catch any real drift
GOLDEN_REL_TOL = 1e-6
#: default absolute tolerance floor for golden targets near zero
GOLDEN_ABS_TOL = 1e-9


@dataclass(frozen=True)
class Band:
    """One metric's acceptance region (target +/- tolerance and/or bounds)."""

    target: Optional[float] = None
    abs_tol: float = 0.0
    rel_tol: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    #: "paper" (from Bhandarkar et al.'s published numbers/claims) or
    #: "golden" (pinned from this reproduction; rewritten by update-golden)
    source: str = "golden"
    #: documented known deviation: out-of-band reports as "gap", not "fail"
    known_gap: bool = False
    note: str = ""

    def __post_init__(self):
        if self.target is None and self.min is None and self.max is None:
            raise ValueError("band needs a target, a min, or a max")
        if self.source not in ("paper", "golden"):
            raise ValueError(f"band source must be paper|golden, got {self.source!r}")

    def contains(self, measured: float) -> bool:
        """True when *measured* satisfies every constraint of the band."""
        if math.isnan(measured):
            return False
        if self.target is not None:
            allowed = self.abs_tol + self.rel_tol * abs(self.target)
            if abs(measured - self.target) > allowed:
                return False
        if self.min is not None and measured < self.min:
            return False
        if self.max is not None and measured > self.max:
            return False
        return True

    def deviation_pct(self, measured: float) -> Optional[float]:
        """Signed percent deviation from the target (None without one)."""
        if self.target is None or math.isnan(measured):
            return None
        if self.target == 0.0:
            return None
        return (measured - self.target) / abs(self.target) * 100.0

    def describe(self) -> str:
        """Human-readable band, e.g. ``0.14 ±1e-06r`` or ``≤ 0.005``."""
        bits = []
        if self.target is not None:
            tol = []
            if self.abs_tol:
                tol.append(f"±{self.abs_tol:g}")
            if self.rel_tol:
                tol.append(f"±{self.rel_tol:g}r")
            bits.append(f"{self.target:g} {' '.join(tol) if tol else '(exact)'}")
        if self.min is not None:
            bits.append(f"≥ {self.min:g}")
        if self.max is not None:
            bits.append(f"≤ {self.max:g}")
        return ", ".join(bits)

    def to_json(self) -> Dict[str, Any]:
        """JSON-clean dict for the expected files (omits defaults)."""
        out: Dict[str, Any] = {}
        if self.target is not None:
            out["target"] = self.target
            if self.abs_tol:
                out["abs_tol"] = self.abs_tol
            if self.rel_tol:
                out["rel_tol"] = self.rel_tol
        if self.min is not None:
            out["min"] = self.min
        if self.max is not None:
            out["max"] = self.max
        out["source"] = self.source
        if self.known_gap:
            out["known_gap"] = True
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Band":
        """Parse one expected-file band entry; unknown keys are rejected."""
        known = {"target", "abs_tol", "rel_tol", "min", "max", "source",
                 "known_gap", "note"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown band keys: {sorted(extra)}")
        return cls(
            target=data.get("target"),
            abs_tol=float(data.get("abs_tol", 0.0)),
            rel_tol=float(data.get("rel_tol", 0.0)),
            min=data.get("min"),
            max=data.get("max"),
            source=data.get("source", "golden"),
            known_gap=bool(data.get("known_gap", False)),
            note=data.get("note", ""),
        )


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of checking one measured metric against its band.

    ``status`` is one of ``pass``, ``fail``, ``gap`` (out of band but
    ``known_gap``), or ``missing`` (the expected metric was never
    measured — itself a failure: the extraction hook regressed).
    """

    metric: str
    band: Band
    measured: Optional[float]
    status: str

    @property
    def failed(self) -> bool:
        """True when this check should fail the regression gate."""
        return self.status in ("fail", "missing")

    def deviation_pct(self) -> Optional[float]:
        """Signed percent deviation of the measurement from the target."""
        if self.measured is None:
            return None
        return self.band.deviation_pct(self.measured)


def check_metric(metric: str, band: Band, measured: Optional[float]) -> MetricCheck:
    """Compare one measurement against its band and classify the result."""
    if measured is None:
        return MetricCheck(metric, band, None, "missing")
    measured = float(measured)
    if band.contains(measured):
        return MetricCheck(metric, band, measured, "pass")
    return MetricCheck(metric, band, measured, "gap" if band.known_gap else "fail")
