"""Constant-bit-rate (non-responsive) traffic.

Used for the dynamic-behaviour experiments where sudden changes in
available bandwidth are caused by unresponsive (UDP-like) traffic
entering and leaving the bottleneck (paper Section 4.7).
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Event, Simulator
from ..sim.node import Node
from ..sim.packet import Packet

__all__ = ["CbrSource", "CbrSink"]


class CbrSource:
    """Sends fixed-size packets at a constant rate; ignores congestion."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: int,
        flow_id: int,
        rate_bps: float,
        pkt_size: int = 1000,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.node = node
        self.dst = dst
        self.flow_id = flow_id
        self.rate_bps = rate_bps
        self.pkt_size = pkt_size
        self.interval = pkt_size * 8.0 / rate_bps
        self.pkts_sent = 0
        self._seq = 0
        self._timer: Optional[Event] = None
        self.running = False

    def start(self, at: float = 0.0) -> None:
        self.running = True
        self._timer = self.sim.schedule(max(0.0, at - self.sim.now), self._tick)

    def stop(self) -> None:
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self.running:
            return
        pkt = Packet(
            flow_id=self.flow_id,
            src=self.node.node_id,
            dst=self.dst,
            size=self.pkt_size,
            seq=self._seq,
        )
        self._seq += 1
        self.pkts_sent += 1
        self.node.send(pkt)
        self._timer = self.sim.schedule(self.interval, self._tick)

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - sources ignore input
        pass


class CbrSink:
    """Counts CBR packets arriving at the destination."""

    def __init__(self, node: Node, flow_id: int):
        self.pkts_received = 0
        self.bytes_received = 0
        node.register_endpoint(flow_id, self)

    def receive(self, pkt: Packet) -> None:
        self.pkts_received += 1
        self.bytes_received += pkt.size
