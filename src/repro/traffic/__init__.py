"""Traffic generators: long-lived flows, web sessions, CBR sources."""

from .cbr import CbrSink, CbrSource
from .ftp import start_long_flows
from .web import WebSession, bounded_pareto, start_web_sessions

__all__ = [
    "start_long_flows",
    "WebSession",
    "start_web_sessions",
    "bounded_pareto",
    "CbrSource",
    "CbrSink",
]
