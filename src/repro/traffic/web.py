"""Web-session traffic generator (bursty background load).

Models the HTTP workload the paper mixes into every experiment, with the
heavy-tailed parameterization recommended by Feldmann et al. (SIGCOMM
1999), which the paper cites as its guideline:

* a session is an endless alternation of *think time* and *page fetch*,
* a page has a Pareto-distributed number of objects,
* each object is a Pareto-distributed number of packets transferred over
  its own short-lived TCP connection (slow start dominates, producing the
  bursty arrivals RED/PERT must absorb).

Object transfers reuse the full TCP implementation, so web packets share
queues — and loss/marking — with the long-lived flows.
"""

from __future__ import annotations

import functools
import random
from typing import Iterator, List, Optional, Type

from ..sim.engine import Simulator
from ..sim.node import Node
from ..tcp.base import TcpSender, connect_flow

__all__ = ["WebSession", "start_web_sessions", "bounded_pareto"]


def bounded_pareto(rng: random.Random, shape: float, scale: float, cap: float) -> float:
    """Pareto(shape, scale) sample truncated at *cap*."""
    if shape <= 0 or scale <= 0 or cap < scale:
        raise ValueError("need shape > 0, 0 < scale <= cap")
    x = scale / (rng.random() ** (1.0 / shape))
    return min(x, cap)


class WebSession:
    """One endless client session fetching pages from a server node.

    Parameters
    ----------
    server, client:
        Data flows server -> client; ACKs flow back.
    think_mean:
        Mean exponential think time between pages (seconds).
    objects_shape / objects_scale / objects_cap:
        Pareto parameters for objects-per-page (defaults give a mean of
        about 3 objects, capped at 30).
    size_shape / size_scale_pkts / size_cap_pkts:
        Pareto parameters for object size in packets (mean ~12 packets
        with shape 1.2, matching the heavy-tailed web-object sizes of the
        Feldmann et al. guidance).
    """

    def __init__(
        self,
        sim: Simulator,
        server: Node,
        client: Node,
        flow_ids: Iterator[int],
        rng: random.Random,
        sender_cls: Type[TcpSender] = TcpSender,
        think_mean: float = 1.0,
        objects_shape: float = 1.5,
        objects_scale: float = 1.0,
        objects_cap: float = 30.0,
        size_shape: float = 1.2,
        size_scale_pkts: float = 2.0,
        size_cap_pkts: float = 200.0,
        pkt_size: int = 1000,
        **sender_kwargs,
    ):
        self.sim = sim
        self.server = server
        self.client = client
        self.flow_ids = flow_ids
        self.rng = rng
        self.sender_cls = sender_cls
        self.think_mean = think_mean
        self.objects_shape = objects_shape
        self.objects_scale = objects_scale
        self.objects_cap = objects_cap
        self.size_shape = size_shape
        self.size_scale_pkts = size_scale_pkts
        self.size_cap_pkts = size_cap_pkts
        self.pkt_size = pkt_size
        self.sender_kwargs = sender_kwargs
        self.pages_fetched = 0
        self.objects_fetched = 0
        self.packets_requested = 0
        #: completion time of each finished object transfer (seconds) —
        #: the response-time metric AQM evaluations report for web loads
        self.object_latencies: List[float] = []
        self.active = False
        self._objects_left = 0

    def start(self, at: float = 0.0) -> None:
        self.active = True
        self.sim.schedule(max(0.0, at - self.sim.now), self._begin_page)

    def stop(self) -> None:
        self.active = False

    # ------------------------------------------------------------------
    def _begin_page(self) -> None:
        if not self.active:
            return
        self._objects_left = int(
            round(bounded_pareto(self.rng, self.objects_shape, self.objects_scale,
                                 self.objects_cap))
        )
        self._objects_left = max(1, self._objects_left)
        self._fetch_next_object()

    def _fetch_next_object(self) -> None:
        if not self.active:
            return
        if self._objects_left <= 0:
            self.pages_fetched += 1
            self.sim.schedule(self.rng.expovariate(1.0 / self.think_mean),
                              self._begin_page)
            return
        self._objects_left -= 1
        npkts = int(round(bounded_pareto(self.rng, self.size_shape,
                                         self.size_scale_pkts, self.size_cap_pkts)))
        npkts = max(1, npkts)
        self.packets_requested += npkts
        fid = next(self.flow_ids)
        sender, sink = connect_flow(
            self.sim, self.server, self.client, flow_id=fid,
            sender_cls=self.sender_cls, pkt_size=self.pkt_size,
            **self.sender_kwargs,
        )
        started_at = self.sim.now
        # A partial of a bound method, not a local closure: the completion
        # callback lives on the sender across snapshot/restore and
        # closures cannot be pickled.
        sender.on_complete = functools.partial(self._object_done, started_at, fid)
        sender.start(npackets=npkts)

    def _object_done(self, started_at: float, fid: int, _sender: TcpSender) -> None:
        self.objects_fetched += 1
        self.object_latencies.append(self.sim.now - started_at)
        # Tear down endpoints so node tables don't grow without bound.
        self.server.unregister_endpoint(fid)
        self.client.unregister_endpoint(fid)
        self._fetch_next_object()


def start_web_sessions(
    sim: Simulator,
    n_sessions: int,
    server: Node,
    client: Node,
    flow_ids: Iterator[int],
    rng: Optional[random.Random] = None,
    start_window: float = 5.0,
    **session_kwargs,
) -> List[WebSession]:
    """Start *n_sessions* independent sessions between two hosts."""
    rng = rng or sim.stream("web")
    sessions = []
    for i in range(n_sessions):
        srng = random.Random(rng.random())
        s = WebSession(sim, server, client, flow_ids, srng, **session_kwargs)
        s.start(at=rng.uniform(0.0, start_window))
        sessions.append(s)
    return sessions
