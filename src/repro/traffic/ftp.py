"""Long-lived ("FTP") flow population helpers.

The paper's background load is a set of long-term flows whose start
times are drawn uniformly from an interval (0-50 s in the paper) so that
late starters exercise the fairness concerns of Section 3.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple, Type

from ..sim.engine import Simulator
from ..sim.node import Node
from ..tcp.base import TcpSender, TcpSink, connect_flow

__all__ = ["start_long_flows"]


def start_long_flows(
    sim: Simulator,
    pairs: List[Tuple[Node, Node]],
    flow_ids: Iterator[int],
    sender_cls: Type[TcpSender] = TcpSender,
    start_window: float = 5.0,
    rng: Optional[random.Random] = None,
    record_rtt_flow_index: Optional[int] = None,
    **sender_kwargs,
) -> List[Tuple[TcpSender, TcpSink]]:
    """Start one infinite flow per (src, dst) pair at a random time.

    Parameters
    ----------
    pairs:
        Source/destination host pairs, one long flow each.
    flow_ids:
        Iterator yielding unique flow ids (share one across all traffic).
    start_window:
        Start times are uniform in [0, start_window).
    record_rtt_flow_index:
        If given, that flow records its per-ACK RTT trace (the paper's
        "observed" flow of Section 2).
    """
    rng = rng or sim.stream("ftp-starts")
    flows: List[Tuple[TcpSender, TcpSink]] = []
    for idx, (src, dst) in enumerate(pairs):
        fid = next(flow_ids)
        record = record_rtt_flow_index is not None and idx == record_rtt_flow_index
        sender, sink = connect_flow(
            sim, src, dst, flow_id=fid, sender_cls=sender_cls,
            record_rtt=record, **sender_kwargs,
        )
        sender.start(at=rng.uniform(0.0, start_window))
        flows.append((sender, sink))
    return flows
