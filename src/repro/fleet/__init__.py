"""Distributed, resumable sweep fabric (ROADMAP open item #2).

:mod:`repro.runner` fans a finite job list out to one-shot processes and
returns when the list is done; the fleet turns that into a *service*: a
crash-safe on-disk job queue that any number of workers — started,
killed and restarted at will — converge against with zero recomputation
of finished points.  The pieces:

* :class:`~repro.fleet.journal.Journal` — append-only JSONL op log with
  ``flock``-serialized writers and torn-tail-tolerant replay; the single
  source of truth for queue state.
* :class:`~repro.fleet.queue.JobQueue` — the pending/leased/done/failed
  state machine replayed from the journal: priority-ordered leases with
  expiry, double-lease prevention, dead-worker requeue.
* :class:`~repro.fleet.store.ResultStore` — content-addressed results
  (canonical job-param hash, shared with :mod:`repro.runner.cache`), so
  identical points dedupe *across* sweeps and across fleet directories
  pointed at the same store.
* :class:`~repro.fleet.worker.FleetWorker` — lease → run → store → ack
  loop; resumes killed points from their periodic
  :mod:`repro.snapshot` checkpoints, renews its leases from a daemon
  thread, and publishes lifecycle events on :mod:`repro.obs.bus`.
* :class:`~repro.fleet.transport.LocalTransport` — spawns workers as
  local processes; the :class:`~repro.fleet.transport.Transport`
  interface is what a multi-host backend would implement instead.
* :class:`~repro.fleet.scheduler.Fleet` — the user-facing facade:
  ``submit`` (with store-hit dedupe), ``drain``/``resume``, ``status``,
  ``results``; ``python -m repro.fleet`` wraps it in a CLI.

Determinism contract: jobs are deterministic functions of their spec, so
at-least-once execution (a lease that expires mid-run may be re-leased)
still yields exactly-once *results* — the store is keyed by content, a
re-leased job first checks the store, and a resumed run is bit-identical
to a straight-through one (the :mod:`repro.snapshot` guarantee).
"""

from .journal import Journal
from .queue import JOB_STATES, JobQueue, JobState
from .scheduler import Fleet, SubmitReceipt, resolve_fleet
from .store import ResultStore
from .transport import LocalTransport, Transport
from .worker import FleetWorker, work_loop

__all__ = [
    "Fleet",
    "FleetWorker",
    "JOB_STATES",
    "JobQueue",
    "JobState",
    "Journal",
    "LocalTransport",
    "ResultStore",
    "SubmitReceipt",
    "Transport",
    "resolve_fleet",
    "work_loop",
]
