"""``python -m repro.fleet`` — operate a fleet directory from the shell.

Subcommands mirror the :class:`~repro.fleet.scheduler.Fleet` verbs::

    python -m repro.fleet submit  RUNS/fleet --jobs jobs.json --sweep fig7
    python -m repro.fleet drain   RUNS/fleet --workers 4
    python -m repro.fleet status  RUNS/fleet --json
    python -m repro.fleet resume  RUNS/fleet --workers 4

``jobs.json`` is a JSON array of ``{"kind": ..., "params": {...}}``
objects (``-`` reads the array from stdin), i.e. exactly the runner's
job vocabulary — any registered job kind can be fleeted.  ``submit`` and
``drain`` are separate processes on purpose: the kill-tolerance story is
"submit once, drain from as many machines/terminals as you like, kill
any of them, ``resume``" — all coordination lives in the fleet
directory, none in any single process.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .queue import DEFAULT_MAX_ATTEMPTS, DEFAULT_TTL
from .scheduler import Fleet

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    """The ``repro.fleet`` argument parser (split out for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Operate a crash-safe fleet sweep directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def fleet_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("root", help="fleet directory (created if missing)")
        p.add_argument("--store", default=None,
                       help="result store directory (default: <root>/store; "
                            "may point at an existing runner cache)")
        p.add_argument("--no-bus", action="store_true",
                       help="disable the fleet telemetry bus")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")

    p = sub.add_parser("submit", help="enqueue jobs as one sweep")
    fleet_args(p)
    p.add_argument("--jobs", required=True,
                   help="path to a JSON array of {kind, params} objects "
                        "('-' reads stdin)")
    p.add_argument("--sweep", default=None,
                   help="sweep name (default: auto-generated)")
    p.add_argument("--priority", type=int, default=0,
                   help="sweep priority; higher drains first (default 0)")

    for name, help_text in (
        ("drain", "run workers until every job is terminal"),
        ("resume", "requeue expired leases, then drain"),
    ):
        p = sub.add_parser(name, help=help_text)
        fleet_args(p)
        p.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = drain in-process)")
        p.add_argument("--ttl", type=float, default=DEFAULT_TTL,
                       help=f"lease TTL seconds (default {DEFAULT_TTL})")
        p.add_argument("--checkpoint", type=float, default=None,
                       help="checkpoint interval seconds for resumable jobs")
        p.add_argument("--max-attempts", type=int,
                       default=DEFAULT_MAX_ATTEMPTS,
                       help="lease attempts before a job fails terminally "
                            f"(default {DEFAULT_MAX_ATTEMPTS})")

    p = sub.add_parser("status", help="print queue depths and store traffic")
    fleet_args(p)
    return parser


def _open_fleet(args: argparse.Namespace) -> Fleet:
    """Build the :class:`Fleet` an invocation addresses."""
    kwargs = {}
    if getattr(args, "ttl", None) is not None:
        kwargs["ttl"] = args.ttl
    if getattr(args, "checkpoint", None) is not None:
        kwargs["checkpoint"] = args.checkpoint
    if getattr(args, "max_attempts", None) is not None:
        kwargs["max_attempts"] = args.max_attempts
    return Fleet(args.root, store=args.store,
                 bus=False if args.no_bus else None, **kwargs)


def _load_jobs(source: str) -> List[tuple]:
    """Read a ``{kind, params}`` array from *source* (path or ``-``)."""
    if source == "-":
        raw = sys.stdin.read()
    else:
        with open(source, "r", encoding="utf-8") as fh:
            raw = fh.read()
    data = json.loads(raw)
    if not isinstance(data, list):
        raise SystemExit("--jobs must be a JSON array of {kind, params}")
    jobs = []
    for i, item in enumerate(data):
        if (not isinstance(item, dict) or "kind" not in item
                or not isinstance(item.get("params", {}), dict)):
            raise SystemExit(f"--jobs entry {i} is not a {{kind, params}} object")
        jobs.append((item["kind"], item.get("params", {})))
    return jobs


def _print(payload, as_json: bool) -> None:
    """Emit *payload* as JSON or a readable key: value block."""
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    for key, value in payload.items():
        print(f"{key}: {value}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    fleet = _open_fleet(args)
    if args.command == "submit":
        receipt = fleet.submit(_load_jobs(args.jobs), sweep=args.sweep,
                               priority=args.priority)
        _print(receipt.summary(), args.json)
        return 0
    if args.command in ("drain", "resume"):
        run = fleet.resume if args.command == "resume" else fleet.drain
        counts = run(workers=args.workers)
        _print(counts, args.json)
        return 1 if counts.get("failed") else 0
    if args.command == "status":
        status = fleet.status()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(f"fleet: {status['root']}")
            print(f"counts: {status['counts']}")
            print(f"computed: {status['computed']}")
            print(f"store: {status['store']}")
            print(f"drained: {status['drained']}")
            for sweep, per in sorted(status["sweeps"].items()):
                print(f"sweep {sweep}: {per}")
        return 0
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
