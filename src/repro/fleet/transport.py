"""Worker transports: how the scheduler turns "N workers" into processes.

The scheduler is deliberately ignorant of *where* workers run; it talks
to a :class:`Transport` — start N workers, tell me who died, stop — and
everything else (leases, results, telemetry) flows through the shared
on-disk fabric (journal + store + bus), which any machine that can see
the directory can join.  :class:`LocalTransport` is the multi-process
implementation shipped today; a multi-host backend (SSH, a container
scheduler, ...) would implement the same four methods and change nothing
else, because workers coordinate exclusively through the filesystem
fabric, never through the scheduler process.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional

from ..runner.executor import _mp_context
from .worker import work_loop

__all__ = ["Transport", "LocalTransport"]


class Transport:
    """Minimal contract between the scheduler and a worker backend."""

    def start(self, n: int, **worker_kwargs) -> List[str]:
        """Launch *n* workers; returns their worker ids."""
        raise NotImplementedError

    def alive(self) -> List[str]:
        """Ids of workers currently running."""
        raise NotImplementedError

    def reap(self) -> List[str]:
        """Collect and return ids of workers that exited since last call."""
        raise NotImplementedError

    def stop(self) -> None:
        """Terminate every remaining worker (idempotent)."""
        raise NotImplementedError


class LocalTransport(Transport):
    """Workers as local processes (fork where available, like the runner).

    Each worker process runs :func:`repro.fleet.worker.work_loop` against
    the fleet directory and exits when the queue drains.  Worker death —
    crash, ``kill -9``, OOM — is detected by :meth:`reap`; recovery is
    the queue's job (lease expiry), respawn policy the scheduler's.

    The live process handles are exposed as :attr:`procs` so the
    kill-tolerance tests (and the CI ``fleet-smoke`` job) can SIGKILL
    real workers mid-flight.
    """

    def __init__(self, root, **worker_defaults):
        """Transport over fleet directory *root*; *worker_defaults* are
        baked into every :func:`work_loop` launch (ttl, checkpoint, ...)."""
        self.root = root
        self.worker_defaults = dict(worker_defaults)
        self.procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._ctx = _mp_context()
        self._counter = 0

    def start(self, n: int, **worker_kwargs) -> List[str]:
        """Spawn *n* worker processes; returns their worker ids."""
        kwargs = dict(self.worker_defaults)
        kwargs.update(worker_kwargs)
        started: List[str] = []
        for _ in range(n):
            worker_id = f"local-{self._counter}"
            self._counter += 1
            proc = self._ctx.Process(
                target=work_loop,
                args=(self.root, worker_id),
                kwargs=kwargs,
                daemon=True,
                name=f"repro-fleet-{worker_id}",
            )
            proc.start()
            self.procs[worker_id] = proc
            started.append(worker_id)
        return started

    def alive(self) -> List[str]:
        """Worker ids whose processes are still running."""
        return [wid for wid, p in self.procs.items() if p.is_alive()]

    def reap(self) -> List[str]:
        """Join and drop exited workers; returns the newly-dead ids."""
        dead: List[str] = []
        for wid, proc in list(self.procs.items()):
            if not proc.is_alive():
                proc.join()
                del self.procs[wid]
                dead.append(wid)
        return dead

    def stop(self) -> None:
        """Terminate (then kill) every remaining worker process."""
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(timeout=5.0)
        self.procs.clear()

    def pid_of(self, worker_id: str) -> Optional[int]:
        """OS pid of a live worker (tests aim their SIGKILLs with this)."""
        proc = self.procs.get(worker_id)
        return proc.pid if proc is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalTransport alive={self.alive()}>"
