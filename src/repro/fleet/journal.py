"""Crash-safe append-only operation log backing the fleet job queue.

The journal is a JSON Lines file of queue *operations* (submit / lease /
renew / done / failed / requeue).  Queue state is never stored — it is
always reconstructed by replaying the journal, which is what makes the
queue kill-tolerant: any process can die at any byte and the survivors
(or a later ``python -m repro.fleet resume``) rebuild exactly the state
the durable prefix of the log describes.

Concurrency and crash-safety rules:

* **Writers serialize on ``flock``** over a sibling ``journal.lock``
  file.  Unlike the telemetry bus (lock-free ``O_APPEND`` lines), queue
  mutations are read-modify-write — a lease must observe the latest
  state before claiming a job — so a real mutex is required, and
  ``flock`` gives one that evaporates with its holder: a worker killed
  with ``SIGKILL`` while holding the lock does not wedge the queue.
* **Torn tails are repaired, not fatal.**  A writer killed mid-append
  can leave a final line without a trailing newline.  The next writer
  (under the lock) first terminates such a tail with a newline so its
  own record starts on a fresh line; replay skips the unparseable
  fragment.  The lost operation was never durable, and every operation
  is safe to lose: an un-journaled lease expires implicitly, an
  un-journaled ``done`` re-leases into a content-addressed store hit.
* **Replay is incremental.**  Readers keep a byte offset and a buffered
  partial tail (the same technique as the dashboard's bus tailer), so
  syncing a multi-megabyte journal costs only the new bytes.
"""

from __future__ import annotations

import fcntl
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = ["JOURNAL_SCHEMA", "JOURNAL_FILENAME", "OPS", "Journal"]

#: bump when the operation vocabulary / fields change incompatibly
JOURNAL_SCHEMA = 1

#: journal filename inside a fleet directory
JOURNAL_FILENAME = "journal.jsonl"

#: operation -> required fields (beyond v/op/ts)
OPS: Dict[str, tuple] = {
    "submit": ("key", "kind", "params", "sweep", "priority"),
    "lease": ("key", "worker", "expires"),
    "renew": ("key", "worker", "expires"),
    "done": ("key", "worker", "store"),
    "failed": ("key", "worker", "error"),
    "requeue": ("key", "reason"),
}


def _validate(rec: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless *rec* is a well-formed journal record."""
    if not isinstance(rec, dict):
        raise ValueError(f"journal record must be a dict, got {type(rec).__name__}")
    if rec.get("v") != JOURNAL_SCHEMA:
        raise ValueError(f"unsupported journal schema {rec.get('v')!r}")
    op = rec.get("op")
    required = OPS.get(op)
    if required is None:
        raise ValueError(f"unknown journal op {op!r}")
    missing = [f for f in required if f not in rec]
    if missing:
        raise ValueError(f"journal op {op!r} missing fields {missing}")


class Journal:
    """One fleet directory's operation log plus its writer lock.

    Each process (scheduler, every worker) holds its own :class:`Journal`
    over the same directory.  All mutations go through
    :meth:`append` *inside* a :meth:`locked` block, after syncing state
    from the log — the lock is what upgrades "append-only file" into
    "linearizable state machine".
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.path = self.root / JOURNAL_FILENAME
        self.lock_path = self.root / "journal.lock"
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock_fd: Optional[int] = None
        self._offset = 0
        self._tail = b""

    # -- locking -------------------------------------------------------
    @contextmanager
    def locked(self) -> Iterator[None]:
        """Hold the exclusive writer lock for the block (reentrant-free).

        The lock lives in a separate ``journal.lock`` file so that the
        journal itself is only ever opened for append/read; ``flock``
        dies with the holding process, so a ``kill -9`` mid-transition
        can stall nobody.
        """
        fd = os.open(str(self.lock_path), os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            self._lock_fd = fd
            try:
                yield
            finally:
                self._lock_fd = None
        finally:
            os.close(fd)  # closing releases the flock

    # -- writing -------------------------------------------------------
    def append(self, op: str, **fields) -> Dict[str, Any]:
        """Validate and durably append one operation record.

        Must be called while :meth:`locked` is held (enforced) — the
        append is preceded by a torn-tail repair, and the caller is
        expected to have synced and validated the transition against
        current state first.
        """
        if self._lock_fd is None:
            raise RuntimeError("Journal.append requires the journal lock; "
                               "wrap the transition in `with journal.locked():`")
        rec = {"v": JOURNAL_SCHEMA, "op": op, "ts": time.time()}
        rec.update(fields)
        _validate(rec)
        data = (json.dumps(rec, sort_keys=True) + "\n").encode("utf-8")
        # O_RDWR (not O_WRONLY): the torn-tail repair reads the last byte
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            self._repair_tail(fd)
            os.write(fd, data)
        finally:
            os.close(fd)
        return rec

    @staticmethod
    def _repair_tail(fd: int) -> None:
        """Terminate a torn final line so the next record parses cleanly.

        A writer killed mid-``write`` leaves a partial line; without this
        newline the next append would concatenate onto the fragment and
        corrupt *two* records instead of losing the already-lost one.
        """
        size = os.lseek(fd, 0, os.SEEK_END)
        if size == 0:
            return
        os.lseek(fd, size - 1, os.SEEK_SET)
        if os.read(fd, 1) != b"\n":
            os.lseek(fd, 0, os.SEEK_END)
            os.write(fd, b"\n")

    # -- reading -------------------------------------------------------
    def read_new(self) -> List[Dict[str, Any]]:
        """Return records appended since the last call (incremental replay).

        Unparseable lines — the torn tail of a killed writer, or its
        newline-repaired fragment — are skipped: they were never durable
        operations.  A final line still missing its newline is buffered
        until a later read completes it.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except OSError:
            return []
        if not chunk:
            return []
        self._offset += len(chunk)
        data = self._tail + chunk
        lines = data.split(b"\n")
        self._tail = lines.pop()  # b"" when data ended in a newline
        records: List[Dict[str, Any]] = []
        for line in lines:
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                _validate(rec)
            except ValueError:
                continue
            records.append(rec)
        return records

    def rewind(self) -> None:
        """Forget the read position (the next :meth:`read_new` replays all)."""
        self._offset = 0
        self._tail = b""

    def read_all(self) -> List[Dict[str, Any]]:
        """Full replay from byte zero, independent of the read position."""
        fresh = Journal.__new__(Journal)
        fresh.root, fresh.path, fresh.lock_path = self.root, self.path, self.lock_path
        fresh._lock_fd, fresh._offset, fresh._tail = None, 0, b""
        return fresh.read_new()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Journal path={self.path} offset={self._offset}>"
