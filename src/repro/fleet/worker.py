"""Work-stealing fleet worker: lease → run → store → acknowledge.

A worker is a loop over the shared :class:`~repro.fleet.queue.JobQueue`;
"work stealing" needs no extra machinery because every worker leases
from the same priority-ordered queue — an idle worker automatically
picks up whatever sweep has runnable points, whichever process submitted
it.

One leased job runs exactly like a :mod:`repro.runner` job attempt, by
construction from the same pieces:

* :func:`repro.obs.runtime.observe_job` + the bus heartbeat thread, so
  fleet jobs publish the same phase/heartbeat telemetry the dashboard
  already renders;
* :func:`repro.snapshot.runtime.checkpoint_scope` over a checkpoint
  file stored *next to the result's store entry* — a worker killed
  mid-point leaves its checkpoint behind, the lease expires, and the
  next worker to lease the point **resumes from the checkpoint instead
  of restarting it** (bit-identically, per the snapshot guarantee);
* a lease-renewal daemon thread (its own :class:`JobQueue` instance, so
  it never races the main loop's state) that extends the lease every
  ``ttl/3`` seconds while the simulation runs.

Results land in the content-addressed store *before* the ``done``
acknowledgement is journaled; if the worker dies between the two, the
re-leased job finds the store entry and acknowledges a hit — the
at-least-once queue never recomputes a finished point.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union

from ..obs.bus import BUS_FILENAME, EventBus, bus_scope, heartbeat_loop
from ..obs.runtime import observe_job
from ..runner.executor import record_observation
from ..runner.registry import resolve_job
from ..runner.spec import JobSpec
from ..snapshot.runtime import checkpoint_scope
from .queue import DEFAULT_MAX_ATTEMPTS, DEFAULT_TTL, JobQueue, JobState
from .store import ResultStore

__all__ = ["FleetWorker", "work_loop", "resolve_fleet_bus"]

#: idle sleep between lease attempts when the queue is busy elsewhere
_IDLE_POLL = 0.05


def resolve_fleet_bus(root: Union[str, Path], bus=None) -> Optional[Path]:
    """Where a fleet's bus file lives: ``<root>/events.jsonl`` by default.

    Unlike the runner (bus default-off via ``$REPRO_BUS``), a fleet is a
    long-running service whose whole point includes live visibility, so
    its bus is **on by default**; pass ``bus=False`` to silence it or an
    explicit path to relocate it.
    """
    if bus is False:
        return None
    if bus is not None:
        return Path(bus).expanduser()
    return Path(root) / BUS_FILENAME


class FleetWorker:
    """One worker process's (or thread's) lease-run-store loop."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        store: Optional[Union[str, Path, ResultStore]] = None,
        worker_id: Optional[str] = None,
        ttl: float = DEFAULT_TTL,
        checkpoint: Optional[float] = None,
        bus=None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        self.root = Path(root)
        if isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store if store is not None
                                     else self.root / "store")
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.ttl = float(ttl)
        self.checkpoint = checkpoint
        self.bus_path = resolve_fleet_bus(self.root, bus)
        self.queue = JobQueue(self.root, max_attempts=max_attempts)
        self._renew_queue = JobQueue(self.root, max_attempts=max_attempts)
        self.jobs_run = 0

    # ------------------------------------------------------------------
    def run(self, *, exit_when_drained: bool = True,
            max_jobs: Optional[int] = None, poll: float = _IDLE_POLL) -> int:
        """Lease and execute jobs until the queue drains; returns jobs run.

        ``exit_when_drained=False`` keeps the worker parked on an empty
        queue (a long-running service worker awaiting future submits);
        ``max_jobs`` bounds the loop for tests.
        """
        live = EventBus(self.bus_path, job=None) if self.bus_path else None
        if live is not None:
            live.emit("fleet_worker", worker=self.worker_id, state="started")
        try:
            while max_jobs is None or self.jobs_run < max_jobs:
                self.queue.requeue_expired()
                job = self.queue.lease(self.worker_id, ttl=self.ttl)
                if job is None:
                    self.queue.sync()
                    if exit_when_drained and self.queue.drained():
                        break
                    time.sleep(poll)
                    continue
                if live is not None:
                    live.emit("fleet_leased", key=job.key,
                              worker=self.worker_id, expires=job.expires,
                              attempt=job.attempts)
                self.run_one(job, live)
                self.jobs_run += 1
        finally:
            if live is not None:
                live.emit("fleet_worker", worker=self.worker_id, state="exited")
                live.close()
        return self.jobs_run

    # ------------------------------------------------------------------
    def run_one(self, job: JobState, live: Optional[EventBus] = None) -> None:
        """Execute one leased job and journal its outcome.

        Store-first ordering: the payload is durably stored (and its
        manifest written) before ``done`` is journaled, so a crash in
        the gap costs one redundant lease that immediately acknowledges
        a store hit — never a recompute.
        """
        spec = JobSpec(job.kind, job.params)
        entry = self.store.get(spec)
        if entry is not None:
            self.queue.done(job.key, self.worker_id, store="hit")
            if live is not None:
                live.emit("fleet_done", key=job.key, worker=self.worker_id,
                          store="hit")
            return
        ckpt_path = (self.store.checkpoint_path_for(spec)
                     if self.checkpoint else None)
        t0 = time.monotonic()
        try:
            with bus_scope(self.bus_path, job=job.key) as bus, \
                    observe_job() as obs, \
                    heartbeat_loop(bus), \
                    checkpoint_scope(ckpt_path, self.checkpoint) as slot, \
                    self._renewing(job.key):
                payload = resolve_job(job.kind)(dict(job.params))
        except Exception as exc:  # noqa: BLE001 - isolate any job failure
            error = f"{type(exc).__name__}: {exc}"
            state = self.queue.fail(job.key, self.worker_id, error)
            if live is not None:
                if state == "failed":
                    live.emit("fleet_failed", key=job.key,
                              worker=self.worker_id, error=error[:500])
                else:
                    live.emit("fleet_requeued", key=job.key,
                              reason=f"attempt failed: {error[:200]}")
            return
        obs_meta = obs.finish()
        if slot is not None:
            lineage = slot.summary()
            if lineage is not None:
                obs_meta["checkpoint"] = lineage
            slot.discard()
        meta = {
            "events": _events_of(payload),
            "wall_time": time.monotonic() - t0,
            "attempts": job.attempts,
        }
        self.store.put(spec, payload, meta=meta)
        record_observation(self.store, spec, meta, payload, obs_meta)
        self.queue.done(job.key, self.worker_id, store="fresh")
        if live is not None:
            live.emit("fleet_done", key=job.key, worker=self.worker_id,
                      store="fresh")

    # ------------------------------------------------------------------
    def _renewing(self, key: str):
        """Context: renew the lease on *key* every ``ttl/3`` wall seconds.

        Runs on a daemon thread with its own queue instance (its journal
        sync must not race the main loop's).  If a renewal is refused —
        the lease expired and someone re-leased the key — renewals stop
        and the worker finishes as a zombie whose eventual ``done`` is
        still a valid, idempotent acknowledgement.
        """
        stop = threading.Event()
        interval = max(0.05, self.ttl / 3.0)

        def loop() -> None:
            while not stop.wait(interval):
                try:
                    if not self._renew_queue.renew(key, self.worker_id,
                                                   ttl=self.ttl):
                        return
                except OSError:  # pragma: no cover - disk trouble
                    return

        thread = threading.Thread(target=loop, name="repro-fleet-renew",
                                  daemon=True)

        class _Scope:
            def __enter__(self_inner):
                thread.start()
                return self_inner

            def __exit__(self_inner, exc_type, exc, tb):
                stop.set()
                thread.join(timeout=2.0)

        return _Scope()


def _events_of(payload: Any) -> int:
    """Simulator events reported by a job payload, if it carries any."""
    if isinstance(payload, dict):
        v = payload.get("events_processed")
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            return int(v)
    return 0


def work_loop(root: Union[str, Path], worker_id: Optional[str] = None, *,
              store: Optional[Union[str, Path]] = None,
              ttl: float = DEFAULT_TTL,
              checkpoint: Optional[float] = None,
              bus=None,
              max_attempts: int = DEFAULT_MAX_ATTEMPTS,
              exit_when_drained: bool = True,
              max_jobs: Optional[int] = None) -> int:
    """Module-level worker entry point (picklable for spawn-start processes).

    Builds a :class:`FleetWorker` over *root* and runs it; this is what
    :class:`~repro.fleet.transport.LocalTransport` launches in each
    worker process, and what a future multi-host transport would invoke
    on remote machines.
    """
    worker = FleetWorker(
        root, store=store, worker_id=worker_id, ttl=ttl,
        checkpoint=checkpoint, bus=bus, max_attempts=max_attempts,
    )
    return worker.run(exit_when_drained=exit_when_drained, max_jobs=max_jobs)
