"""Fleet facade: submit sweeps, drain them with workers, read results.

:class:`Fleet` ties the fabric's pieces together behind four verbs:

* :meth:`Fleet.submit` — dedupe each point against the content-addressed
  store (a point finished by *any* earlier sweep is acknowledged as a
  store hit without ever reaching a worker), journal the rest;
* :meth:`Fleet.drain` — run workers (in-process, or a
  :class:`~repro.fleet.transport.LocalTransport` process pool with
  bounded respawn of dead workers) until every job is terminal;
* :meth:`Fleet.resume` — requeue expired leases and drain; this is the
  whole crash-recovery story, because the journal replay plus the store
  already encode everything else;
* :meth:`Fleet.results` — payloads for a sweep, in submission order,
  read back from the store.

A fleet directory is self-describing::

    <root>/journal.jsonl   operation log (the queue)
    <root>/journal.lock    writer mutex (flock)
    <root>/store/          content-addressed results (ResultCache layout)
    <root>/events.jsonl    telemetry bus (fleet_* + per-job events)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..obs.bus import EventBus
from ..runner.spec import JobSpec
from .queue import DEFAULT_MAX_ATTEMPTS, DEFAULT_TTL, JobQueue
from .store import ResultStore
from .transport import LocalTransport
from .worker import FleetWorker, resolve_fleet_bus

__all__ = ["SubmitReceipt", "Fleet", "resolve_fleet"]

#: environment variable naming a default fleet directory (CLI / sweeps)
FLEET_ENV = "REPRO_FLEET"


@dataclass
class SubmitReceipt:
    """What :meth:`Fleet.submit` accepted, per sweep."""

    sweep: str
    keys: List[str] = field(default_factory=list)  # submit order, all points
    submitted: int = 0  # newly journaled as pending
    deduped: int = 0  # acknowledged from the store without running
    known: int = 0  # already in this fleet's queue (resubmission)

    def summary(self) -> Dict[str, Any]:
        """JSON-clean receipt (for ``submit --json`` and bus payloads)."""
        return {
            "sweep": self.sweep,
            "jobs": len(self.keys),
            "submitted": self.submitted,
            "deduped": self.deduped,
            "known": self.known,
        }


class Fleet:
    """One fleet directory's scheduler-side handle."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        store: Optional[Union[str, Path, ResultStore]] = None,
        bus=None,
        ttl: float = DEFAULT_TTL,
        checkpoint: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        """Open (creating if needed) the fleet at *root*.

        *store* defaults to ``<root>/store`` but may point anywhere — in
        particular at an existing runner cache directory, which makes
        every previously cached point a submit-time dedupe.  *ttl*,
        *checkpoint* and *max_attempts* become the defaults for workers
        this fleet launches.
        """
        self.root = Path(root)
        if isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store if store is not None
                                     else self.root / "store")
        self.ttl = float(ttl)
        self.checkpoint = checkpoint
        self.max_attempts = int(max_attempts)
        self.bus_path = resolve_fleet_bus(self.root, bus)
        self.queue = JobQueue(self.root, max_attempts=max_attempts)
        self._sweep_counter = 0

    # ------------------------------------------------------------------
    def submit(self, jobs: Iterable[Union[JobSpec, Tuple[str, Dict]]], *,
               sweep: Optional[str] = None, priority: int = 0) -> SubmitReceipt:
        """Enqueue *jobs* (specs or ``(kind, params)`` pairs) as one sweep.

        Dedupe happens here, not in workers: a job whose content key is
        already present in the store is journaled and immediately
        acknowledged ``done(store="hit")``, so drains converge without
        touching it.  Re-submitting an in-flight sweep is idempotent by
        key (counted in ``known``), which is how a crashed *submitter*
        recovers: just run the same submit again.
        """
        if sweep is None:
            sweep = self._fresh_sweep_name()
        receipt = SubmitReceipt(sweep=sweep)
        for item in jobs:
            spec = item if isinstance(item, JobSpec) else JobSpec(*item)
            key = spec.cache_key
            receipt.keys.append(key)
            fresh = self.queue.submit(key, spec.kind, dict(spec.params),
                                      sweep=sweep, priority=priority)
            if not fresh:
                receipt.known += 1
                continue
            if self.store.contains(spec):
                self.queue.done(key, "scheduler", store="hit")
                receipt.deduped += 1
            else:
                receipt.submitted += 1
        self._emit("fleet_submitted", sweep=sweep, jobs=len(receipt.keys),
                   deduped=receipt.deduped)
        self._emit_queue()
        return receipt

    def _fresh_sweep_name(self) -> str:
        """Generate a sweep name unique across processes and restarts."""
        self._sweep_counter += 1
        return (f"sweep-{os.getpid()}-{int(time.time() * 1000):x}"
                f"-{self._sweep_counter}")

    # ------------------------------------------------------------------
    def drain(self, *, workers: int = 0, max_respawns: Optional[int] = None,
              poll: float = 0.1, status_every: float = 1.0) -> Dict[str, int]:
        """Run workers until every job is terminal; returns final counts.

        ``workers=0`` drains in-process (serial, debuggable — the exact
        worker loop, same telemetry).  ``workers=N`` launches a
        :class:`LocalTransport` pool; workers that die (crash, OOM,
        ``kill -9``) are detected by reaping and respawned up to
        *max_respawns* times (default ``4 * workers``) — their expired
        leases requeue via the normal TTL path either way.  While
        draining, a ``fleet_queue`` depth snapshot is emitted every
        *status_every* seconds for the live dashboard.
        """
        if workers <= 0:
            worker = FleetWorker(
                self.root, store=self.store, ttl=self.ttl,
                checkpoint=self.checkpoint, bus=self._bus_arg(),
                max_attempts=self.max_attempts,
            )
            worker.run(exit_when_drained=True)
            self.queue.sync()
            self._emit_queue()
            return self.queue.counts()
        if max_respawns is None:
            max_respawns = 4 * workers
        transport = self.transport()
        transport.start(workers)
        respawned = 0
        last_status = 0.0
        try:
            while True:
                self.queue.requeue_expired()
                self.queue.sync()
                now = time.monotonic()
                if now - last_status >= status_every:
                    self._emit_queue()
                    last_status = now
                if self.queue.drained():
                    break
                dead = transport.reap()
                if dead:
                    want = min(len(dead), max(0, max_respawns - respawned))
                    if want:
                        transport.start(want)
                        respawned += want
                    elif not transport.alive():
                        # every worker is gone and the respawn budget is
                        # spent: let TTL expiry fail the stuck leases
                        # rather than spin forever on an undrainable queue
                        expired = self.queue.requeue_expired()
                        if self.queue.drained() or (
                                not expired and not self.queue.counts()["leased"]
                                and not self.queue.counts()["pending"]):
                            break
                        transport.start(1)
                        respawned += 1
                time.sleep(poll)
        finally:
            transport.stop()
        self.queue.sync()
        self._emit_queue()
        return self.queue.counts()

    def resume(self, *, workers: int = 0, **drain_kwargs) -> Dict[str, int]:
        """Recover after a crash: requeue expired leases, then drain.

        Nothing else is needed — journal replay reconstructs the queue,
        finished points are store hits, and half-finished points resume
        from their :mod:`repro.snapshot` checkpoints inside the workers.
        """
        for key in self.queue.requeue_expired():
            self._emit("fleet_requeued", key=key, reason="lease_expired")
        return self.drain(workers=workers, **drain_kwargs)

    def transport(self, **worker_kwargs) -> LocalTransport:
        """A :class:`LocalTransport` preloaded with this fleet's defaults."""
        kwargs = dict(
            store=str(self.store.root), ttl=self.ttl,
            checkpoint=self.checkpoint, bus=self._bus_arg(),
            max_attempts=self.max_attempts,
        )
        kwargs.update(worker_kwargs)
        return LocalTransport(str(self.root), **kwargs)

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Queue depths, per-sweep progress, and store traffic, fresh."""
        self.queue.sync()
        counts = self.queue.counts()
        sweeps: Dict[str, Dict[str, int]] = {}
        fresh = hit = 0
        for sweep, keys in self.queue.sweeps.items():
            per = {state: 0 for state in ("pending", "leased", "done", "failed")}
            for key in keys:
                per[self.queue.jobs[key].state] += 1
            sweeps[sweep] = per
        for job in self.queue.jobs.values():
            if job.state == "done":
                if job.store == "hit":
                    hit += 1
                else:
                    fresh += 1
        return {
            "root": str(self.root),
            "counts": counts,
            "drained": self.queue.drained(),
            "sweeps": sweeps,
            "computed": {"fresh": fresh, "hit": hit},
            "store": self.store.stats.snapshot(),
        }

    def results(self, sweep: Union[str, SubmitReceipt]) -> List[Dict[str, Any]]:
        """Per-job outcomes for *sweep*, in submission order.

        *sweep* is a sweep name or a :class:`SubmitReceipt` — pass the
        receipt when some of your points may have deduped against an
        *earlier* sweep (they stay attached to the sweep that first
        submitted them, so the name alone would miss them).  Each entry
        carries the job's terminal ``state`` plus either the store
        ``payload`` (done) or the recorded ``error`` (failed / still in
        flight).
        """
        self.queue.sync()
        keys = (sweep.keys if isinstance(sweep, SubmitReceipt)
                else self.queue.sweep_keys(sweep))
        out: List[Dict[str, Any]] = []
        for key in keys:
            job = self.queue.jobs[key]
            entry = (self.store.get(JobSpec(job.kind, job.params))
                     if job.state == "done" else None)
            out.append({
                "key": key,
                "kind": job.kind,
                "params": job.params,
                "state": job.state,
                "payload": entry["payload"] if entry is not None else None,
                "error": job.error,
            })
        return out

    # ------------------------------------------------------------------
    def _bus_arg(self):
        """The ``bus=`` value workers should inherit (path or ``False``)."""
        return self.bus_path if self.bus_path is not None else False

    def _emit(self, event_type: str, **fields) -> None:
        """Emit one scheduler-side bus event (no-op when the bus is off)."""
        if self.bus_path is None:
            return
        bus = EventBus(self.bus_path, job=None)
        try:
            bus.emit(event_type, **fields)
        finally:
            bus.close()

    def _emit_queue(self) -> None:
        """Emit a ``fleet_queue`` depth snapshot for the dashboard."""
        if self.bus_path is None:
            return
        self._emit("fleet_queue", **self.queue.counts())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Fleet root={self.root} {self.queue.counts()}>"


def resolve_fleet(fleet=None) -> Optional[Fleet]:
    """Resolve a ``fleet=`` argument the way ``cache=`` resolves.

    ``None`` consults ``$REPRO_FLEET`` (unset/empty → no fleet),
    ``False`` forces fleet-less execution, a :class:`Fleet` passes
    through, and a string/path opens a fleet rooted there.
    """
    if fleet is False:
        return None
    if isinstance(fleet, Fleet):
        return fleet
    if fleet is None:
        env = os.environ.get(FLEET_ENV, "").strip()
        if not env:
            return None
        fleet = env
    return Fleet(fleet)
