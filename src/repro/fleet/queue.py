"""Persistent job queue: the state machine replayed from the journal.

State machine (every arrow is one durable journal operation)::

                 submit                lease
    (unknown) ──────────▶  pending ──────────▶  leased
                             ▲  ▲                 │ │ │
               requeue       │  │    requeue      │ │ └─ renew (loops)
       (attempts remain) ────┘  └─────────────────┘ │
                                (lease expired /    │
                                 worker failure)    │ done / failed
                                                    ▼
                                           done  /  failed (terminal)

Invariants the tests in ``tests/fleet`` pin down:

* **No double lease** — ``lease`` only fires on a *pending* job, checked
  under the journal writer lock after syncing the latest state, so two
  racing workers can never both claim a key.
* **Lease expiry requeues, never loses** — a worker that vanishes
  (``kill -9``) simply stops renewing; once ``expires`` passes,
  :meth:`JobQueue.requeue_expired` makes the job pending again (or
  terminally failed once ``max_attempts`` leases have been burned).
* **At-least-once is safe** — an expired-but-alive "zombie" worker may
  still finish its run; its ``done`` is accepted whatever the current
  state, because results are content-addressed and deterministic.
* **Replay is total** — queue state is a pure function of the journal
  prefix; a truncated final line (torn write) is skipped by the journal
  layer and the lost operation re-derives (expiry, store hit).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .journal import Journal

__all__ = ["JOB_STATES", "JobState", "JobQueue"]

#: the queue states a job can be in
JOB_STATES = ("pending", "leased", "done", "failed")

#: default lease time-to-live (wall seconds) — long enough for a slow
#: simulation chunk between renewals, short enough to notice dead workers
DEFAULT_TTL = 30.0

#: default cap on leases per job before it is marked terminally failed
DEFAULT_MAX_ATTEMPTS = 5


@dataclass
class JobState:
    """Replayed state of one job key."""

    key: str
    kind: str
    params: Dict[str, Any]
    sweep: str
    priority: int
    seq: int  # submission order, the FIFO tiebreak within a priority
    state: str = "pending"
    worker: Optional[str] = None
    expires: Optional[float] = None
    attempts: int = 0  # leases burned so far
    error: Optional[str] = None
    store: Optional[str] = None  # "fresh" | "hit" once done
    meta: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        """JSON-clean per-job record for ``status --json`` and tests."""
        return {
            "key": self.key,
            "kind": self.kind,
            "sweep": self.sweep,
            "priority": self.priority,
            "state": self.state,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "store": self.store,
        }


class JobQueue:
    """Journal-backed queue shared by every process of one fleet.

    Each process holds its own instance; mutations take the journal
    writer lock, replay any operations appended by other processes, then
    validate and append their own — so the in-memory mirror is always
    consistent with the durable log at the moment of the transition.
    """

    def __init__(self, root: Union[str, Path], *,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        self.journal = Journal(root)
        self.max_attempts = int(max_attempts)
        self.jobs: Dict[str, JobState] = {}
        self.sweeps: Dict[str, List[str]] = {}  # sweep -> keys, submit order
        self._ready: List[tuple] = []  # lazy heap of (-priority, seq, key)
        self._seq = 0
        self.sync()

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Apply journal operations appended since the last sync."""
        count = 0
        for rec in self.journal.read_new():
            self._apply(rec)
            count += 1
        return count

    def _apply(self, rec: Dict[str, Any]) -> None:
        op = rec["op"]
        key = rec["key"]
        if op == "submit":
            if key in self.jobs:
                return  # duplicate submit: first one wins
            job = JobState(
                key=key, kind=rec["kind"], params=rec["params"],
                sweep=rec["sweep"], priority=int(rec["priority"]),
                seq=self._seq,
            )
            self._seq += 1
            self.jobs[key] = job
            self.sweeps.setdefault(job.sweep, []).append(key)
            self._push_ready(job)
            return
        job = self.jobs.get(key)
        if job is None:
            return  # op for an unknown key (foreign/corrupt log): ignore
        if op == "lease":
            job.state = "leased"
            job.worker = rec["worker"]
            job.expires = float(rec["expires"])
            job.attempts += 1
        elif op == "renew":
            if job.state == "leased" and job.worker == rec["worker"]:
                job.expires = float(rec["expires"])
        elif op == "done":
            job.state = "done"
            job.worker = rec["worker"]
            job.store = rec["store"]
            job.expires = None
            job.error = None
        elif op == "failed":
            job.state = "failed"
            job.worker = rec["worker"]
            job.error = rec["error"]
            job.expires = None
        elif op == "requeue":
            if job.state == "leased":
                job.state = "pending"
                job.worker = None
                job.expires = None
                self._push_ready(job)

    def _push_ready(self, job: JobState) -> None:
        heapq.heappush(self._ready, (-job.priority, job.seq, job.key))

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def submit(self, key: str, kind: str, params: Dict[str, Any], *,
               sweep: str = "default", priority: int = 0) -> bool:
        """Durably add one job; returns ``False`` if the key is known.

        Submission is idempotent by key — re-submitting a sweep that
        partially ran resumes it instead of duplicating work.
        """
        with self.journal.locked():
            self.sync()
            if key in self.jobs:
                return False
            self.journal.append(
                "submit", key=key, kind=kind, params=params,
                sweep=sweep, priority=int(priority),
            )
            self.sync()  # consume our own record; _apply must run exactly once
            return True

    def lease(self, worker: str, *, ttl: float = DEFAULT_TTL,
              now: Optional[float] = None) -> Optional[JobState]:
        """Claim the highest-priority pending job for *worker*, or ``None``.

        The claim happens under the writer lock *after* replaying other
        processes' operations, which is the double-lease guard: a job
        someone else leased a millisecond ago is no longer pending here.
        """
        now = time.time() if now is None else now
        with self.journal.locked():
            self.sync()
            while self._ready:
                _, _, key = heapq.heappop(self._ready)
                job = self.jobs.get(key)
                if job is None or job.state != "pending":
                    continue  # stale heap entry (leased/finished elsewhere)
                self.journal.append(
                    "lease", key=key, worker=worker, expires=now + float(ttl),
                )
                self.sync()
                return job
            return None

    def renew(self, key: str, worker: str, *, ttl: float = DEFAULT_TTL,
              now: Optional[float] = None) -> bool:
        """Extend *worker*'s lease on *key*; ``False`` if it no longer
        holds the lease (expired and re-leased elsewhere)."""
        now = time.time() if now is None else now
        with self.journal.locked():
            self.sync()
            job = self.jobs.get(key)
            if job is None or job.state != "leased" or job.worker != worker:
                return False
            self.journal.append(
                "renew", key=key, worker=worker, expires=now + float(ttl),
            )
            self.sync()
            return True

    def done(self, key: str, worker: str, *, store: str = "fresh") -> None:
        """Mark *key* finished (*store* is ``"fresh"`` or ``"hit"``).

        Accepted regardless of current state: a zombie worker whose lease
        expired may still land a valid, deterministic result — done wins.
        """
        with self.journal.locked():
            self.sync()
            job = self.jobs.get(key)
            if job is None or job.state == "done":
                return  # unknown or already finished: idempotent
            self.journal.append("done", key=key, worker=worker, store=store)
            self.sync()

    def fail(self, key: str, worker: str, error: str) -> str:
        """Record a failed attempt; requeue while attempts remain.

        Returns the job's resulting state (``"pending"`` when requeued,
        ``"failed"`` when its attempt budget is exhausted).
        """
        with self.journal.locked():
            self.sync()
            job = self.jobs.get(key)
            if job is None or job.state in ("done", "failed"):
                return job.state if job is not None else "failed"
            if job.attempts < self.max_attempts:
                self.journal.append(
                    "requeue", key=key, reason=f"attempt failed: {error[:200]}",
                )
            else:
                self.journal.append(
                    "failed", key=key, worker=worker, error=error[:500],
                )
            self.sync()
            return job.state

    def requeue_expired(self, *, now: Optional[float] = None) -> List[str]:
        """Return expired leases to pending (the dead-worker recovery).

        A job whose attempt budget is already burned is marked terminally
        failed instead of looping through doomed leases forever.
        """
        now = time.time() if now is None else now
        recovered: List[str] = []
        with self.journal.locked():
            self.sync()
            expired = [
                job for job in self.jobs.values()
                if job.state == "leased" and job.expires is not None
                and job.expires <= now
            ]
            for job in expired:
                if job.attempts >= self.max_attempts:
                    self.journal.append(
                        "failed", key=job.key, worker=job.worker,
                        error=f"lease expired after {job.attempts} attempts",
                    )
                else:
                    self.journal.append(
                        "requeue", key=job.key, reason="lease_expired",
                    )
                recovered.append(job.key)
            if expired:
                self.sync()
        return recovered

    # ------------------------------------------------------------------
    # queries (read-only; sync() first for freshness)
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Jobs per state, e.g. ``{"pending": 3, "leased": 1, ...}``."""
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            out[job.state] += 1
        return out

    def drained(self) -> bool:
        """True when nothing is pending or leased (all jobs terminal)."""
        return all(j.state in ("done", "failed") for j in self.jobs.values())

    def sweep_keys(self, sweep: str) -> List[str]:
        """Keys of *sweep* in submission order (empty for unknown sweeps)."""
        return list(self.sweeps.get(sweep, ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobQueue {self.counts()} at {self.journal.root}>"
