"""Content-addressed result store: one computation per distinct point, ever.

The store *is* a :class:`repro.runner.cache.ResultCache` — same on-disk
layout (``<root>/<key[:2]>/<key>.json``), same atomic writes, same
content-addressed keys (:func:`repro.runner.spec.content_key`) — plus
the accounting the fleet's zero-recomputation guarantee is asserted
against: explicit hit/miss/put counters and a ``contains`` probe.

Because the layout and keying are shared, a fleet store can literally be
pointed at an existing runner cache directory (or several fleet
directories at one shared store): any point finished by *any* sweep —
runner or fleet, yesterday or today — is a store hit, not a recompute.
The kill-tolerance tests and the CI ``fleet-smoke`` job compare these
counters (and store file hashes) across a killed-and-resumed run to
prove that finished points are never simulated twice.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..runner.cache import ResultCache
from ..runner.spec import JobSpec

__all__ = ["StoreStats", "ResultStore"]


class StoreStats:
    """Monotone counters for one process's view of a store."""

    __slots__ = ("hits", "misses", "puts")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def snapshot(self) -> Dict[str, int]:
        """JSON-clean counter dict (for status payloads and bus events)."""
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StoreStats hits={self.hits} misses={self.misses} puts={self.puts}>"


class ResultStore(ResultCache):
    """A :class:`ResultCache` that counts its traffic.

    ``get``/``put`` keep the parent's semantics bit-for-bit (defensive
    reads, atomic writes, corrupt entries discarded as misses); the
    subclass only observes.  Counters are per-process and advisory —
    the durable truth about what was computed lives in the fleet
    journal's ``done(store="fresh"|"hit")`` records.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        super().__init__(root)
        self.stats = StoreStats()

    def get(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """Counted :meth:`ResultCache.get`: a hit or a miss, never both."""
        entry = super().get(spec)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def put(self, spec: JobSpec, payload: Any, meta: Optional[Dict] = None) -> Path:
        """Counted :meth:`ResultCache.put`."""
        self.stats.puts += 1
        return super().put(spec, payload, meta=meta)

    def contains(self, spec: JobSpec) -> bool:
        """Uncounted existence probe (submit-time dedupe peeks cheaply)."""
        return self.path_for(spec).exists()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore root={self.root} {self.stats!r}>"
