"""TCP Vegas (Brakmo & Peterson, SIGCOMM 1994).

Vegas is both a baseline protocol in the paper's Section 4 evaluation and
the best of the prior congestion *predictors* in Section 2.  Its window
adjustment compares achieved to expected throughput:

    diff = (cwnd / base_rtt - cwnd / rtt) * base_rtt        [packets]

Once per RTT, the window is increased by one if ``diff < alpha``,
decreased by one if ``diff > beta``, and held otherwise.  During slow
start the window doubles only every *other* RTT and Vegas falls out of
slow start as soon as ``diff > gamma``.

The paper attributes Vegas' queue build-up (Figures 6 and 8) to its goal
of keeping ``alpha``–``beta`` packets queued per flow; with many flows
this sums to a large standing queue — reproducing that behaviour is part
of the evaluation.
"""

from __future__ import annotations

from typing import Optional

from ..sim.packet import Packet
from .base import TcpSender

__all__ = ["VegasSender"]


class VegasSender(TcpSender):
    """TCP Vegas sender.

    Parameters
    ----------
    alpha, beta:
        Lower/upper bounds on the per-flow backlog estimate (packets);
        ns-2 defaults 1 and 3.
    gamma:
        Slow-start exit threshold (packets).
    """

    def __init__(self, *args, alpha: float = 1.0, beta: float = 3.0,
                 gamma: float = 1.0, **kwargs):
        kwargs.setdefault("ecn", False)
        super().__init__(*args, **kwargs)
        if not 0 <= alpha <= beta:
            raise ValueError("need 0 <= alpha <= beta")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._epoch_end = 0.0  # next per-RTT adjustment time
        self._ss_grow_this_epoch = True  # double every other RTT

    # ------------------------------------------------------------------
    def _diff_packets(self, rtt: float) -> Optional[float]:
        """Vegas backlog estimate in packets, or None before any sample."""
        if self.min_rtt == float("inf") or rtt <= 0:
            return None
        expected = self.cwnd / self.min_rtt
        actual = self.cwnd / rtt
        return (expected - actual) * self.min_rtt

    def _increase_on_ack(self) -> None:
        # Vegas replaces per-ACK growth with a per-RTT decision in on_ack;
        # during slow start the doubling is also gated there.
        pass

    def on_ack(self, pkt: Packet, rtt_sample: Optional[float]) -> None:
        rtt = rtt_sample if rtt_sample is not None else self.last_rtt
        if rtt is None or self.sim.now < self._epoch_end:
            return
        self._epoch_end = self.sim.now + rtt
        diff = self._diff_packets(rtt)
        if diff is None:
            return
        if self.cwnd < self.ssthresh:  # slow start, Vegas-style
            if diff > self.gamma:
                # Leave slow start: back off by 1/8 and switch to CA.
                self.ssthresh = max(2.0, self.cwnd - 1.0)
                self.cwnd = max(2.0, self.cwnd * 7.0 / 8.0)
            elif self._ss_grow_this_epoch:
                self.cwnd = min(self.cwnd * 2.0, self.max_cwnd)
                self._ss_grow_this_epoch = False
            else:
                self._ss_grow_this_epoch = True
            return
        if diff < self.alpha:
            self.cwnd = min(self.cwnd + 1.0, self.max_cwnd)
        elif diff > self.beta:
            self.cwnd = max(2.0, self.cwnd - 1.0)
