"""Named TCP variants used as the paper's baselines.

``SackSender`` is the plain loss-based SACK TCP run over DropTail queues;
``SackEcnSender`` is the same stack with ECN negotiated, paired with RED
(the paper's "SACK/RED-ECN" baseline).
"""

from __future__ import annotations

from .base import TcpSender

__all__ = ["SackSender", "SackEcnSender"]


class SackSender(TcpSender):
    """Loss-based SACK TCP (the paper's "SACK/DropTail" baseline)."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("ecn", False)
        super().__init__(*args, **kwargs)


class SackEcnSender(TcpSender):
    """ECN-enabled SACK TCP (the paper's "SACK/RED-ECN" baseline)."""

    def __init__(self, *args, **kwargs):
        kwargs["ecn"] = True
        super().__init__(*args, **kwargs)
