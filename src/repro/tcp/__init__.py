"""TCP substrate: sender/receiver agents and the paper's baseline variants."""

from .base import TcpSender, TcpSink, connect_flow
from .reno import NewRenoSender
from .sack import SackEcnSender, SackSender
from .vegas import VegasSender

__all__ = [
    "TcpSender",
    "TcpSink",
    "connect_flow",
    "SackSender",
    "SackEcnSender",
    "NewRenoSender",
    "VegasSender",
]
