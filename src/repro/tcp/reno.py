"""NewReno TCP (no SACK) — an additional loss-based reference stack.

The paper's baselines use SACK, but the Section 2 measurement studies it
revisits ([21], [26]) collected standard-TCP traces; having a NewReno
sender lets the predictor experiments be replayed over non-SACK dynamics
as well.  NewReno is realised on top of the base scoreboard machinery by
ignoring SACK blocks entirely: loss inference comes only from duplicate
ACKs and partial ACKs.
"""

from __future__ import annotations

from ..sim.packet import Packet
from .base import TcpSender

__all__ = ["NewRenoSender"]


class NewRenoSender(TcpSender):
    """NewReno: dupack-driven fast retransmit with partial-ACK repair."""

    def _process_sack(self, pkt: Packet) -> None:
        # NewReno receivers still send dupacks; SACK information is ignored.
        pass

    def _mark_losses(self) -> None:
        pass

    @property
    def pipe(self) -> int:
        # Without SACK, each duplicate ACK is the only evidence that a
        # packet has left the network — the classical window-inflation
        # trick expressed as a pipe estimate.
        window = self.high_water - self.cum_ack
        return max(0, window - self.dupacks - len(self.lost) + len(self.rtx_out))
