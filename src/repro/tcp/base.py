"""Window-based TCP sender/receiver agents at packet granularity.

This is the transport substrate the paper's evaluation rests on.  The
sender implements the loss-based machinery shared by every variant in the
paper's comparison set:

* slow start and congestion avoidance (one segment per RTT),
* fast retransmit / SACK-based loss recovery (a packet-granularity
  rendition of RFC 6675's pipe algorithm, as in ns-2's ``sack1``),
* retransmission timeouts with exponential backoff and Karn's rule,
* ECN (ECT on data, CE marked by AQM queues, ECE echoed by the receiver,
  CWR on response; one window reduction per RTT).

Sequence numbers count *packets*, not bytes, exactly as ns-2's TCP agents
do; only packet sizes matter to the queues.  Subclasses hook into
:meth:`TcpSender.on_ack` (per-ACK, with the RTT sample) and
:meth:`TcpSender._increase_on_ack` (window growth) — TCP Vegas and PERT
are built on these hooks.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Type

from ..sim.engine import Event, Simulator
from ..sim.node import Node
from ..sim.packet import ACK_SIZE, DATA_SIZE, Packet

__all__ = ["TcpSender", "TcpSink", "connect_flow"]

# Loss-recovery constants
DUPACK_THRESHOLD = 3
MIN_RTO = 0.2  # ns-2's minrto_ default used in AQM studies
MAX_RTO = 60.0
INITIAL_RTO = 3.0


class TcpSender:
    """SACK TCP sender.

    Parameters
    ----------
    sim, node:
        Simulator and the host this agent lives on.
    flow_id:
        Flow identifier shared with the receiving :class:`TcpSink`.
    dst:
        Node id of the receiver's host.
    pkt_size:
        Data packet size in bytes.
    ecn:
        Negotiate ECN: set ECT on data and halve the window on ECE.
    max_cwnd:
        Receiver/advertised window in packets.
    rng:
        Random stream (used only by subclasses that respond
        probabilistically; the base sender is deterministic).
    record_rtt:
        If true, every valid RTT sample is appended to ``rtt_trace`` as
        ``(time, rtt)`` — the raw material for the paper's Section 2
        predictor study.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow_id: int,
        dst: int,
        pkt_size: int = DATA_SIZE,
        ecn: bool = False,
        initial_cwnd: float = 2.0,
        max_cwnd: float = 1e9,
        loss_beta: float = 0.5,
        rng: Optional[random.Random] = None,
        record_rtt: bool = False,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.dst = dst
        self.pkt_size = pkt_size
        self.ecn = ecn
        self.loss_beta = loss_beta
        self.rng = rng or sim.stream(f"tcp{flow_id}")
        self.record_rtt = record_rtt

        # congestion state
        self.cwnd = float(initial_cwnd)
        self.initial_cwnd = float(initial_cwnd)
        self.ssthresh = float(max_cwnd)
        self.max_cwnd = float(max_cwnd)

        # sequence state (packet granularity)
        self.next_seq = 0  # next never-sent packet
        self.high_water = 0  # one past highest sent
        self.cum_ack = 0  # everything below is delivered
        self.sacked: Set[int] = set()
        self.lost: Set[int] = set()
        self.rtx_out: Set[int] = set()  # retransmitted, not yet (s)acked
        self.highest_sacked = -1
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_point = 0

        # RTT / RTO estimation (RFC 6298)
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = INITIAL_RTO
        self._backoff = 1
        self._sent_time: Dict[int, float] = {}  # seq -> send time (cleared on rtx)
        self._last_rtx_time = -1.0  # Karn guard for gated cumulative ACKs
        self.min_rtt = float("inf")
        self.last_rtt: Optional[float] = None
        #: per-ACK samples ``(time, rtt, cwnd)`` when ``record_rtt`` is set
        self.rtt_trace: List[Tuple[float, float, float]] = []
        #: times at which this sender detected a loss (fast rtx or RTO)
        self.loss_events: List[float] = []

        # ECN
        self._cwr_pending = False
        self._last_ecn_response = -1e9

        # application
        self.app_limit: Optional[int] = None  # total packets to send
        self.on_complete: Optional[Callable[["TcpSender"], None]] = None
        self.started = False
        self.done = False

        # counters
        self.pkts_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_recoveries = 0
        self.ecn_responses = 0

        #: observability attachment (:class:`repro.obs.Collector`); the
        #: hooks are no-ops (one attribute test) while this is ``None``
        self.obs: Optional[Any] = None
        self.obs_label: Optional[str] = None

        self._rtx_timer: Optional[Event] = None
        node.register_endpoint(flow_id, self)

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None, npackets: Optional[int] = None) -> None:
        """Begin transmitting: *npackets* total, or forever if ``None``."""
        self.app_limit = npackets
        # Scheduled as a bound method, not a local closure: pending
        # callbacks must survive snapshot/restore (see repro.snapshot).
        if at is None or at <= self.sim.now:
            self.sim.schedule(0.0, self._begin)
        else:
            self.sim.schedule_at(at, self._begin)

    def _begin(self) -> None:
        self.started = True
        self._try_send()

    def stop(self) -> None:
        """Cease sending new data (in-flight packets still drain)."""
        self.app_limit = self.high_water
        self._cancel_rtx_timer()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def pipe(self) -> int:
        """Estimate of packets currently in the network (RFC 6675)."""
        window = self.high_water - self.cum_ack
        return window - len(self.sacked) - len(self.lost) + len(self.rtx_out)

    def _has_new_data(self) -> bool:
        return self.app_limit is None or self.next_seq < self.app_limit

    def _next_to_send(self) -> Optional[Tuple[int, bool]]:
        """Pick the next packet per RFC 6675 NextSeg: holes first, then new."""
        if self.lost:
            for seq in sorted(self.lost):
                if seq not in self.rtx_out and seq not in self.sacked:
                    return seq, True
        if self.app_limit is None or self.next_seq < self.app_limit:
            return self.next_seq, False
        return None

    def _try_send(self) -> None:
        if not self.started or self.done:
            return
        # The window check is the `pipe` property inlined: _try_send runs
        # on every ACK, and the property + min() calls showed up hot.
        window = self.cwnd
        if self.max_cwnd < window:
            window = self.max_cwnd
        while (self.high_water - self.cum_ack - len(self.sacked)
               - len(self.lost) + len(self.rtx_out)) < window:
            choice = self._next_to_send()
            if choice is None:
                break
            seq, is_rtx = choice
            self._transmit(seq, is_rtx)

    def _transmit(self, seq: int, is_rtx: bool) -> None:
        pkt = Packet(
            flow_id=self.flow_id,
            src=self.node.node_id,
            dst=self.dst,
            size=self.pkt_size,
            seq=seq,
            ect=self.ecn,
        )
        pkt.sent_time = self.sim.now
        pkt.is_retransmit = is_rtx
        if self._cwr_pending:
            pkt.cwr = True
            self._cwr_pending = False
        if is_rtx:
            self.retransmits += 1
            self.rtx_out.add(seq)
            # Karn: never take RTT samples from retransmitted packets,
            # and invalidate samples of anything sent before this
            # retransmission (their cumulative ACK may be gated by the
            # hole being repaired, not by the network's RTT).
            self._sent_time.pop(seq, None)
            self._last_rtx_time = self.sim.now
        else:
            self._sent_time[seq] = self.sim.now
            self.next_seq = seq + 1
            self.high_water = max(self.high_water, self.next_seq)
        self.pkts_sent += 1
        if self._rtx_timer is None:
            self._arm_rtx_timer()
        self.node.send(pkt)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Endpoint entry point; senders only ever receive ACKs."""
        if not pkt.is_ack or self.done:
            return
        rtt_sample = self._process_ack_seq(pkt)
        self._process_sack(pkt)
        if self.ecn and pkt.ece:
            self._ecn_response()
        self.on_ack(pkt, rtt_sample)
        self._check_complete()
        self._try_send()
        if self.obs is not None:
            self.obs.sender_ack(self, self.sim.now)

    def _process_ack_seq(self, pkt: Packet) -> Optional[float]:
        """Handle cumulative-ACK advance; returns the RTT sample if any."""
        rtt_sample = None
        if pkt.ack_seq > self.cum_ack:
            newly_acked_hi = pkt.ack_seq - 1
            sent = self._sent_time.pop(newly_acked_hi, None)
            if sent is not None and sent >= self._last_rtx_time:
                rtt_sample = self.sim.now - sent
                self._rtt_update(rtt_sample)
            # prune per-seq state below the new cumulative ACK; in the
            # loss-free steady state all three scoreboards are empty and
            # only the send-time map needs clearing
            sent_time = self._sent_time
            if self.sacked or self.lost or self.rtx_out:
                for seq in range(self.cum_ack, pkt.ack_seq):
                    self.sacked.discard(seq)
                    self.lost.discard(seq)
                    self.rtx_out.discard(seq)
                    sent_time.pop(seq, None)
            else:
                for seq in range(self.cum_ack, pkt.ack_seq):
                    sent_time.pop(seq, None)
            n_newly_acked = pkt.ack_seq - self.cum_ack
            self.cum_ack = pkt.ack_seq
            self.dupacks = 0
            self._backoff = 1
            if self.in_recovery:
                if self.cum_ack >= self.recovery_point:
                    self._exit_recovery()
                else:
                    # Partial ACK: the next unsacked hole was lost too.
                    if self.cum_ack not in self.sacked:
                        self.lost.add(self.cum_ack)
            else:
                for _ in range(n_newly_acked):
                    self._increase_on_ack()
            if self.high_water > self.cum_ack:
                self._arm_rtx_timer(restart=True)
            else:
                self._cancel_rtx_timer()
        elif pkt.ack_seq == self.cum_ack and self.high_water > self.cum_ack:
            self._on_dupack()
        return rtt_sample

    def _process_sack(self, pkt: Packet) -> None:
        changed = False
        for start, end in pkt.sack_blocks:
            for seq in range(max(start, self.cum_ack), end):
                if seq not in self.sacked:
                    self.sacked.add(seq)
                    self.lost.discard(seq)
                    self.rtx_out.discard(seq)
                    changed = True
                    if seq > self.highest_sacked:
                        self.highest_sacked = seq
        if changed:
            self._mark_losses()

    def _mark_losses(self) -> None:
        """SACK loss inference: 3+ packets SACKed above ⇒ the hole is lost."""
        limit = self.highest_sacked - (DUPACK_THRESHOLD - 1)
        seq = self.cum_ack
        while seq < limit:
            if seq not in self.sacked and seq not in self.lost:
                self.lost.add(seq)
                if not self.in_recovery:
                    self._enter_recovery()
            seq += 1

    def _on_dupack(self) -> None:
        self.dupacks += 1
        if not self.in_recovery and self.dupacks >= DUPACK_THRESHOLD:
            if self.cum_ack not in self.sacked:
                self.lost.add(self.cum_ack)
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        if self.in_recovery:
            return
        self.in_recovery = True
        self.fast_recoveries += 1
        self.loss_events.append(self.sim.now)
        self.recovery_point = self.high_water
        self.ssthresh = max(2.0, self.cwnd * self.loss_beta)
        self.cwnd = self.ssthresh
        self.on_loss_response()

    def _exit_recovery(self) -> None:
        self.in_recovery = False
        self.lost.clear()
        self.rtx_out.clear()
        self.dupacks = 0

    # ------------------------------------------------------------------
    # window growth + variant hooks
    # ------------------------------------------------------------------
    def _increase_on_ack(self) -> None:
        """Standard TCP growth: slow start, then 1/cwnd per ACK."""
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + 1.0, self.max_cwnd)
        else:
            self.cwnd = min(self.cwnd + 1.0 / self.cwnd, self.max_cwnd)

    def on_ack(self, pkt: Packet, rtt_sample: Optional[float]) -> None:
        """Per-ACK hook for delay-based variants (Vegas, PERT)."""

    def on_loss_response(self) -> None:
        """Hook invoked when a loss-triggered window reduction happens."""

    # ------------------------------------------------------------------
    # ECN
    # ------------------------------------------------------------------
    def _ecn_response(self) -> None:
        """Halve the window on ECE, at most once per RTT (RFC 3168)."""
        rtt = self.srtt if self.srtt is not None else self.rto
        if self.sim.now - self._last_ecn_response < rtt:
            return
        self._last_ecn_response = self.sim.now
        self.ecn_responses += 1
        self.ssthresh = max(2.0, self.cwnd * self.loss_beta)
        self.cwnd = self.ssthresh
        self._cwr_pending = True

    # ------------------------------------------------------------------
    # RTT / RTO
    # ------------------------------------------------------------------
    def _rtt_update(self, sample: float) -> None:
        self.last_rtt = sample
        self.min_rtt = min(self.min_rtt, sample)
        if self.record_rtt:
            self.rtt_trace.append((self.sim.now, sample, self.cwnd))
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4.0 * self.rttvar))

    def _arm_rtx_timer(self, restart: bool = False) -> None:
        if restart:
            self._cancel_rtx_timer()
        if self._rtx_timer is None:
            delay = min(MAX_RTO, self.rto * self._backoff)
            self._rtx_timer = self.sim.schedule(delay, self._on_timeout)

    def _cancel_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_timeout(self) -> None:
        self._rtx_timer = None
        if self.done or self.cum_ack >= self.high_water:
            return
        self.timeouts += 1
        self.loss_events.append(self.sim.now)
        if self.obs is not None:
            self.obs.sender_event(self, "timeout", self.sim.now)
        self.ssthresh = max(2.0, self.cwnd * self.loss_beta)
        self.cwnd = 1.0
        self.in_recovery = False
        self.dupacks = 0
        # Go-back-N at the scoreboard level: everything unsacked is lost.
        self.lost = {
            seq for seq in range(self.cum_ack, self.high_water) if seq not in self.sacked
        }
        self.rtx_out.clear()
        self._backoff = min(self._backoff * 2, 64)
        self._arm_rtx_timer()
        self._try_send()

    # ------------------------------------------------------------------
    def _check_complete(self) -> None:
        if self.app_limit is not None and not self.done and self.cum_ack >= self.app_limit:
            self.done = True
            self._cancel_rtx_timer()
            if self.on_complete is not None:
                self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} flow={self.flow_id} cwnd={self.cwnd:.1f} "
            f"cum_ack={self.cum_ack} pipe={self.pipe}>"
        )


class TcpSink:
    """TCP receiver: cumulative ACK + up to 3 SACK blocks + ECN echo.

    By default ACKs every data packet immediately, which matches the
    per-ACK RTT sampling PERT depends on (and ns-2's default for these
    studies).  Optional delayed ACKs (RFC 1122 style: every second
    in-order segment, or after ``delack_timeout``) are provided for
    completeness; out-of-order arrivals and CE-marked packets are always
    acknowledged immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow_id: int,
        src: int,
        max_sack_blocks: int = 3,
        delack: bool = False,
        delack_timeout: float = 0.1,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.src = src
        self.max_sack_blocks = max_sack_blocks
        self.delack = delack
        self.delack_timeout = delack_timeout
        self.rcv_next = 0
        self.out_of_order: Set[int] = set()
        self.ece_active = False
        self.pkts_received = 0
        self.dup_pkts = 0
        self.acks_sent = 0
        self.bytes_received = 0  # unique payload bytes delivered in order
        self._delack_pending: Optional[Packet] = None
        self._delack_timer: Optional[Event] = None
        node.register_endpoint(flow_id, self)

    def receive(self, pkt: Packet) -> None:
        if pkt.is_ack:
            return
        self.pkts_received += 1
        if pkt.ce:
            self.ece_active = True
        if pkt.cwr:
            self.ece_active = False
        in_order = pkt.seq == self.rcv_next
        if in_order:
            self.rcv_next += 1
            self.bytes_received += pkt.size
            while self.rcv_next in self.out_of_order:
                self.out_of_order.discard(self.rcv_next)
                self.rcv_next += 1
                self.bytes_received += pkt.size
        elif pkt.seq > self.rcv_next:
            if pkt.seq in self.out_of_order:
                self.dup_pkts += 1
            else:
                self.out_of_order.add(pkt.seq)
        else:
            self.dup_pkts += 1
        if not self.delack or not in_order or pkt.ce or self.out_of_order:
            self._flush_delack()
            self._send_ack(pkt)
            return
        # delayed-ACK path: hold the first in-order segment, ack the second
        if self._delack_pending is not None:
            self._flush_delack()
        else:
            self._delack_pending = pkt
            self._delack_timer = self.sim.schedule(
                self.delack_timeout, self._flush_delack
            )

    def _flush_delack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        pending, self._delack_pending = self._delack_pending, None
        if pending is not None:
            self._send_ack(pending)

    def _sack_blocks(self) -> List[Tuple[int, int]]:
        if not self.out_of_order:
            return []
        blocks: List[Tuple[int, int]] = []
        run_start = None
        prev = None
        for seq in sorted(self.out_of_order):
            if run_start is None:
                run_start, prev = seq, seq
            elif seq == prev + 1:
                prev = seq
            else:
                blocks.append((run_start, prev + 1))
                run_start, prev = seq, seq
        blocks.append((run_start, prev + 1))
        # Most recent (highest) blocks are the most useful to the sender.
        return blocks[-self.max_sack_blocks:]

    def _send_ack(self, data_pkt: Packet) -> None:
        ack = Packet(
            flow_id=self.flow_id,
            src=self.node.node_id,
            dst=self.src,
            size=ACK_SIZE,
            is_ack=True,
            ack_seq=self.rcv_next,
            sack_blocks=self._sack_blocks(),
        )
        ack.ece = self.ece_active
        # Echo the forward one-way delay of the packet being acknowledged
        # (simulation clocks are global; real deployments would use the
        # relative-OWD techniques the paper cites [20, 31]).
        if not data_pkt.is_retransmit:
            ack.owd_echo = self.sim.now - data_pkt.sent_time
        self.acks_sent += 1
        self.node.send(ack)


def connect_flow(
    sim: Simulator,
    src_node: Node,
    dst_node: Node,
    flow_id: int,
    sender_cls: Type[TcpSender] = TcpSender,
    sink_kwargs: Optional[Dict[str, Any]] = None,
    **sender_kwargs: Any,
) -> Tuple[TcpSender, TcpSink]:
    """Create a sender on *src_node* and a sink on *dst_node* for one flow."""
    sender = sender_cls(
        sim, src_node, flow_id=flow_id, dst=dst_node.node_id, **sender_kwargs
    )
    sink = TcpSink(
        sim, dst_node, flow_id=flow_id, src=src_node.node_id, **(sink_kwargs or {})
    )
    return sender, sink
