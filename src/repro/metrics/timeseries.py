"""Time-series utilities: smoothing, convergence detection, settling time.

Used by the dynamic-behaviour experiments (Figure 12 and the
non-responsive-traffic variant) to quantify how quickly a scheme
re-apportions bandwidth after a load change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["moving_average", "settling_time", "relative_error_series"]


def moving_average(xs: Sequence[float], window: int) -> List[float]:
    """Centered-causal sliding mean: output[i] averages xs[max(0,i-w+1)..i]."""
    if window < 1:
        raise ValueError("window must be >= 1")
    out: List[float] = []
    acc = 0.0
    for i, x in enumerate(xs):
        acc += x
        if i >= window:
            acc -= xs[i - window]
        out.append(acc / min(i + 1, window))
    return out


def relative_error_series(
    series: Sequence[float], target: float
) -> List[float]:
    """|x - target| / target for each sample (target must be non-zero)."""
    if target == 0:
        raise ValueError("target must be non-zero")
    return [abs(x - target) / abs(target) for x in series]


def settling_time(
    times: Sequence[float],
    series: Sequence[float],
    target: float,
    tolerance: float = 0.2,
    hold: int = 3,
) -> Optional[float]:
    """Time the series last enters (and stays in) a band around *target*.

    The classic control-theory settling time: the start of the final run
    of samples that all lie within ``tolerance`` (relative) of *target*,
    provided that run is at least *hold* samples long.  Returns ``None``
    if the series never settles.
    """
    if len(times) != len(series):
        raise ValueError("times and series must have equal length")
    if not 0 < tolerance < 1:
        raise ValueError("tolerance must be in (0, 1)")
    errs = relative_error_series(series, target)
    inside = [e <= tolerance for e in errs]
    n = len(inside)
    candidate: Optional[int] = None
    run = 0
    for i in range(n):
        if inside[i]:
            run += 1
            if run == hold and candidate is None:
                candidate = i - hold + 1
        else:
            run = 0
            candidate = None
    if candidate is None:
        return None
    return times[candidate]
