"""Fairness metrics (Jain's index, per Chiu & Jain)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["jain_index"]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain fairness index: (Σx)² / (n · Σx²), in (0, 1].

    Equals 1 when all allocations are equal and 1/n when one user takes
    everything.  An empty or all-zero allocation returns 0.
    """
    xs = [float(x) for x in allocations]
    if not xs:
        return 0.0
    if any(x < 0 for x in xs):
        raise ValueError("allocations must be non-negative")
    mx = max(xs)
    if mx == 0:
        return 0.0
    # normalize by the max so squares cannot underflow to zero
    scaled = [x / mx for x in xs]
    total = sum(scaled)
    sq = sum(x * x for x in scaled)
    return total * total / (len(scaled) * sq)
