"""Metrics: fairness, summary statistics, histograms, time series."""

from .fairness import jain_index
from .stats import histogram_pdf, mean, percentile, stdev
from .timeseries import moving_average, relative_error_series, settling_time

__all__ = [
    "jain_index",
    "mean",
    "stdev",
    "percentile",
    "histogram_pdf",
    "moving_average",
    "settling_time",
    "relative_error_series",
]
