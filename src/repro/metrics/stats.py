"""Scalar summary statistics used across the experiment harness."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["mean", "stdev", "percentile", "histogram_pdf"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; 0 for an empty sequence."""
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def stdev(xs: Sequence[float]) -> float:
    """Population standard deviation; 0 for fewer than two samples."""
    xs = list(xs)
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / len(xs))


def percentile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    data = sorted(xs)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def histogram_pdf(
    xs: Sequence[float], bins: int = 10, lo: float = 0.0, hi: float = 1.0
) -> List[Tuple[float, float]]:
    """Normalized histogram: list of (bin_center, probability mass).

    Used to reproduce Figure 4's PDF of normalized queue length at false
    positives.  Values outside [lo, hi] are clamped into the edge bins.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if hi <= lo:
        raise ValueError("need hi > lo")
    counts = [0] * bins
    width = (hi - lo) / bins
    n = 0
    for x in xs:
        idx = int((x - lo) / width)
        idx = min(max(idx, 0), bins - 1)
        counts[idx] += 1
        n += 1
    if n == 0:
        return [(lo + (i + 0.5) * width, 0.0) for i in range(bins)]
    return [(lo + (i + 0.5) * width, counts[i] / n) for i in range(bins)]
