"""Classic delay-based congestion predictors (paper Section 2.1/2.3).

Python renditions of the prediction rules of CARD, TRI-S, DUAL, Vegas
and CIM, replayed over per-ACK traces.  Where the original schemes sample
once per RTT, the predictors gate their own sampling on the observed RTT
so a per-ACK trace is consumed faithfully (the paper notes this
under-sampling is part of why these predictors score poorly).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .base import Predictor

__all__ = [
    "CardPredictor",
    "TriSPredictor",
    "DualPredictor",
    "VegasPredictor",
    "CimPredictor",
]


class _PerRttSampler:
    """Mixin state: admit roughly one sample per RTT."""

    def __init__(self) -> None:
        self._next_sample_t = 0.0

    def _should_sample(self, t: float, rtt: float) -> bool:
        if t >= self._next_sample_t:
            self._next_sample_t = t + rtt
            return True
        return False


class CardPredictor(Predictor, _PerRttSampler):
    """CARD (Jain 1989): normalized delay gradient.

    Congestion is predicted when the normalized delay gradient

        NDG = (rtt_i - rtt_{i-1}) / (rtt_i + rtt_{i-1})

    is positive, i.e. delay is rising — the flow is past the knee.
    """

    name = "card"

    def __init__(self) -> None:
        _PerRttSampler.__init__(self)
        self._prev_rtt: Optional[float] = None
        self._state = False

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        if not self._should_sample(t, rtt):
            return self._state
        if self._prev_rtt is not None and rtt + self._prev_rtt > 0:
            ndg = (rtt - self._prev_rtt) / (rtt + self._prev_rtt)
            self._state = ndg > 0.0
        self._prev_rtt = rtt
        return self._state

    def reset(self) -> None:
        _PerRttSampler.__init__(self)
        self._prev_rtt = None
        self._state = False


class TriSPredictor(Predictor, _PerRttSampler):
    """TRI-S (Wang & Crowcroft 1991): normalized throughput gradient.

    Throughput is estimated as ``cwnd / rtt``.  With a window increase,
    the throughput should rise proportionally while the link is
    unsaturated; congestion is predicted when the normalized throughput
    gradient falls below ``threshold`` (originally 0.5).
    """

    name = "tri-s"

    def __init__(self, threshold: float = 0.5):
        _PerRttSampler.__init__(self)
        self.threshold = threshold
        self._prev_tput: Optional[float] = None
        self._state = False

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        if not self._should_sample(t, rtt):
            return self._state
        tput = cwnd / rtt if rtt > 0 else 0.0
        if self._prev_tput is not None and self._prev_tput > 0:
            # Congestion once throughput stops growing in proportion to
            # the window: normalized throughput gradient below threshold
            # of the relative window growth; with per-RTT unit increases
            # this reduces to "throughput gain at or below zero".
            ntg = (tput - self._prev_tput) / self._prev_tput
            self._state = ntg <= 0.0
        self._prev_tput = tput
        return self._state

    def reset(self) -> None:
        _PerRttSampler.__init__(self)
        self._prev_tput = None
        self._state = False


class DualPredictor(Predictor, _PerRttSampler):
    """DUAL (Wang & Crowcroft 1992): RTT above the min/max midpoint.

    Predicts congestion when the current RTT sample exceeds
    ``(rtt_min + rtt_max) / 2`` — i.e. the bottleneck queue is estimated
    to be more than half full.
    """

    name = "dual"

    def __init__(self) -> None:
        _PerRttSampler.__init__(self)
        self._min = float("inf")
        self._max = 0.0
        self._state = False

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        self._min = min(self._min, rtt)
        self._max = max(self._max, rtt)
        if not self._should_sample(t, rtt):
            return self._state
        self._state = rtt > (self._min + self._max) / 2.0
        return self._state

    def reset(self) -> None:
        _PerRttSampler.__init__(self)
        self._min = float("inf")
        self._max = 0.0
        self._state = False


class VegasPredictor(Predictor, _PerRttSampler):
    """Vegas (Brakmo & Peterson 1994): expected-vs-actual throughput.

    The per-flow backlog estimate ``diff = cwnd * (rtt - base) / rtt``
    exceeds ``beta`` packets ⇒ congestion predicted.  This is the best of
    the prior predictors in the paper's Figure 3.
    """

    name = "vegas"

    def __init__(self, beta: float = 3.0):
        _PerRttSampler.__init__(self)
        self.beta = beta
        self._base = float("inf")
        self._state = False

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        self._base = min(self._base, rtt)
        if not self._should_sample(t, rtt):
            return self._state
        if rtt > 0:
            backlog = cwnd * (rtt - self._base) / rtt
            self._state = backlog > self.beta
        return self._state

    def reset(self) -> None:
        _PerRttSampler.__init__(self)
        self._base = float("inf")
        self._state = False


class CimPredictor(Predictor):
    """CIM (Martin, Nilsson & Rhee 2003): short vs long moving average.

    Congestion is predicted while the moving average of the last
    ``short`` RTT samples exceeds the moving average of the last
    ``long`` samples by more than ``margin`` (relative).
    """

    name = "cim"

    def __init__(self, short: int = 8, long: int = 96, margin: float = 0.0):
        if not 1 <= short < long:
            raise ValueError("need 1 <= short < long")
        self.short = short
        self.long = long
        self.margin = margin
        self._s: Deque[float] = deque(maxlen=short)
        self._l: Deque[float] = deque(maxlen=long)

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        self._s.append(rtt)
        self._l.append(rtt)
        if len(self._l) < self.long:
            return False
        ma_s = sum(self._s) / len(self._s)
        ma_l = sum(self._l) / len(self._l)
        return ma_s > ma_l * (1.0 + self.margin)

    def reset(self) -> None:
        self._s.clear()
        self._l.clear()
