"""State-machine scoring of congestion predictors (paper Figure 1-4).

The paper models a flow as moving between three states — A ("low delay"),
B ("high delay", i.e. congestion predicted) and C (loss) — and scores a
predictor by which transitions occur:

* transition "2" (B -> C): the predictor was in the high state when a
  loss happened — a correct prediction;
* transition "5" (B -> A): the high state ended without any loss — a
  *false positive*;
* transition "4" (A -> C): a loss arrived while the predictor was low —
  a *false negative*.

Following the paper:

    efficiency      = n2 / (n2 + n5)
    false positives = n5 / (n2 + n5)
    false negatives = n4 / (n2 + n4)

Losses can be measured two ways, and contrasting them is the point of
the paper's Figure 2: *flow-level* (the observed flow's own loss
detections, as in the tcpdump studies the paper critiques) versus
*queue-level* (every drop at the bottleneck queue).

Loss events closer together than ``coalesce`` seconds count as a single
congestion event, mirroring the congestion-epoch granularity of the
measurement studies.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .base import Predictor

__all__ = [
    "TransitionCounts",
    "coalesce_events",
    "score_predictor",
    "high_to_loss_fraction",
    "false_positive_times",
    "false_positive_samples",
]


@dataclass
class TransitionCounts:
    """Counts of the paper's Figure 1 transitions and derived metrics."""

    n2: int = 0  # B -> C : predicted loss
    n4: int = 0  # A -> C : unpredicted loss (false negative)
    n5: int = 0  # B -> A : high period with no loss (false positive)

    @property
    def efficiency(self) -> float:
        total = self.n2 + self.n5
        return self.n2 / total if total else 0.0

    @property
    def false_positive_rate(self) -> float:
        total = self.n2 + self.n5
        return self.n5 / total if total else 0.0

    @property
    def false_negative_rate(self) -> float:
        total = self.n2 + self.n4
        return self.n4 / total if total else 0.0


def coalesce_events(times: Sequence[float], window: float) -> List[float]:
    """Merge event times closer than *window* into single events."""
    if window < 0:
        raise ValueError("window must be >= 0")
    out: List[float] = []
    for t in sorted(times):
        if not out or t - out[-1] > window:
            out.append(t)
    return out


def _scan(
    states: Sequence[Tuple[float, bool]],
    losses: Sequence[float],
    per_event: bool = False,
) -> TransitionCounts:
    """Walk the predictor-state series against coalesced loss events.

    Two counting granularities for the Figure 1 machine:

    * ``per_event=False`` (default): each maximal high period scores one
      transition — "2" if at least one loss fell inside it, "5"
      otherwise.  This treats a high period as one prediction, the view
      under which the paper's fractions are comparable across signals
      of very different smoothness.
    * ``per_event=True``: every (coalesced) loss while high is its own
      B -> C transition (the machine re-enters B afterwards); a period
      scores a single "5" only if it saw no loss at all.

    Losses while the predictor is low are A -> C ("4") either way.
    """
    counts = TransitionCounts()
    li = 0
    n = len(losses)
    in_high = False
    high_has_loss = False
    for t, high in states:
        # account losses up to and including this sample time
        while li < n and losses[li] <= t:
            if in_high:
                if per_event:
                    counts.n2 += 1
                high_has_loss = True
            else:
                counts.n4 += 1
            li += 1
        if high and not in_high:
            in_high = True
            high_has_loss = False
        elif not high and in_high:
            in_high = False
            if high_has_loss:
                if not per_event:
                    counts.n2 += 1
            else:
                counts.n5 += 1
    # Trailing losses (after the last sample) occur in the final state.
    while li < n:
        if in_high:
            if per_event:
                counts.n2 += 1
            high_has_loss = True
        else:
            counts.n4 += 1
        li += 1
    if in_high:
        if high_has_loss:
            if not per_event:
                counts.n2 += 1
        else:
            counts.n5 += 1
    return counts


def score_predictor(
    predictor: Predictor,
    trace: Iterable[Tuple[float, float, float]],
    loss_times: Sequence[float],
    coalesce: float = 0.1,
    per_event: bool = False,
) -> TransitionCounts:
    """Replay *predictor* over a per-ACK trace and score it against losses."""
    predictor.reset()
    states = [(t, predictor.update(t, rtt, cwnd)) for t, rtt, cwnd in trace]
    losses = coalesce_events(loss_times, coalesce)
    if not states:
        return TransitionCounts(n4=len(losses))
    return _scan(states, losses, per_event=per_event)


def high_to_loss_fraction(
    predictor: Predictor,
    trace: Iterable[Tuple[float, float, float]],
    loss_times: Sequence[float],
    coalesce: float = 0.1,
) -> float:
    """Fraction of high-RTT periods that end in a loss (Figure 2's metric)."""
    return score_predictor(predictor, trace, loss_times, coalesce).efficiency


def false_positive_times(
    predictor: Predictor,
    trace: Iterable[Tuple[float, float, float]],
    loss_times: Sequence[float],
    coalesce: float = 0.1,
) -> List[float]:
    """End times of high periods that contained no loss (for Figure 4).

    The paper plots the distribution of bottleneck-queue occupancy at the
    moments false positives occur; these timestamps are looked up in a
    :class:`~repro.sim.monitors.QueueSampler`.
    """
    predictor.reset()
    losses = coalesce_events(loss_times, coalesce)
    out: List[float] = []
    li = 0
    in_high = False
    high_has_loss = False
    high_start = 0.0
    for t, rtt, cwnd in trace:
        high = predictor.update(t, rtt, cwnd)
        while li < len(losses) and losses[li] <= t:
            if in_high:
                high_has_loss = True
            li += 1
        if high and not in_high:
            in_high = True
            high_has_loss = False
            high_start = t
        elif not high and in_high:
            in_high = False
            if not high_has_loss:
                out.append(t)
    return out


def false_positive_samples(
    predictor: Predictor,
    trace: Iterable[Tuple[float, float, float]],
    loss_times: Sequence[float],
    horizon: float = 0.2,
) -> List[float]:
    """Per-sample false positives: high-state instants with no loss nearby.

    A finer-grained variant of :func:`false_positive_times` suited to
    short traces: every sample at which the predictor is in the high
    state but no loss occurs within ``±horizon`` seconds counts as a
    false-positive instant.  The paper's Figure 4 distribution is built
    from such instants' queue occupancies; on the scaled-down traces this
    per-sample definition provides enough mass for a stable histogram
    while preserving the property being tested (prediction uncertainty
    concentrates at low queue occupancy).
    """
    predictor.reset()
    losses = sorted(loss_times)
    out: List[float] = []
    for t, rtt, cwnd in trace:
        if not predictor.update(t, rtt, cwnd):
            continue
        i = bisect.bisect_left(losses, t - horizon)
        if i < len(losses) and losses[i] <= t + horizon:
            continue
        out.append(t)
    return out
