"""Additional related-work predictors: Sync-TCP and TCP-BFA (paper §2.1).

* **Sync-TCP** (Weigle, Jeffay & Smith, 2005) detects congestion from the
  *trend* of one-way delays.  Replayed over an RTT trace, the predictor
  smooths samples lightly and flags congestion when the recent samples
  are predominantly increasing and the level sits above the floor.
* **TCP-BFA** (Awadallah & Rai, 1998) monitors the *variance* of the RTT:
  a bottleneck queue that is filling produces RTT variance far above the
  quiet-path baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .base import Predictor

__all__ = ["SyncTcpPredictor", "TcpBfaPredictor"]


class SyncTcpPredictor(Predictor):
    """Delay-trend predictor in the style of Sync-TCP.

    Keeps the last ``window`` smoothed delay samples; congestion is
    predicted when at least ``trend_fraction`` of consecutive differences
    are positive *and* the newest sample exceeds the observed minimum by
    ``margin`` (so flat noise near the floor cannot trigger it).
    """

    name = "sync-tcp"

    def __init__(self, window: int = 8, trend_fraction: float = 0.6,
                 margin: float = 0.002, smooth: float = 0.75):
        if window < 3:
            raise ValueError("window must be >= 3")
        if not 0 < trend_fraction <= 1:
            raise ValueError("trend_fraction must be in (0, 1]")
        self.window = window
        self.trend_fraction = trend_fraction
        self.margin = margin
        self.smooth = smooth
        self._samples: Deque[float] = deque(maxlen=window)
        self._ewma = None
        self._min = float("inf")

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        self._min = min(self._min, rtt)
        if self._ewma is None:
            self._ewma = rtt
        else:
            self._ewma = self.smooth * self._ewma + (1 - self.smooth) * rtt
        self._samples.append(self._ewma)
        if len(self._samples) < self.window:
            return False
        diffs = [b - a for a, b in zip(self._samples, list(self._samples)[1:])]
        rising = sum(1 for d in diffs if d > 0)
        trending = rising >= self.trend_fraction * len(diffs)
        elevated = self._samples[-1] > self._min + self.margin
        return trending and elevated

    def reset(self) -> None:
        self._samples.clear()
        self._ewma = None
        self._min = float("inf")


class TcpBfaPredictor(Predictor):
    """RTT-variance predictor in the style of TCP-BFA.

    Maintains a rolling window variance; congestion is predicted while
    the current variance exceeds ``ratio`` times the smallest windowed
    variance observed so far (the quiet-path baseline).
    """

    name = "tcp-bfa"

    def __init__(self, window: int = 16, ratio: float = 4.0):
        if window < 4:
            raise ValueError("window must be >= 4")
        if ratio <= 1:
            raise ValueError("ratio must be > 1")
        self.window = window
        self.ratio = ratio
        self._samples: Deque[float] = deque(maxlen=window)
        self._min_var = float("inf")

    def _variance(self) -> float:
        n = len(self._samples)
        mean = sum(self._samples) / n
        return sum((x - mean) ** 2 for x in self._samples) / n

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        self._samples.append(rtt)
        if len(self._samples) < self.window:
            return False
        var = self._variance()
        self._min_var = min(self._min_var, max(var, 1e-12))
        return var > self.ratio * self._min_var

    def reset(self) -> None:
        self._samples.clear()
        self._min_var = float("inf")
