"""Congestion-predictor interface (paper Section 2).

A predictor consumes the per-ACK trace of a flow — ``(time, rtt, cwnd)``
samples — and maintains a binary state: *high congestion predicted* or
not.  This corresponds to states B and A of the paper's Figure 1; the
state machine analysis in :mod:`repro.predictors.analysis` combines the
predictor state with observed losses (state C) to score prediction
efficiency, false positives and false negatives.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

__all__ = ["Predictor", "run_predictor"]


class Predictor:
    """Base class.  Subclasses implement :meth:`update`."""

    #: human-readable name used in experiment tables
    name = "base"

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        """Consume one per-ACK sample; return True if congestion is predicted."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state so a predictor can be replayed."""
        raise NotImplementedError


def run_predictor(
    predictor: Predictor, trace: Iterable[Tuple[float, float, float]]
) -> List[Tuple[float, bool]]:
    """Replay *predictor* over a trace; returns the (time, state) series."""
    out: List[Tuple[float, bool]] = []
    for t, rtt, cwnd in trace:
        out.append((t, predictor.update(t, rtt, cwnd)))
    return out
