"""End-host congestion predictors and their state-machine scoring."""

from .analysis import (
    TransitionCounts,
    coalesce_events,
    false_positive_times,
    high_to_loss_fraction,
    score_predictor,
)
from .base import Predictor, run_predictor
from .classic import (
    CardPredictor,
    CimPredictor,
    DualPredictor,
    TriSPredictor,
    VegasPredictor,
)
from .extra import SyncTcpPredictor, TcpBfaPredictor
from .threshold import (
    EwmaRttPredictor,
    InstantRttPredictor,
    MovingAverageRttPredictor,
)

__all__ = [
    "Predictor",
    "run_predictor",
    "CardPredictor",
    "TriSPredictor",
    "DualPredictor",
    "VegasPredictor",
    "CimPredictor",
    "SyncTcpPredictor",
    "TcpBfaPredictor",
    "InstantRttPredictor",
    "EwmaRttPredictor",
    "MovingAverageRttPredictor",
    "TransitionCounts",
    "score_predictor",
    "high_to_loss_fraction",
    "false_positive_times",
    "coalesce_events",
]
