"""RTT-threshold predictors: instantaneous, EWMA-smoothed, moving average.

These are the signals the paper itself proposes and compares in Section
2.4: the raw per-ACK RTT, EWMA smoothing with history weights 7/8 and
0.99 (``srtt_0.99``, PERT's final choice), and a buffer-sized moving
average.  Each flags congestion when its smoothed value exceeds a fixed
threshold (the paper uses propagation delay + 5 ms in its illustration).
"""

from __future__ import annotations

from ..core.srtt import EwmaRtt, MovingAverageRtt
from .base import Predictor

__all__ = [
    "InstantRttPredictor",
    "EwmaRttPredictor",
    "MovingAverageRttPredictor",
]


class InstantRttPredictor(Predictor):
    """Instantaneous per-ACK RTT against a fixed threshold."""

    name = "instant-rtt"

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        return rtt > self.threshold

    def reset(self) -> None:
        pass


class EwmaRttPredictor(Predictor):
    """EWMA-smoothed RTT against a fixed threshold.

    ``weight=0.99`` gives the paper's ``srtt_0.99`` predictor;
    ``weight=7/8`` gives the TCP-RTO-style smoother it improves upon.
    """

    def __init__(self, threshold: float, weight: float = 0.99):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.weight = weight
        self._ewma = EwmaRtt(weight=weight)
        self.name = f"srtt_{weight:g}"

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        return self._ewma.update(rtt) > self.threshold

    def reset(self) -> None:
        self._ewma.reset()


class MovingAverageRttPredictor(Predictor):
    """Sliding-window mean RTT (the paper's buffer-sized moving average)."""

    def __init__(self, threshold: float, window: int = 750):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.window = window
        self._ma = MovingAverageRtt(window=window)
        self.name = f"ma_{window}"

    def update(self, t: float, rtt: float, cwnd: float) -> bool:
        return self._ma.update(rtt) > self.threshold

    def reset(self) -> None:
        self._ma = MovingAverageRtt(window=self.window)
