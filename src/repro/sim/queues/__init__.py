"""Queue disciplines: DropTail, RED (gentle/adaptive, ECN), PI and REM AQM.

Construct disciplines through :func:`make_queue` with a
:class:`QueueConfig`; the per-class constructors remain as deprecated
shims (one :class:`DeprecationWarning` per class).
"""

from .base import QueueDiscipline, QueueStats
from .config import DISCIPLINES, QueueConfig, make_queue
from .droptail import DropTailQueue
from .pi import PiQueue
from .red import RedQueue
from .rem import RemQueue

__all__ = [
    "QueueDiscipline",
    "QueueStats",
    "QueueConfig",
    "make_queue",
    "DISCIPLINES",
    "DropTailQueue",
    "RedQueue",
    "PiQueue",
    "RemQueue",
]
