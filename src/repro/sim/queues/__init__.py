"""Queue disciplines: DropTail, RED (gentle/adaptive, ECN), PI and REM AQM."""

from .base import QueueDiscipline, QueueStats
from .droptail import DropTailQueue
from .pi import PiQueue
from .red import RedQueue
from .rem import RemQueue

__all__ = [
    "QueueDiscipline",
    "QueueStats",
    "DropTailQueue",
    "RedQueue",
    "PiQueue",
    "RemQueue",
]
