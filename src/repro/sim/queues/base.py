"""Queue-discipline interface and shared bookkeeping.

A :class:`QueueDiscipline` sits at the head of each unidirectional link and
decides, per arriving packet, whether to enqueue, mark (ECN), or drop.  All
disciplines keep uniform statistics so the experiment harness can compute
drop rates and time-averaged queue lengths without knowing which AQM is in
use.

Queue capacity is expressed in *packets*, matching the paper (e.g. the
750-packet queues of Section 2.2) and ns-2's default byte-agnostic queues.
"""

from __future__ import annotations

import warnings
from collections import deque
from contextlib import contextmanager
from typing import (Any, Callable, Deque, Dict, Iterator, List, Optional,
                    Set, Type)

from ..packet import Packet

__all__ = ["QueueDiscipline", "QueueStats"]

# ---------------------------------------------------------------------------
# Deprecation shims for direct queue construction.
#
# The canonical way to build a discipline is
# :func:`repro.sim.queues.make_queue` with a
# :class:`~repro.sim.queues.QueueConfig`; the per-class keyword
# constructors remain as thin shims that warn (once per class, per
# process) when called directly.  The registry lives here — not in
# ``config.py`` — because every concrete queue module imports this one,
# so this is the only place free of import cycles.
# ---------------------------------------------------------------------------

#: classes whose direct construction is deprecated (populated by
#: ``repro.sim.queues.config`` at import time)
_LEGACY_SHIMMED: Set[Type["QueueDiscipline"]] = set()
#: class names that have already warned this process
_LEGACY_WARNED: Set[str] = set()
#: >0 while make_queue() itself is constructing (suppresses the warning)
_legacy_suppressed = 0


@contextmanager
def _factory_construction() -> Iterator[None]:
    """Mark constructions performed by make_queue() as non-deprecated."""
    global _legacy_suppressed
    _legacy_suppressed += 1
    try:
        yield
    finally:
        _legacy_suppressed -= 1


def _maybe_warn_legacy_init(cls: Type["QueueDiscipline"]) -> None:
    if _legacy_suppressed or cls not in _LEGACY_SHIMMED:
        return
    if cls.__name__ in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(cls.__name__)
    warnings.warn(
        f"constructing {cls.__name__} directly is deprecated; use "
        f"repro.sim.queues.make_queue(QueueConfig(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class QueueStats:
    """Counters shared by every queue discipline."""

    __slots__ = (
        "arrivals",
        "enqueues",
        "drops",
        "forced_drops",
        "early_drops",
        "marks",
        "departures",
        "bytes_in",
        "bytes_out",
        "_q_integral",
        "_last_change",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.enqueues = 0
        self.drops = 0
        self.forced_drops = 0  # buffer-overflow drops
        self.early_drops = 0  # AQM probabilistic drops
        self.marks = 0  # ECN CE marks
        self.departures = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self._q_integral = 0.0  # ∫ q(t) dt, for the time-averaged queue
        self._last_change = 0.0

    def account(self, now: float, qlen: int) -> None:
        """Accumulate the queue-length integral up to *now*."""
        if now > self._last_change:
            self._q_integral += qlen * (now - self._last_change)
            self._last_change = now

    def mean_queue(self, now: float, qlen: int) -> float:
        """Time-averaged queue length in packets over [0, now]."""
        self.account(now, qlen)
        return self._q_integral / now if now > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        """Fraction of arriving packets dropped."""
        return self.drops / self.arrivals if self.arrivals else 0.0


class QueueDiscipline:
    """Base class: a FIFO buffer plus an admission policy.

    Subclasses override :meth:`admit` to implement AQM.  ``admit`` returns
    one of ``"enqueue"``, ``"mark"`` (enqueue with CE set) or ``"drop"``.
    """

    # No __slots__ here: queues are per-link (a handful per simulation),
    # so the memory/lookup win is negligible, and tests legitimately
    # override ``enqueue``/``dequeue`` on individual instances to spy on
    # traffic — which needs an instance __dict__.

    #: class-attribute fallback for snapshots written before the flag
    #: existed: restored instances take the slow (always-correct) path
    _plain_admit = False

    def __init__(self, capacity_pkts: int,
                 capacity_bytes: Optional[int] = None) -> None:
        _maybe_warn_legacy_init(type(self))
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be >= 1 packet")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("byte capacity must be >= 1")
        # Plain tail-drop FIFO (no admit() override anywhere in the MRO):
        # enqueue() inlines the admission decision.  A subclass or test
        # that assigns ``admit`` on an *instance* must also set
        # ``self._plain_admit = False`` (class-level overrides are
        # detected here automatically).
        self._plain_admit = type(self).admit is QueueDiscipline.admit
        self.capacity = capacity_pkts
        #: optional additional byte bound (ns-2's byte-mode queues)
        self.capacity_bytes = capacity_bytes
        self._buf: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        #: callbacks invoked as ``fn(pkt, now)`` whenever a packet is
        #: dropped here — used to correlate queue-level losses with
        #: end-host RTT signals (Figure 2 of the paper).
        self.drop_listeners: List[Callable[[Packet, float], None]] = []
        #: observability attachment (:class:`repro.obs.Collector`); when
        #: ``None`` — the default — the hooks below cost one attribute
        #: test per packet and nothing else
        self.obs: Optional[Any] = None
        self.obs_label: Optional[str] = None

    # -- admission policy -------------------------------------------------
    def is_full_for(self, pkt: Packet) -> bool:
        """True if admitting *pkt* would exceed the packet or byte bound."""
        if len(self._buf) >= self.capacity:
            return True
        if self.capacity_bytes is not None:
            return self._bytes + pkt.size > self.capacity_bytes
        return False

    def admit(self, pkt: Packet, now: float) -> str:
        """Decide the fate of an arriving packet (default: tail drop)."""
        if self.is_full_for(pkt):
            return "drop"
        return "enqueue"

    def aqm_state(self) -> Optional[Dict[str, Any]]:
        """Controller state for ``queue_sample`` trace records.

        AQM subclasses override this to expose their internal signal
        (RED's average queue and ``max_p``, PI's probability, REM's
        price); plain FIFOs report ``None``.
        """
        return None

    # -- mechanics ---------------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> bool:
        """Offer *pkt* to the queue; returns True if it was accepted."""
        # QueueStats.account inlined: one enqueue/dequeue per packet hop
        # makes this the second-hottest path after the event loop.
        stats = self.stats
        buf = self._buf
        if now > stats._last_change:
            stats._q_integral += len(buf) * (now - stats._last_change)
            stats._last_change = now
        stats.arrivals += 1
        if self._plain_admit:
            # Inlined tail-drop admit(): same decision, no method call,
            # and the drop is by construction a forced (overflow) drop.
            if len(buf) >= self.capacity or (
                self.capacity_bytes is not None
                and self._bytes + pkt.size > self.capacity_bytes
            ):
                stats.drops += 1
                stats.forced_drops += 1
                for fn in self.drop_listeners:
                    fn(pkt, now)
                if self.obs is not None:
                    self.obs.queue_event(self, "drop", pkt, now, forced=True)
                return False
            pkt.enqueue_time = now
            buf.append(pkt)
            self._bytes += pkt.size
            stats.enqueues += 1
            stats.bytes_in += pkt.size
            if self.obs is not None:
                self.obs.queue_event(self, "enqueue", pkt, now)
            return True
        verdict = self.admit(pkt, now)
        if verdict == "enqueue":
            pass
        elif verdict == "mark":
            # Sanity: admit() must only mark ECN-capable packets.
            pkt.ce = True
            stats.marks += 1
        elif verdict == "drop":
            stats.drops += 1
            forced = self.is_full_for(pkt)
            if forced:
                stats.forced_drops += 1
            else:
                stats.early_drops += 1
            for fn in self.drop_listeners:
                fn(pkt, now)
            if self.obs is not None:
                self.obs.queue_event(self, "drop", pkt, now, forced=forced)
            return False
        else:
            raise ValueError(f"bad admit() verdict {verdict!r}")
        pkt.enqueue_time = now
        self._buf.append(pkt)
        self._bytes += pkt.size
        stats.enqueues += 1
        stats.bytes_in += pkt.size
        if self.obs is not None:
            self.obs.queue_event(self, verdict, pkt, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or ``None``."""
        buf = self._buf
        if not buf:
            return None
        stats = self.stats
        if now > stats._last_change:
            stats._q_integral += len(buf) * (now - stats._last_change)
            stats._last_change = now
        pkt = buf.popleft()
        self._bytes -= pkt.size
        stats.departures += 1
        stats.bytes_out += pkt.size
        if self.obs is not None:
            self.obs.queue_departure(self, pkt, now)
        return pkt

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {len(self._buf)}/{self.capacity} pkts "
            f"drops={self.stats.drops} marks={self.stats.marks}>"
        )
