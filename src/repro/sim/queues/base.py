"""Queue-discipline interface and shared bookkeeping.

A :class:`QueueDiscipline` sits at the head of each unidirectional link and
decides, per arriving packet, whether to enqueue, mark (ECN), or drop.  All
disciplines keep uniform statistics so the experiment harness can compute
drop rates and time-averaged queue lengths without knowing which AQM is in
use.

Queue capacity is expressed in *packets*, matching the paper (e.g. the
750-packet queues of Section 2.2) and ns-2's default byte-agnostic queues.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..packet import Packet

__all__ = ["QueueDiscipline", "QueueStats"]


class QueueStats:
    """Counters shared by every queue discipline."""

    __slots__ = (
        "arrivals",
        "enqueues",
        "drops",
        "forced_drops",
        "early_drops",
        "marks",
        "departures",
        "bytes_in",
        "bytes_out",
        "_q_integral",
        "_last_change",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.enqueues = 0
        self.drops = 0
        self.forced_drops = 0  # buffer-overflow drops
        self.early_drops = 0  # AQM probabilistic drops
        self.marks = 0  # ECN CE marks
        self.departures = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self._q_integral = 0.0  # ∫ q(t) dt, for the time-averaged queue
        self._last_change = 0.0

    def account(self, now: float, qlen: int) -> None:
        """Accumulate the queue-length integral up to *now*."""
        if now > self._last_change:
            self._q_integral += qlen * (now - self._last_change)
            self._last_change = now

    def mean_queue(self, now: float, qlen: int) -> float:
        """Time-averaged queue length in packets over [0, now]."""
        self.account(now, qlen)
        return self._q_integral / now if now > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        """Fraction of arriving packets dropped."""
        return self.drops / self.arrivals if self.arrivals else 0.0


class QueueDiscipline:
    """Base class: a FIFO buffer plus an admission policy.

    Subclasses override :meth:`admit` to implement AQM.  ``admit`` returns
    one of ``"enqueue"``, ``"mark"`` (enqueue with CE set) or ``"drop"``.
    """

    def __init__(self, capacity_pkts: int, capacity_bytes: Optional[int] = None):
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be >= 1 packet")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("byte capacity must be >= 1")
        self.capacity = capacity_pkts
        #: optional additional byte bound (ns-2's byte-mode queues)
        self.capacity_bytes = capacity_bytes
        self._buf: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        #: callbacks invoked as ``fn(pkt, now)`` whenever a packet is
        #: dropped here — used to correlate queue-level losses with
        #: end-host RTT signals (Figure 2 of the paper).
        self.drop_listeners = []
        #: observability attachment (:class:`repro.obs.Collector`); when
        #: ``None`` — the default — the hooks below cost one attribute
        #: test per packet and nothing else
        self.obs = None
        self.obs_label: Optional[str] = None

    # -- admission policy -------------------------------------------------
    def is_full_for(self, pkt: Packet) -> bool:
        """True if admitting *pkt* would exceed the packet or byte bound."""
        if len(self._buf) >= self.capacity:
            return True
        if self.capacity_bytes is not None:
            return self._bytes + pkt.size > self.capacity_bytes
        return False

    def admit(self, pkt: Packet, now: float) -> str:
        """Decide the fate of an arriving packet (default: tail drop)."""
        if self.is_full_for(pkt):
            return "drop"
        return "enqueue"

    def aqm_state(self) -> Optional[dict]:
        """Controller state for ``queue_sample`` trace records.

        AQM subclasses override this to expose their internal signal
        (RED's average queue and ``max_p``, PI's probability, REM's
        price); plain FIFOs report ``None``.
        """
        return None

    # -- mechanics ---------------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> bool:
        """Offer *pkt* to the queue; returns True if it was accepted."""
        self.stats.account(now, len(self._buf))
        self.stats.arrivals += 1
        verdict = self.admit(pkt, now)
        if verdict == "drop" or (verdict != "enqueue" and verdict != "mark"):
            if verdict not in ("drop", "enqueue", "mark"):
                raise ValueError(f"bad admit() verdict {verdict!r}")
            self.stats.drops += 1
            forced = self.is_full_for(pkt)
            if forced:
                self.stats.forced_drops += 1
            else:
                self.stats.early_drops += 1
            for fn in self.drop_listeners:
                fn(pkt, now)
            if self.obs is not None:
                self.obs.queue_event(self, "drop", pkt, now, forced=forced)
            return False
        if verdict == "mark":
            # Sanity: admit() must only mark ECN-capable packets.
            pkt.ce = True
            self.stats.marks += 1
        pkt.enqueue_time = now
        self._buf.append(pkt)
        self._bytes += pkt.size
        self.stats.enqueues += 1
        self.stats.bytes_in += pkt.size
        if self.obs is not None:
            self.obs.queue_event(self, verdict, pkt, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or ``None``."""
        if not self._buf:
            return None
        self.stats.account(now, len(self._buf))
        pkt = self._buf.popleft()
        self._bytes -= pkt.size
        self.stats.departures += 1
        self.stats.bytes_out += pkt.size
        if self.obs is not None:
            self.obs.queue_departure(self, pkt, now)
        return pkt

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {len(self._buf)}/{self.capacity} pkts "
            f"drops={self.stats.drops} marks={self.stats.marks}>"
        )
