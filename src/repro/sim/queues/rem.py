"""Random Exponential Marking (REM) queue.

Implements REM (Athuraliya, Low, Li & Yin, IEEE Network 2001) — cited by
the paper as one of the binary-feedback AQM schemes ([2]).  REM keeps a
*price* per link that integrates the mismatch between demand and
capacity, and marks with probability

    p = 1 - phi^(-price)

so that end-to-end marking probability composes multiplicatively over a
path.  The price update each period T is

    price <- max(0, price + gamma * (alpha * (q - q_ref) + q - q_prev))

(the ``q - q_prev`` term approximates rate mismatch by queue growth).

Included both as an additional router baseline and as the template for
the end-host REM emulation (:class:`repro.core.response.RemResponse`),
demonstrating the paper's claim that PERT generalises to other AQMs.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from ..engine import Simulator
from ..packet import Packet
from .base import QueueDiscipline

__all__ = ["RemQueue"]


class RemQueue(QueueDiscipline):
    """REM AQM queue.

    Parameters
    ----------
    q_ref:
        Target queue length in packets (REM's ``b*``).
    gamma:
        Price adaptation gain (REM default 0.001).
    alpha:
        Weight of the queue-offset term (REM default 0.1).
    phi:
        Exponential base (> 1; REM default 1.001).
    sample_hz:
        Price update frequency.
    """


    def __init__(
        self,
        capacity_pkts: int,
        q_ref: float = 20.0,
        gamma: float = 0.001,
        alpha: float = 0.1,
        phi: float = 1.001,
        sample_hz: float = 170.0,
        ecn: bool = True,
        sim: Optional[Simulator] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(capacity_pkts)
        if phi <= 1.0:
            raise ValueError("phi must be > 1")
        if q_ref < 0 or gamma <= 0:
            raise ValueError("q_ref must be >= 0 and gamma > 0")
        self.q_ref = q_ref
        self.gamma = gamma
        self.alpha = alpha
        self.phi = phi
        self.period = 1.0 / sample_hz
        self.ecn = ecn
        self.rng = rng or random.Random(0x4E4)
        self.price = 0.0
        self._q_prev = 0.0
        if sim is not None:
            self._attach(sim)

    def _attach(self, sim: Simulator) -> None:
        sim.schedule_fire(self.period, self._tick, sim)

    def _tick(self, sim: Simulator) -> None:
        self.update()
        sim.schedule_fire(self.period, self._tick, sim)

    def update(self) -> float:
        """One price step; returns the resulting mark probability."""
        q = float(len(self._buf))
        mismatch = self.alpha * (q - self.q_ref) + (q - self._q_prev)
        self.price = max(0.0, self.price + self.gamma * mismatch)
        self._q_prev = q
        return self.mark_probability()

    def mark_probability(self) -> float:
        """REM's exponential law: 1 - phi^(-price)."""
        return 1.0 - self.phi ** (-self.price)

    def admit(self, pkt: Packet, now: float) -> str:
        if self.is_full_for(pkt):
            return "drop"
        if self.rng.random() < self.mark_probability():
            if self.ecn and pkt.ect:
                return "mark"
            return "drop"
        return "enqueue"

    def aqm_state(self) -> Dict[str, Any]:
        return {"price": self.price, "p": self.mark_probability()}
