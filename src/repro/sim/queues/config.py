"""Unified queue-discipline construction: ``QueueConfig`` + ``make_queue``.

Historically every discipline had its own keyword constructor with
slightly different conventions (``RedQueue`` takes ``rng`` but not
``sim``; ``PiQueue``/``RemQueue`` take both; ``DropTailQueue`` takes
neither), so call sites had to special-case each class.  This module
replaces that with one declarative shape:

>>> cfg = QueueConfig("red", capacity_pkts=120,
...                   params=dict(min_th=10, max_th=30, adaptive=True))
>>> q = make_queue(cfg, sim=sim)

``make_queue`` handles the per-class differences:

* a seeded RNG is derived from *sim* when the discipline needs one and
  no explicit ``rng`` is given, claiming the same per-discipline stream
  labels (``"red"``, ``"pi"``, ``"rem"``, with ``unique=True``) the old
  hand-rolled factories used — fixed-seed runs are bit-identical across
  the old and new construction paths;
* *sim* is forwarded to disciplines that self-schedule periodic work
  (PI's and REM's controller ticks);
* unknown disciplines and parameters are rejected eagerly, at
  :class:`QueueConfig` construction time, with the valid names listed.

Direct constructor calls (``RedQueue(...)``) still work but emit one
:class:`DeprecationWarning` per class per process.
"""

from __future__ import annotations

import dataclasses
import inspect
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Type

from ..engine import Simulator
from . import base
from .base import QueueDiscipline
from .droptail import DropTailQueue
from .pi import PiQueue
from .red import RedQueue
from .rem import RemQueue

__all__ = ["QueueConfig", "make_queue", "DISCIPLINES", "reset_legacy_warnings"]

#: discipline name -> implementing class
DISCIPLINES: Dict[str, Type[QueueDiscipline]] = {
    "droptail": DropTailQueue,
    "red": RedQueue,
    "pi": PiQueue,
    "rem": RemQueue,
}

#: RNG stream label claimed (``unique=True``) when deriving the stream
#: from ``sim`` — must match the labels the legacy experiment factories
#: used, or fixed-seed goldens would shift.
_STREAM_LABELS = {"red": "red", "pi": "pi", "rem": "rem"}

# Register the concrete classes so QueueDiscipline.__init__ warns on
# direct construction (make_queue suppresses the warning for itself).
for _cls in DISCIPLINES.values():
    base._LEGACY_SHIMMED.add(_cls)
del _cls


def _allowed_params(cls: Type[QueueDiscipline]) -> Dict[str, inspect.Parameter]:
    """Constructor keywords settable through ``QueueConfig.params``."""
    sig = inspect.signature(cls.__init__)
    reserved = {"self", "capacity_pkts", "capacity_bytes", "sim", "rng"}
    return {n: p for n, p in sig.parameters.items() if n not in reserved}


@dataclass(frozen=True)
class QueueConfig:
    """Declarative description of one queue discipline instance.

    Parameters
    ----------
    discipline:
        One of :data:`DISCIPLINES` (``"droptail"``, ``"red"``, ``"pi"``,
        ``"rem"``).
    capacity_pkts:
        Physical buffer size in packets (every discipline has one).
    capacity_bytes:
        Optional additional byte bound; only disciplines that support
        byte-mode accounting accept it.
    params:
        Discipline-specific knobs, validated against the implementing
        class's constructor signature at config-construction time.
    """

    discipline: str
    capacity_pkts: int = 100
    capacity_bytes: Optional[int] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cls = DISCIPLINES.get(self.discipline)
        if cls is None:
            raise ValueError(
                f"unknown discipline {self.discipline!r}; "
                f"valid: {sorted(DISCIPLINES)}"
            )
        allowed = _allowed_params(cls)
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for discipline "
                f"{self.discipline!r}; valid: {sorted(allowed)}"
            )
        if self.capacity_bytes is not None and "capacity_bytes" not in (
            inspect.signature(cls.__init__).parameters
        ):
            raise ValueError(
                f"discipline {self.discipline!r} does not support "
                f"capacity_bytes"
            )
        # freeze the param mapping so configs are safely shareable
        object.__setattr__(self, "params", dict(self.params))

    def with_params(self, **params: Any) -> "QueueConfig":
        """Return a copy with *params* merged over the existing ones."""
        merged = dict(self.params)
        merged.update(params)
        return dataclasses.replace(self, params=merged)


def make_queue(
    config: QueueConfig,
    sim: Optional[Simulator] = None,
    rng: Optional[random.Random] = None,
) -> QueueDiscipline:
    """Build the queue discipline described by *config*.

    When the discipline consumes randomness and *rng* is not given, a
    stream is derived from *sim* (label per :data:`_STREAM_LABELS`,
    ``unique=True`` so multiple queues per simulation coexist); with
    neither *sim* nor *rng* the class's fixed default seed applies.
    Disciplines that self-schedule periodic controller updates receive
    *sim* and attach themselves.
    """
    cls = DISCIPLINES[config.discipline]
    sig = inspect.signature(cls.__init__).parameters
    kwargs: Dict[str, Any] = dict(config.params)
    if config.capacity_bytes is not None:
        kwargs["capacity_bytes"] = config.capacity_bytes
    if "rng" in sig:
        if rng is None and sim is not None:
            rng = sim.stream(_STREAM_LABELS[config.discipline], unique=True)
        if rng is not None:
            kwargs["rng"] = rng
    if "sim" in sig and sim is not None:
        kwargs["sim"] = sim
    with base._factory_construction():
        return cls(config.capacity_pkts, **kwargs)


def reset_legacy_warnings() -> None:
    """Forget which classes have warned (for tests of the shims)."""
    base._LEGACY_WARNED.clear()
