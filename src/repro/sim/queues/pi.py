"""Proportional-Integral (PI) AQM queue.

Implements the PI controller of Hollot, Misra, Towsley & Gong,
"On designing improved controllers for AQM routers supporting TCP flows"
(INFOCOM 2001) — the router-side baseline for the paper's Section 6
(PERT/PI).  The controller periodically recomputes the mark probability

    p(kT) = a * (q(kT) - q_ref) - b * (q((k-1)T) - q_ref) + p((k-1)T)

at sampling frequency ``1/T`` and applies it to every arrival, marking
ECN-capable packets and dropping the rest.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from ..engine import Simulator
from ..packet import Packet
from .base import QueueDiscipline

__all__ = ["PiQueue"]


class PiQueue(QueueDiscipline):
    """PI-controlled AQM queue.

    Parameters
    ----------
    capacity_pkts:
        Physical buffer size.
    q_ref:
        Target queue length in packets (the paper's PERT/PI experiment
        targets a 3 ms queuing delay; the router baseline uses the
        equivalent packet count).
    a, b:
        Controller gains of the discretised PI transfer function.  The
        ns-2 defaults (a=1.822e-5, b=1.816e-5 at 170 Hz, normalised per
        packet) are appropriate for ~1500-byte packets at ~15 Mbps; use
        :func:`repro.fluid.stability.pi_gains` to derive gains for a given
        capacity / RTT / flow-count operating point.
    sample_hz:
        Controller update frequency (ns-2 default 170 Hz).
    sim:
        If given, the queue self-schedules its own periodic updates;
        otherwise callers must invoke :meth:`update` manually.
    """


    def __init__(
        self,
        capacity_pkts: int,
        q_ref: float = 50.0,
        a: float = 1.822e-5,
        b: float = 1.816e-5,
        sample_hz: float = 170.0,
        ecn: bool = True,
        sim: Optional[Simulator] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(capacity_pkts)
        if q_ref < 0:
            raise ValueError("q_ref must be non-negative")
        if sample_hz <= 0:
            raise ValueError("sample_hz must be positive")
        self.q_ref = q_ref
        self.a = a
        self.b = b
        self.period = 1.0 / sample_hz
        self.ecn = ecn
        self.rng = rng or random.Random(0xA1)
        self.p = 0.0
        self._q_old = 0.0
        if sim is not None:
            self._attach(sim)

    def _attach(self, sim: Simulator) -> None:
        sim.schedule_fire(self.period, self._tick, sim)

    def _tick(self, sim: Simulator) -> None:
        self.update()
        sim.schedule_fire(self.period, self._tick, sim)

    def update(self) -> float:
        """One controller step; returns the new mark probability."""
        q = float(len(self._buf))
        p = self.a * (q - self.q_ref) - self.b * (self._q_old - self.q_ref) + self.p
        self.p = min(1.0, max(0.0, p))
        self._q_old = q
        return self.p

    def admit(self, pkt: Packet, now: float) -> str:
        if self.is_full_for(pkt):
            return "drop"
        if self.p > 0.0 and self.rng.random() < self.p:
            if self.ecn and pkt.ect:
                return "mark"
            return "drop"
        return "enqueue"

    def aqm_state(self) -> Dict[str, Any]:
        return {"p": self.p, "q_ref": self.q_ref}
