"""Random Early Detection (RED) queue.

Implements the classic gateway algorithm of Floyd & Jacobson (1993) with
the two extensions the paper's evaluation relies on:

* the **gentle** variant, where the marking probability ramps linearly
  from ``max_p`` at ``max_th`` up to 1 at ``2*max_th`` (this curve is what
  PERT emulates at the end host — Figure 5 of the paper), and
* **Adaptive RED** (Floyd, Gummadi & Shenker, 2001), which slowly adapts
  ``max_p`` to hold the average queue inside a target band.  The paper's
  router baseline ("SACK/RED-ECN") uses ns-2's adaptive RED.

Marking semantics: if the arriving packet is ECN-capable (``ect``), an
early "drop" decision becomes a CE mark; forced (overflow) drops always
drop.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Optional

from ..packet import Packet
from .base import QueueDiscipline

__all__ = ["RedQueue"]


class RedQueue(QueueDiscipline):
    """RED/gentle-RED/adaptive-RED queue discipline.

    Parameters
    ----------
    capacity_pkts:
        Physical buffer size in packets.
    min_th, max_th:
        Average-queue thresholds in packets.
    max_p:
        Marking probability at ``max_th``.
    w_q:
        EWMA weight for the average queue size.  If ``None`` it is derived
        from ``mean_pkt_time`` as ``1 - exp(-1 / (10 * C))`` per Adaptive
        RED's auto-configuration (C in packets/second).
    gentle:
        Enable the gentle slope between ``max_th`` and ``2*max_th``.
    ecn:
        Mark ECN-capable packets instead of dropping them.
    adaptive:
        Enable Adaptive RED's ``max_p`` adaptation (AIMD every
        ``interval`` seconds toward the target band).
    mean_pkt_time:
        Typical packet transmission time (seconds); used both for the idle
        decay of the average and for auto-``w_q``.
    rng:
        Random stream for the marking coin flips.
    """


    def __init__(
        self,
        capacity_pkts: int,
        min_th: float = 5.0,
        max_th: float = 15.0,
        max_p: float = 0.1,
        w_q: Optional[float] = None,
        gentle: bool = True,
        ecn: bool = True,
        adaptive: bool = False,
        interval: float = 0.5,
        mean_pkt_time: float = 0.001,
        byte_mode: bool = False,
        mean_pkt_size: int = 1000,
        capacity_bytes: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(capacity_pkts, capacity_bytes=capacity_bytes)
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.gentle = gentle
        self.ecn = ecn
        self.adaptive = adaptive
        self.interval = interval
        self.mean_pkt_time = mean_pkt_time
        if w_q is None:
            # Adaptive RED auto-configuration: average over ~10 * 1/C.
            rate = 1.0 / mean_pkt_time
            w_q = 1.0 - math.exp(-1.0 / (10.0 * rate)) if rate > 0 else 0.002
            w_q = max(w_q, 1e-6)
        self.w_q = w_q
        #: Floyd's "byte mode": marking probability scaled by packet size
        #: relative to *mean_pkt_size*, so big packets are marked
        #: preferentially and tiny ACKs mostly pass
        self.byte_mode = byte_mode
        self.mean_pkt_size = mean_pkt_size
        self.rng = rng or random.Random(0x5ED)

        self.avg = 0.0
        self._count = 0  # packets since last early mark/drop
        self._idle_since: Optional[float] = 0.0
        self._last_adapt = 0.0

    # ------------------------------------------------------------------
    # average-queue estimator
    # ------------------------------------------------------------------
    def _update_avg(self, now: float) -> None:
        q = len(self._buf)
        if q == 0 and self._idle_since is not None:
            # Decay the average as if m small packets had drained.
            m = (now - self._idle_since) / self.mean_pkt_time
            self.avg *= (1.0 - self.w_q) ** max(m, 0.0)
            self._idle_since = now
        else:
            self.avg += self.w_q * (q - self.avg)

    # ------------------------------------------------------------------
    # marking probability
    # ------------------------------------------------------------------
    def mark_probability(self) -> float:
        """Instantaneous p_b as a function of the current average queue."""
        avg = self.avg
        if avg < self.min_th:
            return 0.0
        if avg < self.max_th:
            return self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        if self.gentle and avg < 2 * self.max_th:
            return self.max_p + (1.0 - self.max_p) * (avg - self.max_th) / self.max_th
        return 1.0

    def _adapt_max_p(self, now: float) -> None:
        """Adaptive RED: hold avg inside the middle of [min_th, max_th]."""
        if now - self._last_adapt < self.interval:
            return
        self._last_adapt = now
        span = self.max_th - self.min_th
        target_lo = self.min_th + 0.4 * span
        target_hi = self.min_th + 0.6 * span
        if self.avg > target_hi and self.max_p <= 0.5:
            self.max_p += min(0.01, self.max_p / 4.0)
        elif self.avg < target_lo and self.max_p >= 0.01:
            self.max_p *= 0.9

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, pkt: Packet, now: float) -> str:
        self._update_avg(now)
        if self.adaptive:
            self._adapt_max_p(now)
        if self.is_full_for(pkt):
            self._count = 0
            return "drop"
        p_b = self.mark_probability()
        if self.byte_mode and p_b > 0.0:
            p_b = min(1.0, p_b * pkt.size / self.mean_pkt_size)
        if p_b <= 0.0:
            self._count = 0
            return "enqueue"
        if p_b >= 1.0:
            self._count = 0
            return self._mark_or_drop(pkt)
        # Uniformize inter-mark spacing (Floyd & Jacobson eq. for p_a).
        self._count += 1
        denom = 1.0 - self._count * p_b
        p_a = 1.0 if denom <= 0 else min(1.0, p_b / denom)
        if self.rng.random() < p_a:
            self._count = 0
            return self._mark_or_drop(pkt)
        return "enqueue"

    def _mark_or_drop(self, pkt: Packet) -> str:
        if self.ecn and pkt.ect:
            return "mark"
        return "drop"

    def aqm_state(self) -> Dict[str, Any]:
        return {
            "avg": self.avg,
            "max_p": self.max_p,
            "p": self.mark_probability(),
        }

    def dequeue(self, now: float) -> Optional[Packet]:
        pkt = super().dequeue(now)
        if pkt is not None and not self._buf:
            self._idle_since = now
        return pkt
