"""DropTail (tail-drop FIFO) queue — the paper's baseline router buffer."""

from __future__ import annotations

from .base import QueueDiscipline

__all__ = ["DropTailQueue"]


class DropTailQueue(QueueDiscipline):
    """Plain FIFO that drops arrivals once the buffer is full.

    This is the default router behaviour against which SACK, Vegas and
    PERT are evaluated in Section 4 of the paper.
    """

    # The base-class admit() already implements tail drop; the subclass
    # exists so topology code can name the policy explicitly.
