"""Jitter link: random per-packet extra delay (causes reordering).

Real paths reorder packets; delay-based end-host schemes must neither
collapse (spurious fast retransmits) nor misread jitter as congestion.
:class:`JitterLink` extends the store-and-forward link with a uniformly
distributed extra propagation delay per packet, so packets can overtake
each other in flight — the standard way to inject reordering without
modelling parallel paths explicitly.
"""

from __future__ import annotations

import random
from typing import Optional

from .engine import Simulator
from .link import Link
from .packet import Packet
from .queues.base import QueueDiscipline

__all__ = ["JitterLink"]


class JitterLink(Link):
    """Link whose propagation delay is ``delay + U(0, jitter)`` per packet.

    Because each packet draws its own extra delay, a later packet can
    arrive before an earlier one (reordering), unlike the FIFO base link.
    """

    __slots__ = ("jitter", "rng", "reorder_opportunities", "_last_arrival")

    def __init__(
        self,
        sim: Simulator,
        src,
        dst,
        bandwidth: float,
        delay: float,
        qdisc: QueueDiscipline,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, src, dst, bandwidth, delay, qdisc)
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.jitter = jitter
        self.rng = rng or sim.stream("jitter", unique=True)
        self.reorder_opportunities = 0
        self._last_arrival = 0.0

    def _tx_done(self, pkt: Packet) -> None:
        self.bytes_transmitted += pkt.size
        self.packets_transmitted += 1
        extra = self.rng.uniform(0.0, self.jitter) if self.jitter > 0 else 0.0
        arrival = self.sim.now + self.delay + extra
        if arrival < self._last_arrival:
            self.reorder_opportunities += 1
        self._last_arrival = max(self._last_arrival, arrival)
        self.sim.schedule_at(arrival, self.dst.receive, pkt)
        self._start_next()
