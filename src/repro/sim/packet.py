"""Packet model.

Packets carry just enough header state for the experiments in the paper:
sequence numbers at *packet granularity* (as in ns-2's TCP agents), SACK
blocks, and the four ECN-related bits (ECT, CE on data packets; ECE, CWR on
the TCP header).  Sizes are in bytes and only matter for serialization
delay and queue byte-counts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["Packet", "DATA_SIZE", "ACK_SIZE"]

DATA_SIZE = 1000  #: default data packet size in bytes (paper uses 1000-1250)
ACK_SIZE = 40  #: pure-ACK size in bytes

#: shared default for packets with no SACK information.  Never mutated —
#: receivers build fresh block lists; everything else only iterates.
_NO_SACK: List[Tuple[int, int]] = []


class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow_id:
        Identifier of the flow this packet belongs to.  ACKs carry the
        same ``flow_id`` as the data they acknowledge.
    seq:
        Data sequence number in packets; ``-1`` for pure ACKs.
    ack_seq:
        Cumulative ACK: the next in-order packet expected by the receiver
        (only meaningful when ``is_ack``).
    sack_blocks:
        Up to three ``(start, end)`` half-open packet ranges received above
        the cumulative ACK.
    ect / ce:
        ECN-Capable-Transport and Congestion-Experienced bits of the IP
        header.  AQM queues mark ``ce`` instead of dropping when ``ect``.
    ece / cwr:
        TCP-header echo bits: the receiver sets ``ece`` on ACKs until the
        sender's ``cwr`` arrives.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "seq",
        "is_ack",
        "ack_seq",
        "sack_blocks",
        "ect",
        "ce",
        "ece",
        "cwr",
        "sent_time",
        "enqueue_time",
        "is_retransmit",
        "owd_echo",
        "hops",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: int = DATA_SIZE,
        seq: int = -1,
        is_ack: bool = False,
        ack_seq: int = -1,
        sack_blocks: Optional[List[Tuple[int, int]]] = None,
        ect: bool = False,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.seq = seq
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.sack_blocks = sack_blocks if sack_blocks is not None else _NO_SACK
        self.ect = ect
        self.ce = False
        self.ece = False
        self.cwr = False
        self.sent_time = 0.0
        self.enqueue_time = 0.0
        self.is_retransmit = False
        #: on ACKs: the forward one-way delay measured by the receiver
        #: for the data packet being acknowledged (-1 when unavailable);
        #: used by the one-way-delay PERT variant of paper Section 7
        self.owd_echo = -1.0
        self.hops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return (
                f"<ACK flow={self.flow_id} ack={self.ack_seq} "
                f"sack={self.sack_blocks} ece={int(self.ece)}>"
            )
        return (
            f"<DATA flow={self.flow_id} seq={self.seq} size={self.size} "
            f"ce={int(self.ce)} rtx={int(self.is_retransmit)}>"
        )
