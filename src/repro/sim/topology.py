"""Topology construction: duplex links, static routing, paper topologies.

Two canonical topologies from the paper are provided:

* ``"dumbbell"`` — the single-bottleneck topology used throughout
  Section 4 (hosts on each side, two routers, one bottleneck link);
* ``"parking_lot"`` — the six-router chain with per-router host
  clouds of Section 4.6 / Figure 10 (multiple bottlenecks).

The canonical way to build either is the :func:`make_topology` registry
(mirroring :func:`repro.sim.queues.make_queue`), so scenario specs can
name topologies declaratively:

>>> db = make_topology("dumbbell", sim, n_left=4, n_right=4,
...                    bottleneck_bw=8e6, bottleneck_delay=0.01,
...                    qdisc_fwd=qdisc)

The historical :func:`build_dumbbell`/:func:`build_parking_lot` wrappers
remain as thin shims that emit one :class:`DeprecationWarning` each per
process.  Every topology owns a :class:`Network`, which keeps the
simulator's node table and computes static shortest-path (hop-count)
routes.
"""

from __future__ import annotations

import inspect
import warnings
from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple, Type

from .engine import Simulator
from .link import Link
from .node import Node
from .queues.base import QueueDiscipline
from .queues.config import QueueConfig, make_queue

__all__ = [
    "Network",
    "Dumbbell",
    "ParkingLot",
    "TOPOLOGIES",
    "make_topology",
    "build_dumbbell",
    "build_parking_lot",
    "reset_builder_warnings",
]

QdiscFactory = Callable[[], QueueDiscipline]

_DEFAULT_QUEUE = QueueConfig("droptail", capacity_pkts=1000)


def _default_qdisc() -> QueueDiscipline:
    return make_queue(_DEFAULT_QUEUE)


class Network:
    """A set of nodes and duplex links with static hop-count routing."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: List[Node] = []
        self.links: List[Link] = []
        self._adj: Dict[int, List[Tuple[int, Link]]] = {}

    def add_node(self, name: str = "") -> Node:
        node = Node(self.sim, node_id=len(self.nodes), name=name)
        self.nodes.append(node)
        self._adj[node.node_id] = []
        return node

    def connect(
        self,
        a: Node,
        b: Node,
        bandwidth: float,
        delay: float,
        qdisc_ab: Optional[QdiscFactory] = None,
        qdisc_ba: Optional[QdiscFactory] = None,
    ) -> Tuple[Link, Link]:
        """Create a duplex link ``a <-> b``; each direction gets its own queue."""
        fab = qdisc_ab or _default_qdisc
        fba = qdisc_ba or qdisc_ab or _default_qdisc
        link_ab = Link(self.sim, a, b, bandwidth, delay, fab())
        link_ba = Link(self.sim, b, a, bandwidth, delay, fba())
        self.links.extend([link_ab, link_ba])
        self._adj[a.node_id].append((b.node_id, link_ab))
        self._adj[b.node_id].append((a.node_id, link_ba))
        return link_ab, link_ba

    def compute_routes(self) -> None:
        """Fill every node's next-hop table by BFS from each source."""
        for src in self.nodes:
            # BFS over hop count; the first hop of the discovery path is
            # inherited along the tree, giving shortest-path next hops.
            visited = {src.node_id}
            frontier = deque([src.node_id])
            first_hop: Dict[int, Link] = {}
            while frontier:
                u = frontier.popleft()
                for v, link in self._adj[u]:
                    if v in visited:
                        continue
                    visited.add(v)
                    first_hop[v] = first_hop[u] if u != src.node_id else link
                    frontier.append(v)
            for dst_id, link in first_hop.items():
                src.add_route(dst_id, link)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]


class Dumbbell:
    """Single-bottleneck topology of the paper's Section 4 experiments.

    ``n_left`` hosts connect to router ``r1``, ``n_right`` hosts to ``r2``,
    and a single duplex bottleneck joins the routers.  Access links are
    fast enough never to be the bottleneck; per-host access delays realise
    heterogeneous end-to-end RTTs.
    """

    def __init__(
        self,
        sim: Simulator,
        n_left: int,
        n_right: int,
        bottleneck_bw: float,
        bottleneck_delay: float,
        qdisc_fwd: QdiscFactory,
        qdisc_rev: Optional[QdiscFactory] = None,
        access_bw: float = 500e6,
        access_delays_left: Optional[List[float]] = None,
        access_delays_right: Optional[List[float]] = None,
    ):
        self.net = Network(sim)
        self.r1 = self.net.add_node("r1")
        self.r2 = self.net.add_node("r2")
        self.left = [self.net.add_node(f"L{i}") for i in range(n_left)]
        self.right = [self.net.add_node(f"R{i}") for i in range(n_right)]
        self.fwd, self.rev = self.net.connect(
            self.r1, self.r2, bottleneck_bw, bottleneck_delay, qdisc_fwd, qdisc_rev
        )
        dl = access_delays_left or [1e-3] * n_left
        dr = access_delays_right or [1e-3] * n_right
        if len(dl) != n_left or len(dr) != n_right:
            raise ValueError("access delay list lengths must match host counts")
        for host, d in zip(self.left, dl):
            self.net.connect(host, self.r1, access_bw, d)
        for host, d in zip(self.right, dr):
            self.net.connect(host, self.r2, access_bw, d)
        self.net.compute_routes()

    @property
    def sim(self) -> Simulator:
        return self.net.sim

    @property
    def bottleneck_queue(self) -> QueueDiscipline:
        """Forward-direction bottleneck queue (the paper's observed queue)."""
        return self.fwd.qdisc


class ParkingLot:
    """Six-router chain with host clouds (paper Figure 10).

    Routers ``R1..Rk`` are joined by identical duplex links; each router
    has ``cloud_size`` hosts attached.  Traffic patterns (each cloud sends
    to the next cloud; cloud 1 also sends end-to-end to cloud k) are wired
    by the experiment, not here.
    """

    def __init__(
        self,
        sim: Simulator,
        n_routers: int,
        cloud_size: int,
        link_bw: float,
        link_delay: float,
        qdisc: QdiscFactory,
        access_bw: float = 1e9,
        access_delay: float = 5e-3,
    ):
        if n_routers < 2:
            raise ValueError("need at least two routers")
        self.net = Network(sim)
        self.routers = [self.net.add_node(f"R{i+1}") for i in range(n_routers)]
        self.clouds: List[List[Node]] = []
        self.core_links: List[Tuple[Link, Link]] = []
        for i in range(n_routers - 1):
            pair = self.net.connect(
                self.routers[i], self.routers[i + 1], link_bw, link_delay, qdisc, qdisc
            )
            self.core_links.append(pair)
        for i, router in enumerate(self.routers):
            cloud = [self.net.add_node(f"h{i+1}.{j}") for j in range(cloud_size)]
            for host in cloud:
                self.net.connect(host, router, access_bw, access_delay)
            self.clouds.append(cloud)
        self.net.compute_routes()

    @property
    def sim(self) -> Simulator:
        return self.net.sim


#: topology name -> implementing class
TOPOLOGIES: Dict[str, Type] = {
    "dumbbell": Dumbbell,
    "parking_lot": ParkingLot,
}

#: deprecated builder names that have already warned this process
_BUILDER_WARNED: Set[str] = set()


def _allowed_topology_params(cls: Type) -> Dict[str, inspect.Parameter]:
    """Constructor keywords settable through :func:`make_topology`."""
    sig = inspect.signature(cls.__init__)
    return {n: p for n, p in sig.parameters.items() if n not in ("self", "sim")}


def make_topology(name: str, sim: Simulator, **kwargs):
    """Build the topology registered under *name* on *sim*.

    Keyword arguments are validated against the implementing class's
    constructor signature; unknown topology names and parameters raise
    :class:`ValueError` with the valid names listed, exactly like
    :func:`repro.sim.queues.make_queue` does for disciplines.
    """
    cls = TOPOLOGIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown topology {name!r}; valid: {sorted(TOPOLOGIES)}"
        )
    allowed = _allowed_topology_params(cls)
    unknown = sorted(set(kwargs) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for topology {name!r}; "
            f"valid: {sorted(allowed)}"
        )
    return cls(sim, **kwargs)


def _warn_builder(old: str, name: str) -> None:
    """Once-per-process deprecation notice for the legacy builders."""
    if old in _BUILDER_WARNED:
        return
    _BUILDER_WARNED.add(old)
    warnings.warn(
        f"{old}() is deprecated; use make_topology({name!r}, sim, ...)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_builder_warnings() -> None:
    """Forget which legacy builders have warned (for tests of the shims)."""
    _BUILDER_WARNED.clear()


def build_dumbbell(sim: Simulator, **kwargs) -> Dumbbell:
    """Deprecated: use ``make_topology("dumbbell", sim, **kwargs)``."""
    _warn_builder("build_dumbbell", "dumbbell")
    return make_topology("dumbbell", sim, **kwargs)


def build_parking_lot(sim: Simulator, **kwargs) -> ParkingLot:
    """Deprecated: use ``make_topology("parking_lot", sim, **kwargs)``."""
    _warn_builder("build_parking_lot", "parking_lot")
    return make_topology("parking_lot", sim, **kwargs)
