"""Network node: endpoint registry plus static next-hop forwarding."""

from __future__ import annotations

from typing import Dict, Protocol

from .engine import Simulator
from .link import Link
from .packet import Packet

__all__ = ["Node", "Endpoint"]


class Endpoint(Protocol):
    """Anything that can consume packets addressed to a node (TCP agents)."""

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - protocol
        ...


class Node:
    """A host or router.

    Routing is static: the topology builder fills ``routes`` with a
    next-hop link per destination node id.  Packets addressed to this node
    are dispatched to the endpoint registered for their ``flow_id`` (a
    flow registers its sender on one node and its receiver on another;
    both use the same flow id, so data and ACKs find their way).
    """

    __slots__ = (
        "sim",
        "node_id",
        "name",
        "routes",
        "endpoints",
        "packets_forwarded",
        "packets_delivered",
        "packets_unroutable",
    )

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"n{node_id}"
        self.routes: Dict[int, Link] = {}
        self.endpoints: Dict[int, Endpoint] = {}
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_unroutable = 0

    def add_route(self, dst_node_id: int, link: Link) -> None:
        """Install the next-hop *link* for traffic toward *dst_node_id*."""
        self.routes[dst_node_id] = link

    def register_endpoint(self, flow_id: int, endpoint: Endpoint) -> None:
        """Attach a transport agent for packets of *flow_id* ending here."""
        if flow_id in self.endpoints:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self.endpoints[flow_id] = endpoint

    def unregister_endpoint(self, flow_id: int) -> None:
        self.endpoints.pop(flow_id, None)

    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Entry point for packets arriving over a link (or locally sent)."""
        pkt.hops += 1
        dst = pkt.dst
        if dst == self.node_id:
            endpoint = self.endpoints.get(pkt.flow_id)
            if endpoint is not None:
                self.packets_delivered += 1
                endpoint.receive(pkt)
            else:
                # Flow already torn down (e.g. a late ACK) — drop silently.
                self.packets_unroutable += 1
            return
        link = self.routes.get(dst)
        if link is None:
            self.packets_unroutable += 1
            return
        self.packets_forwarded += 1
        link.send(pkt)

    def send(self, pkt: Packet) -> None:
        """Inject a locally generated packet into the network."""
        self.receive(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} flows={len(self.endpoints)}>"
