"""Measurement instruments: queue samplers, window counters, drop logs.

These are deliberately passive — they observe queues and links without
perturbing the simulation — and they support the paper's measurement
style: steady-state metrics over a window (the paper measures 100-300 s of
a 400 s run) and time series for the dynamic-behaviour experiment.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from ..obs.records import record
from .engine import Simulator
from .link import Link
from .packet import Packet
from .queues.base import QueueDiscipline

__all__ = ["QueueSampler", "DropLog", "LinkWindow", "ThroughputSampler"]


class QueueSampler:
    """Periodically samples a queue's instantaneous length.

    Provides nearest-sample lookup by time, which the predictor analysis
    uses to ask "how full was the bottleneck queue when the end host saw a
    false positive?" (Figure 4 of the paper).
    """

    def __init__(self, sim: Simulator, qdisc: QueueDiscipline, interval: float = 0.01):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.qdisc = qdisc
        self.interval = interval
        self.times: List[float] = []
        self.lengths: List[int] = []
        sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        self.times.append(self.sim.now)
        self.lengths.append(len(self.qdisc))
        self.sim.schedule(self.interval, self._tick)

    def length_at(self, t: float) -> int:
        """Queue length at the sample nearest to time *t*."""
        if not self.times:
            return 0
        i = bisect.bisect_left(self.times, t)
        if i <= 0:
            return self.lengths[0]
        if i >= len(self.times):
            return self.lengths[-1]
        before, after = self.times[i - 1], self.times[i]
        return self.lengths[i - 1] if t - before <= after - t else self.lengths[i]

    def mean(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean sampled queue length over [start, end].

        ``times`` is sorted (samples are appended in simulation order),
        so the window is located with two bisections and only the
        in-window samples are touched — O(log n + w) instead of a full
        scan per call, which matters when sweeps query many windows over
        long histories.
        """
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end) if end is not None else len(self.times)
        vals = self.lengths[lo:hi]
        return sum(vals) / len(vals) if vals else 0.0

    def records(self, label: str = "queue") -> List[dict]:
        """Samples as schema-versioned ``queue_sample`` trace records."""
        return [
            record("queue_sample", t, queue=label, qlen=q, bytes=None, delay=None)
            for t, q in zip(self.times, self.lengths)
        ]


class DropLog:
    """Records every drop at a queue as a schema-versioned trace record.

    Internally this is a list of ``drop`` records (see
    :mod:`repro.obs.records`) ready for the JSONL trace sink; the
    tuple-based ``events`` view and the ``times()``/``count()`` helpers
    keep the original analysis API intact.
    """

    def __init__(self, qdisc: QueueDiscipline, label: str = "queue"):
        self.label = label
        self.records: List[dict] = []
        self._qdisc = qdisc
        qdisc.drop_listeners.append(self._on_drop)

    def _on_drop(self, pkt: Packet, now: float) -> None:
        self.records.append(record(
            "drop", now, queue=self.label, flow=pkt.flow_id, seq=pkt.seq,
            qlen=len(self._qdisc), forced=self._qdisc.is_full_for(pkt),
        ))

    @property
    def events(self) -> List[Tuple[float, int]]:
        """Drops as ``(time, flow_id)`` tuples (legacy view)."""
        return [(r["t"], r["flow"]) for r in self.records]

    def times(self, flow_id: Optional[int] = None) -> List[float]:
        """Drop timestamps, optionally restricted to one flow."""
        if flow_id is None:
            return [r["t"] for r in self.records]
        return [r["t"] for r in self.records if r["flow"] == flow_id]

    def count(self, start: float = 0.0, end: float = float("inf")) -> int:
        return sum(1 for r in self.records if start <= r["t"] <= end)


class LinkWindow:
    """Snapshot-based measurement window over a link and its queue.

    Open it at the start of the steady-state period, close it at the end;
    it then reports utilization, drop rate and arrivals over that window
    only, matching the paper's 100-300 s measurement methodology.
    """

    def __init__(self, sim: Simulator, link: Link):
        self.sim = sim
        self.link = link
        self._open_t: Optional[float] = None
        self._close_t: Optional[float] = None
        self._bytes0 = 0
        self._drops0 = 0
        self._arrivals0 = 0
        self._marks0 = 0

    def open(self) -> None:
        if self._open_t is not None and self._close_t is None:
            # A second open() would silently reset the baselines and
            # corrupt the in-progress measurement window.
            raise RuntimeError(
                "measurement window is already open; close() it before "
                "opening a new one"
            )
        self._close_t = None
        self._open_t = self.sim.now
        self._bytes0 = self.link.bytes_transmitted
        self._drops0 = self.link.qdisc.stats.drops
        self._arrivals0 = self.link.qdisc.stats.arrivals
        self._marks0 = self.link.qdisc.stats.marks

    def close(self) -> None:
        if self._open_t is None:
            raise RuntimeError("window was never opened")
        self._close_t = self.sim.now

    def _require_closed(self) -> float:
        if self._open_t is None or self._close_t is None:
            raise RuntimeError("window must be opened and closed first")
        return self._close_t - self._open_t

    @property
    def duration(self) -> float:
        return self._require_closed()

    @property
    def utilization(self) -> float:
        dur = self._require_closed()
        if dur <= 0:
            return 0.0
        used = (self.link.bytes_transmitted - self._bytes0) * 8.0
        return min(1.0, used / (self.link.bandwidth * dur))

    @property
    def drop_rate(self) -> float:
        self._require_closed()
        arrivals = self.link.qdisc.stats.arrivals - self._arrivals0
        drops = self.link.qdisc.stats.drops - self._drops0
        return drops / arrivals if arrivals else 0.0

    @property
    def mark_rate(self) -> float:
        self._require_closed()
        arrivals = self.link.qdisc.stats.arrivals - self._arrivals0
        marks = self.link.qdisc.stats.marks - self._marks0
        return marks / arrivals if arrivals else 0.0


class ThroughputSampler:
    """Per-interval byte counts from a monotone counter callback.

    Used by the dynamic-behaviour experiment (Figure 12) to plot aggregate
    cohort throughput over time.
    """

    def __init__(self, sim: Simulator, counter_fn, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.counter_fn = counter_fn
        self.interval = interval
        self.times: List[float] = []
        self.rates_bps: List[float] = []
        self._last = counter_fn()
        sim.schedule(interval, self._tick)

    def _tick(self) -> None:
        cur = self.counter_fn()
        self.times.append(self.sim.now)
        self.rates_bps.append((cur - self._last) * 8.0 / self.interval)
        self._last = cur
        self.sim.schedule(self.interval, self._tick)
