"""Flow tracing: periodic sampling of sender state time series.

A :class:`FlowTracer` samples a sender's congestion window, slow-start
threshold and smoothed RTT on a fixed grid — the raw material for
cwnd-evolution plots (and for eyeballing PERT's gentle sawtooth against
standard TCP's deep loss-driven one).
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.records import record
from .engine import Simulator

__all__ = ["FlowTracer", "ascii_series"]


class FlowTracer:
    """Samples ``(time, cwnd, ssthresh, srtt)`` every *interval* seconds.

    Samples are stored as schema-versioned ``cwnd_sample`` trace records
    (see :mod:`repro.obs.records`) so they can be written straight to a
    JSONL trace; the ``times``/``cwnd``/``ssthresh``/``srtt`` views keep
    the original column-oriented API.
    """

    def __init__(self, sim: Simulator, sender, interval: float = 0.1,
                 start: float = 0.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.sender = sender
        self.interval = interval
        self.records: List[dict] = []
        sim.schedule(max(0.0, start - sim.now), self._tick)

    def _tick(self) -> None:
        s = self.sender
        self.records.append(record(
            "cwnd_sample", self.sim.now, flow=getattr(s, "flow_id", -1),
            cwnd=s.cwnd, ssthresh=s.ssthresh, srtt=s.srtt,
        ))
        self.sim.schedule(self.interval, self._tick)

    @property
    def times(self) -> List[float]:
        return [r["t"] for r in self.records]

    @property
    def cwnd(self) -> List[float]:
        return [r["cwnd"] for r in self.records]

    @property
    def ssthresh(self) -> List[float]:
        return [r["ssthresh"] for r in self.records]

    @property
    def srtt(self) -> List[Optional[float]]:
        return [r["srtt"] for r in self.records]

    def cwnd_stats(self) -> dict:
        """Mean, min, max and peak-to-trough ratio of the cwnd series."""
        cwnd = self.cwnd
        if not cwnd:
            return {"mean": 0.0, "min": 0.0, "max": 0.0, "swing": 0.0}
        lo, hi = min(cwnd), max(cwnd)
        return {
            "mean": sum(cwnd) / len(cwnd),
            "min": lo,
            "max": hi,
            "swing": hi / lo if lo > 0 else float("inf"),
        }


def ascii_series(values, width: int = 64, height: int = 10,
                 label: str = "") -> str:
    """Render a numeric series as a small ASCII plot (for examples/CLI)."""
    vals = [float(v) for v in values if v is not None]
    if not vals:
        return f"{label}(no data)"
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    step = max(1, len(vals) // width)
    cols = vals[::step][:width]
    lines = []
    if label:
        lines.append(label)
    for level in range(height, -1, -1):
        thresh = lo + span * level / height
        row = "".join("*" if v >= thresh else " " for v in cols)
        lines.append(f"{thresh:9.2f} |{row}")
    lines.append(" " * 11 + "-" * len(cols))
    return "\n".join(lines)
