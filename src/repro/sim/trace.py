"""Flow tracing: periodic sampling of sender state time series.

A :class:`FlowTracer` samples a sender's congestion window, slow-start
threshold and smoothed RTT on a fixed grid — the raw material for
cwnd-evolution plots (and for eyeballing PERT's gentle sawtooth against
standard TCP's deep loss-driven one).
"""

from __future__ import annotations

from typing import List, Optional

from .engine import Simulator

__all__ = ["FlowTracer", "ascii_series"]


class FlowTracer:
    """Samples ``(time, cwnd, ssthresh, srtt)`` every *interval* seconds."""

    def __init__(self, sim: Simulator, sender, interval: float = 0.1,
                 start: float = 0.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.sender = sender
        self.interval = interval
        self.times: List[float] = []
        self.cwnd: List[float] = []
        self.ssthresh: List[float] = []
        self.srtt: List[Optional[float]] = []
        sim.schedule(max(0.0, start - sim.now), self._tick)

    def _tick(self) -> None:
        self.times.append(self.sim.now)
        self.cwnd.append(self.sender.cwnd)
        self.ssthresh.append(self.sender.ssthresh)
        self.srtt.append(self.sender.srtt)
        self.sim.schedule(self.interval, self._tick)

    def cwnd_stats(self) -> dict:
        """Mean, min, max and peak-to-trough ratio of the cwnd series."""
        if not self.cwnd:
            return {"mean": 0.0, "min": 0.0, "max": 0.0, "swing": 0.0}
        lo, hi = min(self.cwnd), max(self.cwnd)
        return {
            "mean": sum(self.cwnd) / len(self.cwnd),
            "min": lo,
            "max": hi,
            "swing": hi / lo if lo > 0 else float("inf"),
        }


def ascii_series(values, width: int = 64, height: int = 10,
                 label: str = "") -> str:
    """Render a numeric series as a small ASCII plot (for examples/CLI)."""
    vals = [float(v) for v in values if v is not None]
    if not vals:
        return f"{label}(no data)"
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    step = max(1, len(vals) // width)
    cols = vals[::step][:width]
    lines = []
    if label:
        lines.append(label)
    for level in range(height, -1, -1):
        thresh = lo + span * level / height
        row = "".join("*" if v >= thresh else " " for v in cols)
        lines.append(f"{thresh:9.2f} |{row}")
    lines.append(" " * 11 + "-" * len(cols))
    return "\n".join(lines)
