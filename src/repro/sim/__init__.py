"""Packet-level discrete-event network simulator (the ns-2 substitute).

Public pieces: the event :class:`~repro.sim.engine.Simulator`, packets,
nodes, store-and-forward links, queue disciplines (DropTail / RED / PI),
topology builders (dumbbell, parking lot) and measurement monitors.
"""

from .engine import Event, SimulationError, Simulator
from .jitter import JitterLink
from .link import Link
from .monitors import DropLog, LinkWindow, QueueSampler, ThroughputSampler
from .node import Node
from .packet import ACK_SIZE, DATA_SIZE, Packet
from .queues import (
    DropTailQueue,
    PiQueue,
    QueueDiscipline,
    QueueStats,
    RedQueue,
    RemQueue,
)
from .topology import (
    TOPOLOGIES,
    Dumbbell,
    Network,
    ParkingLot,
    build_dumbbell,
    build_parking_lot,
    make_topology,
)
from .trace import FlowTracer, ascii_series

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Packet",
    "DATA_SIZE",
    "ACK_SIZE",
    "Node",
    "Link",
    "JitterLink",
    "QueueDiscipline",
    "QueueStats",
    "DropTailQueue",
    "RedQueue",
    "PiQueue",
    "RemQueue",
    "FlowTracer",
    "ascii_series",
    "Network",
    "Dumbbell",
    "ParkingLot",
    "TOPOLOGIES",
    "make_topology",
    "build_dumbbell",
    "build_parking_lot",
    "QueueSampler",
    "DropLog",
    "LinkWindow",
    "ThroughputSampler",
]
