"""Discrete-event simulation engine.

This is the substrate underneath every packet-level experiment in the
reproduction: a classic event-list simulator in the style of ns-2's
scheduler.  Events are kept in a binary heap keyed by ``(time, sequence)``
so that events scheduled for the same instant fire in the order they were
scheduled, which makes every simulation fully deterministic for a given
seed.

The simulator owns a master random seed; components derive independent
:class:`random.Random` streams from it via :meth:`Simulator.stream` so that
changing one traffic source's draws does not perturb another's.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Set

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """A pending callback in the event list.

    Events compare by ``(time, seq)``; ``seq`` is a monotonically
    increasing counter that breaks ties deterministically.  Cancellation is
    lazy: the event is flagged and skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time arrives.

        Idempotent, and safe on events that have already fired: only the
        first cancellation of a still-pending event updates the owning
        simulator's live-event count.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn!r}>"


class Simulator:
    """Event-list simulator with deterministic ordering and seeded RNG.

    Parameters
    ----------
    seed:
        Master seed.  Every component stream derived through
        :meth:`stream` is a deterministic function of this seed and the
        stream's label, so simulations are exactly repeatable.
    """

    def __init__(self, seed: int = 1):
        self.now: float = 0.0
        self.seed = seed
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0  # non-cancelled, not-yet-fired events
        self._running = False
        self.events_processed = 0
        self._stream_labels: Set[str] = set()
        self._stream_counts: Dict[str, int] = {}
        #: optional :class:`repro.obs.SamplingProfiler`; when set, event
        #: dispatch routes through it (results are unaffected — it times
        #: callbacks, nothing more)
        self.profiler = None

    # ------------------------------------------------------------------
    # random-number streams
    # ------------------------------------------------------------------
    def stream(self, label: str, *, unique: bool = False) -> random.Random:
        """Return an independent, reproducible RNG stream for *label*.

        Each label may be claimed only once per simulator: two components
        silently deriving the same stream would draw identical (perfectly
        correlated) random sequences, which is almost never intended, so a
        repeated label raises :class:`SimulationError`.  Components that
        are instantiated more than once per simulation (queue factories,
        jitter links, ...) pass ``unique=True`` to have a deterministic
        ``label``, ``label#1``, ``label#2``, ... suffix appended in
        claim order instead.
        """
        if unique:
            label = self._unique_label(label)
        if label in self._stream_labels:
            raise SimulationError(
                f"RNG stream label {label!r} already claimed; use a distinct "
                f"label or stream(..., unique=True) for per-instance streams"
            )
        self._stream_labels.add(label)
        return random.Random(f"{self.seed}/{label}")

    def _unique_label(self, prefix: str) -> str:
        """Deterministically suffix *prefix* so it has never been claimed."""
        n = self._stream_counts.get(prefix, 0)
        label = prefix if n == 0 else f"{prefix}#{n}"
        while label in self._stream_labels:
            n += 1
            label = f"{prefix}#{n}"
        self._stream_counts[prefix] = n + 1
        return label

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulation *time*."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time!r} < now {self.now!r}")
        ev = Event(time, self._seq, fn, args, sim=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            ``sim.now`` is left at ``until``.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for tests; stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        profiler = self.profiler
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = ev.time
                ev.fired = True
                self._live -= 1
                if profiler is None:
                    ev.fn(*ev.args)
                else:
                    profiler.dispatch(ev)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled, not-yet-fired) events — O(1)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self._live}>"
