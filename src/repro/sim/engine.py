"""Discrete-event simulation engine.

This is the substrate underneath every packet-level experiment in the
reproduction: a classic event-list simulator in the style of ns-2's
scheduler.  Events are kept in a binary heap keyed by ``(time, sequence)``
so that events scheduled for the same instant fire in the order they were
scheduled, which makes every simulation fully deterministic for a given
seed.

The simulator owns a master random seed; components derive independent
:class:`random.Random` streams from it via :meth:`Simulator.stream` so that
changing one traffic source's draws does not perturb another's.

Performance notes
-----------------
The event list is the hottest data structure in the whole reproduction —
every packet hop is at least two heap operations — so the heap stores
``(time, seq, fn, args, event)`` tuples rather than bare :class:`Event`
objects.  Tuple comparison happens in C and never reaches the third
element (``seq`` is unique), which removes the per-comparison Python
call that used to dominate profiles.  The ``event`` slot is ``None`` for
callbacks scheduled through :meth:`Simulator.schedule_fire`, the
fire-and-forget path used by the per-hop link machinery: those events
cannot be cancelled, so no handle object is ever allocated for them.
:meth:`Simulator.schedule` and :meth:`Simulator.schedule_at` are
deliberately flat (no delegation between them) for the same reason.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """A pending callback in the event list.

    Events order by ``(time, seq)``; ``seq`` is a monotonically
    increasing counter that breaks ties deterministically.  Cancellation is
    lazy: the event is flagged and skipped when popped.  The heap itself
    holds ``(time, seq, fn, args, event)`` tuples, so ``__lt__`` below
    exists only for explicit comparisons in user code and tests — the hot
    path never calls it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time arrives.

        Idempotent, and safe on events that have already fired: only the
        first cancellation of a still-pending event updates the owning
        simulator's live-event count.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn!r}>"


class Simulator:
    """Event-list simulator with deterministic ordering and seeded RNG.

    Parameters
    ----------
    seed:
        Master seed.  Every component stream derived through
        :meth:`stream` is a deterministic function of this seed and the
        stream's label, so simulations are exactly repeatable.
    """

    __slots__ = (
        "now",
        "seed",
        "_heap",
        "_seq",
        "_live",
        "_running",
        "events_processed",
        "_stream_labels",
        "_stream_counts",
        "_streams",
        "profiler",
    )

    def __init__(self, seed: int = 1):
        self.now: float = 0.0
        self.seed = seed
        self._heap: List[Tuple[float, int, Callable, tuple, Optional[Event]]] = []
        self._seq = 0
        self._live = 0  # non-cancelled, not-yet-fired events
        self._running = False
        self.events_processed = 0
        self._stream_labels: Set[str] = set()
        self._stream_counts: Dict[str, int] = {}
        self._streams: Dict[str, random.Random] = {}
        #: optional :class:`repro.obs.SamplingProfiler`; when set, event
        #: dispatch routes through it (results are unaffected — it times
        #: callbacks, nothing more)
        self.profiler = None

    # ------------------------------------------------------------------
    # random-number streams
    # ------------------------------------------------------------------
    def stream(self, label: str, *, unique: bool = False) -> random.Random:
        """Return an independent, reproducible RNG stream for *label*.

        Each label may be claimed only once per simulator: two components
        silently deriving the same stream would draw identical (perfectly
        correlated) random sequences, which is almost never intended, so a
        repeated label raises :class:`SimulationError`.  Components that
        are instantiated more than once per simulation (queue factories,
        jitter links, ...) pass ``unique=True`` to have a deterministic
        ``label``, ``label#1``, ``label#2``, ... suffix appended in
        claim order instead.
        """
        if unique:
            label = self._unique_label(label)
        if label in self._stream_labels:
            raise SimulationError(
                f"RNG stream label {label!r} already claimed; use a distinct "
                f"label or stream(..., unique=True) for per-instance streams"
            )
        self._stream_labels.add(label)
        rng = random.Random(f"{self.seed}/{label}")
        # Registered so snapshot forking can reseed every handed-out
        # stream in place (holders keep references to these objects).
        self._streams[label] = rng
        return rng

    def _unique_label(self, prefix: str) -> str:
        """Deterministically suffix *prefix* so it has never been claimed."""
        n = self._stream_counts.get(prefix, 0)
        label = prefix if n == 0 else f"{prefix}#{n}"
        while label in self._stream_labels:
            n += 1
            label = f"{prefix}#{n}"
        self._stream_counts[prefix] = n + 1
        return label

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now.

        *delay* must be finite and non-negative: a ``nan`` or ``inf``
        delay would silently corrupt heap ordering (``nan`` compares
        false against everything), so both raise :class:`SimulationError`.
        """
        # `not (0 <= delay)` is deliberate: it is the cheapest test that
        # also catches nan, which fails every comparison.
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, seq, fn, args, ev))
        return ev

    def schedule_fire(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule *fn(*args)* *delay* seconds from now, with no handle.

        Fire-and-forget fast path for callers that never cancel (the
        per-hop link machinery schedules two of these per packet): no
        :class:`Event` object is allocated, so there is nothing to
        cancel.  Ordering semantics are identical to :meth:`schedule` —
        the callback still consumes a sequence number and fires in
        schedule order on time ties.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (self.now + delay, seq, fn, args, None))

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulation *time*.

        *time* must be finite and not in the past; ``nan``/``inf`` raise
        :class:`SimulationError` instead of corrupting the event list.
        """
        if not self.now <= time < _INF:
            raise SimulationError(
                f"bad time {time!r}: must be finite and >= now {self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, seq, fn, args, ev))
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            ``sim.now`` is left at ``until``.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for tests; stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        profiler = self.profiler
        heap = self._heap
        heappop = heapq.heappop
        horizon = until if until is not None else _INF
        budget = max_events if max_events is not None else -1
        try:
            # Pop-first rather than peek-then-pop: the horizon is crossed
            # at most once per run() call, so pushing that single event
            # back is far cheaper than indexing heap[0] on every loop.
            while heap:
                entry = heappop(heap)
                ev = entry[4]
                if ev is not None and ev.cancelled:
                    continue
                time = entry[0]
                if time > horizon:
                    heapq.heappush(heap, entry)
                    break
                self.now = time
                self._live -= 1
                if ev is not None:
                    ev.fired = True
                if profiler is None:
                    entry[2](*entry[3])
                else:
                    profiler.dispatch(entry[2], entry[3])
                processed += 1
                if processed == budget:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            # Batched outside the loop: callbacks never observe this
            # counter mid-run, only harness code reads it afterwards.
            self.events_processed += processed

    def pending(self) -> int:
        """Number of live (non-cancelled, not-yet-fired) events — O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle every slot except live, non-serializable handles.

        ``__slots__`` means default pickling would already enumerate the
        slots, but two of them must not ride along: ``_running`` (a
        snapshot taken from inside a callback would restore into a
        simulator that refuses to run) and ``profiler`` (a wall-clock
        observer holding process-local state).  Checkpointing mid-``run``
        or with a profiler attached fails fast with a clear error instead
        of producing a snapshot that lies.

        Cancelled-but-unpopped heap entries are purged from the pickled
        copy (the live heap is untouched): lazy cancellation means a
        popped cancelled entry is skipped without side effects, so the
        purge cannot change the continuation — and it keeps a cancelled
        entry's possibly-unpicklable callback from blocking the snapshot.
        Pop order depends only on the ``(time, seq)`` key multiset, so
        re-heapifying the filtered list is exact.
        """
        from ..snapshot.errors import SnapshotError

        if self._running:
            raise SnapshotError(
                "cannot snapshot a Simulator from inside run(); checkpoint "
                "between run(until=...) chunks instead"
            )
        if self.profiler is not None:
            raise SnapshotError(
                "cannot snapshot: a profiler is attached to the simulator; "
                "detach it (sim.profiler = None) around the snapshot"
            )
        state = {
            slot: getattr(self, slot)
            for slot in Simulator.__slots__
            if slot not in ("_running", "profiler")
        }
        live = [e for e in self._heap if e[4] is None or not e[4].cancelled]
        if len(live) != len(self._heap):
            heapq.heapify(live)
            state["_heap"] = live
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._running = False
        self.profiler = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self._live}>"
