"""Discrete-event simulation engine.

This is the substrate underneath every packet-level experiment in the
reproduction: a classic event-list simulator in the style of ns-2's
scheduler.  Events are kept in a binary heap keyed by ``(time, sequence)``
so that events scheduled for the same instant fire in the order they were
scheduled, which makes every simulation fully deterministic for a given
seed.

The simulator owns a master random seed; components derive independent
:class:`random.Random` streams from it via :meth:`Simulator.stream` so that
changing one traffic source's draws does not perturb another's.

Engine backends
---------------
Two interchangeable backends implement the same scheduling contract:

:class:`LegacySimulator`
    The original tuple-heap engine: the heap stores
    ``(time, seq, fn, args, event)`` 5-tuples.  Kept selectable forever as
    the executable specification the differential suite
    (``tests/differential``) checks the fast engine against.

:class:`ArraySimulator` (default)
    A flat-entry engine: the heap is a single flat array of uniform
    shape-coded tuples — the dominant single-argument fire-and-forget
    event carries its callback and payload word inline and dispatches
    without building or unpacking a varargs tuple (see the class
    docstring for the layout rationale, including why the slot-indexed
    parallel-array variant measured slower).  It also exposes
    :meth:`Simulator.advance_if_clear`, the hook the link layer uses to
    drain back-to-back departures without touching the heap at all.
    Both backends produce bit-identical event ordering, sequence
    numbering, and ``events_processed`` counts.

Instantiating :class:`Simulator` directly returns a concrete backend,
chosen by the ``REPRO_ENGINE`` environment variable (``array`` — the
default — or ``legacy``), read lazily at construction time so tests can
flip it per-instance.  When the optional compiled extension is built
(see :mod:`repro.compiled`), the array family is served by
:class:`repro.compiled.engine.CompiledSimulator` — the same engine with
its hot methods in C — unless ``REPRO_COMPILED=0`` pins pure Python.
Snapshots use a shared canonical state format (the legacy 5-tuple
list), so a checkpoint captured under one engine restores under any
other — see :func:`repro.snapshot.restore_bytes`.

Performance notes
-----------------
The event list is the hottest data structure in the whole reproduction —
every packet hop is at least two heap operations.  Both engines keep the
comparison key a ``(time, seq, ...)`` tuple prefix: tuple comparison
happens in C and never reaches the third element (``seq`` is unique),
which removes the per-comparison Python call that used to dominate
profiles.  The array engine goes further: single-argument callbacks
dispatch as a direct ``fn(arg)`` instead of ``fn(*args)``, no
:class:`Event` handle is allocated unless the caller can cancel, and
back-to-back link departures bypass the heap entirely via
:meth:`Simulator.advance_if_clear`.
:meth:`Simulator.schedule`, :meth:`Simulator.schedule_fire` and
:meth:`Simulator.schedule_at` are deliberately flat (no delegation
between them) for the same reason.
"""

from __future__ import annotations

import heapq
import os
import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "Event",
    "Simulator",
    "LegacySimulator",
    "ArraySimulator",
    "SimulationError",
    "get_engine_class",
]

_INF = float("inf")
_NEG_INF = float("-inf")

#: canonical (legacy-format) heap entry: ``(time, seq, fn, args, event)``
_LegacyEntry = Tuple[float, int, Callable[..., Any], tuple, Optional["Event"]]

#: slots every backend shares and every snapshot carries (``_running`` and
#: ``profiler`` are process-local and deliberately excluded; the event
#: list itself travels under the canonical ``"_heap"`` key)
_STATE_SLOTS = (
    "now",
    "seed",
    "_seq",
    "_live",
    "events_processed",
    "_stream_labels",
    "_stream_counts",
    "_streams",
)


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """A pending callback in the event list.

    Events order by ``(time, seq)``; ``seq`` is a monotonically
    increasing counter that breaks ties deterministically.  Cancellation is
    lazy: the event is flagged and skipped when popped.  The heap itself
    never compares :class:`Event` objects (both engines key their heaps on
    tuples), so ``__lt__`` below exists only for explicit comparisons in
    user code and tests — the hot path never calls it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time arrives.

        Idempotent, and safe on events that have already fired: only the
        first cancellation of a still-pending event updates the owning
        simulator's live-event count.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn!r}>"


class Simulator:
    """Event-list simulator with deterministic ordering and seeded RNG.

    ``Simulator(seed=...)`` is a virtual constructor: it returns an
    instance of the backend selected by ``REPRO_ENGINE`` (``array`` by
    default, ``legacy`` for the original tuple-heap engine).  All public
    behaviour — scheduling, cancellation, run semantics, stream
    derivation, snapshot state — is identical between backends; only the
    internal event-list representation differs.

    Parameters
    ----------
    seed:
        Master seed.  Every component stream derived through
        :meth:`stream` is a deterministic function of this seed and the
        stream's label, so simulations are exactly repeatable.
    """

    __slots__ = (
        "now",
        "seed",
        "_seq",
        "_live",
        "_running",
        "events_processed",
        "_stream_labels",
        "_stream_counts",
        "_streams",
        "profiler",
    )

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            cls = get_engine_class()
        return object.__new__(cls)

    def __init__(self, seed: int = 1) -> None:
        self.now: float = 0.0
        self.seed = seed
        self._seq = 0
        self._live = 0  # non-cancelled, not-yet-fired events
        self._running = False
        self.events_processed = 0
        self._stream_labels: Set[str] = set()
        self._stream_counts: Dict[str, int] = {}
        self._streams: Dict[str, random.Random] = {}
        #: optional :class:`repro.obs.SamplingProfiler`; when set, event
        #: dispatch routes through it (results are unaffected — it times
        #: callbacks, nothing more)
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # random-number streams
    # ------------------------------------------------------------------
    def stream(self, label: str, *, unique: bool = False) -> random.Random:
        """Return an independent, reproducible RNG stream for *label*.

        Each label may be claimed only once per simulator: two components
        silently deriving the same stream would draw identical (perfectly
        correlated) random sequences, which is almost never intended, so a
        repeated label raises :class:`SimulationError`.  Components that
        are instantiated more than once per simulation (queue factories,
        jitter links, ...) pass ``unique=True`` to have a deterministic
        ``label``, ``label#1``, ``label#2``, ... suffix appended in
        claim order instead.
        """
        if unique:
            label = self._unique_label(label)
        if label in self._stream_labels:
            raise SimulationError(
                f"RNG stream label {label!r} already claimed; use a distinct "
                f"label or stream(..., unique=True) for per-instance streams"
            )
        self._stream_labels.add(label)
        rng = random.Random(f"{self.seed}/{label}")
        # Registered so snapshot forking can reseed every handed-out
        # stream in place (holders keep references to these objects).
        self._streams[label] = rng
        return rng

    def _unique_label(self, prefix: str) -> str:
        """Deterministically suffix *prefix* so it has never been claimed."""
        n = self._stream_counts.get(prefix, 0)
        label = prefix if n == 0 else f"{prefix}#{n}"
        while label in self._stream_labels:
            n += 1
            label = f"{prefix}#{n}"
        self._stream_counts[prefix] = n + 1
        return label

    # ------------------------------------------------------------------
    # shared scheduling helpers
    # ------------------------------------------------------------------
    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None:
            event.cancel()

    def pending(self) -> int:
        """Number of live (non-cancelled, not-yet-fired) events — O(1)."""
        return self._live

    def advance_if_clear(self, time: float) -> bool:
        """Claim an inline dispatch slot at *time*; engine-dependent.

        The batching hook behind the link layer's departure drain: when it
        returns ``True``, the engine has advanced ``now`` to *time* and
        consumed one sequence number and one ``events_processed`` count,
        exactly as if the caller had scheduled a callback at *time* and
        the run loop had just popped it — the caller must then invoke that
        callback immediately, once.

        The claim succeeds only when it is provably equivalent to going
        through the heap: inside :meth:`run` (no ``max_events`` budget, no
        profiler), *time* within the run horizon, and no pending heap
        entry at or before *time* — any heap entry tied at *time* holds an
        older sequence number and must fire first.  The legacy engine
        never claims (it always returns ``False``), which keeps it the
        plain executable specification the differential suite diffs the
        array engine against.
        """
        return False

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def live_entries(self) -> List[_LegacyEntry]:
        """Live events as ``(time, seq, fn, args, event)`` 5-tuples.

        Engine-neutral view of the event list for snapshot diagnostics and
        integrity checks: cancelled-but-unpopped entries are excluded, and
        ``event`` is ``None`` for fire-and-forget callbacks.  The returned
        list is ordered by heap layout, not sorted; only its key multiset
        is meaningful.
        """
        raise NotImplementedError

    def _export_heap(self) -> List[_LegacyEntry]:
        """Canonical (legacy-format) event list for ``__getstate__``."""
        raise NotImplementedError

    def __getstate__(self) -> Dict[str, Any]:
        """Snapshot state: shared slots plus the canonical event list.

        ``__slots__`` means default pickling would already enumerate the
        slots, but two of them must not ride along: ``_running`` (a
        snapshot taken from inside a callback would restore into a
        simulator that refuses to run) and ``profiler`` (a wall-clock
        observer holding process-local state).  Checkpointing mid-``run``
        or with a profiler attached fails fast with a clear error instead
        of producing a snapshot that lies.

        The event list is exported under the canonical ``"_heap"`` key as
        legacy-format 5-tuples regardless of engine, so a snapshot taken
        under one backend restores under the other.  Cancelled-but-unpopped
        entries are purged from the exported copy (the live event list is
        untouched): lazy cancellation means a popped cancelled entry is
        skipped without side effects, so the purge cannot change the
        continuation — and it keeps a cancelled entry's possibly-
        unpicklable callback from blocking the snapshot.  Pop order
        depends only on the ``(time, seq)`` key multiset, so re-heapifying
        the filtered list is exact.
        """
        from ..snapshot.errors import SnapshotError

        if self._running:
            raise SnapshotError(
                "cannot snapshot a Simulator from inside run(); checkpoint "
                "between run(until=...) chunks instead"
            )
        if self.profiler is not None:
            raise SnapshotError(
                "cannot snapshot: a profiler is attached to the simulator; "
                "detach it (sim.profiler = None) around the snapshot"
            )
        state = {slot: getattr(self, slot) for slot in _STATE_SLOTS}
        state["_heap"] = self._export_heap()
        return state

    def _restore_shared(self, state: Dict[str, Any]) -> None:
        for slot in _STATE_SLOTS:
            setattr(self, slot, state[slot])
        self._running = False
        self.profiler = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self._live}>"


class LegacySimulator(Simulator):
    """The original tuple-heap engine (PR 1–5 behaviour, bit for bit).

    The heap stores ``(time, seq, fn, args, event)`` tuples rather than
    bare :class:`Event` objects; the ``event`` slot is ``None`` for
    callbacks scheduled through :meth:`Simulator.schedule_fire`, the
    fire-and-forget path used by the per-hop link machinery.  This engine
    never batches (:meth:`advance_if_clear` is a constant ``False``), so
    every dispatch goes through the heap — which is exactly what makes it
    the reference implementation for the differential suite.
    """

    __slots__ = ("_heap",)

    def __init__(self, seed: int = 1) -> None:
        super().__init__(seed)
        self._heap: List[_LegacyEntry] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now.

        *delay* must be finite and non-negative: a ``nan`` or ``inf``
        delay would silently corrupt heap ordering (``nan`` compares
        false against everything), so both raise :class:`SimulationError`.
        """
        # `not (0 <= delay)` is deliberate: it is the cheapest test that
        # also catches nan, which fails every comparison.
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, seq, fn, args, ev))
        return ev

    def schedule_fire(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule *fn(*args)* *delay* seconds from now, with no handle.

        Fire-and-forget fast path for callers that never cancel (the
        per-hop link machinery schedules two of these per packet): no
        :class:`Event` object is allocated, so there is nothing to
        cancel.  Ordering semantics are identical to :meth:`schedule` —
        the callback still consumes a sequence number and fires in
        schedule order on time ties.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (self.now + delay, seq, fn, args, None))

    def schedule_fire1(self, delay: float, fn: Callable[..., Any], arg: Any) -> None:
        """Single-argument :meth:`schedule_fire` (the per-packet shape)."""
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (self.now + delay, seq, fn, (arg,), None))

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulation *time*.

        *time* must be finite and not in the past; ``nan``/``inf`` raise
        :class:`SimulationError` instead of corrupting the event list.
        """
        if not self.now <= time < _INF:
            raise SimulationError(
                f"bad time {time!r}: must be finite and >= now {self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, seq, fn, args, ev))
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            ``sim.now`` is left at ``until``.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for tests; stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        profiler = self.profiler
        heap = self._heap
        heappop = heapq.heappop
        horizon = until if until is not None else _INF
        budget = max_events if max_events is not None else -1
        try:
            # Pop-first rather than peek-then-pop: the horizon is crossed
            # at most once per run() call, so pushing that single event
            # back is far cheaper than indexing heap[0] on every loop.
            while heap:
                entry = heappop(heap)
                ev = entry[4]
                if ev is not None and ev.cancelled:
                    continue
                time = entry[0]
                if time > horizon:
                    heapq.heappush(heap, entry)
                    break
                self.now = time
                self._live -= 1
                if ev is not None:
                    ev.fired = True
                if profiler is None:
                    entry[2](*entry[3])
                else:
                    profiler.dispatch(entry[2], entry[3])
                processed += 1
                if processed == budget:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            # Batched outside the loop: callbacks never observe this
            # counter mid-run, only harness code reads it afterwards.
            self.events_processed += processed

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def live_entries(self) -> List[_LegacyEntry]:
        return [e for e in self._heap if e[4] is None or not e[4].cancelled]

    def _export_heap(self) -> List[_LegacyEntry]:
        live = self.live_entries()
        if len(live) == len(self._heap):
            return self._heap
        heapq.heapify(live)
        return live

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._restore_shared(state)
        heap = list(state["_heap"])
        # Re-heapify defensively: the canonical export is already a valid
        # heap, but an array-engine export interleaved with purges (or a
        # hand-edited snapshot) might not be, and pop order depends only
        # on the key multiset.
        heapq.heapify(heap)
        self._heap = heap


class ArraySimulator(Simulator):
    """Flat-entry event engine with inline departure batching.

    Layout
    ------
    The heap is a single flat array of uniform, C-compared tuples whose
    shape *is* the dispatch code — no :class:`Event` handle, no varargs
    tuple, and no per-entry indirection on the hot path:

    ``(time, seq, fn, arg)``
        The dominant shape: a fire-and-forget callback with exactly one
        argument — both per-hop link callbacks and the AQM controller
        ticks.  Dispatches as a direct ``fn(arg)``.
    ``(time, seq, fn, args, event)``
        Cancellable (:meth:`schedule` / :meth:`schedule_at`) and
        variable-arity events, bit-compatible with the legacy engine's
        entries; ``event`` is ``None`` for multi-argument
        :meth:`schedule_fire` callbacks.

    ``seq`` is globally unique, so tuple comparison never reaches the
    third element and the two shapes share one heap; the run loop
    discriminates on ``len(entry)`` (a constant-time C call).

    Why not a slot-indexed payload table?  The textbook flat-array design
    — heap entries ``(time, seq, slot)`` indexing preallocated parallel
    ``fns``/``argv`` arrays with a free-list — was implemented and
    benchmarked first: it ran ~7% *slower* end to end than the legacy
    tuple heap on CPython 3.11, because two indexed list stores, two
    indexed loads, and the free-list push/pop per event cost more than
    the one small tuple allocation they avoid (CPython recycles tuples
    from a freelist, and the specializing interpreter has already
    flattened the ``fn(*args)`` dispatch the design was meant to bypass).
    Carrying the payload word inline keeps the engine allocation-flat
    *and* bookkeeping-free; the payload "arrays" and the heap are one and
    the same.

    Batching
    --------
    The real throughput lever is dispatching *without the heap*:
    :meth:`advance_if_clear` lets the link layer chain back-to-back
    departures inline — zero heap traffic, no run-loop iteration —
    whenever doing so is provably identical to scheduling through the
    heap.  The claim rules live in the base-class docstring; inline
    dispatches are counted into ``events_processed`` so the total stays
    bit-identical to the legacy engine's.
    """

    __slots__ = ("_heap", "_horizon", "_ninline")

    def __init__(self, seed: int = 1) -> None:
        super().__init__(seed)
        self._heap: List[tuple] = []
        # Inline-dispatch window: -inf outside run() (never claim), the
        # run horizon inside an unbudgeted, unprofiled run().
        self._horizon: float = _NEG_INF
        self._ninline: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* to run *delay* seconds from now.

        *delay* must be finite and non-negative: a ``nan`` or ``inf``
        delay would silently corrupt heap ordering (``nan`` compares
        false against everything), so both raise :class:`SimulationError`.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, seq, fn, args, ev))
        return ev

    def schedule_fire(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule *fn(*args)* *delay* seconds from now, with no handle.

        Fire-and-forget fast path for callers that never cancel: no
        :class:`Event` object is allocated, so there is nothing to
        cancel.  Ordering semantics are identical to :meth:`schedule` —
        the callback still consumes a sequence number and fires in
        schedule order on time ties.  The single-argument shape gets a
        flat 4-tuple entry and direct dispatch.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if len(args) == 1:
            heapq.heappush(self._heap, (self.now + delay, seq, fn, args[0]))
        else:
            heapq.heappush(self._heap, (self.now + delay, seq, fn, args, None))

    def schedule_fire1(self, delay: float, fn: Callable[..., Any], arg: Any) -> None:
        """Single-argument :meth:`schedule_fire` (the per-packet shape).

        Skips the varargs tuple entirely: the argument rides inline in
        the heap entry and dispatches as ``fn(arg)``.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"bad delay {delay!r}: must be finite and >= 0")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (self.now + delay, seq, fn, arg))

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule *fn(*args)* at absolute simulation *time*.

        *time* must be finite and not in the past; ``nan``/``inf`` raise
        :class:`SimulationError` instead of corrupting the event list.
        """
        if not self.now <= time < _INF:
            raise SimulationError(
                f"bad time {time!r}: must be finite and >= now {self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, seq, fn, args, ev))
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            ``sim.now`` is left at ``until``.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for tests; stop after this many events.  Setting
            it disables inline batching so every dispatch is countable.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        profiler = self.profiler
        heap = self._heap
        heappop = heapq.heappop
        horizon = until if until is not None else _INF
        budget = max_events if max_events is not None else -1
        if budget < 0 and profiler is None:
            # Open the inline-dispatch window for advance_if_clear():
            # batching is exact only when every dispatch is unbudgeted
            # and unprofiled.
            self._horizon = horizon
        try:
            while heap:
                entry = heappop(heap)
                if len(entry) == 4:
                    time = entry[0]
                    if time > horizon:
                        heapq.heappush(heap, entry)
                        break
                    self.now = time
                    self._live -= 1
                    if profiler is None:
                        entry[2](entry[3])
                    else:
                        profiler.dispatch(entry[2], (entry[3],))
                else:
                    ev = entry[4]
                    if ev is not None and ev.cancelled:
                        continue
                    time = entry[0]
                    if time > horizon:
                        heapq.heappush(heap, entry)
                        break
                    self.now = time
                    self._live -= 1
                    if ev is not None:
                        ev.fired = True
                    if profiler is None:
                        entry[2](*entry[3])
                    else:
                        profiler.dispatch(entry[2], entry[3])
                processed += 1
                if processed == budget:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            self._horizon = _NEG_INF
            # Inline dispatches claimed via advance_if_clear() count like
            # any other event; batched outside the loop as before.
            self.events_processed += processed + self._ninline
            self._ninline = 0

    def advance_if_clear(self, time: float) -> bool:
        # See Simulator.advance_if_clear for the contract.  `time` beyond
        # `_horizon` covers all three refusal modes at once: outside
        # run() the window is -inf, and a budgeted or profiled run()
        # never opens it.
        if time > self._horizon:
            return False
        heap = self._heap
        # A heap entry at or before `time` must fire first: every queued
        # seq predates the one we are about to consume, so ties always
        # block.
        if heap and heap[0][0] <= time:
            return False
        self.now = time
        self._seq += 1
        self._ninline += 1
        return True

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def live_entries(self) -> List[_LegacyEntry]:
        out: List[_LegacyEntry] = []
        for entry in self._heap:
            if len(entry) == 4:
                out.append((entry[0], entry[1], entry[2], (entry[3],), None))
            elif entry[4] is None or not entry[4].cancelled:
                out.append(entry)
        return out

    def _export_heap(self) -> List[_LegacyEntry]:
        live = self.live_entries()
        if len(live) != len(self._heap):
            heapq.heapify(live)
        return live

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._restore_shared(state)
        self._horizon = _NEG_INF
        self._ninline = 0
        heap: List[tuple] = []
        for entry in state["_heap"]:
            ev = entry[4]
            if ev is not None:
                if not ev.cancelled:
                    heap.append(entry)
                # _live in the shared state already excludes cancelled
                # entries, so dropping them here keeps the counter exact.
            elif len(entry[3]) == 1:
                heap.append((entry[0], entry[1], entry[2], entry[3][0]))
            else:
                heap.append(entry)
        heapq.heapify(heap)
        self._heap = heap


#: recognised ``REPRO_ENGINE`` spellings → concrete class
_ENGINE_ALIASES = {
    "array": "ArraySimulator",
    "v2": "ArraySimulator",
    "": "ArraySimulator",  # unset/empty → default
    "legacy": "LegacySimulator",
    "tuple": "LegacySimulator",
    "v1": "LegacySimulator",
    "compiled": "CompiledSimulator",
    "cext": "CompiledSimulator",
}


def get_engine_class(name: Optional[str] = None) -> type:
    """Resolve an engine name to its :class:`Simulator` subclass.

    With ``name=None`` the ``REPRO_ENGINE`` environment variable decides
    (read lazily on every call, so tests can flip it between
    instantiations); unset or empty selects the array engine family.

    Two orthogonal knobs compose here: ``REPRO_ENGINE`` picks the engine
    *family* (array vs legacy), and ``REPRO_COMPILED`` picks the array
    family's *implementation* (the optional compiled extension vs pure
    Python — see :mod:`repro.compiled`).  When the array family is
    selected and a compiled engine is active, the compiled class is
    returned; the legacy engine is always pure Python.  Spelling
    ``REPRO_ENGINE=compiled`` *requires* the compiled engine and raises
    :class:`SimulationError` when no extension is built — use it when a
    silent fallback would invalidate a measurement.
    """
    if name is None:
        name = os.environ.get("REPRO_ENGINE", "")
    key = name.strip().lower()
    cls_name = _ENGINE_ALIASES.get(key)
    if cls_name is None:
        raise SimulationError(
            f"unknown engine {name!r} (REPRO_ENGINE): use 'array', 'legacy' "
            f"or 'compiled'"
        )
    if cls_name == "ArraySimulator":
        from ..compiled import engine_class as _compiled_engine_class

        compiled = _compiled_engine_class()
        if compiled is not None:
            return compiled
        return ArraySimulator
    if cls_name == "CompiledSimulator":
        from ..compiled import engine_class as _compiled_engine_class

        compiled = _compiled_engine_class()
        if compiled is None:
            raise SimulationError(
                f"engine {name!r} (REPRO_ENGINE) requires the compiled "
                f"extension, which is not built or is disabled by "
                f"REPRO_COMPILED=0; build it with: python -m repro.compiled.build"
            )
        return compiled
    return globals()[cls_name]
