"""Unidirectional store-and-forward link.

Each link owns a queue discipline and a transmitter.  Arriving packets are
offered to the queue; the transmitter drains it one packet at a time,
charging the serialization delay ``size * 8 / bandwidth`` and then the
propagation delay before handing the packet to the downstream node.  A
duplex connection between two nodes is simply two :class:`Link` objects,
which is how the paper's topologies carry reverse-path ACK traffic through
their own (droppable) queues.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from .engine import Simulator
from .packet import Packet
from .queues.base import QueueDiscipline

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["Link"]


class Link:
    """One-way link: ``src -> dst`` with a queue at the sending side.

    Parameters
    ----------
    bandwidth:
        Line rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    qdisc:
        Queue discipline instance guarding the transmitter.
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "bandwidth",
        "delay",
        "qdisc",
        "_busy",
        "bytes_transmitted",
        "packets_transmitted",
        "busy_time",
        "_ser_time",
        "obs",
        "obs_label",
    )

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        bandwidth: float,
        delay: float,
        qdisc: QueueDiscipline,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.delay = delay
        self.qdisc = qdisc
        self._busy = False
        self.bytes_transmitted = 0
        self.packets_transmitted = 0
        self.busy_time = 0.0
        #: serialization-time memo, size -> seconds.  Real traffic uses a
        #: handful of distinct packet sizes, so this collapses the per-hop
        #: float division to a dict hit.  Entries are computed with the
        #: exact expression ``size * 8.0 / bandwidth`` so cached and
        #: uncached runs are bit-identical.
        self._ser_time: Dict[int, float] = {}
        #: observability attachment (:class:`repro.obs.Collector`)
        self.obs: Optional[Any] = None
        self.obs_label: Optional[str] = None

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        """Offer *pkt* to this link's queue and kick the transmitter."""
        accepted = self.qdisc.enqueue(pkt, self.sim.now)
        if accepted and not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        sim = self.sim
        pkt = self.qdisc.dequeue(sim.now)
        if pkt is None:
            self._busy = False
            return
        self._busy = True
        size = pkt.size
        tx_time = self._ser_time.get(size)
        if tx_time is None:
            tx_time = size * 8.0 / self.bandwidth
            self._ser_time[size] = tx_time
        self.busy_time += tx_time
        sim.schedule_fire1(tx_time, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        """Complete *pkt*'s transmission, then drain the queue in a batch.

        Each iteration is one departure: counters, the propagation-delay
        hand-off to the destination, and the dequeue of the next packet.
        When the engine can prove no other event intercedes before the
        next departure (``sim.advance_if_clear``), the chain continues
        inline — no heap push/pop, no run-loop iteration — which is the
        common case whenever the bottleneck drains a standing queue.  The
        virtual-time trace (times, sequence numbers, dequeue instants,
        observability hooks) is bit-identical to scheduling every
        departure through the heap; under the legacy engine the claim
        always fails and every departure is a real event, exactly as
        before.
        """
        sim = self.sim
        qdisc = self.qdisc
        dst_receive = self.dst.receive
        delay = self.delay
        ser_memo = self._ser_time
        schedule1 = sim.schedule_fire1
        advance_if_clear = sim.advance_if_clear
        while True:
            self.bytes_transmitted += pkt.size
            self.packets_transmitted += 1
            if self.obs is not None:
                self.obs.link_tx(self, sim.now)
            schedule1(delay, dst_receive, pkt)
            pkt = qdisc.dequeue(sim.now)
            if pkt is None:
                self._busy = False
                return
            tx_time = ser_memo.get(pkt.size)
            if tx_time is None:
                tx_time = pkt.size * 8.0 / self.bandwidth
                ser_memo[pkt.size] = tx_time
            self.busy_time += tx_time
            if not advance_if_clear(sim.now + tx_time):
                schedule1(tx_time, self._tx_done, pkt)
                return

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Walk ``__slots__`` across the MRO so subclasses (e.g.
        :class:`~repro.sim.jitter.JitterLink`) round-trip their extra
        slots without defining their own hooks.  Everything a link holds
        — counters, qdisc, the serialization memo, an attached collector
        — is state worth keeping; nothing is process-local."""
        state: Dict[str, Any] = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------------
    def utilization(self, duration: float, since_bytes: int = 0) -> float:
        """Fraction of capacity used over *duration* seconds.

        ``since_bytes`` subtracts a byte-counter snapshot so callers can
        measure a window (e.g. the paper's steady-state 100-300 s slice).
        """
        if duration <= 0:
            return 0.0
        used = (self.bytes_transmitted - since_bytes) * 8.0
        return min(1.0, used / (self.bandwidth * duration))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.src.node_id}->{self.dst.node_id} "
            f"{self.bandwidth/1e6:.1f}Mbps {self.delay*1e3:.1f}ms "
            f"q={len(self.qdisc)}>"
        )
