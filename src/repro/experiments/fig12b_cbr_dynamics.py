"""Section 4.7 (second experiment): dynamics under non-responsive traffic.

The paper: "We have conducted additional experiments, where dynamic
changes in traffic were caused by non-responsive traffic.  The results
are similar to those above" (full data relegated to the thesis [4]).

Reproduced here: a cohort of long-lived flows shares the bottleneck; at
``t_on`` a CBR (UDP-like) source claims a large fraction of the link,
and at ``t_off`` it leaves.  The figure of merit is how quickly the
responsive flows concede and then reclaim the bandwidth — measured as
settling times of their aggregate throughput toward the fair target in
each phase — plus the loss behaviour during the squeeze.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from ..metrics.timeseries import settling_time
from ..sim.engine import Simulator
from ..sim.monitors import DropLog
from ..sim.topology import Dumbbell
from ..tcp.base import connect_flow
from ..traffic.cbr import CbrSink, CbrSource
from .report import format_table
from .scenarios import get_scheme, scheme_sender_kwargs

__all__ = ["run_cbr_dynamics", "run", "validation_metrics", "main"]

PAPER_EXPECTATION = (
    "Responsive flows concede quickly when unresponsive traffic arrives "
    "and reclaim the bandwidth promptly when it leaves; PERT does so "
    "with near-zero loss (Section 4.7: 'results are similar')."
)


def run_cbr_dynamics(
    scheme: str,
    bandwidth: float = 10e6,
    rtt: float = 0.060,
    n_flows: int = 6,
    cbr_fraction: float = 0.5,
    t_on: float = 20.0,
    t_off: float = 40.0,
    duration: float = 60.0,
    seed: int = 1,
    pkt_size: int = 1000,
    sample_interval: float = 0.5,
) -> Dict:
    """One scheme under a CBR on/off squeeze; returns the rate series."""
    spec = get_scheme(scheme)
    sim = Simulator(seed=seed)
    buffer_pkts = max(int(round(bandwidth * rtt / (8.0 * pkt_size))),
                      2 * n_flows, 8)
    sender_kwargs = scheme_sender_kwargs(spec, bandwidth, pkt_size, n_flows,
                                         rtt)
    bottleneck_delay = rtt / 4.0
    access = (rtt / 2.0 - bottleneck_delay) / 2.0

    def qdisc():
        return spec.make_qdisc(sim, buffer_pkts, bandwidth, pkt_size,
                               n_flows, rtt)

    db = Dumbbell(
        sim, n_left=n_flows + 1, n_right=n_flows + 1,
        bottleneck_bw=bandwidth, bottleneck_delay=bottleneck_delay,
        qdisc_fwd=qdisc, qdisc_rev=qdisc,
        access_delays_left=[access] * (n_flows + 1),
        access_delays_right=[access] * (n_flows + 1),
    )
    drop_log = DropLog(db.bottleneck_queue)
    flow_ids = itertools.count()
    flows = []
    for i in range(n_flows):
        fid = next(flow_ids)
        sender, sink = connect_flow(
            sim, db.left[i], db.right[i], flow_id=fid,
            sender_cls=spec.sender_cls, pkt_size=pkt_size, **sender_kwargs,
        )
        sender.start(at=0.1 * i)
        flows.append((sender, sink))

    cbr = CbrSource(sim, db.left[n_flows], dst=db.right[n_flows].node_id,
                    flow_id=next(flow_ids),
                    rate_bps=cbr_fraction * bandwidth, pkt_size=pkt_size)
    CbrSink(db.right[n_flows], flow_id=cbr.flow_id)
    sim.schedule_at(t_on, cbr.start)
    sim.schedule_at(t_off, cbr.stop)

    times: List[float] = []
    agg_rates: List[float] = []
    last = [sink.rcv_next for _, sink in flows]

    def sample() -> None:
        times.append(sim.now)
        cur = [sink.rcv_next for _, sink in flows]
        delivered = sum(c - l for c, l in zip(cur, last))
        last[:] = cur
        agg_rates.append(delivered * pkt_size * 8.0 / sample_interval)
        if sim.now < duration:
            sim.schedule(sample_interval, sample)

    sim.schedule(sample_interval, sample)
    sim.run(until=duration)
    return {
        "scheme": scheme,
        "times": times,
        "agg_rates_bps": agg_rates,
        "bandwidth": bandwidth,
        "cbr_fraction": cbr_fraction,
        "t_on": t_on,
        "t_off": t_off,
        "drops_during_squeeze": drop_log.count(start=t_on, end=t_off),
        "drops_total": drop_log.count(),
    }


def phase_settling_times(result: Dict, tolerance: float = 0.2) -> Dict:
    """Settling time of aggregate TCP throughput in each phase."""
    bw = result["bandwidth"]
    t_on, t_off = result["t_on"], result["t_off"]
    times, rates = result["times"], result["agg_rates_bps"]

    def phase(lo, hi, target):
        idx = [i for i, t in enumerate(times) if lo < t <= hi]
        ts = [times[i] - lo for i in idx]
        xs = [rates[i] for i in idx]
        return settling_time(ts, xs, target, tolerance=tolerance)

    squeezed_target = bw * (1.0 - result["cbr_fraction"])
    return {
        "concede_s": phase(t_on, t_off, squeezed_target),
        "reclaim_s": phase(t_off, times[-1], bw),
    }


def run(schemes: Sequence[str] = ("pert", "sack-droptail", "sack-red-ecn",
                                  "vegas"), **kwargs) -> List[Dict]:
    rows = []
    for scheme in schemes:
        res = run_cbr_dynamics(scheme, **kwargs)
        st = phase_settling_times(res)
        rows.append({
            "scheme": scheme,
            "concede_s": st["concede_s"],
            "reclaim_s": st["reclaim_s"],
            "drops_squeeze": res["drops_during_squeeze"],
            "drops_total": res["drops_total"],
        })
    return rows


def validation_metrics(rows: List[Dict]):
    """Flatten :func:`run` output for ``repro.validate``.

    A phase that never settles yields ``concede_s``/``reclaim_s`` of
    ``None``; those are omitted, so a banded settling time reports as
    ``missing`` (a failure) rather than comparing against ``None``.
    """
    from ..validate.extract import metric_id

    out = {}
    for row in rows:
        for m in ("concede_s", "reclaim_s", "drops_squeeze", "drops_total"):
            if row[m] is not None:
                out[metric_id(row["scheme"], m)] = float(row[m])
    return out


def main() -> None:
    rows = run()
    print(format_table(
        rows, ["scheme", "concede_s", "reclaim_s", "drops_squeeze",
               "drops_total"],
        title="Section 4.7 — dynamics under non-responsive (CBR) traffic",
    ))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
