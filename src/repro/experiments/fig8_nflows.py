"""Figure 8: impact of the number of long-term flows.

Paper setup: 500 Mbps bottleneck, 60 ms RTT, flow count swept 1 - 1000
(log axis).  Scaled default: 32 Mbps with 1 - 80 flows, which spans the
same per-flow-window regimes (large windows down to ~2-3 packets).

Paper claims: PERT's queue/drops track SACK/RED-ECN as flows grow; Jain
index stays high even at large flow counts; Vegas' queue and drops grow
with the number of flows (it parks alpha..beta packets per flow) while
its fairness stays low.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .report import format_table
from .scenarios import ScenarioPoint, ScenarioSpec
from .sweep import SECTION4_SCHEMES

__all__ = ["spec", "run", "validation_metrics", "main", "DEFAULT_FLOW_COUNTS"]

PAPER_EXPECTATION = (
    "PERT queue/drops similar to RED-ECN at every flow count; Vegas "
    "queue (and eventually drops) grow with flows, fairness low; "
    "droptail queue high throughout."
)

DEFAULT_FLOW_COUNTS = [1, 2, 5, 10, 20, 40, 80]


def spec(
    flow_counts: Optional[Sequence[int]] = None,
    bandwidth: float = 32e6,
    rtt: float = 0.060,
    duration: float = 40.0,
    warmup: float = 15.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
) -> ScenarioSpec:
    """Declarative sweep spec for this figure."""
    flow_counts = (
        list(flow_counts) if flow_counts is not None else DEFAULT_FLOW_COUNTS
    )
    points = [
        ScenarioPoint(overrides={"n_fwd": n}, tags={"n_fwd": n})
        for n in flow_counts
    ]
    return ScenarioSpec(
        name="fig8_nflows",
        title="Figure 8 — impact of the number of long-term flows",
        points=points,
        schemes=tuple(schemes),
        base=dict(bandwidth=bandwidth, rtt=rtt, duration=duration,
                  warmup=warmup, seed=seed, web_sessions=web_sessions),
        columns=("n_fwd", "scheme", "norm_queue", "drop_rate",
                 "utilization", "jain"),
        expectation=PAPER_EXPECTATION,
    )


def run(
    flow_counts: Optional[Sequence[int]] = None,
    bandwidth: float = 32e6,
    rtt: float = 0.060,
    duration: float = 40.0,
    warmup: float = 15.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
) -> List[dict]:
    return spec(flow_counts, bandwidth=bandwidth, rtt=rtt, duration=duration,
                warmup=warmup, seed=seed, schemes=schemes,
                web_sessions=web_sessions).run()


def validation_metrics(rows: List[dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-flow-count rows)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("n_fwd",),
    )


def main() -> None:
    scenario = spec()
    rows = scenario.run()
    print(format_table(rows, list(scenario.columns), title=scenario.title))
    print(f"\nPaper expectation: {scenario.expectation}")


if __name__ == "__main__":
    main()
