"""Figure 12: dynamic protocol behaviour under arriving/departing flows.

Paper setup: 25 PERT flows start at t = 0; every 100 s another cohort of
25 joins (to 100 flows), then cohorts leave every 100 s.  The figure
plots each cohort's aggregate throughput, showing PERT reapportioning
bandwidth quickly and fairly.  Scaled default: 4 cohorts of 5 flows with
a 15 s epoch on a 10 Mbps bottleneck.

Paper claims: cohort throughputs converge toward equal shares within
each epoch for PERT (and the SACK baselines); Vegas shows persistent
unfairness between cohorts that started at different times.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from ..sim.engine import Simulator
from ..sim.topology import Dumbbell
from ..tcp.base import connect_flow
from .report import format_table
from .scenarios import get_scheme, scheme_sender_kwargs

__all__ = ["run_dynamics", "run", "cohort_share_error", "validation_metrics",
           "main"]

PAPER_EXPECTATION = (
    "Cohort aggregate throughputs re-converge to equal shares within "
    "each epoch for PERT; Vegas cohorts stay unequal (Figure 12)."
)


def run_dynamics(
    scheme: str,
    n_cohorts: int = 4,
    cohort_size: int = 5,
    epoch: float = 15.0,
    bandwidth: float = 10e6,
    rtt: float = 0.060,
    seed: int = 1,
    pkt_size: int = 1000,
    sample_interval: float = 1.0,
) -> Dict:
    """Staircase arrival/departure pattern; returns cohort rate series.

    Timeline: cohort k starts at ``k * epoch``; after a hold period at
    full population, cohorts stop in LIFO order, one per epoch.  Total
    simulated time: ``(2 * n_cohorts) * epoch``.
    """
    spec = get_scheme(scheme)
    sim = Simulator(seed=seed)
    total_flows = n_cohorts * cohort_size
    buffer_pkts = max(int(round(bandwidth * rtt / (8.0 * pkt_size))),
                      2 * total_flows, 8)
    sender_kwargs = scheme_sender_kwargs(spec, bandwidth, pkt_size,
                                         total_flows, rtt)
    bottleneck_delay = rtt / 4.0
    access = (rtt / 2.0 - bottleneck_delay) / 2.0

    def qdisc():
        return spec.make_qdisc(sim, buffer_pkts, bandwidth, pkt_size,
                               total_flows, rtt)

    db = Dumbbell(
        sim,
        n_left=total_flows,
        n_right=total_flows,
        bottleneck_bw=bandwidth,
        bottleneck_delay=bottleneck_delay,
        qdisc_fwd=qdisc,
        qdisc_rev=qdisc,
        access_delays_left=[access] * total_flows,
        access_delays_right=[access] * total_flows,
    )
    flow_ids = itertools.count()
    cohorts: List[List] = []
    for k in range(n_cohorts):
        cohort = []
        for j in range(cohort_size):
            host = k * cohort_size + j
            fid = next(flow_ids)
            sender, sink = connect_flow(
                sim, db.left[host], db.right[host], flow_id=fid,
                sender_cls=spec.sender_cls, pkt_size=pkt_size, **sender_kwargs,
            )
            sender.start(at=k * epoch + 0.01 * j)
            cohort.append((sender, sink))
        cohorts.append(cohort)

    # Departures: LIFO, one cohort per epoch after the full-load period.
    depart_start = n_cohorts * epoch
    for k in range(n_cohorts - 1):
        cohort = cohorts[n_cohorts - 1 - k]

        def stop_cohort(cohort=cohort):
            for sender, _ in cohort:
                sender.stop()

        sim.schedule_at(depart_start + k * epoch, stop_cohort)

    total_time = 2 * n_cohorts * epoch
    times: List[float] = []
    series: List[List[float]] = [[] for _ in range(n_cohorts)]
    last = [[sink.rcv_next for _, sink in cohort] for cohort in cohorts]

    def sample() -> None:
        times.append(sim.now)
        for k, cohort in enumerate(cohorts):
            cur = [sink.rcv_next for _, sink in cohort]
            delivered = sum(c - l for c, l in zip(cur, last[k]))
            last[k] = cur
            series[k].append(delivered * pkt_size * 8.0 / sample_interval)
        if sim.now < total_time:
            sim.schedule(sample_interval, sample)

    sim.schedule(sample_interval, sample)
    sim.run(until=total_time)
    return {
        "scheme": scheme,
        "times": times,
        "cohort_rates_bps": series,
        "bandwidth": bandwidth,
        "epoch": epoch,
        "n_cohorts": n_cohorts,
    }


def cohort_share_error(result: Dict, epoch_index: int) -> float:
    """Mean relative deviation from equal shares late in an epoch.

    ``epoch_index`` counts arrival epochs (0-based); the last half of
    the epoch is evaluated, when ``epoch_index + 1`` cohorts are active.
    """
    epoch = result["epoch"]
    active = epoch_index + 1
    t_lo = epoch_index * epoch + epoch / 2.0
    t_hi = (epoch_index + 1) * epoch
    idx = [i for i, t in enumerate(result["times"]) if t_lo < t <= t_hi]
    if not idx:
        raise ValueError("no samples in the requested epoch")
    fair = result["bandwidth"] / active
    errs = []
    for k in range(active):
        mean_rate = sum(result["cohort_rates_bps"][k][i] for i in idx) / len(idx)
        errs.append(abs(mean_rate - fair) / fair)
    return sum(errs) / len(errs)


def run(schemes: Sequence[str] = ("pert", "sack-droptail", "sack-red-ecn",
                                  "vegas"), **kwargs) -> List[Dict]:
    return [run_dynamics(scheme, **kwargs) for scheme in schemes]


def validation_metrics(results: List[Dict]):
    """Flatten :func:`run` output for ``repro.validate``.

    One metric per scheme per arrival epoch: the mean relative deviation
    of cohort throughputs from equal shares late in that epoch.
    """
    from ..validate.extract import metric_id

    out = {}
    for res in results:
        for e in range(res["n_cohorts"]):
            out[metric_id(res["scheme"], "share_error", {"epoch": e})] = \
                cohort_share_error(res, e)
    return out


def main() -> None:
    results = run()
    rows = []
    for res in results:
        for e in range(res["n_cohorts"]):
            rows.append({
                "scheme": res["scheme"],
                "epoch": e,
                "active_cohorts": e + 1,
                "share_error": cohort_share_error(res, e),
            })
    print(format_table(rows, ["scheme", "epoch", "active_cohorts",
                              "share_error"],
                       title="Figure 12 — convergence to fair shares per epoch"))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
