"""Figure 4: queue occupancy when srtt_0.99 false positives occur.

Paper claim: false positives of the ``srtt_0.99`` predictor concentrate
at *low* normalized queue lengths (mostly below 50 % of the buffer) —
which is what justifies a RED-like response curve: respond gently when
the queue (hence the risk that the signal is wrong) is small, strongly
when it is large.

For each traffic case we find the times of false-positive high periods
and look up the bottleneck queue occupancy at those instants in the
fine-grained queue sampler, then aggregate a normalized-occupancy PDF.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics.stats import histogram_pdf
from ..predictors.analysis import false_positive_samples
from ..predictors.threshold import EwmaRttPredictor
from .report import format_table
from .section2 import CaseTrace, TrafficCase, collect_case_trace, default_cases

__all__ = ["false_positive_queue_levels", "run", "validation_metrics", "main"]

PAPER_EXPECTATION = (
    "The PDF mass of normalized queue length at false positives sits "
    "mostly below 0.5 (Figure 4)."
)


def false_positive_queue_levels(
    traces: Dict[str, CaseTrace], threshold_margin: float = 0.005
) -> List[float]:
    """Normalized queue occupancies at srtt_0.99 false-positive instants."""
    levels: List[float] = []
    for tr in traces.values():
        if not tr.rtt_trace:
            continue
        base = min(r for _, r, _ in tr.rtt_trace)
        pred = EwmaRttPredictor(base + threshold_margin, weight=0.99)
        times = false_positive_samples(pred, tr.rtt_trace, tr.queue_drops,
                                       horizon=2.0 * tr.base_rtt)
        for t in times:
            levels.append(tr.queue_sampler.length_at(t) / tr.buffer_pkts)
    return levels


def run(
    cases: Optional[List[TrafficCase]] = None,
    bandwidth: float = 16e6,
    duration: float = 60.0,
    seed: int = 1,
    bins: int = 10,
) -> Tuple[List[dict], List[float]]:
    """Returns (PDF rows, raw normalized occupancies)."""
    cases = cases if cases is not None else default_cases()
    traces = {
        c.name: collect_case_trace(c, bandwidth=bandwidth, duration=duration,
                                   seed=seed)
        for c in cases
    }
    levels = false_positive_queue_levels(traces)
    pdf = histogram_pdf(levels, bins=bins, lo=0.0, hi=1.0)
    rows = [{"norm_queue_bin": c, "pdf": p} for c, p in pdf]
    return rows, levels


def validation_metrics(output: Tuple[List[dict], List[float]]) -> Dict[str, float]:
    """Flatten :func:`run` output for ``repro.validate``.

    The headline number is the paper's claim itself: the fraction of
    false positives occurring below half occupancy.  The sample count
    rides along so a silent collapse of the detector (very few false
    positives) cannot masquerade as a strong concentration.
    """
    _, levels = output
    below_half = (
        sum(1 for x in levels if x < 0.5) / len(levels) if levels else 0.0
    )
    return {
        "false_positives.below_half_fraction": below_half,
        "false_positives.samples": float(len(levels)),
    }


def main() -> None:
    rows, levels = run()
    print(format_table(rows, ["norm_queue_bin", "pdf"],
                       title="Figure 4 — PDF of normalized queue length at "
                             "srtt_0.99 false positives"))
    below_half = sum(1 for x in levels if x < 0.5) / len(levels) if levels else 0.0
    print(f"\nfraction of false positives below half occupancy: {below_half:.2f}")
    print(f"Paper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
